"""Multivariate DTW: searching 2-D gesture trajectories.

The paper's conclusion hints its envelope transforms "might have
applications to video processing" — i.e. multivariate sequences.
This example searches a library of 2-D pen gestures (synthetic
letters) for a noisy, time-warped query, using the multivariate
New_PAA-style bound to prune before exact multivariate DTW.

Run with:  python examples/gesture_search.py
"""

import numpy as np

from repro.dtw.multivariate import (
    lb_paa_multivariate,
    mdtw_distance,
    multivariate_envelope,
)

LENGTH = 64
K = 6
N_FRAMES = 8


def gesture(kind: str, rng, noise=0.0) -> np.ndarray:
    """A 2-D pen trajectory of the given shape, length LENGTH."""
    t = np.linspace(0, 1, LENGTH)
    if kind == "circle":
        xy = np.column_stack([np.cos(2 * np.pi * t), np.sin(2 * np.pi * t)])
    elif kind == "zigzag":
        xy = np.column_stack([t, 0.3 * np.sign(np.sin(6 * np.pi * t)) * t])
    elif kind == "ell":
        down = np.column_stack([np.zeros(LENGTH // 2),
                                np.linspace(1, 0, LENGTH // 2)])
        across = np.column_stack([np.linspace(0, 1, LENGTH - LENGTH // 2),
                                  np.zeros(LENGTH - LENGTH // 2)])
        xy = np.vstack([down, across])
    elif kind == "wave":
        xy = np.column_stack([t, 0.4 * np.sin(4 * np.pi * t)])
    elif kind == "spiral":
        xy = np.column_stack([t * np.cos(4 * np.pi * t),
                              t * np.sin(4 * np.pi * t)])
    else:
        raise ValueError(kind)
    if noise:
        xy = xy + rng.normal(0, noise, size=xy.shape)
    return xy


def time_warp(xy, rng):
    """Locally stretch/squeeze the trajectory (what DTW absorbs)."""
    weights = rng.lognormal(0, 0.4, size=xy.shape[0])
    positions = np.cumsum(weights)
    positions = (positions - positions[0]) / (positions[-1] - positions[0])
    idx = np.clip((positions * (xy.shape[0] - 1)).round().astype(int),
                  0, xy.shape[0] - 1)
    return xy[idx]


def main() -> None:
    rng = np.random.default_rng(6)
    kinds = ["circle", "zigzag", "ell", "wave", "spiral"]
    library = [(f"{kind}#{i}", gesture(kind, rng, noise=0.02))
               for kind in kinds for i in range(20)]
    print(f"Gesture library: {len(library)} trajectories "
          f"({LENGTH} points x 2 dims each)\n")

    # A messy, time-warped spiral is the query.
    query = time_warp(gesture("spiral", rng, noise=0.05), rng)
    envelopes = multivariate_envelope(query, K)

    # Multi-step search: rank by the cheap reduced bound, refine in
    # that order, stop refining once the bound exceeds the k-th best.
    TOP = 5
    bounds = sorted(
        (lb_paa_multivariate(candidate, envelopes, N_FRAMES), name, candidate)
        for name, candidate in library
    )
    scored = []
    pruned = 0
    for lb, name, candidate in bounds:
        kth_best = scored[TOP - 1][0] if len(scored) >= TOP else np.inf
        if lb > kth_best:
            pruned += 1
            continue
        dist = mdtw_distance(candidate, query, K,
                             upper_bound=None if np.isinf(kth_best) else kth_best)
        if np.isfinite(dist):
            scored.append((dist, name))
            scored.sort()

    print(f"pruned {pruned}/{len(library)} candidates with the "
          f"{2 * N_FRAMES}-number multivariate New_PAA bound\n")
    print("closest gestures:")
    for dist, name in scored[:5]:
        marker = "  <-- right shape" if name.startswith("spiral") else ""
        print(f"  {name:<12} DTW {dist:6.2f}{marker}")
    assert scored[0][1].startswith("spiral")


if __name__ == "__main__":
    main()
