"""Live search: the ranking converges while the user is still humming.

Streams synthesized hum audio in small "microphone callback" chunks
through the online pitch tracker into a progressive query, printing
each intermediate ranking — the search-as-you-hum experience a real
frontend would build from these pieces.

Run with:  python examples/live_search.py
"""

import numpy as np

from repro import (
    OnlinePitchTracker,
    ProgressiveQuery,
    QueryByHummingSystem,
    SingerProfile,
    generate_corpus,
    hum_melody,
    segment_corpus,
)
from repro.hum.synthesis import synthesize_pitch_series

CHUNK = 2048  # samples per simulated microphone callback (256 ms @ 8 kHz)


def main() -> None:
    melodies = segment_corpus(generate_corpus(12, seed=30), per_song=15, seed=30)
    system = QueryByHummingSystem(melodies, delta=0.1)
    print(f"database: {len(system)} melodies")

    rng = np.random.default_rng(8)
    target = 77
    print(f"user starts humming {melodies[target].name!r} ...\n")
    sung = hum_melody(melodies[target], SingerProfile.better(), rng)
    wave = synthesize_pitch_series(sung, rng=rng)

    tracker = OnlinePitchTracker()
    search = ProgressiveQuery(system, k=3, min_frames=150, every=100,
                              stability=3)

    for start in range(0, wave.size, CHUNK):
        frames = tracker.feed(wave[start : start + CHUNK])
        voiced = [f for f in frames if np.isfinite(f)]
        snapshot = search.feed(voiced)
        if snapshot is None:
            continue
        seconds = snapshot.frames_heard / 100.0
        top = ", ".join(f"{name} ({dist:.1f})"
                        for name, dist in snapshot.results)
        state = " CONVERGED" if snapshot.converged else ""
        print(f"[{seconds:5.1f}s heard]  {top}{state}")
        if snapshot.converged:
            break

    final = search.snapshots[-1]
    hit = final.top.split("#")[0] == melodies[target].name.split("#")[0]
    print(f"\nfinal answer: {final.top} "
          f"({'correct song' if hit else 'WRONG'}) after "
          f"{final.frames_heard / 100.0:.1f}s of a "
          f"{sung.size / 100.0:.1f}s hum")


if __name__ == "__main__":
    main()
