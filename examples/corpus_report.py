"""Corpus report: what's in the melody database before you index it.

Runs the corpus analyzer over a generated collection and prints the
statistics a librarian would want — interval and duration profiles,
key distribution, pitch range, duplicates — with terminal bar charts.

Run with:  python examples/corpus_report.py
"""

from repro.music.analysis import analyze_corpus, find_duplicates
from repro.music.corpus import generate_corpus, segment_corpus
from repro.music.theory import interval_name
from repro.viz import ascii_bars


def main() -> None:
    songs = generate_corpus(25, seed=21)
    melodies = segment_corpus(songs, per_song=20, seed=21)
    stats = analyze_corpus(melodies)

    print(f"Corpus: {len(songs)} songs segmented into {len(melodies)} "
          f"melodies\n")
    print(stats.summary())

    print("\nMost common melodic intervals:")
    intervals = stats.most_common_intervals(8)
    labels = [
        f"{semis:+d} ({interval_name(semis)})" for semis, _ in intervals
    ]
    print(ascii_bars(labels, [count for _, count in intervals], width=40))

    print("\nNote durations (beats):")
    durations = stats.duration_histogram.most_common(6)
    print(ascii_bars(
        [f"{beats:g}" for beats, _ in durations],
        [count for _, count in durations],
        width=40,
    ))

    print("\nKey distribution (top 6):")
    keys = stats.key_distribution.most_common(6)
    print(ascii_bars([k for k, _ in keys], [c for _, c in keys], width=40))

    groups = find_duplicates(melodies)
    duplicated = sum(len(g) for g in groups)
    print(f"\nDuplicates: {len(groups)} groups covering {duplicated} "
          f"melodies (phrase repetition within songs — these tie in "
          f"query rankings).")


if __name__ == "__main__":
    main()
