"""Index tuning: envelope transforms, dimensions, and backends.

Shows how the pieces of the warping index trade off against each
other on a random-walk workload:

* envelope transform (New_PAA vs Keogh_PAA vs DFT vs SVD),
* feature dimensionality,
* index backend (R*-tree vs grid file vs linear scan).

Run with:  python examples/index_tuning.py
"""

import numpy as np

from repro import (
    KeoghPAAEnvelopeTransform,
    NewPAAEnvelopeTransform,
    SignSplitEnvelopeTransform,
    SVDTransform,
    DFTTransform,
    WarpingIndex,
    random_walks,
)
from repro.core import NormalForm

LENGTH = 128
DB_SIZE = 2000
N_QUERIES = 10
DELTA = 0.1


def workload():
    series = list(random_walks(DB_SIZE, LENGTH, seed=1))
    queries = random_walks(N_QUERIES, LENGTH, seed=2)
    radius = 0.5 * np.sqrt(LENGTH)
    return series, queries, radius


def mean_cost(index, queries, radius):
    cand = pages = 0
    for q in queries:
        _, stats = index.filter_query(q, radius)
        cand += stats.candidates
        pages += stats.page_accesses
    return cand / len(queries), pages / len(queries)


def main() -> None:
    series, queries, radius = workload()
    nf = NormalForm(length=LENGTH)
    train = np.vstack([nf.apply(s) for s in series[:300]])

    print(f"Workload: {DB_SIZE} random walks, {N_QUERIES} range queries, "
          f"delta={DELTA}\n")

    print("1. Envelope transform (8 dims, R*-tree):")
    transforms = {
        "New_PAA": NewPAAEnvelopeTransform(LENGTH, 8),
        "Keogh_PAA": KeoghPAAEnvelopeTransform(LENGTH, 8),
        "DFT": SignSplitEnvelopeTransform(DFTTransform(LENGTH, 8), name="DFT"),
        "SVD": SignSplitEnvelopeTransform(
            SVDTransform.fit(train, 8), name="SVD"),
    }
    for name, env_t in transforms.items():
        index = WarpingIndex(series, delta=DELTA, env_transform=env_t,
                             normal_form=nf)
        cand, pages = mean_cost(index, queries, radius)
        print(f"   {name:<10} candidates={cand:8.1f}  pages={pages:6.1f}")

    print("\n2. Feature dimensionality (New_PAA, R*-tree):")
    for dims in (4, 8, 16, 32):
        index = WarpingIndex(series, delta=DELTA, n_features=dims,
                             normal_form=nf)
        cand, pages = mean_cost(index, queries, radius)
        print(f"   N={dims:<3}       candidates={cand:8.1f}  pages={pages:6.1f}")

    print("\n3. Index backend (New_PAA, 8 dims):")
    for kind in ("rstar", "grid", "linear"):
        index = WarpingIndex(series, delta=DELTA, index_kind=kind,
                             normal_form=nf)
        cand, pages = mean_cost(index, queries, radius)
        print(f"   {kind:<10} candidates={cand:8.1f}  pages={pages:6.1f}")

    print("\nReading: more dimensions -> tighter filter but bigger index "
          "entries; New_PAA dominates Keogh_PAA at every setting; the "
          "R*-tree touches the fewest pages.")


if __name__ == "__main__":
    main()
