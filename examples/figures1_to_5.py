"""Reproduce the paper's illustrative figures 1-5 as ASCII plots.

Figure 1 — a hummed pitch time series (via synthesis + pitch tracking)
Figure 2 — a melody and its time-series representation
Figure 3 — hum and melody after normal-form transformation
Figure 4 — a warping path under the local (Sakoe-Chiba) constraint
Figure 5 — Keogh vs New PAA reductions of a time-series envelope

Run with:  python examples/figures1_to_5.py
"""

import numpy as np

from repro import (
    KeoghPAAEnvelopeTransform,
    NewPAAEnvelopeTransform,
    SingerProfile,
    hum_melody,
    k_envelope,
    normalize,
    track_pitch,
)
from repro.dtw.path import warping_path
from repro.hum.synthesis import synthesize_pitch_series
from repro.music.corpus import EXAMPLE_PHRASE
from repro.viz import ascii_series, ascii_warping_grid


def ascii_plot(series, *, height=12, title="", marker="*"):
    """Print a series with range annotation via repro.viz."""
    arr = np.asarray(series, dtype=float)
    finite = arr[np.isfinite(arr)]
    print()
    print(ascii_series(arr, height=height, title=title, marker=marker))
    print(f"(min={finite.min():.1f}, max={finite.max():.1f}, n={arr.size})")


def figure1():
    rng = np.random.default_rng(2)
    sung = hum_melody(EXAMPLE_PHRASE, SingerProfile.better(), rng)
    wave = synthesize_pitch_series(sung, rng=rng)
    tracked = track_pitch(wave).pitch_series()
    ascii_plot(tracked, title="Figure 1: pitch time series of a hummed phrase")
    return tracked


def figure2():
    series = EXAMPLE_PHRASE.to_time_series(8)
    ascii_plot(series, title="Figure 2: melody and its time series "
                             "(piecewise-constant pitch)")
    return series


def figure3(hum, melody_series):
    hum_norm = normalize(hum, length=128)
    mel_norm = normalize(melody_series, length=128)
    ascii_plot(hum_norm, title="Figure 3a: hum in normal form "
                               "(shift + uniform time warp)")
    ascii_plot(mel_norm, title="Figure 3b: melody in normal form")
    diff = float(np.linalg.norm(hum_norm - mel_norm))
    print(f"Euclidean distance between normal forms: {diff:.2f}")


def figure4():
    rng = np.random.default_rng(4)
    x = np.cumsum(rng.normal(size=12))
    y = np.cumsum(rng.normal(size=12))
    k = 2
    path = warping_path(x, y, k=k)
    print(f"\n--- Figure 4: warping path with local constraint k={k} ---")
    print(ascii_warping_grid(path, 12, 12, k=k))
    print("# = warping path, . = admissible band (width 2k+1 = 5)")


def figure5():
    rng = np.random.default_rng(6)
    series = np.cumsum(rng.normal(size=64))
    series -= series.mean()
    env = k_envelope(series, 5)
    new = NewPAAEnvelopeTransform(64, 8)
    keogh = KeoghPAAEnvelopeTransform(64, 8)
    fe_new = new.reduce(env)
    fe_keogh = keogh.reduce(env)
    width_new = fe_new.width().sum()
    width_keogh = fe_keogh.width().sum()
    print("\n--- Figure 5: PAA reductions of the envelope ---")
    print(f"{'frame':>5} {'Keogh_L':>8} {'New_L':>8} {'New_U':>8} {'Keogh_U':>8}")
    for i in range(8):
        print(f"{i:>5} {fe_keogh.lower[i]:>8.2f} {fe_new.lower[i]:>8.2f} "
              f"{fe_new.upper[i]:>8.2f} {fe_keogh.upper[i]:>8.2f}")
    print(f"total band width: Keogh={width_keogh:.2f}  New={width_new:.2f} "
          f"(New is always inside Keogh -> tighter lower bounds)")


def main() -> None:
    hum = figure1()
    melody_series = figure2()
    figure3(hum, melody_series)
    figure4()
    figure5()


if __name__ == "__main__":
    main()
