"""Singing tutor: grade your humming, note by note.

The paper's testers "even improved their singing as a result" of using
the query-by-humming system — this example shows how: after a query,
align the hum with the melody it matched and report exactly which
notes were sharp, flat, rushed or dragged.

Run with:  python examples/singing_tutor.py
"""

import numpy as np

from repro import SingerProfile, hum_melody
from repro.music.corpus import EXAMPLE_PHRASE
from repro.qbh.scoring import assess_humming


def show_report(title, report, melody):
    print(f"\n=== {title} ===")
    print(f"grade: {report.grade()}   "
          f"mean |pitch error|: {report.mean_abs_pitch_error:.2f} semitones   "
          f"timing consistency: {report.timing_consistency:.2f}")
    print(f"{'note':>4} {'name':>5} {'target':>7} {'sung':>7} "
          f"{'error':>7} {'timing':>7}")
    for note in report.notes:
        name = melody.notes[note.index].name
        flag = ""
        if abs(note.pitch_error) > 0.75:
            flag = "  <-- " + ("sharp" if note.pitch_error > 0 else "flat")
        elif note.timing_ratio > 1.6:
            flag = "  <-- held too long"
        elif note.timing_ratio < 0.6:
            flag = "  <-- cut short"
        print(f"{note.index:>4} {name:>5} {note.expected_interval:>+7.2f} "
              f"{note.sung_interval:>+7.2f} {note.pitch_error:>+7.2f} "
              f"{note.timing_ratio:>7.2f}{flag}")
    worst = report.worst_note
    if worst and abs(worst.pitch_error) > 0.5:
        direction = "sharp" if worst.pitch_error > 0 else "flat"
        print(f"focus on note {worst.index} "
              f"({melody.notes[worst.index].name}): "
              f"{abs(worst.pitch_error):.1f} semitones {direction}")


def main() -> None:
    melody = EXAMPLE_PHRASE
    print(f"The tune: {len(melody)} notes, "
          f"{'-'.join(n.name for n in melody.notes[:6])}...")

    rng = np.random.default_rng(9)

    # A careful singer.
    good = hum_melody(melody, SingerProfile.better(), rng)
    show_report("careful singer", assess_humming(good, melody), melody)

    # A singer who goes flat on the big leap (note 9 jumps a fifth).
    flat = hum_melody(melody, SingerProfile.perfect(), rng)
    high = melody.notes[9].pitch
    flat = flat.copy()
    flat[np.abs(flat - high) < 0.01] -= 2.0
    show_report("singer who flats the high note",
                assess_humming(flat, melody), melody)

    # An enthusiastic but poor singer.
    wild = hum_melody(melody, SingerProfile.poor(), rng)
    show_report("poor singer", assess_humming(wild, melody), melody)


if __name__ == "__main__":
    main()
