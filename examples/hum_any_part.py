"""Subsequence search: hum *any part* of a full song.

The paper's system pre-segments songs into melodic sections and does
whole-sequence matching (Section 3.2).  This example demonstrates the
other option it discusses — subsequence matching — using the
SubsequenceIndex: full songs are indexed as sliding windows, and a hum
of an arbitrary excerpt finds the song and the position inside it.

Run with:  python examples/hum_any_part.py
"""

import numpy as np

from repro import SingerProfile, SubsequenceIndex, generate_corpus, hum_melody
from repro.core import NormalForm


def main() -> None:
    # Full songs as pitch time series (no pre-segmentation).
    songs = generate_corpus(15, seed=19)
    song_series = [song.melody.to_time_series(8).astype(float)
                   for song in songs]
    names = [song.name for song in songs]
    print(f"{len(songs)} full songs, "
          f"{min(s.size for s in song_series)}-"
          f"{max(s.size for s in song_series)} samples each")

    index = SubsequenceIndex(
        song_series,
        ids=names,
        window_lengths=(96, 144, 192),  # scales absorb tempo mismatch
        stride=16,
        delta=0.1,
        normal_form=NormalForm(length=64),
    )
    print(f"indexed {index.window_count} windows at 2 scales\n")

    # The user hums phrases 4-5 of song 8 — somewhere in the middle.
    rng = np.random.default_rng(3)
    target_song = songs[8]
    excerpt_notes = [n for p in target_song.phrases[4:6] for n in p.notes]
    from repro import Melody

    excerpt = Melody(excerpt_notes, name="excerpt")
    hum = hum_melody(excerpt, SingerProfile.better(), rng)
    print(f"Humming {len(excerpt)} notes from the middle of "
          f"{target_song.name!r} ({hum.size} frames)")

    matches, stats = index.knn_query(hum, 5)
    print(f"filter: {stats.candidates} candidates, "
          f"{stats.page_accesses} pages, "
          f"{stats.dtw_computations} refinements\n")
    print("Best window per song:")
    for rank, match in enumerate(matches, start=1):
        marker = "  <-- correct song" if match.sequence_id == target_song.name else ""
        print(f"  {rank}. {match.sequence_id} @ samples "
              f"[{match.start}, {match.start + match.length})  "
              f"distance {match.distance:.2f}{marker}")

    # Where in the song did the hummed part actually start?
    offset_beats = sum(p.total_beats for p in target_song.phrases[:4])
    print(f"\nGround truth: the excerpt starts {offset_beats:.0f} beats "
          f"(~sample {int(offset_beats * 8)}) into the song.")
    print("\nNote how much harder this is than whole-sequence matching: "
          "window boundaries only approximate the hummed excerpt, so "
          "wrong songs can edge ahead — the paper's stated reason for "
          "pre-segmenting melodies instead (Section 3.2).")


if __name__ == "__main__":
    main()
