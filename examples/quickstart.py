"""Quickstart: build a melody database and query it by humming.

Run with:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    QueryByHummingSystem,
    SingerProfile,
    generate_corpus,
    hum_melody,
    segment_corpus,
)


def main() -> None:
    # 1. Build a music database: 20 songs, segmented into short
    #    melodic sections (whole-sequence matching, as in the paper).
    print("Generating a 20-song corpus ...")
    songs = generate_corpus(20, seed=7)
    melodies = segment_corpus(songs, per_song=20, seed=7)
    print(f"  {len(songs)} songs -> {len(melodies)} melodies of "
          f"{min(len(m) for m in melodies)}-{max(len(m) for m in melodies)} notes")

    # 2. Index it.  delta is the DTW warping width; New_PAA envelope
    #    transform + R*-tree are the defaults.
    system = QueryByHummingSystem(melodies, delta=0.1)
    print(f"  indexed {len(system)} melodies "
          f"({system.index.feature_dim} feature dims, R*-tree)")

    # 3. Simulate a user humming melody #123 — off-key, off-tempo,
    #    with sloppy note timing (that is what the index is for).
    rng = np.random.default_rng(0)
    target = 123
    hum = hum_melody(melodies[target], SingerProfile.better(), rng)
    print(f"\nHumming {melodies[target].name!r} "
          f"({hum.size} pitch frames at 10 ms) ...")

    # 4. Query: top-10 most similar melodies under shift-invariant,
    #    tempo-invariant, locally-warped DTW.
    results, stats = system.query(hum, k=10)
    print(f"  filter retrieved {stats.candidates} candidates, "
          f"{stats.page_accesses} page accesses, "
          f"{stats.dtw_computations} exact DTW computations")
    print("\nTop matches:")
    for rank, (name, distance) in enumerate(results[:5], start=1):
        marker = "  <-- the hummed melody" if name == melodies[target].name else ""
        print(f"  {rank}. {name}  (DTW distance {distance:.2f}){marker}")


if __name__ == "__main__":
    main()
