"""Personalised query by humming — the paper's future work, working.

The paper's conclusion: "We are still working on ... adapting the
system to different hummers."  This example adapts it: a singer who
systematically compresses intervals (a very common failure mode —
timid singers shrink every leap) confirms a few search results, the
system fits a HummerProfile from those confirmations, and subsequent
queries are corrected before they hit the index.

Run with:  python examples/personalized_qbh.py
"""

import numpy as np

from repro import (
    QueryByHummingSystem,
    SingerProfile,
    generate_corpus,
    hum_melody,
    segment_corpus,
)
from repro.qbh.calibration import fit_hummer_profile

COMPRESSION = 0.5  # the singer halves every interval


def compressed_hum(melody, rng):
    """Hum with good timing but squeezed intervals."""
    base_profile = SingerProfile(
        transpose_range=(-3.0, 3.0), tempo_range=(0.9, 1.1),
        note_pitch_std=0.1, drift_std=0.02, duration_jitter_std=0.1,
        frame_noise_std=0.05, vibrato_depth=0.1,
    )
    hum = hum_melody(melody, base_profile, rng)
    return hum.mean() + (hum - hum.mean()) * COMPRESSION


def main() -> None:
    melodies = segment_corpus(generate_corpus(30, seed=13), per_song=20, seed=13)
    system = QueryByHummingSystem(melodies, delta=0.1)
    rng = np.random.default_rng(2)
    print(f"Database: {len(system)} melodies.")
    print(f"Singer: compresses every interval to {COMPRESSION:.0%}.\n")

    # --- session 1: raw queries, user confirms the right answers ----
    training_targets = [12, 151, 303, 452]
    confirmed = []
    print("Session 1 (no calibration):")
    for target in training_targets:
        hum = compressed_hum(melodies[target], rng)
        rank = system.rank_of(hum, target)
        print(f"  hummed {melodies[target].name!r}: rank {rank}")
        confirmed.append((hum, melodies[target]))

    # --- fit the hummer profile from the confirmations ---------------
    profile = fit_hummer_profile(confirmed)
    print(f"\nFitted HummerProfile: interval_scale="
          f"{profile.interval_scale:.2f} (true {COMPRESSION}), "
          f"tempo_ratio={profile.tempo_ratio:.2f}, "
          f"drift={profile.drift_per_frame:+.4f}/frame "
          f"from {profile.n_samples} confirmations\n")

    # --- session 2: corrected queries ---------------------------------
    test_targets = [77, 240, 391, 588]
    print("Session 2 (queries corrected by the profile):")
    raw_ranks, fixed_ranks = [], []
    for target in test_targets:
        hum = compressed_hum(melodies[target], rng)
        raw = system.rank_of(hum, target)
        fixed = system.rank_of(profile.correct(hum), target)
        raw_ranks.append(raw)
        fixed_ranks.append(fixed)
        print(f"  hummed {melodies[target].name!r}: rank {raw} -> {fixed}")

    print(f"\nmean rank without calibration: {np.mean(raw_ranks):.1f}")
    print(f"mean rank with calibration:    {np.mean(fixed_ranks):.1f}")


if __name__ == "__main__":
    main()
