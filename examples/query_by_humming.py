"""Full query-by-humming pipeline, microphone to answer.

Walks the complete paper architecture on synthetic audio:

    hum audio -> pitch tracking -> normal form -> warping index ->
    ranked melodies

and contrasts it with the contour-string baseline fed by automatic
note segmentation, showing why the paper abandons that route.

Run with:  python examples/query_by_humming.py
"""

import numpy as np

from repro import (
    ContourIndex,
    QueryByHummingSystem,
    SingerProfile,
    contour_string,
    generate_corpus,
    hum_melody,
    segment_corpus,
    track_pitch,
)
from repro.hum.segmentation import segment_notes
from repro.hum.synthesis import synthesize_pitch_series


def main() -> None:
    melodies = segment_corpus(generate_corpus(25, seed=11), per_song=20, seed=11)
    system = QueryByHummingSystem(melodies, delta=0.1)
    contour_index = ContourIndex(melodies)
    rng = np.random.default_rng(5)

    target = 250
    print(f"Target melody: {melodies[target].name!r} "
          f"({len(melodies[target])} notes)")

    # --- the user hums (simulated singer) and we record audio -------
    sung_frames = hum_melody(melodies[target], SingerProfile.better(), rng)
    wave = synthesize_pitch_series(sung_frames, rng=rng)
    seconds = wave.size / 8000
    print(f"Recorded {seconds:.1f} s of audio at 8 kHz")

    # --- front end: 10 ms pitch tracking ----------------------------
    track = track_pitch(wave)
    print(f"Pitch tracker: {len(track)} frames, "
          f"{track.voiced_fraction:.0%} voiced")
    pitch_series = track.pitch_series()

    # --- approach 1: time-series matching (the paper's) -------------
    results, stats = system.query(pitch_series, k=5)
    print("\nTime-series approach (DTW warping index):")
    print(f"  candidates={stats.candidates} pages={stats.page_accesses}")
    for rank, (name, dist) in enumerate(results, start=1):
        hit = "  <-- target" if name == melodies[target].name else ""
        print(f"  {rank}. {name} (distance {dist:.2f}){hit}")

    # --- approach 2: contour baseline --------------------------------
    print("\nContour approach (note segmentation + edit distance):")
    try:
        segmented = segment_notes(track.pitches)
        print(f"  segmentation produced {len(segmented)} notes "
              f"(true melody has {len(melodies[target])})")
        query_contour = contour_string(segmented)
        ranked = contour_index.rank(query_contour)[:5]
        for rank, (idx, dist) in enumerate(ranked, start=1):
            hit = "  <-- target" if idx == target else ""
            print(f"  {rank}. {melodies[idx].name} (edit distance {dist}){hit}")
        print(f"  target rank: "
              f"{contour_index.rank_of(query_contour, target)}")
    except ValueError as exc:
        print(f"  transcription failed: {exc}")


if __name__ == "__main__":
    main()
