"""Ablation — optimal multi-step k-NN vs full-scan k-NN.

Section 4.3 notes that a k-NN query "can be built on top of such a
range query" citing Seidl & Kriegel's optimal multi-step algorithm.
This bench quantifies what the index buys: exact-DTW refinements per
10-NN query with the multi-step algorithm vs the database size a
linear scan would refine.  Logic: ``repro.experiments.run_knn_ablation``.
"""

import pytest

from repro.experiments import run_knn_ablation

from _harness import print_series


@pytest.mark.benchmark(group="ablation")
def test_ablation_multistep_knn(benchmark, scale):
    db_size = min(scale.fig10_db, 5000)
    rows = benchmark.pedantic(
        run_knn_ablation, args=(db_size, scale.fig8_queries),
        rounds=1, iterations=1,
    )
    print_series(
        f"Ablation: exact-DTW refinements per 10-NN query, "
        f"multi-step vs full scan ({db_size} series)",
        rows,
    )
    assert rows["refined_multistep"][0] < db_size / 10
    assert rows["refined_multistep"][1] < db_size / 2
