"""Table 3 — poor singers vs warping width.

Paper setup: 20 hum queries by poor singers, ranked with DTW at
warping widths delta in {0.05, 0.1, 0.2}.  Paper result: moving from
0.05 to 0.1 helps a lot; 0.2 adds little (and slightly hurts rank-1 in
the paper) — the non-monotone sweet spot.  Logic:
``repro.experiments.run_table3``.
"""

import pytest

from repro.experiments import run_table3
from repro.qbh.evaluation import format_rank_tables


@pytest.mark.benchmark(group="table3")
def test_table3_warping_widths(benchmark, scale):
    tables = benchmark.pedantic(run_table3, args=(scale,), rounds=1, iterations=1)
    print()
    print(format_rank_tables(
        tables,
        title=f"Table 3: poor-singer retrieval vs warping width "
              f"({scale.table_queries} queries, {scale.name} scale)",
    ))
    by_delta = {t.name: t for t in tables}
    # Shape: some warping beats none-to-little; delta=0.1 should be at
    # least as good as the extremes in top-10 retrieval.
    mid = by_delta["delta=0.1"].in_top(10)
    assert mid >= by_delta["delta=0.05"].in_top(10) - 1
