"""Serving-layer benchmark — micro-batching service vs direct dispatch.

Closed-loop load test of :class:`repro.serve.QBHService` against the
baseline the serving layer replaces: every client calling the engine
directly, one query at a time.  The workload is Zipf-skewed over a
pool of hum variants (popular tunes repeat — the skew coalescing and
result caching exist for), mixing k-NN and range requests at 8
concurrent clients.

Asserted in-test, per the acceptance criteria:

* the service sustains at least **1.5x** the direct throughput;
* result sets are **byte-identical** across both modes (per-request
  SHA-1 digests over ids + float64 distance bytes);
* under an impossible deadline, **zero** requests come back as results
  — every one is an explicit ``deadline_exceeded``.

Writes ``BENCH_serve.json`` at the repo root and appends one entry to
``BENCH_history.jsonl`` for the ``repro perf check`` regression gate.
"""

import json
from pathlib import Path

import numpy as np
import pytest

from repro.datasets.generators import random_walks
from repro.engine import QueryEngine
from repro.serve import QBHService
from repro.serve.loadgen import (
    direct_dispatch,
    parity_mismatches,
    run_load,
    service_dispatch,
    zipf_workload,
)

from _harness import print_series, record_history

CLIENTS = 8
MAX_BATCH = 8
LINGER_MS = 2.0
ZIPF_S = 1.3
KNN_K = 5
EPSILON = 4.0

OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_serve.json"


def _workload(scale):
    if scale.name == "smoke":
        corpus_size, length, total, pool = 200, 64, 64, 16
    else:
        corpus_size, length, total, pool = 800, 128, 160, 32
    corpus = random_walks(corpus_size, length, seed=51)
    rng = np.random.default_rng(52)
    queries = [corpus[i % corpus_size] + 0.15 * rng.normal(size=length)
               for i in range(pool)]
    specs = zipf_workload(total, pool, s=ZIPF_S, seed=53,
                          kinds=("knn", "range"), knn_k=KNN_K,
                          epsilon=EPSILON)
    engine = QueryEngine(list(corpus), delta=0.1)
    return engine, specs, queries, {
        "corpus_size": corpus_size, "length": length,
        "requests": total, "pool": pool,
    }


def _serve_run(engine, specs, queries):
    """One fresh service, one full closed-loop pass."""
    service = QBHService.from_engine(
        engine, max_batch=MAX_BATCH, linger_ms=LINGER_MS,
        cache_size=1024,
    )
    try:
        report = run_load(service_dispatch(service), specs, queries,
                          clients=CLIENTS, mode="service")
        report.saturation = service.saturation()
    finally:
        service.close()
    return report


@pytest.mark.benchmark(group="serve")
def test_serving_throughput_parity_and_deadlines(benchmark, scale):
    engine, specs, queries, shape = _workload(scale)

    direct = run_load(direct_dispatch(engine), specs, queries,
                      clients=CLIENTS, mode="direct")
    served = benchmark.pedantic(
        lambda: _serve_run(engine, specs, queries), rounds=2, iterations=1,
    )

    # --- exactness: byte-identical results across modes -------------
    mismatches = parity_mismatches(direct, served)
    assert mismatches == 0, f"{mismatches} digest mismatches vs direct"
    assert served.by_status == {"ok": served.completed}

    # --- throughput: the tentpole acceptance gate -------------------
    speedup = served.qps / direct.qps
    assert speedup >= 1.5, (
        f"micro-batching sustained only {speedup:.2f}x of direct "
        f"dispatch at {CLIENTS} clients (need >= 1.5x)"
    )

    # --- deadlines: a miss is an outcome, never a result ------------
    strict = QBHService.from_engine(
        engine, max_batch=MAX_BATCH, linger_ms=0.0, cache_size=0,
    )
    try:
        deadline_report = run_load(
            service_dispatch(strict, deadline_s=1e-7),
            specs[:CLIENTS * 2], queries, clients=CLIENTS,
            mode="service-strict-deadline",
        )
    finally:
        strict.close()
    violations = [r for r in deadline_report.records
                  if r.status == "deadline_exceeded" and r.digest is not None]
    assert violations == [], "deadline miss returned results"
    assert all(r.status == "deadline_exceeded"
               for r in deadline_report.records)

    direct_lat = direct.latency_percentiles()
    served_lat = served.latency_percentiles()
    saturation = served.saturation
    print_series(
        f"Serving at {CLIENTS} clients "
        f"({shape['requests']} reqs over {shape['pool']} queries, "
        f"zipf s={ZIPF_S}, corpus "
        f"{shape['corpus_size']}x{shape['length']})",
        {
            "mode": ["direct", "service"],
            "qps": [round(direct.qps, 1), round(served.qps, 1)],
            "p50_ms": [round(direct_lat["p50"] * 1e3, 2),
                       round(served_lat["p50"] * 1e3, 2)],
            "p95_ms": [round(direct_lat["p95"] * 1e3, 2),
                       round(served_lat["p95"] * 1e3, 2)],
            "speedup": ["1.0x", f"{speedup:.1f}x"],
        },
    )

    payload = {
        "workload": {
            **shape,
            "clients": CLIENTS,
            "max_batch": MAX_BATCH,
            "linger_ms": LINGER_MS,
            "zipf_s": ZIPF_S,
            "scale": scale.name,
        },
        "timings_ms": {
            "direct_wall": round(direct.wall_s * 1e3, 3),
            "service_wall": round(served.wall_s * 1e3, 3),
            "direct_p50": round(direct_lat["p50"] * 1e3, 3),
            "service_p50": round(served_lat["p50"] * 1e3, 3),
            "direct_p95": round(direct_lat["p95"] * 1e3, 3),
            "service_p95": round(served_lat["p95"] * 1e3, 3),
        },
        "throughput": {
            "direct_qps": round(direct.qps, 2),
            "service_qps": round(served.qps, 2),
            "speedup": round(speedup, 3),
        },
        "checks": {
            "parity_mismatches": mismatches,
            "deadline_violations_with_results": len(violations),
            "strict_deadline_misses": len(deadline_report.records),
            "speedup_gate": 1.5,
        },
        "saturation": saturation,
    }
    OUT_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    entry = record_history("serve", payload)
    print(f"\nwrote {OUT_PATH.name}; history entry at "
          f"{entry['timestamp']}" if "timestamp" in entry
          else f"\nwrote {OUT_PATH.name}")
