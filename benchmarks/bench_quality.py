"""Quality benchmark — recall under the hum-degradation scenario matrix.

Runs :func:`repro.qbh.quality.run_scenario_matrix` over a generated
corpus: every named error model in :mod:`repro.hum.degrade`
(transposition, tempo, note_drop, note_split, jitter) at three
severities, each query rendered from a known ground-truth melody and
scored by the rank the full system returns — plus the contour-string
baseline the paper compares against.

Asserted in-test, per the acceptance criteria:

* the matrix covers **>= 4 scenarios x >= 3 severities**;
* every recall/MRR value is a fraction in ``[0, 1]``;
* at the lowest severity the system's mean recall@10 stays **>= 0.8**
  — mild degradation must not lose the tune.

Writes ``BENCH_quality.json`` at the repo root and appends one entry
to ``BENCH_history.jsonl`` whose per-cell ``<scenario>@<sev>.recall_at_10``
metrics arm the ``repro perf check`` *recall floor* gate: a later PR
that drops a cell's recall beyond tolerance fails CI exactly like a
latency regression would.
"""

import json
from pathlib import Path

import pytest

from repro.music.corpus import generate_corpus, segment_corpus
from repro.qbh.quality import run_scenario_matrix
from repro.qbh.system import QueryByHummingSystem

from _harness import print_series, record_history

KNN_K = 10
SEED = 71

OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_quality.json"


def _system(scale):
    if scale.name == "smoke":
        songs, per_song, queries_per_cell = 6, 3, 2
    else:
        songs, per_song, queries_per_cell = 12, 4, 4
    melodies = segment_corpus(generate_corpus(songs, seed=SEED),
                              per_song=per_song, seed=SEED)
    system = QueryByHummingSystem(melodies, delta=0.1, normal_length=128)
    return system, queries_per_cell, {
        "songs": songs, "per_song": per_song, "db_size": len(melodies),
        "queries_per_cell": queries_per_cell, "k": KNN_K,
    }


@pytest.mark.benchmark(group="quality")
def test_scenario_matrix_recall_floor(benchmark, scale):
    system, queries_per_cell, shape = _system(scale)

    matrix = benchmark.pedantic(
        lambda: run_scenario_matrix(
            system, queries_per_cell=queries_per_cell, k=KNN_K, seed=SEED,
        ),
        rounds=1, iterations=1,
    )

    scenarios = sorted({cell.scenario for cell in matrix.cells})
    severities = sorted({cell.severity for cell in matrix.cells})
    assert len(scenarios) >= 4, f"matrix covers only {scenarios}"
    assert len(severities) >= 3, f"matrix covers only {severities}"

    for cell in matrix.cells:
        assert len(cell.ranks) == queries_per_cell
        for k in (1, 5, 10):
            assert 0.0 <= cell.recall(k) <= 1.0
        assert 0.0 <= cell.mrr <= 1.0
        assert 0.0 <= cell.contour_recall(10) <= 1.0

    low = min(severities)
    low_cells = [cell for cell in matrix.cells if cell.severity == low]
    low_recall = (sum(cell.recall(10) for cell in low_cells)
                  / len(low_cells))
    assert low_recall >= 0.8, (
        f"mean recall@10 at severity {low:g} is {low_recall:.2f} "
        f"(need >= 0.8): mild degradation lost the tune"
    )

    print_series(
        f"Scenario matrix over db of {shape['db_size']} "
        f"({queries_per_cell} queries/cell, top-{KNN_K})",
        {
            "scenario": [f"{c.scenario}@{c.severity:g}"
                         for c in matrix.cells],
            "r@10": [round(c.recall(10), 2) for c in matrix.cells],
            "mrr": [round(c.mrr, 2) for c in matrix.cells],
            "contour r@10": [round(c.contour_recall(10), 2)
                             for c in matrix.cells],
            "p50_ms": [round(c.to_dict()["p50_ms"], 2)
                       for c in matrix.cells],
        },
    )

    timings = {}
    for cell in matrix.cells:
        key = f"{cell.scenario}@{cell.severity:g}"
        row = cell.to_dict()
        timings[f"{key}.p50_ms"] = round(row["p50_ms"], 3)
        timings[f"{key}.recall_at_10"] = round(row["recall_at_10"], 4)
    payload = {
        "workload": {**shape, "scale": scale.name,
                     "severities": [f"{s:g}" for s in severities]},
        "timings_ms": timings,
        "scenarios": [cell.to_dict() for cell in matrix.cells],
        "checks": {
            "scenarios_covered": len(scenarios),
            "severities_covered": len(severities),
            "low_severity_mean_recall_at_10": round(low_recall, 4),
            "recall_floor_gate": 0.8,
        },
    }
    OUT_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    record_history("quality", payload)
    print(f"\nwrote {OUT_PATH.name}")
