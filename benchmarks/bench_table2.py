"""Table 2 — retrieval quality: time-series approach vs contour approach.

Paper setup: 50 Beatles songs segmented into 1000 melodies of 15-30
notes; 20 hum queries by better singers; for each query, the rank of
the intended melody under (a) the DTW time-series approach and (b) the
note-contour + edit-distance approach fed by automatic note
segmentation.  Paper result: time series 16/20 at rank 1 and nothing
beyond rank 5; contour 2/20 at rank 1 and 14/20 beyond rank 10.

The reproduction target is the *gap*: the time-series approach puts
nearly every query in the top ranks while the contour approach, hurt
by note segmentation errors, scatters far down.  Logic:
``repro.experiments.run_table2``.
"""

import pytest

from repro.experiments import run_table2
from repro.qbh.evaluation import format_rank_tables


@pytest.mark.benchmark(group="table2")
def test_table2_quality(benchmark, scale):
    ts_table, ct_table = benchmark.pedantic(
        run_table2, args=(scale,), rounds=1, iterations=1
    )
    print()
    print(format_rank_tables(
        [ts_table, ct_table],
        title=f"Table 2: melodies correctly retrieved ({scale.table_queries} "
              f"better-singer queries, {scale.name} scale)",
    ))
    # Shape assertions (the paper's qualitative claims).
    assert ts_table.top1 >= ct_table.top1
    assert ts_table.in_top(5) >= ct_table.in_top(5)
