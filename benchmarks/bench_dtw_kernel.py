"""DTW kernel benchmark — scalar loop vs wavefront vs batched wavefront.

The refinement workload behind every query: one query against a block
of surviving candidates, banded DTW each (n = 256, k = 16 — the
paper's normal-form geometry at delta ≈ 0.13).  Three ways to run it:

* ``scalar``      — the reference per-cell Python loop, one pair at a
  time (the ``"scalar"`` backend's batch path);
* ``vectorized``  — the anti-diagonal wavefront, still one pair at a
  time (honest numbers: NumPy dispatch overhead on ~k-cell diagonals
  makes this no faster than the scalar loop at small k);
* ``batched``     — the same wavefront over all candidates at once
  (the ``"vectorized"`` backend's batch path, what the engine and the
  index actually call): the wavefront spans ``band x B`` cells and the
  dispatch overhead amortises away.

Asserted in-test, per the acceptance criteria: the batched wavefront
is at least 5x faster than the scalar loop, distances agree to 1e-9
across all three paths, and an epsilon survivor set computed under
early-abandon cutoffs is identical.  Writes ``BENCH_dtw_kernel.json``
at the repo root.
"""

import json
import time
from pathlib import Path

import numpy as np
import pytest

from repro.datasets.generators import random_walks
from repro.dtw.distance import ldtw_distance_batch
from repro.dtw.kernels import KernelStats, get_kernel
from repro.obs import Observability

from _harness import print_series, record_history

LENGTH = 256
BAND = 16
N_SURVIVORS = 50        # epsilon admits about this many candidates

OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_dtw_kernel.json"


def _workload(scale):
    candidates = 500 if scale.name == "smoke" else 10_000
    corpus = random_walks(candidates, LENGTH, seed=31)
    query = corpus[17] + 0.4 * np.random.default_rng(32).normal(size=LENGTH)
    return query, corpus


def _time(fn):
    started = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - started


@pytest.mark.benchmark(group="dtw-kernel")
def test_kernel_backends_speedup_and_parity(benchmark, scale):
    query, corpus = _workload(scale)
    total = corpus.shape[0]

    scalar_dists, scalar_s = _time(lambda: ldtw_distance_batch(
        query, corpus, BAND, backend="scalar"
    ))

    # Single-pair wavefront, honestly measured as a per-pair loop.
    vec = get_kernel("vectorized")
    refine = vec.prepare(
        np.ascontiguousarray(query, dtype=np.float64), BAND
    )
    rows = np.ascontiguousarray(corpus, dtype=np.float64)
    pair_costs, pair_s = _time(lambda: np.array(
        [refine(rows[i]) for i in range(total)]
    ))
    pair_dists = np.sqrt(pair_costs)

    def batched():
        return ldtw_distance_batch(query, corpus, BAND,
                                   backend="vectorized")

    batch_dists = benchmark.pedantic(batched, rounds=3, iterations=1)
    _, batch_s = _time(batched)

    # Identical distances across all three paths.
    max_diff = float(np.max(np.abs(batch_dists - scalar_dists)))
    np.testing.assert_allclose(batch_dists, scalar_dists, atol=1e-9)
    np.testing.assert_allclose(pair_dists, scalar_dists, atol=1e-9)

    # Identical epsilon survivor sets under early-abandon cutoffs.
    # Kernel work counters ride along: the bounded run's stats expose
    # the cells actually computed and the columns compacted away by
    # the all-dead early exits, i.e. what early abandoning saved.
    epsilon = float(np.partition(scalar_dists, N_SURVIVORS)[N_SURVIVORS])
    survivors = {}
    bounded_s = {}
    kernel_stats = {"full": KernelStats(), "bounded": KernelStats()}
    full_vec = ldtw_distance_batch(query, corpus, BAND,
                                   backend="vectorized",
                                   kernel_stats=kernel_stats["full"])
    abandoned = 0
    for backend in ("scalar", "vectorized"):
        ks = kernel_stats["bounded"] if backend == "vectorized" else None
        dists, elapsed = _time(lambda b=backend, s=ks: ldtw_distance_batch(
            query, corpus, BAND, upper_bound=epsilon, backend=b,
            kernel_stats=s,
        ))
        survivors[backend] = set(np.flatnonzero(dists <= epsilon).tolist())
        bounded_s[backend] = elapsed
        if backend == "vectorized":
            abandoned = int(np.count_nonzero(np.isinf(dists)))
    truth = set(np.flatnonzero(scalar_dists <= epsilon).tolist())
    assert survivors["scalar"] == truth
    assert survivors["vectorized"] == truth
    np.testing.assert_allclose(full_vec, scalar_dists, atol=1e-9)

    obs = Observability()
    obs.record_kernel(kernel_stats["full"])
    obs.record_kernel(kernel_stats["bounded"])

    speedup_batch = scalar_s / batch_s
    speedup_pair = scalar_s / pair_s
    print_series(
        f"Banded-DTW kernels ({total} candidates, n={LENGTH}, k={BAND})",
        {
            "path": ["scalar loop", "wavefront loop", "batched wavefront"],
            "ms": [round(scalar_s * 1e3, 1), round(pair_s * 1e3, 1),
                   round(batch_s * 1e3, 1)],
            "speedup": ["1.0x", f"{speedup_pair:.1f}x",
                        f"{speedup_batch:.1f}x"],
        },
    )

    payload = {
        "workload": {
            "candidates": total,
            "length": LENGTH,
            "band": BAND,
            "scale": scale.name,
        },
        "timings_ms": {
            "scalar_loop": round(scalar_s * 1e3, 3),
            "vectorized_pairwise": round(pair_s * 1e3, 3),
            "vectorized_batch": round(batch_s * 1e3, 3),
            "scalar_loop_bounded": round(bounded_s["scalar"] * 1e3, 3),
            "vectorized_batch_bounded":
                round(bounded_s["vectorized"] * 1e3, 3),
        },
        "speedups": {
            "vectorized_pairwise": round(speedup_pair, 2),
            "vectorized_batch": round(speedup_batch, 2),
        },
        "checks": {
            "max_abs_distance_diff": max_diff,
            "survivor_sets_identical": True,
            "epsilon": epsilon,
            "survivors": len(truth),
        },
        "kernel_stats": {
            "full": kernel_stats["full"].as_dict(),
            "bounded": kernel_stats["bounded"].as_dict(),
            "abandon_rate_bounded": abandoned / total,
            "cells_saved_by_abandoning": (
                kernel_stats["full"].cells - kernel_stats["bounded"].cells
            ),
        },
        "metrics": obs.metrics.snapshot(),
    }
    OUT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    record_history("dtw_kernel", payload)

    assert speedup_batch >= 5.0, (
        f"batched wavefront only {speedup_batch:.1f}x over the scalar loop"
    )


@pytest.mark.benchmark(group="dtw-kernel")
def test_kernel_batch_cutoffs_speed_exactness(benchmark, scale):
    """Early abandoning with a tight cutoff never changes a survivor."""
    query, corpus = _workload(scale)
    full = ldtw_distance_batch(query, corpus, BAND)
    cutoff = float(np.partition(full, 10)[10])

    bounded = benchmark.pedantic(
        lambda: ldtw_distance_batch(query, corpus, BAND,
                                    upper_bound=cutoff),
        rounds=3, iterations=1,
    )
    keep = full <= cutoff
    np.testing.assert_allclose(bounded[keep], full[keep], atol=1e-9)
    assert np.all(np.isinf(bounded[~keep]) | (bounded[~keep] > cutoff))
