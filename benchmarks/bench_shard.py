"""Sharded-serving benchmark — throughput scaling across shard counts.

Closed-loop load test of :class:`repro.serve.QBHService` backed by the
multi-process shard tier (:mod:`repro.shard`), against the same service
serving from a single in-process engine (the PR-5 baseline).  The GIL
caps the single-process service at roughly one core of kernel time;
the shard tier exists to turn additional cores into additional
throughput, and this benchmark records how well it does.

The result cache is disabled for the scaling runs: the Zipf workload's
repeats would otherwise be answered from memory and the measurement
would say nothing about kernel scaling.

Asserted in-test:

* results at every shard count are **byte-identical** to direct
  single-engine dispatch (per-request SHA-1 digests) — always, at any
  scale, on any machine;
* every request completes ``ok`` — a worker fleet must not shed or
  fail under plain load;
* on a machine with >= 4 cores at full scale, throughput at the
  core-count shard level must reach **2.5x** the unsharded service and
  per-shard efficiency at 4 shards must stay above **60%** (the
  tentpole acceptance gates); with 2-3 cores a conservative 1.2x
  non-regression gate applies.  Single-core machines and smoke runs
  record the scaling curve without gating it — there is nothing to
  scale onto.

Writes ``BENCH_shard.json`` at the repo root (with a ``scaling``
section validated by ``tools/check_bench_schema.py``) and appends one
entry to ``BENCH_history.jsonl`` for the ``repro perf check`` gate.
"""

import json
import os
from pathlib import Path

import numpy as np
import pytest

from repro.datasets.generators import random_walks
from repro.engine import QueryEngine
from repro.serve import QBHService
from repro.serve.loadgen import (
    direct_dispatch,
    parity_mismatches,
    run_load,
    service_dispatch,
    zipf_workload,
)

from _harness import print_series, record_history

CLIENTS = 8
MAX_BATCH = 8
LINGER_MS = 2.0
ZIPF_S = 1.3
KNN_K = 5
EPSILON = 4.0

OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_shard.json"


def _workload(scale):
    if scale.name == "smoke":
        corpus_size, length, total, pool = 200, 64, 64, 16
    else:
        corpus_size, length, total, pool = 800, 128, 160, 32
    corpus = random_walks(corpus_size, length, seed=61)
    rng = np.random.default_rng(62)
    queries = [corpus[i % corpus_size] + 0.15 * rng.normal(size=length)
               for i in range(pool)]
    specs = zipf_workload(total, pool, s=ZIPF_S, seed=63,
                          kinds=("knn", "range"), knn_k=KNN_K,
                          epsilon=EPSILON)
    engine = QueryEngine(list(corpus), delta=0.1)
    return engine, specs, queries, {
        "corpus_size": corpus_size, "length": length,
        "requests": total, "pool": pool,
    }


def _serve_run(engine, specs, queries, shards):
    """One fresh (possibly sharded) service, one closed-loop pass."""
    service = QBHService.from_engine(
        engine, shards=shards, max_batch=MAX_BATCH, linger_ms=LINGER_MS,
        cache_size=0,
    )
    try:
        report = run_load(service_dispatch(service), specs, queries,
                          clients=CLIENTS, mode=f"shards-{shards}")
        report.saturation = service.saturation()
    finally:
        service.close()
    return report


@pytest.mark.benchmark(group="shard")
def test_shard_scaling_parity_and_efficiency(benchmark, scale):
    engine, specs, queries, shape = _workload(scale)
    cpus = os.cpu_count() or 1

    direct = run_load(direct_dispatch(engine), specs, queries,
                      clients=CLIENTS, mode="direct")

    counts = sorted({1, 2, 4, cpus})
    reports = {}
    for n in counts[:-1]:
        reports[n] = _serve_run(engine, specs, queries, n)
    top = counts[-1]
    reports[top] = benchmark.pedantic(
        lambda: _serve_run(engine, specs, queries, top),
        rounds=2, iterations=1,
    )

    # --- exactness: byte-identical at every shard count -------------
    for n in counts:
        mismatches = parity_mismatches(direct, reports[n])
        assert mismatches == 0, (
            f"{mismatches} digest mismatches vs direct at {n} shards"
        )
        assert reports[n].by_status == {"ok": reports[n].completed}, (
            f"non-ok outcomes at {n} shards: {reports[n].by_status}"
        )

    base_qps = reports[1].qps
    scaling = []
    for n in counts:
        qps = reports[n].qps
        lat = reports[n].latency_percentiles()
        scaling.append({
            "shards": n,
            "qps": round(qps, 2),
            "qps_per_shard": round(qps / n, 2),
            "efficiency": round(qps / (n * base_qps), 3) if base_qps else 0.0,
            "p50_ms": round(lat["p50"] * 1e3, 3),
            "p95_ms": round(lat["p95"] * 1e3, 3),
        })

    # --- scaling gates, sized to the machine ------------------------
    # A single core has nothing to scale onto and smoke workloads are
    # too small to time reliably; both still assert parity above.
    gated = cpus >= 2 and scale.name != "smoke"
    if gated and cpus >= 4:
        speedup = reports[top].qps / base_qps
        assert speedup >= 2.5, (
            f"{top} shards reached only {speedup:.2f}x of the "
            f"unsharded service on {cpus} cores (need >= 2.5x)"
        )
        four = next(p for p in scaling if p["shards"] == 4)
        assert four["efficiency"] >= 0.6, (
            f"per-shard efficiency at 4 shards is {four['efficiency']:.0%} "
            f"(need >= 60%)"
        )
    elif gated:
        assert reports[top].qps >= 1.2 * base_qps, (
            f"{top} shards did not beat the unsharded service by 1.2x "
            f"on {cpus} cores"
        )

    print_series(
        f"Shard scaling at {CLIENTS} clients on {cpus} cores "
        f"({shape['requests']} reqs over {shape['pool']} queries, "
        f"corpus {shape['corpus_size']}x{shape['length']}, "
        f"gates {'on' if gated else 'off'})",
        {
            "shards": [p["shards"] for p in scaling],
            "qps": [p["qps"] for p in scaling],
            "per_shard": [p["qps_per_shard"] for p in scaling],
            "efficiency": [f"{p['efficiency']:.0%}" for p in scaling],
            "p50_ms": [p["p50_ms"] for p in scaling],
        },
    )

    payload = {
        "workload": {
            **shape,
            "clients": CLIENTS,
            "max_batch": MAX_BATCH,
            "linger_ms": LINGER_MS,
            "zipf_s": ZIPF_S,
            "cpu_count": cpus,
            "shard_counts": counts,
            "scale": scale.name,
        },
        "timings_ms": {
            "direct_wall": round(direct.wall_s * 1e3, 3),
            **{f"shards{n}_wall": round(reports[n].wall_s * 1e3, 3)
               for n in counts},
        },
        "scaling": scaling,
        "checks": {
            "parity_mismatches": 0,
            "gates_applied": gated,
            "speedup_gate": 2.5 if cpus >= 4 else (1.2 if cpus >= 2 else None),
            "efficiency_gate": 0.6 if cpus >= 4 else None,
        },
    }
    OUT_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    record_history("shard", payload)
    print(f"\nwrote {OUT_PATH.name}")
