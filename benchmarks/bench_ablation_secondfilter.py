"""Ablation — the paper's two-stage filter cascade (Section 5.2).

"LB will be used as a second filter after the indexing scheme,
Keogh_PAA or New_PAA, returns a superset of answer."  This bench
measures what that second, full-dimension envelope check buys: the
fraction of index candidates that skip the exact DTW refinement, per
warping width, for both envelope transforms.  Logic:
``repro.experiments.run_second_filter_ablation``.
"""

import pytest

from repro.experiments import run_second_filter_ablation

from _harness import print_series


@pytest.mark.benchmark(group="ablation")
def test_ablation_second_filter(benchmark, scale):
    db_size = min(scale.fig10_db, 5000)
    rows = benchmark.pedantic(
        run_second_filter_ablation, args=(db_size, scale.fig8_queries),
        rounds=1, iterations=1,
    )
    print_series(
        f"Ablation: second-filter (full-dim LB) savings per range query "
        f"({db_size} series, eps=0.5*sqrt(n))",
        rows,
    )
    for c, p, e in zip(rows["candidates"], rows["pruned_by_LB"],
                       rows["exact_dtw"]):
        # Each column is independently rounded to 0.1.
        assert abs(c - (p + e)) <= 0.21
    keogh_rows = [i for i, t in enumerate(rows["transform"])
                  if t == "Keogh_PAA"]
    total_c = sum(rows["candidates"][i] for i in keogh_rows)
    total_p = sum(rows["pruned_by_LB"][i] for i in keogh_rows)
    if total_c > 0:
        assert total_p / total_c > 0.2
