"""Figure 7 — tightness vs warping width on random walks.

Paper setup: random-walk series of length 256, mean-subtracted, PAA/
DFT/SVD reduced to 4 dimensions; warping widths 0 to 0.1; each point
averaged over 500 pairs.  Methods: LB (full-dim ceiling), New_PAA,
Keogh_PAA, SVD, DFT (the latter two via the sign-split envelope
transform — the paper's general framework).

Paper result: at width 0 (Euclidean distance) SVD is the tightest
reduction; as the width grows, New_PAA overtakes DFT and SVD (its
coefficients are all positive), and New_PAA > Keogh_PAA everywhere.
Logic: ``repro.experiments.run_fig7``.
"""

import numpy as np
import pytest

from repro.experiments import FIG6_DIMS, FIG6_LENGTH, run_fig7

from _harness import print_series


@pytest.mark.benchmark(group="fig7")
def test_fig7_tightness_vs_width(benchmark, scale):
    rows = benchmark.pedantic(run_fig7, args=(scale,), rounds=1, iterations=1)
    print_series(
        f"Figure 7: mean tightness vs warping width, random walks, "
        f"n={FIG6_LENGTH} -> N={FIG6_DIMS} ({scale.fig7_pairs} pairs/point, "
        f"{scale.name} scale)",
        rows,
    )
    lb = np.array(rows["LB"])
    new = np.array(rows["New_PAA"])
    keogh = np.array(rows["Keogh_PAA"])
    svd = np.array(rows["SVD"])
    # Shape: LB is the ceiling; New_PAA >= Keogh_PAA everywhere; at
    # width 0 SVD is the best reduction; at the largest width New_PAA
    # beats SVD and DFT.
    assert np.all(lb >= new - 1e-9)
    assert np.all(new >= keogh - 1e-9)
    assert svd[0] >= max(rows["New_PAA"][0], rows["DFT"][0],
                         rows["Keogh_PAA"][0]) - 1e-9
    assert new[-1] >= svd[-1] - 1e-9
    assert new[-1] >= rows["DFT"][-1] - 1e-9
