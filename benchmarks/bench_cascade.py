"""Engine benchmark — vectorised filter cascade vs per-pair scalar loop.

The tentpole claim of the engine layer: evaluating an entire corpus
through batched lower-bound matrices (`repro.engine.QueryEngine`) beats
the textbook one-candidate-at-a-time loop by a wide margin *without
changing the answer*.  The scalar baseline below is the loop every
GEMINI description implies — per candidate: scalar LB_Keogh against the
query envelope, then a scalar banded DTW on survivors.

Asserted in-test, per the acceptance criteria:

* identical result sets to the brute-force ground truth — zero false
  negatives, zero false positives — for both the scalar loop and the
  cascade;
* the vectorised cascade is at least 5x faster than the scalar loop on
  a 10k-series corpus;
* the disabled observability facade's hook cost is a small fraction of
  the query time, and enabling metrics does not change any answer.

Writes ``BENCH_cascade.json`` (timings plus a metrics-registry
snapshot of the instrumented run) at the repo root.
"""

import json
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core.envelope import envelope_distance, k_envelope
from repro.datasets.generators import random_walks
from repro.dtw.distance import ldtw_distance, ldtw_distance_batch
from repro.engine import QueryEngine
from repro.obs import OBS_DISABLED, Observability

from _harness import print_series, record_history

DB_SIZE = 10_000
LENGTH = 128
DELTA = 0.1
N_RESULTS = 50          # epsilon is set to admit about this many answers

OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_cascade.json"


def scalar_range_scan(corpus, query, band, epsilon):
    """The per-pair baseline: scalar LB filter, then scalar DTW."""
    q_env = k_envelope(query, band)
    results = []
    lb_survivors = 0
    for row in range(corpus.shape[0]):
        if envelope_distance(corpus[row], q_env) > epsilon:
            continue
        lb_survivors += 1
        dist = ldtw_distance(query, corpus[row], band,
                             upper_bound=epsilon)
        if dist <= epsilon:
            results.append((row, float(dist)))
    results.sort(key=lambda pair: pair[1])
    return results, lb_survivors


@pytest.mark.benchmark(group="engine")
def test_cascade_vs_scalar_loop(benchmark):
    corpus = random_walks(DB_SIZE, LENGTH, seed=17)
    query = corpus[123] + 0.4 * np.random.default_rng(18).normal(size=LENGTH)
    engine = QueryEngine(corpus, delta=DELTA)
    band = engine.band

    # Ground truth by unfiltered batch DP; epsilon from its quantile so
    # the answer set is non-trivial whatever the seed produced.
    truth_dists = ldtw_distance_batch(query, corpus, band)
    epsilon = float(np.partition(truth_dists, N_RESULTS)[N_RESULTS])
    truth = {i for i in range(DB_SIZE) if truth_dists[i] <= epsilon}

    started = time.perf_counter()
    scalar_results, lb_survivors = scalar_range_scan(
        corpus, query, band, epsilon
    )
    scalar_s = time.perf_counter() - started

    def cascade_query():
        return engine.range_search(query, epsilon)

    results, stats = benchmark.pedantic(cascade_query, rounds=3,
                                        iterations=1)
    cascade_s = stats.total_time_s

    # Zero false negatives (and no false positives), both paths.
    assert {i for i, _ in scalar_results} == truth
    assert {i for i, _ in results} == truth
    for row, dist in results:
        assert dist == pytest.approx(truth_dists[row], abs=1e-9)

    speedup = scalar_s / cascade_s
    print_series(
        f"Vectorised cascade vs per-pair scalar loop "
        f"({DB_SIZE} series, length {LENGTH}, delta {DELTA})",
        {
            "path": ["scalar loop", "cascade"],
            "lb_survivors": [lb_survivors, stats.exact_candidates],
            "exact_dtw": [lb_survivors, stats.dtw_computations],
            "ms": [round(scalar_s * 1e3, 1),
                   round(cascade_s * 1e3, 1)],
            "speedup": ["1.0x", f"{speedup:.1f}x"],
        },
    )
    print()
    print(stats.summary())

    # One instrumented re-run of the same query: identical answer, and
    # its metrics snapshot rides along in the results file.
    obs = Observability()
    engine.obs = obs
    try:
        obs_results, obs_stats = engine.range_search(query, epsilon)
    finally:
        engine.obs = OBS_DISABLED
    assert obs_results == results
    payload = {
        "workload": {
            "db_size": DB_SIZE,
            "length": LENGTH,
            "delta": DELTA,
            "epsilon": epsilon,
            "results": len(results),
        },
        "timings_ms": {
            "scalar_loop": round(scalar_s * 1e3, 3),
            "cascade": round(cascade_s * 1e3, 3),
            "cascade_instrumented": round(obs_stats.total_time_s * 1e3, 3),
        },
        "speedup": round(speedup, 2),
        "cascade_stats": stats.to_dict(),
        "metrics": obs.metrics.snapshot(),
    }
    OUT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    record_history("cascade", payload)

    assert speedup >= 5.0, (
        f"cascade only {speedup:.1f}x faster than the scalar loop"
    )


@pytest.mark.benchmark(group="engine")
def test_cascade_knn_matches_ground_truth_at_scale(benchmark):
    corpus = random_walks(2_000, LENGTH, seed=23)
    query = corpus[77] + 0.4 * np.random.default_rng(24).normal(size=LENGTH)
    engine = QueryEngine(corpus, delta=DELTA)

    results, stats = benchmark.pedantic(
        lambda: engine.knn(query, 10), rounds=3, iterations=1
    )
    truth = engine.ground_truth_knn(query, 10)
    assert [i for i, _ in results] == [i for i, _ in truth]
    np.testing.assert_allclose(
        [d for _, d in results], [d for _, d in truth], atol=1e-9
    )
    # The cascade must do far less exact work than a full scan.
    assert stats.dtw_computations < len(engine) // 4


@pytest.mark.benchmark(group="engine")
def test_disabled_observability_overhead(benchmark):
    """Disabled-facade hook cost stays below 5% of a small query's time.

    The engine calls the observability facade unconditionally; with the
    shared disabled facade every call is an immediate return.  A/B
    timing two full engine runs is too noisy at CI granularity to bound
    a few percent, so this measures the thing itself: the per-query
    number of facade touches, times their measured no-op cost, must be
    under 5% of the measured query time.  Enabling metrics (no tracer)
    must also leave the answer bit-identical.
    """
    corpus = random_walks(2_000, LENGTH, seed=29)
    query = corpus[42] + 0.4 * np.random.default_rng(30).normal(size=LENGTH)
    engine = QueryEngine(corpus, delta=DELTA)

    results, stats = benchmark.pedantic(
        lambda: engine.knn(query, 10), rounds=3, iterations=1
    )
    query_s = min(
        engine.knn(query, 10)[1].total_time_s for _ in range(5)
    )

    # Facade touches per knn query: one span per stage, a refine +
    # kernel span pair per refinement chunk (plus the seed chunk), the
    # root span, and the record hook.
    chunks = stats.dtw_computations // engine.refine_chunk + 2
    hook_calls = len(stats.stages) + 2 * chunks + 1

    reps = 200
    started = time.perf_counter()
    for _ in range(reps):
        for _ in range(hook_calls):
            with OBS_DISABLED.span("x", rows=1):
                pass
        OBS_DISABLED.record_cascade_query("knn", stats, None)
    noop_s = (time.perf_counter() - started) / reps

    overhead = noop_s / query_s
    print(f"\ndisabled-facade hooks: {hook_calls + 1} calls/query, "
          f"{noop_s * 1e6:.1f} us total = {overhead:.2%} of the "
          f"{query_s * 1e3:.2f} ms query")
    assert overhead < 0.05, (
        f"no-op observability hooks cost {overhead:.1%} of the query"
    )

    # Metrics-enabled serving returns the identical answer.
    engine.obs = Observability()
    try:
        obs_results, _ = engine.knn(query, 10)
    finally:
        engine.obs = OBS_DISABLED
    assert obs_results == results
