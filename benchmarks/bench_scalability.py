"""Scalability — query cost vs database size.

The paper's abstract claims "the net result is high scalability"; its
Figures 9-10 fix the database size and sweep the warping width.  This
bench completes the picture: at a fixed width (the paper's sweet spot
0.1), how do page accesses grow as the database grows, for the R*-tree
warping index vs a linear scan?

Expected: scan pages grow linearly by construction; index pages grow
sublinearly (the tree prunes whole subtrees), and the gap widens with
size — the operational meaning of "scalable".  Logic:
``repro.experiments.run_size_scaling``.
"""

import numpy as np
import pytest

from repro.experiments import run_size_scaling

from _harness import print_series


@pytest.mark.benchmark(group="scalability")
def test_scalability_with_database_size(benchmark, scale):
    rows = benchmark.pedantic(
        run_size_scaling, args=(scale,), rounds=1, iterations=1
    )
    print_series(
        "Scalability: mean page accesses per range query vs database "
        "size (delta=0.1, eps=0.4*sqrt(n))",
        rows,
    )
    pages_r = np.array(rows["pages_rstar"], dtype=float)
    pages_s = np.array(rows["pages_scan"], dtype=float)
    # Scan cost is linear in size; the index must grow strictly slower.
    scan_growth = pages_s[-1] / pages_s[0]
    index_growth = pages_r[-1] / max(pages_r[0], 1.0)
    assert index_growth < scan_growth
    assert pages_r[-1] < pages_s[-1]
