"""Figure 10 — scalability on a large random-walk database.

Paper setup: 50,000 random-walk series of length 128, indexed by 8
reduced dimensions in an R*-tree; same sweep and measures as Figure 9.

Paper result: same shape as the music database — New_PAA retrieves
fewer candidates and touches fewer pages at every width, with the gap
widening as the width grows.

Default scale uses a reduced database; REPRO_SCALE=full runs 50,000.
Logic: ``repro.experiments.run_fig10``.
"""

import pytest

from repro.experiments import THRESHOLDS, run_fig10

from _harness import print_series


@pytest.mark.benchmark(group="fig10")
def test_fig10_large_random_walk_database(benchmark, scale):
    rows, results = benchmark.pedantic(
        run_fig10, args=(scale,), rounds=1, iterations=1
    )
    print_series(
        f"Figure 10: candidates and page accesses, random-walk database "
        f"of {scale.fig10_db} series ({scale.fig8_queries} queries/point, "
        f"{scale.name} scale)",
        rows,
    )
    for (delta, eps), point in results.items():
        assert point["New"][0] <= point["Keogh"][0] + 1e-9
    if scale.fig10_db < 1000:
        return  # gap-widening is statistical; needs a real workload
    # The advantage should widen with the warping width.
    for eps in THRESHOLDS:
        small_gap = (
            results[(scale.sweep_deltas[0], eps)]["Keogh"][0]
            - results[(scale.sweep_deltas[0], eps)]["New"][0]
        )
        large_gap = (
            results[(scale.sweep_deltas[-1], eps)]["Keogh"][0]
            - results[(scale.sweep_deltas[-1], eps)]["New"][0]
        )
        assert large_gap >= small_gap - 1e-9
