"""Figure 8 — candidates retrieved vs warping width (melody database).

Paper setup: the 1000-melody Beatles database; range queries with
thresholds eps in {0.2, 0.8} (range n*eps in the paper's per-point
units — here realised as radius eps * sqrt(n) on the normal forms);
warping width swept from 0.02 to 0.2; number of candidates retrieved
by the Keogh_PAA index vs the New_PAA index.

Paper result: candidates grow with the warping width for both, but
New_PAA retrieves up to ~10x fewer.  Logic:
``repro.experiments.run_fig8``.
"""

import pytest

from repro.experiments import THRESHOLDS, run_fig8

from _harness import print_series


@pytest.mark.benchmark(group="fig8")
def test_fig8_candidates_melody_db(benchmark, scale):
    rows, results = benchmark.pedantic(
        run_fig8, args=(scale,), rounds=1, iterations=1
    )
    print_series(
        f"Figure 8: mean candidates retrieved, melody database "
        f"({scale.corpus_songs * scale.corpus_per_song} melodies, "
        f"{scale.fig8_queries} queries/point, {scale.name} scale)",
        rows,
    )
    # Shape: New_PAA never retrieves more candidates than Keogh_PAA,
    # and counts grow with the warping width.
    for (delta, eps), point in results.items():
        assert point["New"][0] <= point["Keogh"][0] + 1e-9
    for eps in THRESHOLDS:
        first = results[(scale.sweep_deltas[0], eps)]["Keogh"][0]
        last = results[(scale.sweep_deltas[-1], eps)]["Keogh"][0]
        assert last >= first
