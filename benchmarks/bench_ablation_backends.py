"""Ablation — index backend comparison (R*-tree, grid, cluster, scan).

The paper indexes with an R*-tree (via LibGist) and cites the grid
file as an alternative.  This bench compares page accesses across four
backends — the R*-tree, the grid file, a k-means cluster index, and a
linear scan — for the same range-query workload, confirming the
framework's backend neutrality (identical answers, asserted) and
ranking their costs.  Logic:
``repro.experiments.run_backend_ablation``.
"""

import pytest

from repro.experiments import run_backend_ablation

from _harness import print_series


@pytest.mark.benchmark(group="ablation")
def test_ablation_index_backends(benchmark, scale):
    db_size = min(scale.fig10_db, 5000)
    rows, answers = benchmark.pedantic(
        run_backend_ablation, args=(db_size, scale.fig8_queries),
        rounds=1, iterations=1,
    )
    print_series(
        f"Ablation: mean page accesses per range query by backend "
        f"({db_size} series)",
        rows,
    )
    # All backends agree on the candidate sets (same geometry).
    assert (answers["rstar"] == answers["grid"] == answers["cluster"]
            == answers["linear"])
    pages = dict(zip(rows["backend"], rows["pages_per_query"]))
    # The hierarchical/partitioned indexes beat a full scan — meaningful
    # only once the database spans many pages.
    if db_size >= 1000:
        assert pages["rstar"] < pages["linear"]
        assert pages["cluster"] < pages["linear"]
