"""Extension — APCA (adaptive frames) vs New_PAA (fixed frames).

APCA is cited by the paper among usable dimensionality reductions but
is *not linear*, so it falls outside the Lemma 3 framework; its DTW
bound here averages the query envelope over each candidate's own
segmentation (container-invariant by convexity).  The comparison is at
equal memory: APCA spends 2 floats per segment (value + boundary), so
M segments are compared against 2M PAA frames.

Finding: under DTW the warping envelope smears step edges over ±k
samples, which largely neutralises APCA's adaptive-boundary advantage
— the two bounds end up within a few percent even on steppy data
(Shuttle, Ph_Data).  This supports the paper's choice of plain PAA for
its warping index: adaptivity buys little once envelopes enter.
"""

import numpy as np
import pytest

from repro.core.apca import apca_approximate, apca_dtw_lb
from repro.core.envelope import k_envelope, warping_width_to_k
from repro.core.envelope_transforms import NewPAAEnvelopeTransform
from repro.core.lower_bounds import lb_envelope_transform, tightness
from repro.datasets.generators import make_dataset, random_walks
from repro.dtw.distance import ldtw_distance

from _harness import print_series

LENGTH = 256
SEGMENTS = 8            # APCA memory: 16 floats
PAA_FRAMES = 2 * SEGMENTS  # equal-memory PAA
DELTA = 0.1


def mean_tightness(data, k):
    new_paa = NewPAAEnvelopeTransform(LENGTH, PAA_FRAMES)
    totals = {"New_PAA": 0.0, "APCA": 0.0}
    pairs = 0
    count = data.shape[0]
    apcas = [apca_approximate(data[i], SEGMENTS) for i in range(count)]
    envelopes = [k_envelope(data[i], k) for i in range(count)]
    for i in range(count):
        for j in range(count):
            if i == j:
                continue
            true_dtw = ldtw_distance(data[i], data[j], k)
            if true_dtw == 0.0:
                continue
            pairs += 1
            # Envelope on the query (j), candidate i.
            lb_paa = lb_envelope_transform(
                new_paa, data[i], envelope=envelopes[j]
            )
            lb_apca = apca_dtw_lb(envelopes[j], apcas[i])
            totals["New_PAA"] += tightness(lb_paa, true_dtw)
            totals["APCA"] += tightness(lb_apca, true_dtw)
    return {m: totals[m] / max(pairs, 1) for m in totals}


def run_apca_ablation(n_series: int):
    k = warping_width_to_k(DELTA, LENGTH)
    rows = {"dataset": [], "New_PAA": [], "APCA": []}
    walk = random_walks(n_series, LENGTH, seed=31)
    workloads = {"Random_Walk": walk - walk.mean(axis=1, keepdims=True)}
    for name, key in (("Shuttle (steppy)", "Shuttle"),
                      ("Ph_Data (steppy)", "Ph_Data")):
        data = make_dataset(key, n_series, LENGTH, seed=2)
        workloads[name] = data - data.mean(axis=1, keepdims=True)
    for name, data in workloads.items():
        result = mean_tightness(data, k)
        rows["dataset"].append(name)
        rows["New_PAA"].append(round(result["New_PAA"], 3))
        rows["APCA"].append(round(result["APCA"], 3))
    return rows


@pytest.mark.benchmark(group="ablation")
def test_ablation_apca_vs_paa(benchmark, scale):
    rows = benchmark.pedantic(
        run_apca_ablation, args=(max(10, scale.fig6_series // 2),),
        rounds=1, iterations=1,
    )
    print_series(
        f"Extension: adaptive (APCA, {SEGMENTS} segments) vs fixed "
        f"(New_PAA, {PAA_FRAMES} frames) DTW bounds at equal memory",
        rows,
    )
    by_name = dict(zip(rows["dataset"], zip(rows["New_PAA"], rows["APCA"])))
    # On steppy data the adaptive segmentation should not lose.
    paa_t, apca_t = by_name["Shuttle (steppy)"]
    assert apca_t >= 0.8 * paa_t
