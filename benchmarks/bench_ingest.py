"""Streaming-ingest benchmark — columnar store build at corpus scale.

Three phases over the PR's new store/ingest subsystem:

1. **Bulk load** — one streaming pass builds a subsequence-kind store
   generation (10^4 windows at smoke scale, 10^5 at full) under a
   fixed staging-memory budget.  Gated: the builder's deterministic
   ``peak_buffer_bytes`` account must stay within the budget, the row
   count must match the window arithmetic exactly, and the sealed
   generation must pass ``CorpusStore.verify()`` (per-file SHA-256,
   shape, and envelope-bound checks).  ``ru_maxrss`` is recorded as
   informational context (it includes the interpreter + test harness).
2. **Query check** — the store-backed :class:`SubsequenceIndex` answers
   range queries over the float32 columns; a random sample of windows
   is re-scored with the exact banded-DTW kernel and every sampled
   window within epsilon must appear in the index answer — the
   zero-false-negative contract, gated at 0.
3. **Live swaps** — a :class:`QBHService` over a melody-kind store
   serves while an :class:`IngestCoordinator` performs three
   ingest-triggered generation swaps; after each swap the served
   answers must be byte-identical to a fresh index opened on the new
   generation, with ``mutations`` bumped exactly once per swap.

Writes ``BENCH_ingest.json`` (with an ``ingest`` section validated by
``tools/check_bench_schema.py --section ingest``) and appends one entry
to ``BENCH_history.jsonl`` for the ``repro perf check`` gate.
"""

import json
import os
import resource
from pathlib import Path

import numpy as np
import pytest

from repro.core.normal_form import NormalForm
from repro.dtw.distance import ldtw_distance_batch
from repro.index.gemini import WarpingIndex
from repro.index.subsequence import SubsequenceIndex
from repro.ingest import IngestCoordinator, IngestQueue, StreamingIndexBuilder
from repro.obs.clock import monotonic_s
from repro.serve import QBHService
from repro.store import CorpusStore

from _harness import print_series, record_history

WINDOW_LENGTH = 64
STRIDE = 4
SEQ_LEN = 460            # (460 - 64) / 4 + 1 = 100 windows per sequence
BUDGET_MB = 32.0
EPS_QUANTILE = 0.6
SAMPLE_WINDOWS = 400
SWAPS = 3

OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_ingest.json"


def _sequences(count, seed):
    """Deterministic lazy random walks — the streaming input."""
    for i in range(count):
        rng = np.random.default_rng(seed + i)
        yield np.cumsum(rng.normal(0.0, 1.0, size=SEQ_LEN))


@pytest.mark.benchmark(group="ingest")
def test_streaming_build_query_and_swaps(benchmark, scale, tmp_path):
    n_sequences = 100 if scale.name == "smoke" else 1000
    expected_rows = n_sequences * ((SEQ_LEN - WINDOW_LENGTH) // STRIDE + 1)

    # --- phase 1: bulk load under a memory ceiling ------------------
    sub_root = str(tmp_path / "sub-store")
    builder = StreamingIndexBuilder(
        sub_root, kind="subsequence", delta=0.1,
        normal_form=NormalForm(length=WINDOW_LENGTH),
        window_lengths=(WINDOW_LENGTH,), stride=STRIDE,
        memory_budget_mb=BUDGET_MB,
    )

    def build():
        import shutil

        shutil.rmtree(sub_root, ignore_errors=True)
        return builder.build(_sequences(n_sequences, seed=17),
                             [f"seq{i:05d}" for i in range(n_sequences)])

    store, report = benchmark.pedantic(build, rounds=1, iterations=1)
    assert report.rows == expected_rows, (report.rows, expected_rows)
    assert report.peak_buffer_bytes <= report.budget_bytes, (
        f"staging peak {report.peak_buffer_bytes} exceeds the "
        f"{report.budget_bytes}-byte budget"
    )
    store.verify()  # checksums, shapes, envelope bounds
    ru_maxrss_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss

    # --- phase 2: sampled zero-false-negative query check -----------
    query_started = monotonic_s()
    index = SubsequenceIndex.from_store(store)
    rng = np.random.default_rng(91)
    sample = rng.choice(report.rows, size=min(SAMPLE_WINDOWS, report.rows),
                        replace=False)
    false_negatives = 0
    queries = 4
    for q_i in range(queries):
        base = np.asarray(index._normalized[int(rng.integers(report.rows))],
                          dtype=np.float64)
        query = base + 0.1 * rng.normal(size=base.size)
        q = index.normal_form.apply(query)
        sampled_dists = ldtw_distance_batch(
            q, index._normalized[np.sort(sample)], index.band
        )
        epsilon = float(np.quantile(sampled_dists, EPS_QUANTILE))
        matches, stats = index.range_query(query, epsilon,
                                           best_per_sequence=False)
        got = {(m.sequence_id, m.start) for m in matches}
        for row, dist in zip(np.sort(sample), sampled_dists):
            if dist <= epsilon:
                seq_row, start, _ = index._windows[int(row)]
                if (index.ids[seq_row], start) not in got:
                    false_negatives += 1
        assert stats.candidates >= len(matches)
    query_wall_s = monotonic_s() - query_started
    assert false_negatives == 0, (
        f"{false_negatives} sampled windows within epsilon missing from "
        f"the store-backed answer"
    )

    # --- phase 3: live serving across ingest-triggered swaps --------
    swap_started = monotonic_s()
    mel_root = str(tmp_path / "mel-store")
    mel_rng = np.random.default_rng(23)
    mel_builder = StreamingIndexBuilder(
        mel_root, kind="melody", delta=0.1,
        normal_form=NormalForm(length=WINDOW_LENGTH),
        memory_budget_mb=BUDGET_MB,
    )
    mel_store, _ = mel_builder.build(
        [np.cumsum(mel_rng.normal(size=120)) for _ in range(60)],
        [f"m{i:04d}" for i in range(60)],
    )
    live = WarpingIndex.from_store(mel_store)
    queue = IngestQueue()
    service = QBHService.from_index(live, max_batch=4)
    coordinator = IngestCoordinator(live, queue, min_batch=5,
                                    memory_budget_mb=BUDGET_MB)
    service.attach_ingest(coordinator)
    hums = [np.cumsum(mel_rng.normal(size=110)) for _ in range(4)]
    parity_mismatches = 0
    rebuild_s = []
    try:
        for swap in range(SWAPS):
            generation = live.store.generation
            mutations = live.mutations
            for j in range(5):
                queue.add(f"swap{swap}_{j}",
                          np.cumsum(mel_rng.normal(size=120)))
            deadline = monotonic_s() + 60.0
            while live.store.generation == generation:
                assert monotonic_s() < deadline, f"swap {swap} timed out"
            assert live.mutations == mutations + 1, (
                "a generation swap must bump mutations exactly once"
            )
            reference = WarpingIndex.from_store(CorpusStore.open(mel_root))
            for hum in hums:
                outcome = service.knn(hum, 3)
                assert outcome.ok, outcome
                expected, _ = reference.cascade_knn_query(hum, 3)
                expected = tuple((i, float(d)) for i, d in expected)
                if outcome.results != expected:
                    parity_mismatches += 1
            rebuild_s.append(
                coordinator.snapshot()["last_rebuild_s"] or 0.0
            )
    finally:
        service.close()
    swap_wall_s = monotonic_s() - swap_started
    assert parity_mismatches == 0, (
        f"{parity_mismatches} served answers diverged from a fresh index "
        f"on the swapped generation"
    )

    # --- report ------------------------------------------------------
    print_series(
        f"Streaming ingest at {report.rows} windows "
        f"({n_sequences} sequences, budget {BUDGET_MB:.0f} MiB, "
        f"{os.cpu_count()} cores)",
        {
            "phase": ["build", "query", "swaps"],
            "wall_s": [round(report.build_s, 3), round(query_wall_s, 3),
                       round(swap_wall_s, 3)],
            "detail": [
                f"{report.rows_per_s:.0f} rows/s, {report.flushes} flushes",
                f"{queries} queries, 0 false negatives",
                f"{SWAPS} swaps, 0 mismatches",
            ],
        },
    )

    payload = {
        "workload": {
            "corpus_size": report.rows,
            "sequences": n_sequences,
            "window_length": WINDOW_LENGTH,
            "stride": STRIDE,
            "memory_budget_mb": BUDGET_MB,
            "cpu_count": os.cpu_count(),
            "scale": scale.name,
        },
        "timings_ms": {
            "build_wall": round(report.build_s * 1e3, 3),
            "query_wall": round(query_wall_s * 1e3, 3),
            "swap_wall": round(swap_wall_s * 1e3, 3),
        },
        "ingest": {
            "rows": report.rows,
            "rows_per_s": round(report.rows_per_s, 1),
            "flushes": report.flushes,
            "chunk_rows": report.chunk_rows,
            "peak_buffer_bytes": report.peak_buffer_bytes,
            "budget_bytes": report.budget_bytes,
            "ru_maxrss_kb": ru_maxrss_kb,
            "feature_margin": report.feature_margin,
            "swaps": SWAPS,
            "swap_rebuild_s": [round(s, 4) for s in rebuild_s],
            "parity_mismatches": parity_mismatches,
            "false_negatives": false_negatives,
        },
        "checks": {
            "budget_respected": True,
            "store_verified": True,
            "rows_expected": expected_rows,
        },
    }
    OUT_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    record_history("ingest", payload)
    print(f"\nwrote {OUT_PATH.name}")
