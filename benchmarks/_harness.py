"""Benchmark-suite helpers.

Workload scales and experiment logic live in :mod:`repro.experiments`;
this module only adapts them to the pytest-benchmark harness and keeps
the benchmark-history trajectory (``BENCH_history.jsonl``) fed — every
run that writes a ``BENCH_*.json`` snapshot also appends one history
entry, which is what ``repro perf check`` gates CI on.
"""

from pathlib import Path

from repro.experiments import format_series
from repro.perf import BenchHistory

HISTORY_PATH = Path(__file__).resolve().parent.parent / "BENCH_history.jsonl"


def print_series(title: str, columns: dict) -> None:
    """Print an experiment's rows (see repro.experiments.format_series)."""
    print()
    print(format_series(title, columns))


def record_history(bench: str, snapshot: dict, history_path=None) -> dict:
    """Append one benchmark snapshot to ``BENCH_history.jsonl``.

    *snapshot* is the payload a ``BENCH_*.json`` file carries — its
    ``timings_ms`` become the entry's metrics and its ``workload`` the
    comparability context (see :mod:`repro.perf.history`).
    """
    history = BenchHistory(history_path or HISTORY_PATH)
    return history.record(
        bench, snapshot["timings_ms"], snapshot.get("workload", {})
    )
