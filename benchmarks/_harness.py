"""Benchmark-suite helpers.

Workload scales and experiment logic live in :mod:`repro.experiments`;
this module only adapts them to the pytest-benchmark harness.
"""

from repro.experiments import format_series


def print_series(title: str, columns: dict) -> None:
    """Print an experiment's rows (see repro.experiments.format_series)."""
    print()
    print(format_series(title, columns))
