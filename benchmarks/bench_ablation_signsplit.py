"""Ablation — why Lemma 3's sign split matters.

The paper's general envelope transform routes every negative
coefficient through the opposite envelope side.  This bench removes
that (transforming each side directly) and measures, for DFT features,
how often container invariance (Definition 8) is violated and how many
false negatives range queries would suffer as a consequence.

The sign-split construction must show zero violations; the naive
construction a substantial rate — that difference is the correctness
content of Lemma 3.  Logic:
``repro.experiments.run_signsplit_ablation``.
"""

import pytest

from repro.experiments import run_signsplit_ablation

from _harness import print_series


@pytest.mark.benchmark(group="ablation")
def test_ablation_sign_split(benchmark, scale):
    n_trials = max(200, scale.fig7_pairs)
    rows = benchmark.pedantic(
        run_signsplit_ablation, args=(n_trials,), rounds=1, iterations=1
    )
    print_series(
        f"Ablation: sign-split vs naive DFT envelope transform "
        f"({n_trials} trials)",
        rows,
    )
    by_method = dict(zip(rows["method"],
                         zip(rows["container_violations"],
                             rows["lower_bound_violations"])))
    assert by_method["sign_split"] == (0, 0)
    assert by_method["naive"][0] > 0
