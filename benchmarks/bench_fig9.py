"""Figure 9 — scalability on a large music database.

Paper setup: 35,000 melody time series extracted from the melody
channel of Internet MIDI files, length 128, indexed by 8 reduced
dimensions in an R*-tree; range queries with thresholds eps in
{0.2, 0.8}; warping width swept 0.02-0.2; two cost measures per point:
mean candidates retrieved and mean page accesses, for Keogh_PAA vs
New_PAA.

Paper result: both measures grow with the width; New_PAA grows far
more slowly (the gap widens with the width); page accesses are
proportional to candidates.

Default scale uses a reduced database; REPRO_SCALE=full runs 35,000.
Logic: ``repro.experiments.run_fig9``.
"""

import pytest

from repro.experiments import run_fig9

from _harness import print_series


@pytest.mark.benchmark(group="fig9")
def test_fig9_large_music_database(benchmark, scale):
    rows, results = benchmark.pedantic(
        run_fig9, args=(scale,), rounds=1, iterations=1
    )
    print_series(
        f"Figure 9: candidates and page accesses, music database of "
        f"{scale.fig9_db} series ({scale.fig8_queries} queries/point, "
        f"{scale.name} scale)",
        rows,
    )
    for (delta, eps), point in results.items():
        cand_new, pages_new = point["New"]
        cand_keogh, pages_keogh = point["Keogh"]
        assert cand_new <= cand_keogh + 1e-9
        assert pages_new <= pages_keogh * 1.25 + 2  # pages track candidates
