"""Ablation — R* split vs Guttman quadratic vs Guttman linear.

The paper indexes with an R*-tree; R* earns its star through its split
algorithm (margin-driven axis choice, overlap-driven index choice,
forced reinsertion).  This ablation builds the same feature database
with each split strategy under dynamic insertion and compares range-
query page accesses.  Logic: ``repro.experiments.run_split_ablation``.
"""

import pytest

from repro.experiments import run_split_ablation

from _harness import print_series


@pytest.mark.benchmark(group="ablation")
def test_ablation_split_strategies(benchmark, scale):
    db_size = min(scale.fig10_db, 3000)
    rows = benchmark.pedantic(
        run_split_ablation, args=(db_size, scale.fig8_queries),
        rounds=1, iterations=1,
    )
    print_series(
        f"Ablation: page accesses per range query by split strategy "
        f"({db_size} series, dynamic inserts)",
        rows,
    )
    pages = dict(zip(rows["strategy"], rows["pages_per_query"]))
    # R* should not lose to Guttman's splits (small tolerance: the
    # workload is random, not adversarial).
    assert pages["rstar"] <= pages["quadratic"] * 1.15
    assert pages["rstar"] <= pages["linear"] * 1.15
