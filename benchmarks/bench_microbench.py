"""Micro-benchmarks of the core operations.

Unlike the experiment benches (one-shot, pedantic), these use
pytest-benchmark's normal repeated-measurement mode to time the hot
primitives: envelope computation, feature transforms, scalar vs batch
DTW, index construction, and a single range query.  Useful to catch
performance regressions when modifying the core.
"""

import numpy as np
import pytest

from repro.core.envelope import k_envelope
from repro.core.envelope_transforms import NewPAAEnvelopeTransform
from repro.core.normal_form import NormalForm
from repro.core.transforms import DFTTransform, PAATransform
from repro.datasets.generators import random_walks
from repro.dtw.distance import ldtw_distance, ldtw_distance_batch
from repro.index.gemini import WarpingIndex
from repro.index.rstartree import RStarTree

LENGTH = 128
K = 6

rng = np.random.default_rng(123)
SERIES_A = np.cumsum(rng.normal(size=LENGTH))
SERIES_B = np.cumsum(rng.normal(size=LENGTH))
BATCH = np.cumsum(rng.normal(size=(500, LENGTH)), axis=1)
POINTS = rng.normal(size=(5000, 8))


@pytest.mark.benchmark(group="micro-core")
def test_micro_envelope(benchmark):
    benchmark(k_envelope, SERIES_A, K)


@pytest.mark.benchmark(group="micro-core")
def test_micro_paa_transform(benchmark):
    t = PAATransform(LENGTH, 8)
    benchmark(t.transform, SERIES_A)


@pytest.mark.benchmark(group="micro-core")
def test_micro_dft_transform(benchmark):
    t = DFTTransform(LENGTH, 8)
    benchmark(t.transform, SERIES_A)


@pytest.mark.benchmark(group="micro-core")
def test_micro_envelope_reduce(benchmark):
    env_t = NewPAAEnvelopeTransform(LENGTH, 8)
    env = k_envelope(SERIES_A, K)
    benchmark(env_t.reduce, env)


@pytest.mark.benchmark(group="micro-dtw")
def test_micro_dtw_scalar(benchmark):
    benchmark(ldtw_distance, SERIES_A, SERIES_B, K)


@pytest.mark.benchmark(group="micro-dtw")
def test_micro_dtw_batch_500(benchmark):
    benchmark(ldtw_distance_batch, SERIES_A, BATCH, K)


@pytest.mark.benchmark(group="micro-index")
def test_micro_rstar_bulk_load(benchmark):
    benchmark(RStarTree.bulk_load, POINTS, capacity=50)


@pytest.mark.benchmark(group="micro-index")
def test_micro_rstar_range_query(benchmark):
    tree = RStarTree.bulk_load(POINTS, capacity=50)
    q = np.zeros(8)

    def run():
        tree.reset_stats()
        return tree.range_search(q, q, 1.5)

    benchmark(run)


@pytest.mark.benchmark(group="micro-index")
def test_micro_warping_index_query(benchmark):
    index = WarpingIndex(
        list(BATCH), delta=0.1, normal_form=NormalForm(length=64)
    )
    query = SERIES_A

    def run():
        return index.range_query(query, 4.0)

    benchmark(run)
