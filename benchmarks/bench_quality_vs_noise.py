"""Extension — retrieval robustness vs singer error magnitude.

Tables 2 and 3 sample two singer populations; this bench sweeps the
error knobs continuously, from machine-perfect to worse-than-poor, and
reports top-1/top-10 retrieval at each level.  It locates the cliff:
how badly can people sing before the DTW approach stops finding their
song?  Logic: ``repro.experiments.run_noise_sweep``.
"""

import pytest

from repro.experiments import run_noise_sweep

from _harness import print_series


@pytest.mark.benchmark(group="quality")
def test_quality_vs_noise(benchmark, scale):
    rows = benchmark.pedantic(
        run_noise_sweep, args=(scale,), rounds=1, iterations=1
    )
    print_series(
        f"Extension: retrieval vs singer error level "
        f"(0 = perfect, 1 = the paper's poor singer; "
        f"{scale.table_queries} queries/level)",
        rows,
    )
    # Perfect singers must be perfect; quality must degrade with error.
    assert rows["top1"][0] == scale.table_queries
    assert rows["top10"][0] >= rows["top10"][-1]
    assert rows["mean_rank"][-1] >= rows["mean_rank"][0]
