"""Pytest wiring for the benchmark harness.

Each ``bench_*`` file regenerates one table or figure of the paper (or
an ablation) by calling into :mod:`repro.experiments`, printing the
same rows the paper reports, and asserting the qualitative *shape*.
Set ``REPRO_SCALE=full`` for the paper's workload sizes, or
``REPRO_SCALE=smoke`` for a seconds-scale pass.
"""

import pytest

from repro.experiments import ExperimentScale, active_scale


@pytest.fixture(scope="session")
def scale() -> ExperimentScale:
    return active_scale()
