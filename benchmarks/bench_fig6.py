"""Figure 6 — tightness of lower bound across 24 datasets.

Paper setup: for each of 24 UCR datasets, 50 random series of length
256, mean-subtracted; warping width 0.1; PAA reduction from 256 to 4
dimensions; tightness T = (lower bound) / (true DTW) averaged over all
pairs.  Methods: LB (full-dimension envelope — the unindexable
ceiling), New_PAA (the paper's), Keogh_PAA (prior art).

Paper result: LB highest everywhere; New_PAA is always above
Keogh_PAA, about 2x on average.  Logic: ``repro.experiments.run_fig6``.
"""

import numpy as np
import pytest

from repro.experiments import FIG6_DIMS, FIG6_LENGTH, run_fig6

from _harness import print_series


@pytest.mark.benchmark(group="fig6")
def test_fig6_tightness_across_datasets(benchmark, scale):
    rows = benchmark.pedantic(run_fig6, args=(scale,), rounds=1, iterations=1)
    print_series(
        f"Figure 6: mean tightness of lower bound, n={FIG6_LENGTH} -> "
        f"N={FIG6_DIMS}, delta=0.1 ({scale.fig6_series} series/dataset, "
        f"{scale.name} scale)",
        rows,
    )
    lb = np.array(rows["LB"])
    new = np.array(rows["New_PAA"])
    keogh = np.array(rows["Keogh_PAA"])
    # Shape: LB dominates both reductions; New_PAA >= Keogh_PAA on
    # every dataset; the average advantage is substantial.
    assert np.all(lb >= new - 1e-9)
    assert np.all(new >= keogh - 1e-9)
    assert new.mean() >= 1.2 * keogh.mean()
    print(f"\nmean T: LB={lb.mean():.3f}  New_PAA={new.mean():.3f}  "
          f"Keogh_PAA={keogh.mean():.3f}  "
          f"ratio New/Keogh={new.mean() / keogh.mean():.2f}")
