"""Cooperative cancellation: engine hooks and serve-layer deadlines.

The contract under test: a lapsed deadline yields ``QueryAborted`` /
``deadline_exceeded`` — *never* a partial or wrong answer — and a
callback that never fires leaves results bit-for-bit unchanged.
"""

import numpy as np
import pytest

from repro.datasets.generators import random_walks
from repro.engine import QueryAborted, QueryEngine
from repro.serve import AdmissionPolicy, QBHService


@pytest.fixture(scope="module")
def corpus():
    return random_walks(80, 64, seed=13)


@pytest.fixture(scope="module")
def engine(corpus):
    return QueryEngine(list(corpus), delta=0.1)


@pytest.fixture(scope="module")
def query(corpus):
    rng = np.random.default_rng(14)
    return corpus[4] + 0.1 * rng.normal(size=64)


class TestEngineHooks:
    def test_never_abort_matches_baseline(self, engine, query):
        baseline, _ = engine.knn(query, 5)
        checked, _ = engine.knn(query, 5, should_abort=lambda: False)
        assert checked == baseline
        baseline_r, _ = engine.range_search(query, 3.0)
        checked_r, _ = engine.range_search(
            query, 3.0, should_abort=lambda: False
        )
        assert checked_r == baseline_r

    def test_immediate_abort_raises_with_phase(self, engine, query):
        with pytest.raises(QueryAborted) as exc_info:
            engine.knn(query, 5, should_abort=lambda: True)
        assert exc_info.value.phase.startswith("stage:")
        with pytest.raises(QueryAborted):
            engine.range_search(query, 3.0, should_abort=lambda: True)

    def test_abort_reaches_every_phase(self, engine, query):
        """Sweeping the abort point over the call count proves the
        checkpoints actually cover stages *and* refine."""
        phases = set()
        budget = 0
        while True:
            calls = 0

            def abort():
                nonlocal calls
                calls += 1
                return calls > budget

            try:
                engine.knn(query, 5, should_abort=abort)
                break  # budget outlasted the query: no abort left to see
            except QueryAborted as exc:
                phases.add(exc.phase)
            budget += 1
        assert any(p.startswith("stage:") for p in phases)
        assert "refine" in phases

    def test_abort_is_all_or_nothing(self, engine, query):
        """An aborted call must not have handed back anything."""
        try:
            results, _ = engine.knn(query, 5, should_abort=lambda: True)
        except QueryAborted:
            results = None
        assert results is None

    def test_many_paths_accept_batchwide_abort(self, engine, query):
        queries = [query, query + 0.1]
        results, _ = engine.knn_many(queries, 3, should_abort=lambda: False)
        assert len(results) == 2
        with pytest.raises(QueryAborted):
            engine.knn_many(queries, 3, should_abort=lambda: True)
        results_r, _ = engine.range_search_many(
            queries, 3.0, should_abort=lambda: False
        )
        assert len(results_r) == 2
        with pytest.raises(QueryAborted):
            engine.range_search_many(queries, 3.0, should_abort=lambda: True)


class TestServeDeadlines:
    def test_lapsed_deadline_is_never_a_result(self):
        """Acceptance gate: zero deadline violations returned as
        results, even when every request's deadline is impossible."""
        big_corpus = random_walks(500, 256, seed=15)
        big = QueryEngine(list(big_corpus), delta=0.1)
        rng = np.random.default_rng(16)
        service = QBHService.from_engine(big, linger_ms=0.0, max_batch=4)
        try:
            futures = [
                service.submit(
                    "knn", big_corpus[i] + 0.1 * rng.normal(size=256), 5,
                    deadline_s=1e-7,
                )
                for i in range(10)
            ]
            outcomes = [f.result(timeout=30) for f in futures]
        finally:
            service.close()
        assert all(o.status == "deadline_exceeded" for o in outcomes)
        assert all(o.results is None for o in outcomes)

    def test_generous_deadline_answers_normally(self, engine, query):
        service = QBHService.from_engine(engine, linger_ms=0.0)
        try:
            outcome = service.knn(query, 5, deadline_s=60.0)
        finally:
            service.close()
        direct, _ = engine.knn(query, 5)
        assert outcome.ok
        assert list(outcome.results) == [
            (item, float(dist)) for item, dist in direct
        ]

    def test_deadline_checked_after_execution_too(self, engine, query):
        """A batch whose group deadline was generous can still finish
        past an individual member's stricter deadline — that member
        must come back as a miss, not a late answer."""
        service = QBHService.from_engine(
            engine, linger_ms=0.0,
            admission=AdmissionPolicy(default_deadline_s=1e-7),
        )
        try:
            # group deadline = the max over coalesced members; here a
            # single member, so execution itself aborts cooperatively.
            outcome = service.knn(query, 5)
            assert outcome.status == "deadline_exceeded"
            assert outcome.results is None
        finally:
            service.close()
