"""Load-generator workload builders: Zipf and scenario-tagged specs."""

import pytest

from repro.serve.loadgen import RequestSpec, scenario_workload, zipf_workload


class TestScenarioWorkload:
    CELLS = [
        (0, "jitter", 0.5, 7),
        (1, "tempo", 1.0, 3),
    ]

    def test_specs_carry_their_cell(self):
        specs = scenario_workload(self.CELLS, knn_k=10)
        assert [s.query_index for s in specs] == [0, 1]
        assert specs[0] == RequestSpec(kind="knn", param=10, query_index=0,
                                       scenario="jitter", severity=0.5,
                                       target=7)
        assert specs[1].scenario == "tempo"
        assert specs[1].target == 3

    def test_repeat_duplicates_identical_specs(self):
        specs = scenario_workload(self.CELLS, repeat=3)
        assert len(specs) == 6
        assert specs[0] == specs[1] == specs[2]    # cache/coalesce fodder
        assert len(set(specs)) == 2                # still hashable + dedupable

    def test_range_kind_uses_epsilon(self):
        (spec, _) = scenario_workload(self.CELLS, kind="range", epsilon=2.5)
        assert spec.kind == "range"
        assert spec.param == 2.5

    def test_repeat_must_be_positive(self):
        with pytest.raises(ValueError):
            scenario_workload(self.CELLS, repeat=0)

    def test_zipf_specs_leave_scenario_fields_unset(self):
        specs = zipf_workload(4, 2, seed=1)
        assert all(s.scenario is None and s.severity is None
                   and s.target is None for s in specs)
