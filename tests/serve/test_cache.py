"""Result cache: LRU/TTL mechanics and versioned invalidation.

The exactness-critical property is at the bottom: after *any* index
mutation, a cache probe must never serve the pre-mutation answer —
verified against the index's ground-truth oracle across a randomised
mutate/query interleaving (the invalidation-on-mutation property test
of the serving acceptance criteria).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets.generators import random_walks
from repro.index.gemini import WarpingIndex
from repro.serve import QBHService, ResultCache, request_fingerprint


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class TestFingerprint:
    def test_stable_across_representations(self):
        values = [0.5, -1.25, 3.0]
        a = request_fingerprint(values, "knn", 5)
        b = request_fingerprint(np.array(values, dtype=np.float32), "knn", 5)
        c = request_fingerprint(np.asarray(values)[::1], "knn", 5)
        assert a == b == c

    def test_kind_and_param_separate_keys(self):
        values = [0.5, -1.25, 3.0]
        assert (request_fingerprint(values, "knn", 5)
                != request_fingerprint(values, "range", 5.0))
        assert (request_fingerprint(values, "knn", 5)
                != request_fingerprint(values, "knn", 6))

    def test_different_queries_differ(self):
        assert (request_fingerprint([1.0, 2.0], "knn", 5)
                != request_fingerprint([1.0, 2.5], "knn", 5))


class TestResultCache:
    def test_hit_returns_stored_results(self):
        cache = ResultCache(8)
        cache.put("k1", 0, [("a", 1.0)])
        assert cache.get("k1", 0) == (("a", 1.0),)
        assert cache.stats.hits == 1

    def test_miss_on_absent_key(self):
        cache = ResultCache(8)
        assert cache.get("nope", 0) is None
        assert cache.stats.misses == 1

    def test_version_mismatch_is_a_miss_and_drops_entry(self):
        cache = ResultCache(8)
        cache.put("k1", 0, [("a", 1.0)])
        assert cache.get("k1", 1) is None
        assert cache.stats.stale == 1
        # the stale entry is gone even for the original version
        assert cache.get("k1", 0) is None

    def test_lru_evicts_least_recently_probed(self):
        cache = ResultCache(2)
        cache.put("a", 0, [("a", 1.0)])
        cache.put("b", 0, [("b", 1.0)])
        assert cache.get("a", 0) is not None   # refresh a
        cache.put("c", 0, [("c", 1.0)])        # evicts b
        assert cache.get("b", 0) is None
        assert cache.get("a", 0) is not None
        assert cache.get("c", 0) is not None
        assert cache.stats.evictions == 1

    def test_ttl_expiry(self):
        clock = FakeClock()
        cache = ResultCache(8, ttl_s=10.0, clock=clock)
        cache.put("k1", 0, [("a", 1.0)])
        clock.now = 9.0
        assert cache.get("k1", 0) is not None
        clock.now = 20.0
        assert cache.get("k1", 0) is None
        assert cache.stats.expired == 1

    def test_zero_capacity_disables_storage(self):
        cache = ResultCache(0)
        cache.put("k1", 0, [("a", 1.0)])
        assert cache.get("k1", 0) is None
        assert len(cache) == 0

    def test_clear_keeps_stats(self):
        cache = ResultCache(8)
        cache.put("k1", 0, [("a", 1.0)])
        cache.get("k1", 0)
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.hits == 1

    def test_validation(self):
        with pytest.raises(ValueError, match="max_entries"):
            ResultCache(-1)
        with pytest.raises(ValueError, match="ttl_s"):
            ResultCache(8, ttl_s=0.0)


@pytest.fixture(scope="module")
def mutation_corpus():
    return random_walks(40, 96, seed=21)


@settings(max_examples=15, deadline=None)
@given(st.lists(
    st.tuples(st.sampled_from(["query", "insert", "remove"]),
              st.integers(min_value=0, max_value=7)),
    min_size=4, max_size=12,
))
def test_cache_never_serves_stale_after_mutation(mutation_corpus, ops):
    """Property: under any mutate/query interleaving, every served
    answer equals the *current* index's ground truth."""
    index = WarpingIndex(list(mutation_corpus[:20]), delta=0.1)
    service = QBHService.from_index(index, max_batch=4, linger_ms=0.0,
                                    cache_size=64)
    rng = np.random.default_rng(33)
    pool = [mutation_corpus[i] + 0.1 * rng.normal(size=96) for i in range(8)]
    next_insert = 20
    try:
        for op, arg in ops:
            if op == "insert" and next_insert < len(mutation_corpus):
                index.insert(mutation_corpus[next_insert], next_insert)
                next_insert += 1
            elif op == "remove" and len(index) > 5:
                index.remove(index.ids[arg % len(index)])
            else:
                query = pool[arg]
                outcome = service.knn(query, 3)
                assert outcome.status == "ok"
                truth = index.engine().ground_truth_knn(
                    index.normal_form.apply(query), 3
                )
                got_ids = [item for item, _ in outcome.results]
                want_ids = [item for item, _ in truth]
                assert got_ids == want_ids
                np.testing.assert_allclose(
                    [d for _, d in outcome.results],
                    [d for _, d in truth], atol=1e-9,
                )
    finally:
        service.close()


def test_cache_hit_is_byte_identical_to_recompute(mutation_corpus):
    """A hit replays the no-false-negative contract: identical bytes."""
    index = WarpingIndex(list(mutation_corpus[:20]), delta=0.1)
    service = QBHService.from_index(index, max_batch=2, linger_ms=0.0,
                                    cache_size=16)
    query = mutation_corpus[3] + 0.05
    try:
        first = service.knn(query, 4)
        second = service.knn(query, 4)
        assert not first.from_cache and second.from_cache
        assert first.results == second.results  # same ids, same float bits
        for (_, a), (_, b) in zip(first.results, second.results):
            assert np.float64(a).tobytes() == np.float64(b).tobytes()
    finally:
        service.close()
