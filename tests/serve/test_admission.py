"""Admission control: caps, deadline resolution, retry/backoff."""

import pytest

from repro.serve import AdmissionPolicy, RetryPolicy, submit_with_retry
from repro.serve.scheduler import ServeOutcome


class TestAdmissionPolicy:
    def test_admits_below_caps(self):
        policy = AdmissionPolicy(max_queue_depth=4, max_inflight=2)
        assert policy.admits(3, 1)
        assert not policy.admits(4, 1)      # queue at cap
        assert not policy.admits(1, 2)      # busy AND queue non-empty
        assert policy.admits(0, 2)          # busy but queue empty: admit

    def test_no_inflight_cap_by_default(self):
        policy = AdmissionPolicy(max_queue_depth=4)
        assert policy.admits(1, 10_000)

    def test_resolve_deadline_relative_to_now(self):
        policy = AdmissionPolicy()
        absolute = policy.resolve_deadline(5.0)
        from repro.obs.clock import monotonic_s

        assert absolute is not None
        assert 0.0 < absolute - monotonic_s() <= 5.0

    def test_resolve_deadline_falls_back_to_default(self):
        assert AdmissionPolicy().resolve_deadline(None) is None
        with_default = AdmissionPolicy(default_deadline_s=2.0)
        assert with_default.resolve_deadline(None) is not None

    def test_validation(self):
        with pytest.raises(ValueError, match="max_queue_depth"):
            AdmissionPolicy(max_queue_depth=0)
        with pytest.raises(ValueError, match="max_inflight"):
            AdmissionPolicy(max_inflight=0)
        with pytest.raises(ValueError, match="default_deadline_s"):
            AdmissionPolicy(default_deadline_s=0.0)
        with pytest.raises(ValueError, match="retry_after_s"):
            AdmissionPolicy(retry_after_s=-1.0)


class TestRetryPolicy:
    def test_backoff_is_deterministic_and_capped(self):
        retry = RetryPolicy(base_s=0.01, multiplier=2.0, max_s=0.05)
        delays = [retry.backoff_s(attempt) for attempt in range(5)]
        assert delays == [0.01, 0.02, 0.04, 0.05, 0.05]
        assert delays == [retry.backoff_s(a) for a in range(5)]

    def test_validation(self):
        with pytest.raises(ValueError, match="base_s"):
            RetryPolicy(base_s=0.0)
        with pytest.raises(ValueError, match="multiplier"):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError, match="max_attempts"):
            RetryPolicy(max_attempts=-1)


class TestSubmitWithRetry:
    def test_success_first_try_never_sleeps(self):
        sleeps = []
        outcome = submit_with_retry(
            lambda: ServeOutcome(status="ok", results=()),
            RetryPolicy(), sleep=sleeps.append,
        )
        assert outcome.ok and outcome.attempts == 1
        assert sleeps == []

    def test_shed_then_ok_retries_with_backoff(self):
        sleeps = []
        replies = [ServeOutcome(status="shed"),
                   ServeOutcome(status="shed"),
                   ServeOutcome(status="ok", results=())]
        outcome = submit_with_retry(
            lambda: replies.pop(0),
            RetryPolicy(base_s=0.01, multiplier=2.0, max_attempts=5),
            sleep=sleeps.append,
        )
        assert outcome.ok and outcome.attempts == 3
        assert sleeps == [0.01, 0.02]

    def test_retry_honours_server_retry_after_hint(self):
        sleeps = []
        replies = [ServeOutcome(status="shed", retry_after_s=0.2),
                   ServeOutcome(status="ok", results=())]
        submit_with_retry(
            lambda: replies.pop(0),
            RetryPolicy(base_s=0.01), sleep=sleeps.append,
        )
        assert sleeps == [0.2]  # server hint beats the smaller backoff

    def test_gives_up_after_max_attempts(self):
        sleeps = []
        outcome = submit_with_retry(
            lambda: ServeOutcome(status="shed"),
            RetryPolicy(max_attempts=3), sleep=sleeps.append,
        )
        # max_attempts counts *re*submissions: 1 initial + 3 retries.
        assert outcome.status == "shed" and outcome.attempts == 4
        assert len(sleeps) == 3

    def test_non_shed_statuses_never_retry(self):
        for status in ("deadline_exceeded", "error", "shutdown"):
            calls = []

            def once(status=status):
                calls.append(1)
                return ServeOutcome(status=status)

            outcome = submit_with_retry(once, RetryPolicy(),
                                        sleep=lambda s: None)
            assert outcome.status == status
            assert len(calls) == 1

    def test_zero_max_attempts_means_single_attempt(self):
        replies = [ServeOutcome(status="shed")]
        outcome = submit_with_retry(lambda: replies.pop(0),
                                    RetryPolicy(max_attempts=0),
                                    sleep=lambda s: None)
        assert outcome.status == "shed" and outcome.attempts == 1
