"""QBHService: lifecycle, admission wiring, cache fast path, metrics."""

import threading

import numpy as np
import pytest

from repro.datasets.generators import random_walks
from repro.engine import QueryEngine
from repro.index.gemini import WarpingIndex
from repro.obs import Observability
from repro.serve import AdmissionPolicy, QBHService, RetryPolicy


@pytest.fixture(scope="module")
def corpus():
    return random_walks(60, 64, seed=7)


@pytest.fixture(scope="module")
def engine(corpus):
    return QueryEngine(list(corpus), delta=0.1)


def make_service(engine, **kwargs):
    kwargs.setdefault("linger_ms", 0.0)
    kwargs.setdefault("max_batch", 4)
    return QBHService.from_engine(engine, **kwargs)


class TestLifecycle:
    def test_sync_answers_match_direct_engine(self, corpus, engine):
        query = corpus[5] + 0.1
        with make_service(engine) as service:
            outcome = service.knn(query, 3)
            assert outcome.ok
            direct, _ = engine.knn(query, 3)
            assert [i for i, _ in outcome.results] == [i for i, _ in direct]

    def test_submit_after_close_raises(self, corpus, engine):
        service = make_service(engine)
        service.close()
        with pytest.raises(RuntimeError, match="closed"):
            service.submit("knn", corpus[0], 3)

    def test_drain_completes_queued_requests(self, corpus, engine):
        service = make_service(engine, max_batch=2)
        futures = [service.submit("knn", corpus[i] + 0.05, 3)
                   for i in range(6)]
        service.drain()
        outcomes = [future.result(timeout=10) for future in futures]
        assert all(o.ok for o in outcomes)

    def test_close_without_drain_sheds(self, corpus, engine):
        # A lingering scheduler holds requests long enough to shed them.
        service = make_service(engine, linger_ms=200.0, max_batch=64)
        futures = [service.submit("knn", corpus[i] + 0.05, 3)
                   for i in range(8)]
        service.close(drain=False)
        statuses = {f.result(timeout=10).status for f in futures}
        assert "shutdown" in statuses
        assert statuses <= {"ok", "shutdown"}

    def test_context_manager_closes(self, corpus, engine):
        with make_service(engine) as service:
            assert service.knn(corpus[0], 2).ok
        with pytest.raises(RuntimeError):
            service.submit("knn", corpus[0], 2)


class TestAdmissionWiring:
    def test_overload_sheds_with_retry_hint(self, corpus, engine):
        service = make_service(
            engine, linger_ms=500.0, max_batch=64,
            admission=AdmissionPolicy(max_queue_depth=1,
                                      retry_after_s=0.25),
        )
        try:
            futures = [service.submit("knn", corpus[i] + 0.05, 3)
                       for i in range(6)]
            shed = [f.result(timeout=10) for f in futures
                    if f.result(timeout=10).status == "shed"]
            assert shed, "queue bound of 1 must shed some of 6 submissions"
            assert all(o.retry_after_s == 0.25 for o in shed)
            assert all(o.results is None for o in shed)
        finally:
            service.close(drain=False)

    def test_sync_retry_rides_out_transient_overload(self, corpus, engine):
        service = make_service(
            engine,
            admission=AdmissionPolicy(max_queue_depth=1,
                                      retry_after_s=0.001),
            retry=RetryPolicy(base_s=0.001, max_attempts=50),
        )
        try:
            results = []
            errors = []

            def client(i):
                try:
                    results.append(service.knn(corpus[i] + 0.05, 3))
                except Exception as exc:  # pragma: no cover - diagnostics
                    errors.append(exc)

            threads = [threading.Thread(target=client, args=(i,))
                       for i in range(6)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert not errors
            # with retries, every client eventually gets an answer
            assert all(o.ok for o in results)
            assert any(o.attempts >= 1 for o in results)
        finally:
            service.close()

    def test_default_deadline_applies(self, corpus):
        # An impossible default deadline turns every answer into a miss.
        big = QueryEngine(list(random_walks(400, 256, seed=9)), delta=0.1)
        service = QBHService.from_engine(
            big, linger_ms=0.0,
            admission=AdmissionPolicy(default_deadline_s=1e-7),
        )
        try:
            outcome = service.knn(corpus[0][:256] if len(corpus[0]) >= 256
                                  else np.resize(corpus[0], 256), 3)
            assert outcome.status == "deadline_exceeded"
            assert outcome.results is None
        finally:
            service.close()


class TestCacheFastPath:
    def test_repeat_hits_cache_and_skips_scheduler(self, corpus, engine):
        service = make_service(engine, cache_size=32)
        try:
            query = corpus[7] + 0.2
            first = service.knn(query, 3)
            second = service.knn(query, 3)
            assert first.ok and not first.from_cache
            assert second.ok and second.from_cache
            assert second.results == first.results
            saturation = service.saturation()
            assert saturation["cache_hits"] == 1
            assert saturation["executed"] == 1  # second never executed
        finally:
            service.close()

    def test_cache_disabled_always_executes(self, corpus, engine):
        service = make_service(engine, cache_size=0)
        try:
            query = corpus[7] + 0.2
            assert not service.knn(query, 3).from_cache
            assert not service.knn(query, 3).from_cache
            assert service.saturation()["executed"] == 2
        finally:
            service.close()


class TestSaturationAndMetrics:
    def test_saturation_counters_reconcile(self, corpus, engine):
        service = make_service(engine, cache_size=32)
        try:
            for i in range(5):
                assert service.knn(corpus[i] + 0.1, 3).ok
            service.knn(corpus[0] + 0.1, 3)  # repeat -> cache hit
        finally:
            service.close()
        saturation = service.saturation()
        assert saturation["submitted"] == 6
        assert saturation["completed"] == 6
        assert saturation["ok"] == 6
        assert saturation["cache_hits"] == 1
        assert saturation["executed"] == 5
        assert saturation["queue_depth"] == 0
        assert saturation["inflight"] == 0
        assert saturation["cache_hit_rate"] == pytest.approx(1 / 6)
        assert saturation["cache"]["hits"] == 1

    def test_serve_metrics_reach_registry(self, corpus, engine):
        obs = Observability()
        service = make_service(engine, cache_size=32, obs=obs)
        try:
            query = corpus[3] + 0.1
            service.knn(query, 3)
            service.knn(query, 3)
        finally:
            service.close()
        counters = obs.metrics.snapshot()["counters"]
        assert counters["serve.requests_total{kind=knn,status=ok}"] == 2
        assert counters["serve.cache_probes_total{event=miss}"] == 1
        assert counters["serve.cache_probes_total{event=hit}"] == 1
        assert counters["serve.batches_total{kind=knn}"] == 1

    def test_serve_spans_are_roots(self, corpus, engine):
        from repro.obs.tracing import InMemorySink

        sink = InMemorySink()
        obs = Observability(trace_sink=sink)
        traced_engine = QueryEngine(list(corpus), delta=0.1, obs=obs)
        service = make_service(traced_engine, obs=obs)
        try:
            service.knn(corpus[3] + 0.1, 3)
        finally:
            service.close()
        spans = sink.spans
        serve_spans = [s for s in spans if s.name.startswith("serve:")]
        assert {s.name for s in serve_spans} == {
            "serve:request", "serve:batch",
        }
        assert all(s.parent_id is None for s in serve_spans)
        # the engine's own query span is still recorded, untouched
        assert any(s.name == "query" for s in spans)


class TestFromIndex:
    def test_from_index_normalises_like_cascade_query(self, corpus):
        index = WarpingIndex(list(corpus[:30]), delta=0.1)
        query = corpus[2] + 0.3
        direct, _ = index.cascade_knn_query(query, 3)
        service = QBHService.from_index(index, linger_ms=0.0)
        try:
            outcome = service.knn(query, 3)
        finally:
            service.close()
        assert outcome.ok
        assert ([i for i, _ in outcome.results]
                == [i for i, _ in direct])

    def test_from_index_inherits_obs(self, corpus):
        obs = Observability()
        index = WarpingIndex(list(corpus[:20]), delta=0.1, obs=obs)
        service = QBHService.from_index(index, linger_ms=0.0)
        try:
            assert service.obs is obs
            service.knn(corpus[0], 2)
        finally:
            service.close()
        counters = obs.metrics.snapshot()["counters"]
        assert counters["serve.requests_total{kind=knn,status=ok}"] == 1


class TestShadowScoring:
    def test_shadow_fraction_one_checks_every_ok_request(self, corpus,
                                                         engine):
        obs = Observability()
        service = make_service(engine, cache_size=32, obs=obs,
                               shadow_fraction=1.0)
        try:
            for i in range(3):
                assert service.knn(corpus[i] + 0.1, 3).ok
            assert service.knn(corpus[0] + 0.1, 3).ok   # cache hit
        finally:
            service.close()
        shadow = service.saturation()["shadow"]
        assert shadow["offered"] == 4
        assert shadow["checked"] == 4
        assert shadow["disagreed"] == 0
        assert shadow["agreement"] == 1.0
        gauges = obs.metrics.snapshot()["gauges"]
        assert gauges["quality.shadow.agreement"] == 1.0

    def test_cached_answers_are_shadowed_too(self, corpus, engine):
        # The cache is exactly the path an exact re-check must cover:
        # a stale or mis-keyed hit is invisible to latency telemetry.
        service = make_service(engine, cache_size=32, shadow_fraction=1.0)
        try:
            query = corpus[5] + 0.1
            assert service.knn(query, 3).ok
            hit = service.knn(query, 3)
            assert hit.ok and hit.from_cache
        finally:
            service.close()
        assert service.shadow.checked == 2
        assert service.shadow.disagreed == 0

    def test_range_requests_shadow_against_exact(self, corpus, engine):
        service = make_service(engine, shadow_fraction=1.0)
        try:
            assert service.range_search(corpus[2] + 0.1, 5.0).ok
        finally:
            service.close()
        assert service.shadow.checked == 1
        assert service.shadow.disagreed == 0

    def test_shadow_disabled_by_default(self, engine):
        service = make_service(engine)
        try:
            assert service.shadow is None
            assert "shadow" not in service.saturation()
        finally:
            service.close()

    @pytest.mark.parametrize("fraction", [-0.1, 1.5])
    def test_bad_shadow_fraction_rejected(self, engine, fraction):
        with pytest.raises(ValueError):
            make_service(engine, shadow_fraction=fraction)

    def test_shadow_failure_never_fails_serving(self, corpus, engine):
        service = make_service(engine, shadow_fraction=1.0)
        try:
            def boom(kind, query, param):
                raise RuntimeError("exact path exploded")

            service.shadow._exact_fn = boom
            outcome = service.knn(corpus[1] + 0.1, 3)
            assert outcome.ok                  # telemetry, not serving
        finally:
            service.close()
