"""Micro-batching scheduler: batching, coalescing, fairness, parity.

The headline concurrency-edge test at the bottom replays a mixed
range/knn workload through a :class:`~repro.serve.QBHService` running
``workers=8`` via the :mod:`repro.perf.replay` parity harness — the
same apparatus that checks the engine's ``*_many`` paths — asserting
the serving layer returns the exact recorded answers.
"""

import threading
import time

import numpy as np
import pytest

from repro.datasets.generators import random_walks
from repro.engine import QueryEngine
from repro.perf.replay import replay_workload
from repro.serve import (
    MicroBatchScheduler,
    QBHService,
    ServeOutcome,
    ServeRequest,
)


def make_request(kind="knn", param=5, value=0.0, deadline_s=None):
    query = np.array([value, value + 1.0])
    from repro.serve import request_fingerprint

    return ServeRequest(
        kind=kind, query=query, param=param,
        fingerprint=request_fingerprint(query, kind, param),
        deadline_s=deadline_s,
    )


class RecordingExecutor:
    """Stub executor capturing the batches it was handed."""

    def __init__(self, delay_s=0.0):
        self.batches = []
        self.delay_s = delay_s
        self.lock = threading.Lock()

    def __call__(self, kind, param, requests):
        with self.lock:
            self.batches.append((kind, param, list(requests)))
        if self.delay_s:
            time.sleep(self.delay_s)
        return {
            r.fingerprint: ServeOutcome(
                status="ok", results=((kind, float(len(requests))),)
            )
            for r in requests
        }


class TestBatching:
    def test_single_request_dispatches(self):
        executor = RecordingExecutor()
        scheduler = MicroBatchScheduler(executor, max_batch=4,
                                        linger_s=0.001)
        request = make_request()
        assert scheduler.submit(request)
        outcome = request.future.result(timeout=5)
        scheduler.close()
        assert outcome.ok and outcome.batch_size == 1

    def test_concurrent_compatible_requests_batch_together(self):
        executor = RecordingExecutor()
        scheduler = MicroBatchScheduler(executor, max_batch=8,
                                        linger_s=0.05)
        requests = [make_request(value=float(i)) for i in range(6)]
        for request in requests:
            assert scheduler.submit(request)
        outcomes = [r.future.result(timeout=5) for r in requests]
        scheduler.close()
        assert all(o.ok for o in outcomes)
        # All six arrived within the linger window -> one batch.
        assert len(executor.batches) == 1
        assert outcomes[0].batch_size == 6

    def test_full_batch_dispatches_before_linger(self):
        executor = RecordingExecutor()
        scheduler = MicroBatchScheduler(executor, max_batch=2,
                                        linger_s=10.0)
        requests = [make_request(value=float(i)) for i in range(2)]
        started = time.perf_counter()
        for request in requests:
            scheduler.submit(request)
        outcomes = [r.future.result(timeout=5) for r in requests]
        elapsed = time.perf_counter() - started
        scheduler.close()
        assert all(o.ok for o in outcomes)
        assert elapsed < 5.0  # did not wait for the 10 s linger

    def test_incompatible_params_split_batches(self):
        executor = RecordingExecutor()
        scheduler = MicroBatchScheduler(executor, max_batch=8,
                                        linger_s=0.02)
        k5 = [make_request(param=5, value=float(i)) for i in range(3)]
        k9 = [make_request(param=9, value=float(i)) for i in range(3)]
        for request in k5 + k9:
            scheduler.submit(request)
        for request in k5 + k9:
            assert request.future.result(timeout=5).ok
        scheduler.close()
        assert len(executor.batches) == 2
        params = sorted(param for _, param, _ in executor.batches)
        assert params == [5, 9]

    def test_duplicates_coalesce_to_one_execution(self):
        executor = RecordingExecutor()
        scheduler = MicroBatchScheduler(executor, max_batch=8,
                                        linger_s=0.05)
        requests = [make_request(value=1.0) for _ in range(5)]
        for request in requests:
            scheduler.submit(request)
        outcomes = [r.future.result(timeout=5) for r in requests]
        scheduler.close()
        assert all(o.ok for o in outcomes)
        assert len(executor.batches) == 1
        _, _, executed = executor.batches[0]
        assert len(executed) == 1          # five requests, one execution
        assert outcomes[0].batch_size == 5
        assert len({id(o.results) for o in outcomes}) == 1  # shared answer

    def test_fairness_oldest_first_no_starvation(self):
        """A hot query group cannot starve an incompatible singleton."""
        executor = RecordingExecutor(delay_s=0.002)
        scheduler = MicroBatchScheduler(executor, max_batch=4,
                                        linger_s=0.001)
        singleton = make_request(kind="range", param=1.0)
        hot = [make_request(param=5, value=float(i % 2)) for i in range(12)]
        scheduler.submit(hot[0])
        scheduler.submit(singleton)
        for request in hot[1:]:
            scheduler.submit(request)
        assert singleton.future.result(timeout=5).ok
        for request in hot:
            assert request.future.result(timeout=5).ok
        scheduler.close()
        # The singleton went out in the first or second batch — right
        # behind the head group that preceded it, never pushed to the
        # back by later-arriving hot requests.
        position = next(
            i for i, (_, param, _) in enumerate(executor.batches)
            if param == 1.0
        )
        assert position <= 1

    def test_queue_bound_refuses(self):
        executor = RecordingExecutor(delay_s=0.05)
        scheduler = MicroBatchScheduler(executor, max_batch=1,
                                        linger_s=0.0, max_queue_depth=2)
        accepted = [scheduler.submit(make_request(value=float(i)))
                    for i in range(12)]
        scheduler.close()
        assert not all(accepted)

    def test_expired_deadline_skipped_without_execution(self):
        executor = RecordingExecutor()
        scheduler = MicroBatchScheduler(executor, max_batch=4,
                                        linger_s=0.0)
        request = make_request(deadline_s=-1.0)  # already past
        scheduler.submit(request)
        outcome = request.future.result(timeout=5)
        scheduler.close()
        assert outcome.status == "deadline_exceeded"
        assert outcome.results is None
        assert executor.batches == []  # no work was done

    def test_close_drain_false_sheds_queue(self):
        executor = RecordingExecutor(delay_s=0.05)
        scheduler = MicroBatchScheduler(executor, max_batch=1,
                                        linger_s=0.0)
        requests = [make_request(value=float(i)) for i in range(6)]
        for request in requests:
            scheduler.submit(request)
        scheduler.close(drain=False)
        statuses = {r.future.result(timeout=5).status for r in requests}
        assert statuses <= {"ok", "shutdown"}
        assert "shutdown" in statuses

    def test_executor_exception_becomes_error_outcome(self):
        def broken(kind, param, requests):
            raise RuntimeError("boom")

        scheduler = MicroBatchScheduler(broken, max_batch=2, linger_s=0.0)
        request = make_request()
        scheduler.submit(request)
        outcome = request.future.result(timeout=5)
        scheduler.close()
        assert outcome.status == "error"
        assert "boom" in outcome.error

    def test_validation(self):
        executor = RecordingExecutor()
        with pytest.raises(ValueError, match="max_batch"):
            MicroBatchScheduler(executor, max_batch=0)
        with pytest.raises(ValueError, match="linger_s"):
            MicroBatchScheduler(executor, linger_s=-1.0)
        with pytest.raises(ValueError, match="dispatchers"):
            MicroBatchScheduler(executor, dispatchers=0)
        with pytest.raises(ValueError, match="kind"):
            make_request(kind="nope")


@pytest.fixture(scope="module")
def parity_setup():
    corpus = random_walks(300, 96, seed=41)
    engine = QueryEngine(corpus, delta=0.1)
    rng = np.random.default_rng(42)
    queries = [corpus[i] + 0.15 * rng.normal(size=96) for i in range(12)]
    records = []
    for i, query in enumerate(queries):
        if i % 2 == 0:
            results, _ = engine.knn(query, 4)
            params = {"k": 4}
            kind = "knn"
        else:
            results, _ = engine.range_search(query, 3.0)
            params = {"epsilon": 3.0}
            kind = "range"
        records.append({
            "schema": 1, "query_id": f"q{i}", "kind": kind,
            "params": params, "query": [float(v) for v in query],
            "results": [[item, float(dist)] for item, dist in results],
        })
    return engine, records


class _ServiceEngineAdapter:
    """Expose a QBHService through the engine replay interface."""

    def __init__(self, service):
        self.service = service

    def _one(self, kind, query, param):
        outcome = (self.service.range_search(query, param)
                   if kind == "range" else self.service.knn(query, param))
        assert outcome.ok, outcome.status
        return list(outcome.results), None

    def range_search(self, query, epsilon):
        return self._one("range", query, epsilon)

    def knn(self, query, k):
        return self._one("knn", query, k)

    def _many(self, kind, queries, param, workers):
        futures = [
            self.service.submit(kind, query, param) for query in queries
        ]
        outcomes = [future.result(timeout=30) for future in futures]
        assert all(o.ok for o in outcomes)
        return [list(o.results) for o in outcomes], None

    def range_search_many(self, queries, epsilon, *, workers=None):
        return self._many("range", queries, epsilon, workers)

    def knn_many(self, queries, k, *, workers=None):
        return self._many("knn", queries, k, workers)


def test_service_parity_with_serial_dispatch_workers8(parity_setup):
    """Mixed range/knn traffic through the scheduler at workers=8
    returns byte-for-byte the serially recorded answers."""
    engine, records = parity_setup
    service = QBHService.from_engine(
        engine, max_batch=8, linger_ms=1.0, workers=8, cache_size=64,
    )
    try:
        adapter = _ServiceEngineAdapter(service)
        report = replay_workload(
            lambda backend: adapter, records,
            backends=("service",), modes=("serial", "many"), workers=8,
            atol=0.0,  # byte-identical, not merely close
        )
    finally:
        service.close()
    assert report.ok, report.summary()
    # both modes checked for every record
    assert len(report.checks) == 2 * len(records)
