"""Smoke-run the example scripts.

Examples are documentation: a broken one is a broken promise.  Each is
executed as a subprocess; the quicker scripts run in full, and all are
checked for a clean exit and non-trivial output.
"""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")

#: Scripts fast enough for the unit-test suite (the heavier ones run
#: whenever the benchmark suite or a human exercises them).
FAST_EXAMPLES = [
    "quickstart.py",
    "singing_tutor.py",
    "figures1_to_5.py",
    "gesture_search.py",
]


def run_example(name: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, os.path.join(EXAMPLES_DIR, name)],
        capture_output=True,
        text=True,
        timeout=240,
    )


@pytest.mark.parametrize("name", FAST_EXAMPLES)
def test_example_runs_clean(name):
    result = run_example(name)
    assert result.returncode == 0, result.stderr[-2000:]
    assert len(result.stdout) > 100  # produced a real report


def test_every_example_file_is_listed_or_known():
    """No example may exist without being run somewhere: either in the
    fast list above or exercised by the tutorial/test suite."""
    known_slow = {
        "query_by_humming.py",    # full audio round trip (~20 s)
        "index_tuning.py",        # builds many indexes (~30 s)
        "hum_any_part.py",        # subsequence windows (~15 s)
        "personalized_qbh.py",    # 600-melody calibration demo (~20 s)
        "corpus_report.py",       # 500-melody key estimation (~15 s)
        "live_search.py",         # streaming audio demo (~15 s)
    }
    on_disk = {
        name for name in os.listdir(EXAMPLES_DIR) if name.endswith(".py")
    }
    assert on_disk == set(FAST_EXAMPLES) | known_slow


def test_quickstart_finds_its_target():
    result = run_example("quickstart.py")
    assert "<-- the hummed melody" in result.stdout


def test_gesture_search_prunes():
    result = run_example("gesture_search.py")
    assert "pruned" in result.stdout
    assert "right shape" in result.stdout
