"""Property-based tests for the index layer.

The central guarantee — range queries over any backend return exactly
the brute-force answer, for arbitrary point sets and query rectangles —
is checked with hypothesis-generated inputs.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.index.gridfile import GridFile
from repro.index.linear_scan import LinearScan
from repro.index.rstartree import RStarTree

coord = st.floats(min_value=-10, max_value=10, allow_nan=False, width=32)


def point_sets(dim=3, max_points=60):
    return st.integers(1, max_points).flatmap(
        lambda m: arrays(np.float64, (m, dim), elements=coord)
    )


def brute(points, lo, hi, radius):
    """Exact reference: identical arithmetic to the index internals."""
    gap = np.maximum(lo - points, 0.0) + np.maximum(points - hi, 0.0)
    return set(np.nonzero(np.sum(gap * gap, axis=1) <= radius * radius)[0].tolist())


def build_all(points):
    return [
        RStarTree.bulk_load(points, capacity=4),
        GridFile(points, resolution=3),
        LinearScan(points, capacity=4),
    ]


@settings(max_examples=60, deadline=None)
@given(point_sets(), arrays(np.float64, 3, elements=coord),
       st.floats(0, 5, allow_nan=False))
def test_point_range_query_exact(points, q, radius):
    expected = brute(points, q, q, radius)
    for index in build_all(points):
        assert set(index.range_search(q, q, radius)) == expected


@settings(max_examples=60, deadline=None)
@given(point_sets(), arrays(np.float64, 3, elements=coord),
       arrays(np.float64, 3, elements=st.floats(0, 3, allow_nan=False)),
       st.floats(0, 3, allow_nan=False))
def test_rect_range_query_exact(points, lo, extent, radius):
    hi = lo + extent
    expected = brute(points, lo, hi, radius)
    for index in build_all(points):
        assert set(index.range_search(lo, hi, radius)) == expected


@settings(max_examples=40, deadline=None)
@given(point_sets(max_points=40), arrays(np.float64, 3, elements=coord))
def test_nearest_is_sorted_and_complete(points, q):
    for index in build_all(points):
        ranked = list(index.nearest(q, q))
        assert len(ranked) == points.shape[0]
        dists = [d for d, _ in ranked]
        assert all(a <= b + 1e-9 for a, b in zip(dists, dists[1:]))
        expected = np.sort(np.linalg.norm(points - q, axis=1))
        assert np.allclose(np.sort(dists), expected, atol=1e-6)


@settings(max_examples=30, deadline=None)
@given(point_sets(max_points=50))
def test_rstar_insert_invariants(points):
    tree = RStarTree(3, capacity=4)
    for i, p in enumerate(points):
        tree.insert(p, i)
    tree.check_invariants()
