"""Tests for the two-stage filter cascade (paper Section 5.2).

The paper runs the full-dimension envelope bound LB as "a second
filter after the indexing scheme ... returns a superset of answer".
These tests verify the cascade is sound (no answers lost), actually
prunes, and saves exact-DTW computations in k-NN too.
"""

import numpy as np
import pytest

from repro.core.normal_form import NormalForm
from repro.datasets.generators import random_walks
from repro.index.gemini import WarpingIndex


@pytest.fixture(scope="module")
def index():
    walks = list(random_walks(300, 96, seed=50))
    return WarpingIndex(walks, delta=0.1, normal_form=NormalForm(length=64))


@pytest.fixture(scope="module")
def queries():
    return random_walks(5, 96, seed=51)


class TestRangeSecondFilter:
    def test_same_answers_with_and_without(self, index, queries):
        for q in queries:
            with_filter, _ = index.range_query(q, 6.0, second_filter=True)
            without, _ = index.range_query(q, 6.0, second_filter=False)
            assert with_filter == without

    def test_prunes_and_saves_dtw(self, index, queries):
        total_pruned = 0
        for q in queries:
            _, s_on = index.range_query(q, 6.0, second_filter=True)
            _, s_off = index.range_query(q, 6.0, second_filter=False)
            pruned = s_on.extra.get("second_filter_pruned", 0)
            total_pruned += pruned
            assert s_on.dtw_computations == s_off.dtw_computations - pruned
            assert s_on.candidates == s_off.candidates
        assert total_pruned > 0

    def test_matches_ground_truth(self, index, queries):
        for q in queries:
            results, _ = index.range_query(q, 8.0)
            truth = index.ground_truth_range(q, 8.0)
            assert [i for i, _ in results] == [i for i, _ in truth]


class TestKnnSecondFilter:
    def test_knn_still_exact(self, index, queries):
        for q in queries:
            got, stats = index.knn_query(q, 10)
            truth = index.ground_truth_knn(q, 10)
            assert np.allclose([d for _, d in got], [d for _, d in truth])

    def test_knn_prunes_dtw_computations(self, index, queries):
        """With the cascade, refined count + pruned count = candidates."""
        for q in queries:
            _, stats = index.knn_query(q, 5)
            pruned = stats.extra.get("second_filter_pruned", 0)
            assert stats.dtw_computations + pruned == stats.candidates
