"""Tests for the k-means cluster index backend."""

import numpy as np
import pytest

from repro.core.normal_form import NormalForm
from repro.datasets.generators import random_walks
from repro.index.cluster import ClusterIndex
from repro.index.gemini import WarpingIndex


def brute(points, lo, hi, radius):
    gap = np.maximum(lo - points, 0.0) + np.maximum(points - hi, 0.0)
    return set(np.nonzero(np.sqrt(np.sum(gap * gap, axis=1)) <= radius)[0].tolist())


class TestConstruction:
    def test_default_cluster_count(self, rng):
        index = ClusterIndex(rng.normal(size=(400, 4)))
        assert 2 <= index.cluster_count <= 20  # ~sqrt(400)
        assert len(index) == 400

    def test_empty(self):
        index = ClusterIndex(np.zeros((0, 3)))
        assert len(index) == 0
        assert index.range_search(np.zeros(3), np.zeros(3), 1.0) == []

    def test_single_point(self):
        index = ClusterIndex(np.ones((1, 2)))
        assert index.range_search(np.ones(2), np.ones(2), 0.0) == [0]

    def test_deterministic(self, rng):
        pts = rng.normal(size=(200, 3))
        a = ClusterIndex(pts, seed=4)
        b = ClusterIndex(pts, seed=4)
        q = np.zeros(3)
        assert sorted(a.range_search(q, q, 2.0)) == sorted(
            b.range_search(q, q, 2.0)
        )

    def test_validation(self, rng):
        with pytest.raises(ValueError, match="2-D"):
            ClusterIndex(np.zeros(4))
        with pytest.raises(ValueError, match="ids"):
            ClusterIndex(np.zeros((3, 2)), ids=[1])


class TestQueries:
    def test_range_matches_brute_force(self, rng):
        pts = rng.normal(size=(500, 4))
        index = ClusterIndex(pts)
        for _ in range(5):
            q = rng.normal(size=4)
            for radius in (0.5, 1.5, 3.0):
                assert set(index.range_search(q, q, radius)) == brute(
                    pts, q, q, radius
                )

    def test_rectangle_query(self, rng):
        pts = rng.normal(size=(300, 3))
        index = ClusterIndex(pts)
        lo = np.array([-0.5, -0.3, 0.0])
        hi = np.array([0.5, 0.6, 0.4])
        assert set(index.range_search(lo, hi, 0.7)) == brute(pts, lo, hi, 0.7)

    def test_nearest_sorted_and_complete(self, rng):
        pts = rng.normal(size=(150, 3))
        index = ClusterIndex(pts)
        q = rng.normal(size=3)
        got = list(index.nearest(q, q))
        assert len(got) == 150
        dists = [d for d, _ in got]
        assert dists == sorted(dists)
        assert np.allclose(
            np.sort(dists), np.sort(np.linalg.norm(pts - q, axis=1))
        )

    def test_pruning_saves_pages_on_clustered_data(self, rng):
        clusters = np.concatenate(
            [rng.normal(c, 0.2, size=(200, 4)) for c in (-5.0, 0.0, 5.0)]
        )
        index = ClusterIndex(clusters)
        index.reset_stats()
        q = np.full(4, 5.0)
        index.range_search(q, q, 0.5)
        assert index.page_accesses < index.cluster_count + 1

    def test_manhattan_metric(self, rng):
        pts = rng.normal(size=(200, 3))
        index = ClusterIndex(pts)
        q = rng.normal(size=3)
        got = set(index.range_search(q, q, 2.0, metric="manhattan"))
        expected = set(
            np.nonzero(np.sum(np.abs(pts - q), axis=1) <= 2.0)[0].tolist()
        )
        assert got == expected


class TestMaintenance:
    def test_insert_then_found(self, rng):
        index = ClusterIndex(rng.normal(size=(50, 2)))
        p = np.array([9.0, 9.0])
        index.insert(p, "new")
        assert "new" in index.range_search(p, p, 1e-9)
        assert len(index) == 51

    def test_delete(self, rng):
        pts = rng.normal(size=(60, 2))
        index = ClusterIndex(pts)
        assert index.delete(pts[5], 5)
        assert 5 not in index.range_search(pts[5], pts[5], 1e-9)
        assert not index.delete(pts[5], 5)

    def test_insert_into_empty(self):
        index = ClusterIndex(np.zeros((0, 2)))
        index.insert(np.array([1.0, 2.0]), "only")
        assert index.range_search(np.array([1.0, 2.0]),
                                  np.array([1.0, 2.0]), 0.0) == ["only"]


class TestAsWarpingBackend:
    def test_exact_answers(self):
        walks = list(random_walks(200, 96, seed=44))
        index = WarpingIndex(
            walks, delta=0.1, index_kind="cluster",
            normal_form=NormalForm(length=64),
        )
        query = random_walks(1, 96, seed=45)[0]
        for eps in (3.0, 8.0):
            results, _ = index.range_query(query, eps)
            truth = index.ground_truth_range(query, eps)
            assert [i for i, _ in results] == [i for i, _ in truth]
        knn, _ = index.knn_query(query, 5)
        ktruth = index.ground_truth_knn(query, 5)
        assert np.allclose([d for _, d in knn], [d for _, d in ktruth])
