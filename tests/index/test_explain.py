"""Tests for the bound-cascade explanation API."""

import numpy as np
import pytest

from repro.core.normal_form import NormalForm
from repro.datasets.generators import random_walks
from repro.index.gemini import WarpingIndex


@pytest.fixture(scope="module")
def index():
    walks = list(random_walks(60, 96, seed=90))
    return WarpingIndex(walks, delta=0.1, normal_form=NormalForm(length=64))


class TestExplain:
    def test_cascade_ordering(self, index):
        """feature_lb <= envelope_lb <= exact_dtw, for every pair."""
        queries = random_walks(3, 96, seed=91)
        for q in queries:
            for item_id in (0, 17, 42):
                info = index.explain(q, item_id)
                assert info["feature_lb"] <= info["envelope_lb"] + 1e-9
                assert info["envelope_lb"] <= info["exact_dtw"] + 1e-9

    def test_self_explain_all_zero(self, index):
        walks = random_walks(60, 96, seed=90)
        info = index.explain(walks[5], 5)
        assert info["feature_lb"] == pytest.approx(0.0, abs=1e-9)
        assert info["envelope_lb"] == pytest.approx(0.0, abs=1e-9)
        assert info["exact_dtw"] == pytest.approx(0.0, abs=1e-9)

    def test_config_echoed(self, index):
        info = index.explain(random_walks(1, 96, seed=92)[0], 0)
        assert info["delta"] == 0.1
        assert info["metric"] == "euclidean"
        assert info["band"] >= 1
        assert info["item_id"] == 0

    def test_unknown_id(self, index):
        with pytest.raises(KeyError, match="not in the index"):
            index.explain(np.zeros(96), "missing")

    def test_manhattan_cascade(self):
        walks = list(random_walks(40, 96, seed=93))
        index = WarpingIndex(walks, delta=0.1, metric="manhattan",
                             normal_form=NormalForm(length=64))
        q = random_walks(1, 96, seed=94)[0]
        info = index.explain(q, 3)
        assert info["metric"] == "manhattan"
        assert info["feature_lb"] <= info["envelope_lb"] + 1e-9
        assert info["envelope_lb"] <= info["exact_dtw"] + 1e-9
