"""Unit and integration tests for subsequence matching."""

import numpy as np
import pytest

from repro.core.normal_form import NormalForm
from repro.index.subsequence import SubsequenceIndex, SubsequenceMatch


@pytest.fixture(scope="module")
def songs():
    """Ten long 'songs' with a known planted motif in song 3."""
    rng = np.random.default_rng(5)
    seqs = [np.cumsum(rng.normal(size=400)) for _ in range(10)]
    return seqs


@pytest.fixture(scope="module")
def index(songs):
    return SubsequenceIndex(
        songs, window_lengths=(64,), stride=8, delta=0.1,
        normal_form=NormalForm(length=64),
    )


class TestConstruction:
    def test_window_count(self, songs, index):
        per_seq = (400 - 64) // 8 + 1
        assert index.window_count == per_seq * len(songs)

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="empty"):
            SubsequenceIndex([])

    def test_rejects_bad_stride(self, songs):
        with pytest.raises(ValueError, match="stride"):
            SubsequenceIndex(songs, stride=0)

    def test_rejects_tiny_windows(self, songs):
        with pytest.raises(ValueError, match="window lengths"):
            SubsequenceIndex(songs, window_lengths=(1,))

    def test_all_sequences_too_short(self):
        with pytest.raises(ValueError, match="no windows"):
            SubsequenceIndex([np.zeros(10)], window_lengths=(64,))

    def test_short_sequences_skipped_not_fatal(self):
        rng = np.random.default_rng(0)
        seqs = [np.zeros(10), np.cumsum(rng.normal(size=100))]
        idx = SubsequenceIndex(seqs, window_lengths=(64,), stride=16,
                               normal_form=NormalForm(length=64))
        assert idx.window_count > 0

    def test_multi_scale_windows(self, songs):
        idx = SubsequenceIndex(
            songs[:3], window_lengths=(64, 128), stride=32,
            normal_form=NormalForm(length=64),
        )
        lengths = {length for _, _, length in idx._windows}
        assert lengths == {64, 128}

    def test_custom_ids(self, songs):
        idx = SubsequenceIndex(
            songs[:3], ids=["a", "b", "c"], window_lengths=(64,),
            stride=32, normal_form=NormalForm(length=64),
        )
        matches, _ = idx.range_query(songs[1][64:128], 1e-6)
        assert matches and matches[0].sequence_id == "b"


class TestRangeQuery:
    def test_planted_excerpt_found(self, songs, index):
        """A window cut straight from a song matches at distance ~0."""
        excerpt = songs[3][96:160]
        matches, stats = index.range_query(excerpt, 1e-9)
        assert matches
        top = matches[0]
        assert top.sequence_id == 3
        assert top.start == 96
        assert top.distance == pytest.approx(0.0, abs=1e-9)

    def test_transposed_excerpt_found(self, songs, index):
        matches, _ = index.range_query(songs[5][40:104] + 12.0, 1e-6)
        assert matches and matches[0].sequence_id == 5

    def test_offgrid_excerpt_found_with_slack(self, songs, index):
        """An excerpt not aligned to the stride matches a neighbouring
        window — within one stride of the true offset, given a radius
        that accommodates the few-sample misalignment."""
        excerpt = songs[2][101:165]
        matches, _ = index.range_query(excerpt, 12.0)
        assert any(m.sequence_id == 2 and abs(m.start - 101) <= 8
                   for m in matches)
        # And the nearest match overall is that neighbouring window.
        top, _ = index.knn_query(excerpt, 1)
        assert top[0].sequence_id == 2
        assert abs(top[0].start - 101) <= 8

    def test_matches_ground_truth(self, songs, index):
        query = songs[0][10:74] + np.linspace(0, 0.5, 64)
        for eps in (1.0, 4.0):
            got, stats = index.range_query(query, eps)
            truth = index.ground_truth_range(query, eps)
            assert [(m.sequence_id, m.start) for m in got] == [
                (m.sequence_id, m.start) for m in truth
            ]
            assert stats.results == len(truth)

    def test_best_per_sequence_dedup(self, songs, index):
        query = songs[7][200:264]
        all_matches, _ = index.range_query(query, 8.0, best_per_sequence=False)
        deduped, _ = index.range_query(query, 8.0, best_per_sequence=True)
        ids = [m.sequence_id for m in deduped]
        assert len(ids) == len(set(ids))
        assert len(deduped) <= len(all_matches)

    def test_sorted_by_distance(self, songs, index):
        matches, _ = index.range_query(songs[1][0:64], 10.0,
                                       best_per_sequence=False)
        dists = [m.distance for m in matches]
        assert dists == sorted(dists)

    def test_rejects_negative_epsilon(self, index):
        with pytest.raises(ValueError, match="epsilon"):
            index.range_query(np.zeros(64), -1.0)


class TestKnnQuery:
    def test_k_sequences_returned(self, songs, index):
        matches, stats = index.knn_query(songs[4][120:184], 3)
        assert len(matches) == 3
        assert matches[0].sequence_id == 4
        assert matches[0].distance == pytest.approx(0.0, abs=1e-9)
        ids = [m.sequence_id for m in matches]
        assert len(set(ids)) == 3

    def test_knn_matches_ground_truth_top1(self, songs, index):
        query = songs[6][64:128] - 3.0
        matches, _ = index.knn_query(query, 1)
        truth = index.ground_truth_range(query, np.inf)
        assert matches[0].sequence_id == truth[0].sequence_id
        assert matches[0].distance == pytest.approx(truth[0].distance)

    def test_knn_without_dedup_counts_windows(self, songs, index):
        matches, _ = index.knn_query(songs[4][120:184], 5,
                                     best_per_sequence=False)
        assert len(matches) == 5
        dists = [m.distance for m in matches]
        assert dists == sorted(dists)

    def test_knn_prunes(self, songs, index):
        _, stats = index.knn_query(songs[0][0:64], 2)
        assert stats.dtw_computations < index.window_count

    def test_rejects_bad_k(self, index):
        with pytest.raises(ValueError, match="k must"):
            index.knn_query(np.zeros(64), 0)


class TestMatchDataclass:
    def test_fields(self):
        match = SubsequenceMatch("song", 10, 64, 1.5)
        assert match.sequence_id == "song"
        assert match.start == 10
        assert match.length == 64
        assert match.distance == 1.5
