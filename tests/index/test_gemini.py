"""Unit and integration tests for the GEMINI warping index."""

import numpy as np
import pytest

from repro.core.envelope_transforms import (
    KeoghPAAEnvelopeTransform,
    SignSplitEnvelopeTransform,
)
from repro.core.normal_form import NormalForm
from repro.core.transforms import DFTTransform
from repro.index.gemini import WarpingIndex


@pytest.fixture(scope="module")
def walks():
    rng = np.random.default_rng(77)
    return [np.cumsum(rng.normal(size=int(rng.integers(60, 140)))) for _ in range(150)]


@pytest.fixture(scope="module")
def built_index(walks):
    return WarpingIndex(
        walks, delta=0.1, normal_form=NormalForm(length=64), n_features=8,
        capacity=16,
    )


@pytest.fixture(scope="module")
def query():
    rng = np.random.default_rng(99)
    return np.cumsum(rng.normal(size=100))


class TestConstruction:
    def test_sizes(self, built_index):
        assert len(built_index) == 150
        assert built_index.feature_dim == 8
        assert built_index.normal_length == 64

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="empty"):
            WarpingIndex([], delta=0.1)

    def test_rejects_bad_index_kind(self, walks):
        with pytest.raises(ValueError, match="index_kind"):
            WarpingIndex(walks[:5], delta=0.1, index_kind="btree")

    def test_rejects_mismatched_transform(self, walks):
        env_t = KeoghPAAEnvelopeTransform(32, 4)
        with pytest.raises(ValueError, match="normal form"):
            WarpingIndex(
                walks[:5], delta=0.1, env_transform=env_t,
                normal_form=NormalForm(length=64),
            )

    def test_rejects_duplicate_ids(self, walks):
        with pytest.raises(ValueError, match="unique"):
            WarpingIndex(walks[:3], delta=0.1, ids=[1, 1, 2])

    def test_rejects_none_length(self, walks):
        with pytest.raises(ValueError, match="fixed normal-form length"):
            WarpingIndex(walks[:3], delta=0.1, normal_form=NormalForm(length=None))

    def test_custom_ids_in_results(self, walks):
        idx = WarpingIndex(
            walks[:10], delta=0.1, ids=[f"w{i}" for i in range(10)],
            normal_form=NormalForm(length=64),
        )
        results, _ = idx.range_query(walks[0], 100.0)
        assert all(isinstance(item, str) for item, _ in results)

    def test_normalized_accessor(self, built_index, walks):
        stored = built_index.normalized(0)
        assert stored.size == 64
        assert stored.mean() == pytest.approx(0.0, abs=1e-9)


class TestRangeQuery:
    @pytest.mark.parametrize("kind", ["rstar", "grid", "linear"])
    def test_exact_answers_all_backends(self, walks, query, kind):
        idx = WarpingIndex(
            walks, delta=0.1, normal_form=NormalForm(length=64),
            index_kind=kind, capacity=16,
        )
        for eps in (2.0, 5.0, 12.0):
            results, stats = idx.range_query(query, eps)
            truth = idx.ground_truth_range(query, eps)
            assert [i for i, _ in results] == [i for i, _ in truth]
            assert stats.results == len(truth)
            assert stats.candidates >= len(truth)  # no false negatives

    def test_self_query_returns_self_first(self, built_index, walks):
        results, _ = built_index.range_query(walks[7], 1e-9)
        assert results and results[0][0] == 7

    def test_results_sorted(self, built_index, query):
        results, _ = built_index.range_query(query, 15.0)
        dists = [d for _, d in results]
        assert dists == sorted(dists)

    def test_stats_counters_consistent(self, built_index, query):
        results, stats = built_index.range_query(query, 8.0)
        pruned = stats.extra.get("second_filter_pruned", 0)
        assert stats.dtw_computations + pruned == stats.candidates
        assert stats.results == len(results)
        assert 0.0 <= stats.precision <= 1.0

    def test_rejects_negative_epsilon(self, built_index, query):
        with pytest.raises(ValueError, match="epsilon"):
            built_index.range_query(query, -1.0)

    def test_tighter_transform_fewer_candidates(self, walks, query):
        """New_PAA (default) should retrieve no more candidates than
        Keogh_PAA at the same query."""
        kwargs = dict(delta=0.1, normal_form=NormalForm(length=64), capacity=16)
        new = WarpingIndex(walks, **kwargs)
        keogh = WarpingIndex(
            walks, env_transform=KeoghPAAEnvelopeTransform(64, 8), **kwargs
        )
        _, stats_new = new.range_query(query, 8.0)
        _, stats_keogh = keogh.range_query(query, 8.0)
        assert stats_new.candidates <= stats_keogh.candidates

    def test_dft_backend_also_exact(self, walks, query):
        idx = WarpingIndex(
            walks, delta=0.1,
            env_transform=SignSplitEnvelopeTransform(DFTTransform(64, 8)),
            normal_form=NormalForm(length=64),
        )
        results, _ = idx.range_query(query, 6.0)
        truth = idx.ground_truth_range(query, 6.0)
        assert [i for i, _ in results] == [i for i, _ in truth]


class TestBatchQueries:
    def test_range_query_many_matches_singles(self, built_index):
        rng = np.random.default_rng(7)
        queries = [np.cumsum(rng.normal(size=100)) for _ in range(3)]
        batch_results, total = built_index.range_query_many(queries, 6.0)
        singles = [built_index.range_query(q, 6.0) for q in queries]
        assert batch_results == [r for r, _ in singles]
        assert total.candidates == sum(s.candidates for _, s in singles)
        assert total.page_accesses == sum(s.page_accesses for _, s in singles)

    def test_knn_query_many_matches_singles(self, built_index):
        rng = np.random.default_rng(8)
        queries = [np.cumsum(rng.normal(size=100)) for _ in range(3)]
        batch_results, total = built_index.knn_query_many(queries, 4)
        for query, results in zip(queries, batch_results):
            single, _ = built_index.knn_query(query, 4)
            assert results == single
        assert total.results == 12


class TestKnnQuery:
    def test_matches_ground_truth_distances(self, built_index, query):
        got, stats = built_index.knn_query(query, 10)
        truth = built_index.ground_truth_knn(query, 10)
        assert len(got) == 10
        assert np.allclose([d for _, d in got], [d for _, d in truth])
        assert stats.candidates <= len(built_index)

    def test_k_one(self, built_index, walks):
        got, _ = built_index.knn_query(walks[33], 1)
        assert got[0][0] == 33
        assert got[0][1] == pytest.approx(0.0, abs=1e-9)

    def test_k_exceeds_database(self, walks, query):
        idx = WarpingIndex(walks[:5], delta=0.1, normal_form=NormalForm(length=64))
        got, _ = idx.knn_query(query, 50)
        assert len(got) == 5

    def test_rejects_bad_k(self, built_index, query):
        with pytest.raises(ValueError, match="k must be"):
            built_index.knn_query(query, 0)

    def test_multistep_prunes(self, built_index, query):
        """The optimal multi-step algorithm must not refine everything."""
        _, stats = built_index.knn_query(query, 5)
        assert stats.dtw_computations < len(built_index)
