"""Backend contract: all four index backends behave identically.

A property suite parametrised over every backend, checking the full
interface contract — range/nearest correctness against brute force,
insert/delete round trips, metric support, stats accounting — under
randomised operation sequences.  Any new backend registered with
``WarpingIndex`` should be added here and pass unchanged.
"""

import numpy as np
import pytest

from repro.index.cluster import ClusterIndex
from repro.index.gridfile import GridFile
from repro.index.linear_scan import LinearScan
from repro.index.rstartree import RStarTree

DIM = 4


def build(kind: str, points, ids=None):
    if kind == "rstar":
        return RStarTree.bulk_load(points, ids, capacity=8)
    if kind == "grid":
        return GridFile(points, ids, resolution=4)
    if kind == "cluster":
        return ClusterIndex(points, ids)
    if kind == "linear":
        return LinearScan(points, ids)
    raise AssertionError(kind)


BACKENDS = ("rstar", "grid", "cluster", "linear")


def brute(points, lo, hi, radius, manhattan=False):
    gap = np.maximum(lo - points, 0.0) + np.maximum(points - hi, 0.0)
    if manhattan:
        dist = np.sum(gap, axis=1)
    else:
        dist = np.sqrt(np.sum(gap * gap, axis=1))
    return set(np.nonzero(dist <= radius)[0].tolist())


@pytest.mark.parametrize("kind", BACKENDS)
class TestContract:
    def test_point_range(self, kind, rng):
        pts = rng.normal(size=(250, DIM))
        index = build(kind, pts)
        for _ in range(4):
            q = rng.normal(size=DIM)
            for radius in (0.5, 1.5):
                assert set(index.range_search(q, q, radius)) == brute(
                    pts, q, q, radius
                )

    def test_rect_range_manhattan(self, kind, rng):
        pts = rng.normal(size=(200, DIM))
        index = build(kind, pts)
        lo = np.full(DIM, -0.4)
        hi = np.full(DIM, 0.4)
        got = set(index.range_search(lo, hi, 1.0, metric="manhattan"))
        assert got == brute(pts, lo, hi, 1.0, manhattan=True)

    def test_nearest_order_and_completeness(self, kind, rng):
        pts = rng.normal(size=(120, DIM))
        index = build(kind, pts)
        q = rng.normal(size=DIM)
        ranked = list(index.nearest(q, q))
        assert len(ranked) == 120
        dists = [d for d, _ in ranked]
        assert all(a <= b + 1e-9 for a, b in zip(dists, dists[1:]))
        assert np.allclose(
            np.sort(dists), np.sort(np.linalg.norm(pts - q, axis=1)),
            atol=1e-9,
        )

    def test_insert_delete_roundtrip(self, kind, rng):
        pts = rng.normal(size=(60, DIM))
        index = build(kind, pts)
        extra = rng.normal(size=DIM)
        index.insert(extra, "extra")
        assert "extra" in index.range_search(extra, extra, 1e-9)
        assert index.delete(extra, "extra")
        assert "extra" not in index.range_search(extra, extra, 1e-9)
        assert not index.delete(extra, "extra")

    def test_random_operation_sequence(self, kind, rng):
        """Interleaved inserts/deletes keep queries exact."""
        index = build(kind, np.zeros((0, DIM)))
        alive = {}
        counter = 0
        for _ in range(150):
            if alive and rng.random() < 0.35:
                victim = rng.choice(list(alive))
                assert index.delete(alive[victim], victim)
                del alive[victim]
            else:
                p = rng.normal(size=DIM)
                index.insert(p, counter)
                alive[counter] = p
                counter += 1
        assert len(index) == len(alive)
        q = rng.normal(size=DIM)
        expected = {
            key for key, p in alive.items()
            if float(np.linalg.norm(p - q)) <= 1.5
        }
        assert set(index.range_search(q, q, 1.5)) == expected

    def test_page_accesses_accumulate_and_reset(self, kind, rng):
        pts = rng.normal(size=(100, DIM))
        index = build(kind, pts)
        index.reset_stats()
        assert index.page_accesses == 0
        index.range_search(np.zeros(DIM), np.zeros(DIM), 1.0)
        first = index.page_accesses
        assert first > 0
        index.range_search(np.zeros(DIM), np.zeros(DIM), 1.0)
        assert index.page_accesses == 2 * first
        index.reset_stats()
        assert index.page_accesses == 0

    def test_rejects_bad_metric(self, kind, rng):
        index = build(kind, rng.normal(size=(10, DIM)))
        with pytest.raises(ValueError, match="metric"):
            index.range_search(np.zeros(DIM), np.zeros(DIM), 1.0,
                               metric="chebyshev")
