"""Stateful (model-based) testing of the R*-tree.

Hypothesis drives random interleavings of insert/delete/query against
a trivial dictionary model; after every step the tree must agree with
the model exactly and keep its structural invariants.  This is the
strongest correctness net for the condense/reinsert machinery.
"""

import numpy as np
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)

from repro.index.rstartree import RStarTree

coord = st.floats(min_value=-8, max_value=8, allow_nan=False, width=32)
point = st.tuples(coord, coord, coord)


class RStarModel(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.tree = RStarTree(3, capacity=4)
        self.model: dict[int, np.ndarray] = {}
        self.counter = 0

    @rule(p=point)
    def insert(self, p):
        arr = np.array(p, dtype=np.float64)
        self.tree.insert(arr, self.counter)
        self.model[self.counter] = arr
        self.counter += 1

    @precondition(lambda self: self.model)
    @rule(data=st.data())
    def delete_existing(self, data):
        key = data.draw(st.sampled_from(sorted(self.model)))
        assert self.tree.delete(self.model[key], key)
        del self.model[key]

    @rule(p=point)
    def delete_missing(self, p):
        assert not self.tree.delete(np.array(p, dtype=np.float64), -1)

    @rule(q=point, radius=st.floats(0, 6, allow_nan=False))
    def range_query_matches_model(self, q, radius):
        centre = np.array(q, dtype=np.float64)
        expected = {
            key for key, stored in self.model.items()
            if float(np.linalg.norm(stored - centre)) <= radius
        }
        got = set(self.tree.range_search(centre, centre, radius))
        assert got == expected

    @invariant()
    def size_matches(self):
        assert len(self.tree) == len(self.model)

    @invariant()
    def structure_valid(self):
        self.tree.check_invariants()


TestRStarStateful = RStarModel.TestCase
TestRStarStateful.settings = settings(
    max_examples=25, stateful_step_count=40, deadline=None
)
