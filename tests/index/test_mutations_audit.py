"""Every WarpingIndex mutator bumps ``mutations`` exactly once.

The serve layer's versioned result cache and the sharded tier's
``(mutations, epoch)`` respawn key both trust this counter: a mutator
that forgets to bump it leaves stale cached answers live, and one that
bumps twice respawns shard fleets twice per swap.  This audit pins the
contract for all three mutators — ``insert``, ``remove`` and
``swap_generation`` — along with the engine-cache invalidation that
must ride on the same bump.
"""

import numpy as np
import pytest

from repro.core.normal_form import NormalForm
from repro.index.gemini import WarpingIndex
from repro.ingest import StreamingIndexBuilder


def _walks(count, length=100, seed=3):
    rng = np.random.default_rng(seed)
    return [np.cumsum(rng.normal(size=length)) for _ in range(count)]


@pytest.fixture
def index():
    return WarpingIndex(_walks(8), delta=0.1,
                        ids=[f"m{i}" for i in range(8)],
                        normal_form=NormalForm(length=64))


def test_insert_bumps_exactly_once_and_drops_engine_cache(index):
    engine = index.engine()
    before = index.mutations
    index.insert(_walks(1, seed=50)[0], "new")
    assert index.mutations == before + 1
    assert index.engine() is not engine


def test_remove_bumps_exactly_once_and_drops_engine_cache(index):
    engine = index.engine()
    before = index.mutations
    index.remove("m3")
    assert index.mutations == before + 1
    assert index.engine() is not engine


def test_swap_generation_bumps_exactly_once_and_drops_engine_cache(tmp_path):
    root = str(tmp_path / "store")
    builder = StreamingIndexBuilder(root, normal_form=NormalForm(length=64))
    store, _ = builder.build(_walks(8), [f"m{i}" for i in range(8)])
    index = WarpingIndex.from_store(store)
    engine = index.engine()
    before = index.mutations
    next_store, _ = StreamingIndexBuilder.for_store(store).build(
        _walks(2, seed=60), ["x0", "x1"], base=store
    )
    index.swap_generation(next_store)
    assert index.mutations == before + 1
    assert index.engine() is not engine


def test_failed_mutations_leave_the_counter_alone(index):
    before = index.mutations
    with pytest.raises(ValueError):
        index.insert(_walks(1)[0], "m0")  # duplicate id
    with pytest.raises(KeyError):
        index.remove("absent")
    with pytest.raises(ValueError):
        index.swap_generation(None)  # in-memory index has no store
    assert index.mutations == before


def test_no_mutator_escapes_the_audit():
    """Fail loudly if a new public method rebinds corpus state without
    featuring in this audit — the cache contract must be extended with
    it."""
    audited = {"insert", "remove", "swap_generation"}
    corpus_state = {"_data", "_features", "_index", "ids", "_id_to_row"}
    import inspect

    suspects = set()
    for name, member in vars(WarpingIndex).items():
        if name.startswith("__") or not inspect.isfunction(member):
            continue
        source = inspect.getsource(member)
        writes = any(f"self.{attr} =" in source
                     or f"self.{attr}.append" in source
                     or f"self.{attr}.pop" in source
                     for attr in corpus_state)
        if writes and "setattr" not in source:
            suspects.add(name)
    helpers = {"_store_state"}  # pure constructor, mutates nothing
    unaudited = suspects - audited - helpers
    assert not unaudited, (
        f"methods {sorted(unaudited)} rebind corpus state but are not "
        "covered by the mutations audit"
    )
