"""Unit tests for the R*-tree."""

import numpy as np
import pytest

from repro.index.rstartree import RStarTree


def brute_range(points, q, radius):
    return set(np.nonzero(np.linalg.norm(points - q, axis=1) <= radius)[0].tolist())


def brute_rect_range(points, lo, hi, radius):
    gap = np.maximum(lo - points, 0.0) + np.maximum(points - hi, 0.0)
    return set(np.nonzero(np.sqrt(np.sum(gap * gap, axis=1)) <= radius)[0].tolist())


class TestConstruction:
    def test_empty_tree(self):
        tree = RStarTree(4)
        assert len(tree) == 0
        assert tree.range_search(np.zeros(4), np.zeros(4), 1.0) == []

    def test_insert_builds_valid_tree(self, rng):
        tree = RStarTree(3, capacity=8)
        pts = rng.normal(size=(300, 3))
        for i, p in enumerate(pts):
            tree.insert(p, i)
        assert len(tree) == 300
        tree.check_invariants()

    def test_bulk_load_valid(self, rng):
        pts = rng.normal(size=(1000, 5))
        tree = RStarTree.bulk_load(pts, capacity=20)
        assert len(tree) == 1000
        tree.check_invariants()

    def test_bulk_load_empty(self):
        tree = RStarTree.bulk_load(np.zeros((0, 4)))
        assert len(tree) == 0

    def test_bulk_load_single_point(self):
        tree = RStarTree.bulk_load(np.ones((1, 2)))
        assert len(tree) == 1
        assert tree.range_search(np.ones(2), np.ones(2), 0.0) == [0]

    def test_bulk_load_custom_ids(self, rng):
        pts = rng.normal(size=(10, 2))
        tree = RStarTree.bulk_load(pts, ids=[f"s{i}" for i in range(10)])
        hits = tree.range_search(pts[3], pts[3], 1e-9)
        assert "s3" in hits

    def test_insert_rejects_wrong_dim(self):
        tree = RStarTree(3)
        with pytest.raises(ValueError, match="shape"):
            tree.insert(np.zeros(4), 0)

    def test_duplicate_points_all_kept(self):
        tree = RStarTree(2, capacity=4)
        for i in range(20):
            tree.insert(np.array([1.0, 1.0]), i)
        hits = tree.range_search(np.ones(2), np.ones(2), 0.0)
        assert sorted(hits) == list(range(20))
        tree.check_invariants()

    def test_capacity_validation(self):
        with pytest.raises(ValueError, match=">= 4"):
            RStarTree(2, capacity=2)
        with pytest.raises(ValueError, match="dimension"):
            RStarTree(0)
        with pytest.raises(ValueError, match="min fill"):
            RStarTree(2, min_fill=0.9)

    def test_height_grows(self, rng):
        tree = RStarTree.bulk_load(rng.normal(size=(500, 2)), capacity=8)
        assert tree.height >= 3


class TestRangeSearch:
    @pytest.mark.parametrize("builder", ["insert", "bulk"])
    def test_point_query_matches_brute_force(self, rng, builder):
        pts = rng.normal(size=(400, 4))
        if builder == "bulk":
            tree = RStarTree.bulk_load(pts, capacity=16)
        else:
            tree = RStarTree(4, capacity=16)
            for i, p in enumerate(pts):
                tree.insert(p, i)
        for _ in range(5):
            q = rng.normal(size=4)
            for radius in (0.5, 1.0, 2.5):
                assert set(tree.range_search(q, q, radius)) == brute_range(
                    pts, q, radius
                )

    def test_rectangle_query_matches_brute_force(self, rng):
        pts = rng.normal(size=(300, 3))
        tree = RStarTree.bulk_load(pts, capacity=10)
        lo = np.array([-0.5, -0.5, -0.5])
        hi = np.array([0.5, 0.7, 0.2])
        for radius in (0.0, 0.4, 1.5):
            assert set(tree.range_search(lo, hi, radius)) == brute_rect_range(
                pts, lo, hi, radius
            )

    def test_zero_radius_rectangle_contains(self, rng):
        pts = rng.uniform(-1, 1, size=(100, 2))
        tree = RStarTree.bulk_load(pts, capacity=8)
        lo, hi = np.array([-0.5, -0.5]), np.array([0.5, 0.5])
        expected = set(
            np.nonzero(np.all((pts >= lo) & (pts <= hi), axis=1))[0].tolist()
        )
        assert set(tree.range_search(lo, hi, 0.0)) == expected

    def test_page_accesses_counted(self, rng):
        pts = rng.normal(size=(500, 3))
        tree = RStarTree.bulk_load(pts, capacity=10)
        tree.reset_stats()
        tree.range_search(np.zeros(3), np.zeros(3), 0.1)
        narrow = tree.page_accesses
        tree.reset_stats()
        tree.range_search(np.zeros(3), np.zeros(3), 10.0)
        wide = tree.page_accesses
        assert 0 < narrow < wide

    def test_rejects_bad_rectangle(self, rng):
        tree = RStarTree.bulk_load(rng.normal(size=(10, 2)))
        with pytest.raises(ValueError, match="lower > upper"):
            tree.range_search(np.ones(2), np.zeros(2), 1.0)
        with pytest.raises(ValueError, match="radius"):
            tree.range_search(np.zeros(2), np.zeros(2), -1.0)


class TestNearest:
    def test_order_matches_brute_force(self, rng):
        pts = rng.normal(size=(200, 3))
        tree = RStarTree.bulk_load(pts, capacity=8)
        q = rng.normal(size=3)
        expected = np.sort(np.linalg.norm(pts - q, axis=1))
        got = [d for d, _ in tree.nearest(q, q)]
        assert np.allclose(got, expected)

    def test_incremental_stops_early_saves_pages(self, rng):
        pts = rng.normal(size=(2000, 4))
        tree = RStarTree.bulk_load(pts, capacity=20)
        tree.reset_stats()
        consumed = []
        for dist, item in tree.nearest(np.zeros(4), np.zeros(4)):
            consumed.append(item)
            if len(consumed) == 5:
                break
        partial = tree.page_accesses
        tree.reset_stats()
        list(tree.nearest(np.zeros(4), np.zeros(4)))
        full = tree.page_accesses
        assert partial < full

    def test_rectangle_nearest(self, rng):
        pts = rng.normal(size=(100, 2))
        tree = RStarTree.bulk_load(pts, capacity=8)
        lo, hi = np.array([-0.2, -0.2]), np.array([0.2, 0.2])
        gap = np.maximum(lo - pts, 0.0) + np.maximum(pts - hi, 0.0)
        expected = np.sort(np.sqrt(np.sum(gap * gap, axis=1)))
        got = [d for d, _ in tree.nearest(lo, hi)]
        assert np.allclose(got, expected)

    def test_items_iterates_everything(self, rng):
        pts = rng.normal(size=(50, 2))
        tree = RStarTree.bulk_load(pts)
        assert sorted(i for _, i in tree.items()) == list(range(50))


class TestReinsertionAndSplits:
    def test_sequential_inserts_trigger_splits(self, rng):
        """Sorted inserts are the worst case for naive R-trees."""
        tree = RStarTree(2, capacity=6)
        for i in range(200):
            tree.insert(np.array([float(i), float(i % 7)]), i)
        tree.check_invariants()
        assert tree.height >= 3
        q = np.array([100.0, 3.0])
        assert set(tree.range_search(q, q, 1.5)) == {
            i for i in range(200)
            if (i - 100) ** 2 + (i % 7 - 3) ** 2 <= 1.5**2
        }

    def test_clustered_data(self, rng):
        tree = RStarTree(3, capacity=8)
        pts = np.concatenate(
            [rng.normal(c, 0.1, size=(100, 3)) for c in (-5.0, 0.0, 5.0)]
        )
        for i, p in enumerate(pts):
            tree.insert(p, i)
        tree.check_invariants()
        hits = tree.range_search(np.full(3, 5.0), np.full(3, 5.0), 1.0)
        assert set(hits) == brute_range(pts, np.full(3, 5.0), 1.0)
