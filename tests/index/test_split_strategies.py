"""Tests for the alternative node-split strategies (Guttman 1984)."""

import numpy as np
import pytest

from repro.index.rstartree import RStarTree


def brute(points, q, radius):
    return set(np.nonzero(np.linalg.norm(points - q, axis=1) <= radius)[0].tolist())


@pytest.mark.parametrize("strategy", ["rstar", "quadratic", "linear"])
class TestAllStrategies:
    def test_insert_and_query_exact(self, rng, strategy):
        pts = rng.normal(size=(400, 4))
        tree = RStarTree(4, capacity=10, split_strategy=strategy)
        for i, p in enumerate(pts):
            tree.insert(p, i)
        tree.check_invariants()
        for _ in range(3):
            q = rng.normal(size=4)
            assert set(tree.range_search(q, q, 1.2)) == brute(pts, q, 1.2)

    def test_sorted_inserts(self, rng, strategy):
        """Sorted input is the adversarial case for split quality."""
        tree = RStarTree(2, capacity=8, split_strategy=strategy)
        for i in range(300):
            tree.insert(np.array([float(i), float(i % 5)]), i)
        tree.check_invariants()
        q = np.array([150.0, 2.0])
        expected = {
            i for i in range(300)
            if (i - 150) ** 2 + (i % 5 - 2) ** 2 <= 4.0
        }
        assert set(tree.range_search(q, q, 2.0)) == expected

    def test_delete_works(self, rng, strategy):
        pts = rng.normal(size=(120, 3))
        tree = RStarTree(3, capacity=8, split_strategy=strategy)
        for i, p in enumerate(pts):
            tree.insert(p, i)
        for i in range(0, 120, 3):
            assert tree.delete(pts[i], i)
        tree.check_invariants()
        assert len(tree) == 80

    def test_duplicates(self, rng, strategy):
        tree = RStarTree(2, capacity=6, split_strategy=strategy)
        for i in range(40):
            tree.insert(np.array([1.0, 1.0]), i)
        assert sorted(tree.range_search(np.ones(2), np.ones(2), 0.0)) == list(
            range(40)
        )


class TestStrategySelection:
    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError, match="split strategy"):
            RStarTree(2, split_strategy="cubic")

    def test_rstar_quality_at_least_linear(self, rng):
        """R* was designed to beat Guttman's splits on page accesses;
        verify the ordering on clustered data."""
        clusters = np.concatenate(
            [rng.normal(c, 0.3, size=(150, 4)) for c in (-4.0, 0.0, 4.0)]
        )
        order = rng.permutation(len(clusters))
        pages = {}
        for strategy in ("rstar", "linear"):
            tree = RStarTree(4, capacity=10, split_strategy=strategy)
            for i in order:
                tree.insert(clusters[i], int(i))
            tree.reset_stats()
            for centre in (-4.0, 0.0, 4.0):
                q = np.full(4, centre)
                tree.range_search(q, q, 0.5)
            pages[strategy] = tree.page_accesses
        assert pages["rstar"] <= pages["linear"] * 1.2
