"""Unit tests for the grid file."""

import numpy as np
import pytest

from repro.index.gridfile import GridFile


def brute_rect(points, lo, hi, radius):
    gap = np.maximum(lo - points, 0.0) + np.maximum(points - hi, 0.0)
    return set(np.nonzero(np.sqrt(np.sum(gap * gap, axis=1)) <= radius)[0].tolist())


class TestConstruction:
    def test_basic(self, rng):
        pts = rng.normal(size=(100, 3))
        grid = GridFile(pts, resolution=4)
        assert len(grid) == 100
        assert 1 <= grid.bucket_count <= 100

    def test_empty(self):
        grid = GridFile(np.zeros((0, 2)))
        assert len(grid) == 0
        assert grid.range_search(np.zeros(2), np.zeros(2), 1.0) == []

    def test_constant_axis_no_crash(self, rng):
        pts = np.column_stack([rng.normal(size=50), np.full(50, 3.0)])
        grid = GridFile(pts, resolution=4)
        q = np.array([0.0, 3.0])
        assert set(grid.range_search(q, q, 0.5)) == brute_rect(pts, q, q, 0.5)

    def test_custom_ids(self, rng):
        pts = rng.normal(size=(10, 2))
        grid = GridFile(pts, ids=list("abcdefghij"))
        assert "d" in grid.range_search(pts[3], pts[3], 1e-9)

    def test_validation(self, rng):
        with pytest.raises(ValueError, match="2-D"):
            GridFile(np.zeros(5))
        with pytest.raises(ValueError, match="resolution"):
            GridFile(np.zeros((2, 2)), resolution=0)
        with pytest.raises(ValueError, match="ids"):
            GridFile(np.zeros((2, 2)), ids=[1])


class TestRangeSearch:
    def test_matches_brute_force(self, rng):
        pts = rng.normal(size=(500, 4))
        grid = GridFile(pts, resolution=5)
        for _ in range(5):
            q = rng.normal(size=4)
            for radius in (0.3, 1.0, 3.0):
                assert set(grid.range_search(q, q, radius)) == brute_rect(
                    pts, q, q, radius
                )

    def test_rectangle_query(self, rng):
        pts = rng.normal(size=(200, 2))
        grid = GridFile(pts, resolution=6)
        lo, hi = np.array([-1.0, -0.5]), np.array([0.5, 1.0])
        assert set(grid.range_search(lo, hi, 0.5)) == brute_rect(pts, lo, hi, 0.5)

    def test_page_accesses_grow_with_radius(self, rng):
        pts = rng.normal(size=(1000, 3))
        grid = GridFile(pts, resolution=5)
        grid.reset_stats()
        grid.range_search(np.zeros(3), np.zeros(3), 0.2)
        narrow = grid.page_accesses
        grid.reset_stats()
        grid.range_search(np.zeros(3), np.zeros(3), 5.0)
        assert grid.page_accesses > narrow

    def test_rejects_bad_input(self, rng):
        grid = GridFile(rng.normal(size=(10, 2)))
        with pytest.raises(ValueError, match="lower > upper"):
            grid.range_search(np.ones(2), np.zeros(2), 1.0)
        with pytest.raises(ValueError, match="radius"):
            grid.range_search(np.zeros(2), np.zeros(2), -0.1)
        with pytest.raises(ValueError, match="shape"):
            grid.range_search(np.zeros(3), np.zeros(3), 1.0)


class TestNearest:
    def test_sorted_by_distance(self, rng):
        pts = rng.normal(size=(300, 3))
        grid = GridFile(pts, resolution=4)
        q = rng.normal(size=3)
        dists = [d for d, _ in grid.nearest(q, q)]
        assert dists == sorted(dists)

    def test_complete_and_correct(self, rng):
        pts = rng.normal(size=(100, 2))
        grid = GridFile(pts, resolution=4)
        q = np.zeros(2)
        got = list(grid.nearest(q, q))
        assert len(got) == 100
        expected = np.sort(np.linalg.norm(pts - q, axis=1))
        assert np.allclose([d for d, _ in got], expected)
