"""Tests for index deletion across all backends."""

import numpy as np
import pytest

from repro.core.normal_form import NormalForm
from repro.datasets.generators import random_walks
from repro.index.gemini import WarpingIndex
from repro.index.gridfile import GridFile
from repro.index.linear_scan import LinearScan
from repro.index.rstartree import RStarTree


class TestRStarDelete:
    def test_delete_then_absent(self, rng):
        pts = rng.normal(size=(100, 3))
        tree = RStarTree.bulk_load(pts, capacity=8)
        assert tree.delete(pts[42], 42)
        assert len(tree) == 99
        assert 42 not in tree.range_search(pts[42], pts[42], 1e-9)
        tree.check_invariants()

    def test_delete_missing_returns_false(self, rng):
        pts = rng.normal(size=(20, 2))
        tree = RStarTree.bulk_load(pts)
        assert not tree.delete(np.array([99.0, 99.0]), "ghost")
        assert len(tree) == 20

    def test_delete_wrong_id_same_point(self, rng):
        pts = rng.normal(size=(10, 2))
        tree = RStarTree.bulk_load(pts)
        assert not tree.delete(pts[3], 999)
        assert 3 in tree.range_search(pts[3], pts[3], 1e-9)

    def test_delete_everything(self, rng):
        pts = rng.normal(size=(60, 3))
        tree = RStarTree.bulk_load(pts, capacity=6)
        order = rng.permutation(60)
        for i in order:
            assert tree.delete(pts[i], int(i))
        assert len(tree) == 0
        assert tree.range_search(np.zeros(3), np.zeros(3), 100.0) == []

    def test_interleaved_insert_delete_queries_stay_exact(self, rng):
        tree = RStarTree(3, capacity=6)
        alive = {}
        counter = 0
        for _ in range(400):
            if alive and rng.random() < 0.4:
                victim = rng.choice(list(alive))
                assert tree.delete(alive[victim], victim)
                del alive[victim]
            else:
                p = rng.normal(size=3)
                tree.insert(p, counter)
                alive[counter] = p
                counter += 1
        tree.check_invariants()
        q = rng.normal(size=3)
        expected = {
            key for key, p in alive.items()
            if float(np.linalg.norm(p - q)) <= 1.5
        }
        assert set(tree.range_search(q, q, 1.5)) == expected

    def test_condense_reinserts_survivors(self, rng):
        """Deleting most of one cluster must not lose the remainder."""
        cluster_a = rng.normal(0.0, 0.1, size=(30, 2))
        cluster_b = rng.normal(10.0, 0.1, size=(30, 2))
        pts = np.vstack([cluster_a, cluster_b])
        tree = RStarTree.bulk_load(pts, capacity=6)
        for i in range(25):
            assert tree.delete(pts[i], i)
        survivors = set(tree.range_search(np.zeros(2), np.zeros(2), 50.0))
        assert survivors == set(range(25, 60))
        tree.check_invariants()


class TestOtherBackendsDelete:
    @pytest.mark.parametrize("factory", [
        lambda pts: GridFile(pts, resolution=4),
        lambda pts: LinearScan(pts),
    ])
    def test_delete_roundtrip(self, rng, factory):
        pts = rng.normal(size=(50, 3))
        index = factory(pts)
        assert index.delete(pts[7], 7)
        assert len(index) == 49
        assert 7 not in index.range_search(pts[7], pts[7], 1e-9)
        assert not index.delete(pts[7], 7)  # already gone

    def test_gridfile_drops_empty_buckets(self, rng):
        pts = rng.normal(size=(5, 2))
        grid = GridFile(pts, resolution=2)
        before = grid.bucket_count
        for i in range(5):
            grid.delete(pts[i], i)
        assert grid.bucket_count == 0 < before


class TestWarpingIndexRemove:
    def test_remove_then_absent(self):
        walks = list(random_walks(50, 96, seed=70))
        index = WarpingIndex(walks, delta=0.1, normal_form=NormalForm(length=64))
        index.remove(13)
        assert len(index) == 49
        results, _ = index.range_query(walks[13], 1e-9)
        assert all(item != 13 for item, _ in results)

    def test_remove_unknown_raises(self):
        walks = list(random_walks(10, 96, seed=71))
        index = WarpingIndex(walks, delta=0.1, normal_form=NormalForm(length=64))
        with pytest.raises(KeyError, match="not in the index"):
            index.remove("nope")

    def test_queries_exact_after_removals(self):
        walks = list(random_walks(120, 96, seed=72))
        index = WarpingIndex(walks, delta=0.1, normal_form=NormalForm(length=64))
        for victim in (3, 77, 119, 0):
            index.remove(victim)
        query = random_walks(1, 96, seed=73)[0]
        results, _ = index.range_query(query, 8.0)
        truth = index.ground_truth_range(query, 8.0)
        assert [i for i, _ in results] == [i for i, _ in truth]

    def test_remove_then_reinsert(self):
        walks = list(random_walks(30, 96, seed=74))
        index = WarpingIndex(walks, delta=0.1, normal_form=NormalForm(length=64))
        index.remove(5)
        index.insert(walks[5], 5)
        results, _ = index.range_query(walks[5], 1e-9)
        assert results and results[0][0] == 5
