"""End-to-end tests for the Manhattan-metric warping index.

The paper: "Other distance metrics are also possible in our framework
with some modifications."  The modifications: L1-scaled PAA features
(frame sums), L1 rectangle geometry in the backends, and L1 DTW in the
refine step.  These tests verify the whole cascade stays exact.
"""

import numpy as np
import pytest

from repro.core.envelope import k_envelope
from repro.core.envelope_transforms import (
    KeoghPAAEnvelopeTransform,
    NewPAAEnvelopeTransform,
    SignSplitEnvelopeTransform,
)
from repro.core.normal_form import NormalForm
from repro.core.transforms import DFTTransform, PAATransform
from repro.datasets.generators import random_walks
from repro.dtw.distance import ldtw_distance
from repro.index.gemini import WarpingIndex


class TestL1Paa:
    def test_l1_features_are_frame_sums(self, rng):
        t = PAATransform(8, 2, norm="l1")
        x = np.arange(8, dtype=float)
        assert t.transform(x).tolist() == [0 + 1 + 2 + 3, 4 + 5 + 6 + 7]

    def test_l1_feature_distance_lower_bounds_l1(self, rng):
        t = PAATransform(64, 8, norm="l1")
        for _ in range(20):
            x = rng.normal(size=64)
            y = rng.normal(size=64)
            feat = np.abs(t(x) - t(y)).sum()
            true = np.abs(x - y).sum()
            assert feat <= true + 1e-9

    def test_metrics_attribute(self):
        assert PAATransform(8, 2).metrics == ("euclidean",)
        assert PAATransform(8, 2, norm="l1").metrics == ("manhattan",)
        assert NewPAAEnvelopeTransform(8, 2, metric="manhattan").metrics == (
            "manhattan",
        )

    def test_rejects_bad_norm(self):
        with pytest.raises(ValueError, match="norm"):
            PAATransform(8, 2, norm="l3")

    def test_l1_envelope_bound_sound(self, rng):
        env_t = NewPAAEnvelopeTransform(64, 8, metric="manhattan")
        for _ in range(20):
            x = np.cumsum(rng.normal(size=64))
            y = np.cumsum(rng.normal(size=64))
            env = k_envelope(y, 5)
            feats = env_t.transform_series(x)
            fe = env_t.reduce(env)
            above = np.maximum(feats - fe.upper, 0.0)
            below = np.maximum(fe.lower - feats, 0.0)
            lb = float(np.sum(above + below))
            true = ldtw_distance(x, y, 5, metric="manhattan")
            assert lb <= true + 1e-9

    def test_keogh_l1_looser_than_new_l1(self, rng):
        new = NewPAAEnvelopeTransform(64, 8, metric="manhattan")
        keogh = KeoghPAAEnvelopeTransform(64, 8, metric="manhattan")
        y = np.cumsum(rng.normal(size=64))
        env = k_envelope(y, 5)
        assert new.reduce(env).width().sum() <= keogh.reduce(env).width().sum()


class TestL1WarpingIndex:
    @pytest.fixture(scope="class")
    def walks(self):
        return list(random_walks(150, 96, seed=81))

    @pytest.fixture(scope="class")
    def l1_index(self, walks):
        return WarpingIndex(
            walks, delta=0.1, metric="manhattan",
            normal_form=NormalForm(length=64),
        )

    @pytest.mark.parametrize("kind", ["rstar", "grid", "linear"])
    def test_exact_range_queries(self, walks, kind):
        index = WarpingIndex(
            walks, delta=0.1, metric="manhattan", index_kind=kind,
            normal_form=NormalForm(length=64),
        )
        query = random_walks(1, 96, seed=82)[0]
        for eps in (10.0, 30.0):
            results, stats = index.range_query(query, eps)
            truth = index.ground_truth_range(query, eps)
            assert [i for i, _ in results] == [i for i, _ in truth]

    def test_knn_exact(self, l1_index):
        query = random_walks(1, 96, seed=83)[0]
        got, _ = l1_index.knn_query(query, 8)
        truth = l1_index.ground_truth_knn(query, 8)
        assert np.allclose([d for _, d in got], [d for _, d in truth])

    def test_distances_are_l1(self, l1_index, walks):
        results, _ = l1_index.range_query(walks[0], 1e-9)
        assert results[0][0] == 0

    def test_mismatched_transform_rejected(self, walks):
        with pytest.raises(ValueError, match="does not lower-bound"):
            WarpingIndex(
                walks, delta=0.1, metric="manhattan",
                env_transform=SignSplitEnvelopeTransform(DFTTransform(64, 8)),
                normal_form=NormalForm(length=64),
            )
        with pytest.raises(ValueError, match="does not lower-bound"):
            WarpingIndex(
                walks, delta=0.1, metric="euclidean",
                env_transform=NewPAAEnvelopeTransform(64, 8, metric="manhattan"),
                normal_form=NormalForm(length=64),
            )

    def test_rejects_unknown_metric(self, walks):
        with pytest.raises(ValueError, match="metric"):
            WarpingIndex(walks, delta=0.1, metric="cosine",
                         normal_form=NormalForm(length=64))

    def test_second_filter_consistent_l1(self, l1_index):
        query = random_walks(1, 96, seed=84)[0]
        with_filter, s_on = l1_index.range_query(query, 25.0,
                                                 second_filter=True)
        without, s_off = l1_index.range_query(query, 25.0,
                                              second_filter=False)
        assert with_filter == without
