"""Unit tests for the linear-scan baseline."""

import math

import numpy as np
import pytest

from repro.index.linear_scan import LinearScan


class TestLinearScan:
    def test_range_matches_definition(self, rng):
        pts = rng.normal(size=(200, 3))
        scan = LinearScan(pts)
        q = rng.normal(size=3)
        got = set(scan.range_search(q, q, 1.0))
        expected = set(
            np.nonzero(np.linalg.norm(pts - q, axis=1) <= 1.0)[0].tolist()
        )
        assert got == expected

    def test_page_accesses_full_scan(self, rng):
        pts = rng.normal(size=(230, 2))
        scan = LinearScan(pts, capacity=50)
        scan.range_search(np.zeros(2), np.zeros(2), 1.0)
        assert scan.page_accesses == math.ceil(230 / 50)

    def test_nearest_sorted_and_complete(self, rng):
        pts = rng.normal(size=(50, 2))
        scan = LinearScan(pts)
        got = list(scan.nearest(np.zeros(2), np.zeros(2)))
        assert len(got) == 50
        dists = [d for d, _ in got]
        assert dists == sorted(dists)

    def test_rectangle_distance(self, rng):
        pts = rng.normal(size=(100, 2))
        scan = LinearScan(pts)
        lo, hi = np.array([-0.3, -0.3]), np.array([0.3, 0.3])
        got = set(scan.range_search(lo, hi, 0.2))
        gap = np.maximum(lo - pts, 0.0) + np.maximum(pts - hi, 0.0)
        expected = set(
            np.nonzero(np.sqrt(np.sum(gap * gap, axis=1)) <= 0.2)[0].tolist()
        )
        assert got == expected

    def test_custom_ids(self, rng):
        pts = rng.normal(size=(5, 2))
        scan = LinearScan(pts, ids=["v", "w", "x", "y", "z"])
        assert scan.range_search(pts[2], pts[2], 1e-12) == ["x"]

    def test_validation(self):
        with pytest.raises(ValueError, match="2-D"):
            LinearScan(np.zeros(3))
        with pytest.raises(ValueError, match="capacity"):
            LinearScan(np.zeros((2, 2)), capacity=0)
        with pytest.raises(ValueError, match="ids"):
            LinearScan(np.zeros((3, 2)), ids=[1, 2])

    def test_reset_stats(self, rng):
        scan = LinearScan(rng.normal(size=(10, 2)))
        scan.range_search(np.zeros(2), np.zeros(2), 1.0)
        assert scan.page_accesses > 0
        scan.reset_stats()
        assert scan.page_accesses == 0
