"""Unit tests for the linear-scan baseline."""

import math

import numpy as np
import pytest

from repro.index.linear_scan import LinearScan


class TestLinearScan:
    def test_range_matches_definition(self, rng):
        pts = rng.normal(size=(200, 3))
        scan = LinearScan(pts)
        q = rng.normal(size=3)
        got = set(scan.range_search(q, q, 1.0))
        expected = set(
            np.nonzero(np.linalg.norm(pts - q, axis=1) <= 1.0)[0].tolist()
        )
        assert got == expected

    def test_page_accesses_full_scan(self, rng):
        pts = rng.normal(size=(230, 2))
        scan = LinearScan(pts, capacity=50)
        scan.range_search(np.zeros(2), np.zeros(2), 1.0)
        assert scan.page_accesses == math.ceil(230 / 50)

    def test_nearest_sorted_and_complete(self, rng):
        pts = rng.normal(size=(50, 2))
        scan = LinearScan(pts)
        got = list(scan.nearest(np.zeros(2), np.zeros(2)))
        assert len(got) == 50
        dists = [d for d, _ in got]
        assert dists == sorted(dists)

    def test_rectangle_distance(self, rng):
        pts = rng.normal(size=(100, 2))
        scan = LinearScan(pts)
        lo, hi = np.array([-0.3, -0.3]), np.array([0.3, 0.3])
        got = set(scan.range_search(lo, hi, 0.2))
        gap = np.maximum(lo - pts, 0.0) + np.maximum(pts - hi, 0.0)
        expected = set(
            np.nonzero(np.sqrt(np.sum(gap * gap, axis=1)) <= 0.2)[0].tolist()
        )
        assert got == expected

    def test_custom_ids(self, rng):
        pts = rng.normal(size=(5, 2))
        scan = LinearScan(pts, ids=["v", "w", "x", "y", "z"])
        assert scan.range_search(pts[2], pts[2], 1e-12) == ["x"]

    def test_validation(self):
        with pytest.raises(ValueError, match="2-D"):
            LinearScan(np.zeros(3))
        with pytest.raises(ValueError, match="capacity"):
            LinearScan(np.zeros((2, 2)), capacity=0)
        with pytest.raises(ValueError, match="ids"):
            LinearScan(np.zeros((3, 2)), ids=[1, 2])

    def test_reset_stats(self, rng):
        scan = LinearScan(rng.normal(size=(10, 2)))
        scan.range_search(np.zeros(2), np.zeros(2), 1.0)
        assert scan.page_accesses > 0
        scan.reset_stats()
        assert scan.page_accesses == 0
        assert scan.points_scanned == 0


class TestStatsLifecycle:
    """Counters reflect queries *issued* since the last reset_stats()."""

    def make_scan(self, rng, m=100, capacity=10):
        return LinearScan(rng.normal(size=(m, 2)), capacity=capacity)

    def test_range_search_counts_pages_and_points(self, rng):
        scan = self.make_scan(rng)
        scan.range_search(np.zeros(2), np.zeros(2), 1.0)
        assert scan.page_accesses == 10
        assert scan.points_scanned == 100
        scan.range_search(np.zeros(2), np.zeros(2), 1.0)
        assert scan.page_accesses == 20
        assert scan.points_scanned == 200

    def test_nearest_accounts_eagerly_at_call_time(self, rng):
        """The scan is charged when the query is issued, not consumed."""
        scan = self.make_scan(rng)
        results = scan.nearest(np.zeros(2), np.zeros(2))
        assert scan.page_accesses == 10
        assert scan.points_scanned == 100
        # Consuming the (already materialised) results adds nothing.
        assert len(list(results)) == 100
        assert scan.page_accesses == 10
        assert scan.points_scanned == 100

    def test_reset_between_issue_and_consume_stays_zero(self, rng):
        """A query issued before reset_stats() never leaks counters
        into the post-reset measurement window."""
        scan = self.make_scan(rng)
        results = scan.nearest(np.zeros(2), np.zeros(2))
        scan.reset_stats()
        list(results)  # draining the old query is free
        assert scan.page_accesses == 0
        assert scan.points_scanned == 0

    def test_partial_consumption_still_counts_full_scan(self, rng):
        """A linear scan reads everything whatever the consumer takes."""
        scan = self.make_scan(rng)
        results = scan.nearest(np.zeros(2), np.zeros(2))
        next(results)
        assert scan.page_accesses == 10
        assert scan.points_scanned == 100

    def test_insert_and_delete_do_not_touch_counters(self, rng):
        scan = self.make_scan(rng)
        scan.range_search(np.zeros(2), np.zeros(2), 1.0)
        pages, points = scan.page_accesses, scan.points_scanned
        scan.insert(np.zeros(2), "extra")
        scan.delete(np.zeros(2), "extra")
        assert (scan.page_accesses, scan.points_scanned) == (pages, points)

    def test_counters_track_growing_database(self, rng):
        scan = LinearScan(rng.normal(size=(9, 2)), capacity=10)
        scan.range_search(np.zeros(2), np.zeros(2), 1.0)
        assert scan.page_accesses == 1
        scan.insert(np.zeros(2), 9)
        scan.insert(np.zeros(2), 10)
        scan.reset_stats()
        scan.range_search(np.zeros(2), np.zeros(2), 1.0)
        assert scan.page_accesses == 2  # 11 points, capacity 10
        assert scan.points_scanned == 11
