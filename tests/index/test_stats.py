"""Unit tests for QueryStats."""

import pytest

from repro.index.stats import QueryStats


class TestQueryStats:
    def test_defaults(self):
        stats = QueryStats()
        assert stats.candidates == 0
        assert stats.precision == 1.0

    def test_precision(self):
        stats = QueryStats(candidates=10, results=4)
        assert stats.precision == pytest.approx(0.4)

    def test_add(self):
        total = QueryStats(candidates=3, page_accesses=2, results=1) + QueryStats(
            candidates=7, page_accesses=5, results=2, dtw_computations=7
        )
        assert total.candidates == 10
        assert total.page_accesses == 7
        assert total.results == 3
        assert total.dtw_computations == 7

    def test_add_wrong_type(self):
        with pytest.raises(TypeError):
            QueryStats() + 3

    def test_scaled(self):
        stats = QueryStats(candidates=10, page_accesses=4).scaled(0.5)
        assert stats.candidates == 5.0
        assert stats.page_accesses == 2.0

    def test_extra_dict(self):
        stats = QueryStats(extra={"note": "x"})
        assert stats.extra["note"] == "x"
