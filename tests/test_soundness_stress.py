"""Randomised cross-configuration soundness stress test.

One test to rule them out: across random combinations of envelope
transform, feature dimensionality, backend, warping width, metric, and
dataset family, the warping index must return exactly the ground-truth
answer.  Catches any interaction bug the per-module tests might miss.
"""

import numpy as np
import pytest

from repro.core.envelope_transforms import (
    KeoghPAAEnvelopeTransform,
    NewPAAEnvelopeTransform,
    SignSplitEnvelopeTransform,
)
from repro.core.normal_form import NormalForm
from repro.core.transforms import DFTTransform, HaarTransform
from repro.datasets.generators import make_dataset
from repro.index.gemini import WarpingIndex

LENGTH = 64
FAMILIES = ("Random_Walk", "Shuttle", "EEG", "Tide", "Burst")


def build_transform(kind: str, n_features: int, metric: str):
    if kind == "new_paa":
        return NewPAAEnvelopeTransform(LENGTH, n_features, metric=metric)
    if kind == "keogh_paa":
        return KeoghPAAEnvelopeTransform(LENGTH, n_features, metric=metric)
    if kind == "dft":
        return SignSplitEnvelopeTransform(DFTTransform(LENGTH, n_features))
    if kind == "haar":
        return SignSplitEnvelopeTransform(HaarTransform(LENGTH, n_features))
    raise AssertionError(kind)


def random_config(rng):
    metric = rng.choice(["euclidean", "euclidean", "manhattan"])
    if metric == "manhattan":
        kind = rng.choice(["new_paa", "keogh_paa"])
    else:
        kind = rng.choice(["new_paa", "keogh_paa", "dft", "haar"])
    return {
        "kind": str(kind),
        "metric": str(metric),
        "n_features": int(rng.choice([4, 8, 16])),
        "backend": str(rng.choice(["rstar", "grid", "linear"])),
        "delta": float(rng.choice([0.0, 0.05, 0.1, 0.25])),
        "family": str(rng.choice(FAMILIES)),
        "capacity": int(rng.choice([8, 50])),
    }


@pytest.mark.parametrize("trial", range(12))
def test_random_configuration_is_exact(trial):
    rng = np.random.default_rng(1000 + trial)
    config = random_config(rng)
    data = make_dataset(config["family"], 80, 90, seed=trial)
    env_t = build_transform(config["kind"], config["n_features"],
                            config["metric"])
    index = WarpingIndex(
        list(data),
        delta=config["delta"],
        env_transform=env_t,
        normal_form=NormalForm(length=LENGTH),
        index_kind=config["backend"],
        capacity=config["capacity"],
        metric=config["metric"],
    )
    queries = [
        data[int(rng.integers(80))] + rng.normal(0, 0.2, size=90),
        make_dataset(config["family"], 1, 90, seed=999 + trial)[0],
    ]
    for query in queries:
        truth_all = index.ground_truth_range(query, np.inf)
        # Pick epsilon at the 10th closest so answers are non-trivial.
        epsilon = truth_all[min(9, len(truth_all) - 1)][1] * 1.001
        results, stats = index.range_query(query, epsilon)
        truth = index.ground_truth_range(query, epsilon)
        assert [i for i, _ in results] == [i for i, _ in truth], config
        assert stats.candidates >= stats.results

        knn, _ = index.knn_query(query, 5)
        knn_truth = index.ground_truth_knn(query, 5)
        assert np.allclose(
            [d for _, d in knn], [d for _, d in knn_truth]
        ), config
