"""Tests for the one-call reproduction report."""

import pytest

from repro.experiments import EXPERIMENT_SECTIONS, SMOKE, generate_report


class TestGenerateReport:
    def test_subset_sections(self):
        text = generate_report(SMOKE, include=("scaling", "backends"))
        assert "# Reproduction report" in text
        assert "## Scalability" in text
        assert "## Ablation — index backends" in text
        assert "## Table 2" not in text

    def test_rank_table_rendering(self):
        text = generate_report(SMOKE, include=("table3",))
        assert "| Rank | delta=0.05 | delta=0.1 | delta=0.2 |" in text
        assert "| MRR |" in text

    def test_scale_named(self):
        text = generate_report(SMOKE, include=("scaling",))
        assert "**smoke**" in text

    def test_unknown_section_rejected(self):
        with pytest.raises(ValueError, match="unknown sections"):
            generate_report(SMOKE, include=("fig99",))

    def test_all_sections_registered(self):
        assert len(EXPERIMENT_SECTIONS) == 14

    def test_cli_report_subset(self, tmp_path, capsys, monkeypatch):
        from repro.cli import main

        monkeypatch.setenv("REPRO_SCALE", "smoke")
        out_file = str(tmp_path / "report.md")
        assert main(["report", "--out", out_file,
                     "--sections", "scaling"]) == 0
        with open(out_file) as handle:
            assert "## Scalability" in handle.read()
