"""Cross-module integration tests: the paper's pipelines end to end."""

import numpy as np
import pytest

from repro import (
    ContourIndex,
    KeoghPAAEnvelopeTransform,
    NewPAAEnvelopeTransform,
    QueryByHummingSystem,
    SingerProfile,
    WarpingIndex,
    contour_string,
    generate_corpus,
    hum_melody,
    k_envelope,
    lb_envelope_transform,
    ldtw_distance,
    random_walks,
    segment_corpus,
    synthesize_melody,
    track_pitch,
)
from repro.core import NormalForm
from repro.hum.segmentation import segment_notes
from repro.music.midi import MidiFile, melody_to_midi_bytes


@pytest.fixture(scope="module")
def corpus():
    return segment_corpus(generate_corpus(10, seed=55), per_song=15, seed=55)


class TestFullQbhPipeline:
    def test_audio_to_ranked_results(self, corpus):
        """Microphone-to-answer: synthesize hum audio, track pitch,
        query the index, find the intended melody."""
        system = QueryByHummingSystem(corpus, delta=0.1)
        target = 31
        wave = synthesize_melody(corpus[target], tempo_bpm=90)
        track = track_pitch(wave)
        assert track.voiced_fraction > 0.5
        rank = system.rank_of(track.pitch_series(), target)
        assert rank <= 3

    def test_sung_variations_absorbed(self, corpus):
        """Shift + tempo + local warp: the invariances the index promises."""
        system = QueryByHummingSystem(corpus, delta=0.1)
        rng = np.random.default_rng(8)
        target = 77
        hum = hum_melody(corpus[target], SingerProfile.better(), rng)
        assert system.rank_of(hum, target) <= 3

    def test_midi_roundtrip_database(self, corpus):
        """Build the database through the MIDI layer (Figure 9's source)."""
        roundtripped = [
            MidiFile.from_bytes(melody_to_midi_bytes(m)).to_melody(name=m.name)
            for m in corpus[:50]
        ]
        system = QueryByHummingSystem(roundtripped, delta=0.1)
        hum = roundtripped[7].to_time_series(8).astype(float)
        assert system.rank_of(hum, 7) == 1


class TestNoisyAudioPipeline:
    def test_query_survives_room_noise(self, corpus):
        """The full audio path at 12 dB SNR still finds the melody."""
        from repro.hum.noise import add_noise, white_noise

        system = QueryByHummingSystem(corpus, delta=0.1)
        rng = np.random.default_rng(14)
        # Target must lie within the tracker's 80-700 Hz band (melody
        # 31 does); out-of-band scores alias regardless of noise.
        target = 31
        wave = synthesize_melody(corpus[target], tempo_bpm=100)
        noisy = add_noise(wave, white_noise(wave.size, rng),
                          snr_db_target=12.0)
        track = track_pitch(noisy)
        assert track.pitch_series().size > 50
        assert system.rank_of(track.pitch_series(), target) <= 5


class TestContourVsTimeSeries:
    def test_contour_pipeline_runs(self, corpus):
        """Hum audio -> pitch -> segment -> contour -> rank."""
        contour_index = ContourIndex(corpus[:60])
        target = 13
        wave = synthesize_melody(corpus[target], tempo_bpm=100)
        segmented = segment_notes(track_pitch(wave).pitches)
        rank = contour_index.rank_of(contour_string(segmented), target)
        assert 1 <= rank <= 60

    def test_time_series_beats_contour_with_noisy_segmentation(self, corpus):
        """Table 2's qualitative claim on a small scale: with singer
        noise, the time-series rank is at least as good on average."""
        subset = corpus[:80]
        system = QueryByHummingSystem(subset, delta=0.1)
        contour_index = ContourIndex(subset)
        rng = np.random.default_rng(21)
        ts_ranks, ct_ranks = [], []
        for target in (5, 23, 41, 66):
            hum = hum_melody(subset[target], SingerProfile.better(), rng)
            ts_ranks.append(system.rank_of(hum, target))
            segmented = segment_notes(hum)
            ct_ranks.append(
                contour_index.rank_of(contour_string(segmented), target)
            )
        assert np.mean(ts_ranks) <= np.mean(ct_ranks)


class TestIndexGuarantees:
    def test_no_false_negatives_across_transforms(self):
        """Theorem 1, exercised through the whole index stack."""
        walks = list(random_walks(120, 96, seed=4))
        query = random_walks(1, 96, seed=99)[0]
        for env_t in (None, KeoghPAAEnvelopeTransform(64, 8)):
            index = WarpingIndex(
                walks, delta=0.1, env_transform=env_t,
                normal_form=NormalForm(length=64),
            )
            results, _ = index.range_query(query, 6.0)
            truth = index.ground_truth_range(query, 6.0)
            assert [i for i, _ in results] == [i for i, _ in truth]

    def test_filter_lower_bounds_exact_distance(self):
        """The feature-space distance the index prunes with never
        exceeds the DTW distance the refine step computes."""
        walks = random_walks(30, 64, seed=5)
        nf = NormalForm(length=64)
        env_t = NewPAAEnvelopeTransform(64, 8)
        k = 3
        query = nf.apply(random_walks(1, 64, seed=6)[0])
        q_env = k_envelope(query, k)
        for row in range(walks.shape[0]):
            data = nf.apply(walks[row])
            lb = lb_envelope_transform(env_t, data, envelope=q_env)
            exact = ldtw_distance(data, query, k)
            assert lb <= exact + 1e-9

    def test_candidates_shrink_with_tighter_transform(self):
        walks = list(random_walks(400, 96, seed=7))
        queries = random_walks(5, 96, seed=8)
        new_total = keogh_total = 0
        kwargs = dict(delta=0.12, normal_form=NormalForm(length=64))
        idx_new = WarpingIndex(walks, **kwargs)
        idx_keogh = WarpingIndex(
            walks, env_transform=KeoghPAAEnvelopeTransform(64, 8), **kwargs
        )
        for q in queries:
            _, s_new = idx_new.range_query(q, 5.0)
            _, s_keogh = idx_keogh.range_query(q, 5.0)
            new_total += s_new.candidates
            keogh_total += s_keogh.candidates
        assert new_total <= keogh_total
