"""Metamorphic tests: whole-stack invariances under input transformations.

Each test states a relation that must hold between two runs of the
system on related inputs — the invariances the paper designs for
(transposition, tempo, database composition) checked end to end rather
than per module.
"""

import numpy as np
import pytest

from repro.core.normal_form import NormalForm
from repro.datasets.generators import random_walks
from repro.hum.singer import SingerProfile, hum_melody
from repro.index.gemini import WarpingIndex
from repro.music.corpus import generate_corpus, segment_corpus
from repro.qbh.system import QueryByHummingSystem


@pytest.fixture(scope="module")
def melodies():
    return segment_corpus(generate_corpus(8, seed=90), per_song=12)


@pytest.fixture(scope="module")
def system(melodies):
    return QueryByHummingSystem(melodies, delta=0.1)


@pytest.fixture(scope="module")
def hum(melodies):
    rng = np.random.default_rng(3)
    return hum_melody(melodies[40], SingerProfile.better(), rng)


class TestQueryInvariances:
    def test_transposing_the_query_changes_nothing(self, system, hum):
        base, _ = system.query(hum, k=10)
        shifted, _ = system.query(hum + 11.0, k=10)
        assert [n for n, _ in base] == [n for n, _ in shifted]
        assert np.allclose([d for _, d in base], [d for _, d in shifted])

    def test_uniform_tempo_change_changes_nothing(self, system, hum):
        base, _ = system.query(hum, k=10)
        slowed = np.repeat(hum, 2)
        slow_results, _ = system.query(slowed, k=10)
        assert [n for n, _ in base] == [n for n, _ in slow_results]

    def test_transposing_the_whole_database_changes_nothing(self, melodies, hum):
        original = QueryByHummingSystem(melodies, delta=0.1)
        transposed = QueryByHummingSystem(
            [m.transpose(4) for m in melodies], delta=0.1
        )
        a, _ = original.query(hum, k=10)
        b, _ = transposed.query(hum, k=10)
        assert np.allclose([d for _, d in a], [d for _, d in b])

    def test_tempo_scaling_the_database_changes_nothing(self, melodies, hum):
        original = QueryByHummingSystem(melodies, delta=0.1)
        double_time = QueryByHummingSystem(
            [m.scale_tempo(2.0) for m in melodies], delta=0.1
        )
        a, _ = original.query(hum, k=10)
        b, _ = double_time.query(hum, k=10)
        assert [n for n, _ in a] == [n for n, _ in b]


class TestDatabaseComposition:
    @pytest.fixture(scope="class")
    def walks(self):
        return list(random_walks(120, 96, seed=91))

    @pytest.fixture(scope="class")
    def query(self):
        return random_walks(1, 96, seed=92)[0]

    def test_adding_series_never_worsens_knn(self, walks, query):
        """The k-th best distance is non-increasing in database size."""
        small = WarpingIndex(walks[:60], delta=0.1,
                             normal_form=NormalForm(length=64))
        large = WarpingIndex(walks, delta=0.1,
                             normal_form=NormalForm(length=64))
        k_small = small.knn_query(query, 5)[0][-1][1]
        k_large = large.knn_query(query, 5)[0][-1][1]
        assert k_large <= k_small + 1e-9

    def test_range_answer_is_monotone_in_database(self, walks, query):
        small = WarpingIndex(walks[:60], delta=0.1,
                             normal_form=NormalForm(length=64))
        large = WarpingIndex(walks, delta=0.1,
                             normal_form=NormalForm(length=64))
        small_ids = {i for i, _ in small.range_query(query, 6.0)[0]}
        large_ids = {i for i, _ in large.range_query(query, 6.0)[0]}
        assert small_ids <= large_ids

    def test_removing_a_non_answer_changes_nothing(self, walks, query):
        index = WarpingIndex(walks, delta=0.1,
                             normal_form=NormalForm(length=64))
        answers, _ = index.range_query(query, 6.0)
        answer_ids = {i for i, _ in answers}
        victim = next(i for i in index.ids if i not in answer_ids)
        index2 = WarpingIndex(walks, delta=0.1,
                              normal_form=NormalForm(length=64))
        index2.remove(victim)
        again, _ = index2.range_query(query, 6.0)
        assert answers == again

    def test_insert_then_remove_is_identity(self, walks, query):
        index = WarpingIndex(walks, delta=0.1,
                             normal_form=NormalForm(length=64))
        before, _ = index.range_query(query, 6.0)
        extra = random_walks(1, 96, seed=93)[0]
        index.insert(extra, "temp")
        index.remove("temp")
        after, _ = index.range_query(query, 6.0)
        assert before == after

    def test_duplicate_series_share_distance(self, walks, query):
        index = WarpingIndex(walks, delta=0.1,
                             normal_form=NormalForm(length=64))
        index.insert(walks[7], "clone-of-7")
        dists = dict(index.ground_truth_range(query, np.inf))
        assert dists[7] == pytest.approx(dists["clone-of-7"])


class TestEngineInvariances:
    """The cascade-engine query path inherits every system invariance."""

    def _assert_valid_knn(self, system, hum, results, k):
        """Exact-k-NN validity, robust to ties between duplicate
        melodies (different paths may break ties differently)."""
        all_dists = system.distances_to_all(hum)
        truth = np.sort(all_dists)[:k]
        np.testing.assert_allclose(
            [d for _, d in results], truth, atol=1e-6
        )
        index_of = {name: i for i, name in enumerate(system.names)}
        for name, dist in results:
            assert dist == pytest.approx(all_dists[index_of[name]],
                                         abs=1e-6)

    def test_engine_agrees_with_classic_query_path(self, system, hum):
        classic, _ = system.query(hum, k=10)
        cascade, _ = system.query_cascade(hum, k=10)
        self._assert_valid_knn(system, hum, classic, 10)
        self._assert_valid_knn(system, hum, cascade, 10)
        assert np.allclose([d for _, d in classic],
                           [d for _, d in cascade])

    def test_transposing_the_query_changes_nothing(self, system, hum):
        base, _ = system.query_cascade(hum, k=10)
        shifted, _ = system.query_cascade(hum + 11.0, k=10)
        assert [n for n, _ in base] == [n for n, _ in shifted]
        assert np.allclose([d for _, d in base], [d for _, d in shifted])

    def test_uniform_tempo_change_changes_nothing(self, system, hum):
        base, _ = system.query_cascade(hum, k=10)
        slowed, _ = system.query_cascade(np.repeat(hum, 2), k=10)
        assert [n for n, _ in base] == [n for n, _ in slowed]

    def test_every_stage_config_returns_the_same_answer(self, system, hum):
        from repro.engine import STAGE_ORDER

        base, _ = system.query_cascade(hum, k=10, stages=())
        for count in range(1, len(STAGE_ORDER) + 1):
            got, _ = system.query_cascade(hum, k=10,
                                          stages=STAGE_ORDER[:count])
            self._assert_valid_knn(system, hum, got, 10)
            assert np.allclose([d for _, d in base],
                               [d for _, d in got])

    def test_cascade_range_query_is_shift_invariant(self, melodies, hum):
        index = WarpingIndex(
            [m.to_time_series(8) for m in melodies], delta=0.1,
            normal_form=NormalForm(length=64, shift=True),
        )
        a, _ = index.cascade_range_query(hum, 6.0)
        b, _ = index.cascade_range_query(hum + 7.0, 6.0)
        assert [i for i, _ in a] == [i for i, _ in b]
        assert np.allclose([d for _, d in a], [d for _, d in b])


class TestDeltaMonotonicity:
    def test_wider_delta_never_shrinks_range_answers(self):
        walks = list(random_walks(80, 96, seed=94))
        query = random_walks(1, 96, seed=95)[0]
        narrow = WarpingIndex(walks, delta=0.02,
                              normal_form=NormalForm(length=64))
        wide = WarpingIndex(walks, delta=0.2,
                            normal_form=NormalForm(length=64))
        narrow_ids = {i for i, _ in narrow.range_query(query, 5.0)[0]}
        wide_ids = {i for i, _ in wide.range_query(query, 5.0)[0]}
        assert narrow_ids <= wide_ids
