"""Round-trip tests for subsequence-index persistence."""

import numpy as np
import pytest

from repro.core.normal_form import NormalForm
from repro.datasets.generators import random_walks
from repro.index.subsequence import SubsequenceIndex
from repro.persistence import (
    load_subsequence_index,
    save_index,
    save_subsequence_index,
)


@pytest.fixture
def index():
    rng = np.random.default_rng(17)
    songs = [np.cumsum(rng.normal(size=300)) for _ in range(6)]
    return SubsequenceIndex(
        songs, window_lengths=(64, 128), stride=16, delta=0.1,
        normal_form=NormalForm(length=64), ids=[f"s{i}" for i in range(6)],
    )


class TestRoundtrip:
    def test_config_preserved(self, index, tmp_path):
        path = tmp_path / "sub.npz"
        save_subsequence_index(index, path)
        loaded = load_subsequence_index(path)
        assert loaded.delta == index.delta
        assert loaded.window_count == index.window_count
        assert loaded.ids == index.ids

    def test_queries_identical(self, index, tmp_path):
        path = tmp_path / "sub.npz"
        save_subsequence_index(index, path)
        loaded = load_subsequence_index(path)
        rng = np.random.default_rng(18)
        query = np.cumsum(rng.normal(size=80))
        for eps in (4.0, 12.0):
            a, _ = index.range_query(query, eps)
            b, _ = loaded.range_query(query, eps)
            assert [(m.sequence_id, m.start, m.length) for m in a] == [
                (m.sequence_id, m.start, m.length) for m in b
            ]

    def test_knn_identical(self, index, tmp_path):
        path = tmp_path / "sub.npz"
        save_subsequence_index(index, path)
        loaded = load_subsequence_index(path)
        query = np.cumsum(np.random.default_rng(19).normal(size=96))
        a, _ = index.knn_query(query, 3)
        b, _ = loaded.knn_query(query, 3)
        assert [(m.sequence_id, m.start) for m in a] == [
            (m.sequence_id, m.start) for m in b
        ]

    def test_wrong_kind_rejected(self, index, tmp_path):
        from repro.index.gemini import WarpingIndex

        plain = WarpingIndex(
            list(np.cumsum(np.random.default_rng(1).normal(size=(5, 80)),
                           axis=1)),
            delta=0.1, normal_form=NormalForm(length=64),
        )
        path = tmp_path / "plain.npz"
        save_index(plain, path)
        with pytest.raises(ValueError, match="not a subsequence"):
            load_subsequence_index(path)
