"""The bench-schema checker's ingest and sized-context contracts."""

import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[2] / "tools"))

import check_bench_schema as checker  # noqa: E402


def _entry(bench, context):
    return {
        "schema": 1, "bench": bench, "timestamp_s": 1.0, "git_sha": "x",
        "machine": {"fingerprint": "f"}, "timings_ms": {"wall": 1.0},
        "context": context,
    }


def _write_history(path, entries):
    path.write_text("".join(json.dumps(e) + "\n" for e in entries))
    return str(path)


GOOD_INGEST = {
    "rows": 100, "rows_per_s": 50.0, "flushes": 2, "chunk_rows": 64,
    "peak_buffer_bytes": 900, "budget_bytes": 1000, "feature_margin": 1e-6,
    "swaps": 3, "parity_mismatches": 0, "false_negatives": 0,
    "swap_rebuild_s": [0.1, 0.1, 0.1],
}


def _write_snapshot(path, **overrides):
    snapshot = {"timings_ms": {"build_wall": 1.0}, "workload": {},
                "ingest": {**GOOD_INGEST, **overrides}}
    path.write_text(json.dumps(snapshot))
    return str(path)


def test_sized_benches_require_cpu_count_and_corpus_size(tmp_path):
    good = {"cpu_count": 4, "corpus_size": 1000}
    for bench in ("shard", "ingest"):
        errors = []
        checker.check_history(
            _write_history(tmp_path / "h.jsonl", [_entry(bench, good)]),
            errors,
        )
        assert errors == []
        for missing in ("cpu_count", "corpus_size"):
            bad = {k: v for k, v in good.items() if k != missing}
            errors = []
            checker.check_history(
                _write_history(tmp_path / "h.jsonl", [_entry(bench, bad)]),
                errors,
            )
            assert any(missing in e for e in errors), (bench, missing)


def test_other_benches_do_not_need_sizing_context(tmp_path):
    errors = []
    checker.check_history(
        _write_history(tmp_path / "h.jsonl", [_entry("cascade", {})]),
        errors,
    )
    assert errors == []


def test_ingest_section_accepts_the_real_shape(tmp_path):
    errors = []
    checker.check_snapshot(_write_snapshot(tmp_path / "s.json"), errors,
                           required_sections=("ingest",))
    assert errors == []


def test_ingest_budget_violation_is_an_error(tmp_path):
    errors = []
    checker.check_snapshot(
        _write_snapshot(tmp_path / "s.json", peak_buffer_bytes=2000),
        errors,
    )
    assert any("exceeded its memory budget" in e for e in errors)


def test_ingest_nonzero_false_negatives_is_an_error(tmp_path):
    errors = []
    checker.check_snapshot(
        _write_snapshot(tmp_path / "s.json", false_negatives=1),
        errors,
    )
    assert any("false_negatives" in e for e in errors)


def test_required_section_missing_is_an_error(tmp_path):
    path = tmp_path / "s.json"
    path.write_text(json.dumps({"timings_ms": {"wall": 1.0},
                                "workload": {}}))
    errors = []
    checker.check_snapshot(str(path), errors,
                           required_sections=("ingest",))
    assert any("required section 'ingest'" in e for e in errors)


def test_swap_rebuild_count_must_match_swaps(tmp_path):
    errors = []
    checker.check_snapshot(
        _write_snapshot(tmp_path / "s.json", swap_rebuild_s=[0.1]),
        errors,
    )
    assert any("swap_rebuild_s" in e for e in errors)


def test_shipped_artifacts_pass(tmp_path):
    repo = Path(__file__).resolve().parents[2]
    errors = []
    checker.check_history(str(repo / "BENCH_history.jsonl"), errors)
    checker.check_snapshot(str(repo / "BENCH_ingest.json"), errors,
                           required_sections=("ingest",))
    assert errors == []
