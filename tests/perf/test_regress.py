"""The regression gate: verdict logic, matching policy, self-test."""

import pytest

from repro.perf import BenchHistory, GateConfig, check_history


def entry(bench="cascade", ms=10.0, metric="cascade", context=None,
          fingerprint="aaa", timestamp=1.0):
    return {
        "schema": 1,
        "bench": bench,
        "timestamp_s": timestamp,
        "git_sha": "sha",
        "machine": {"fingerprint": fingerprint},
        "timings_ms": {metric: ms},
        "context": context if context is not None else {"db": 100},
    }


def test_clean_history_passes():
    report = check_history([entry(ms=10.0), entry(ms=10.5), entry(ms=9.8)])
    assert report.ok
    (finding,) = report.findings
    assert finding.status == "ok"
    assert finding.baseline_ms == pytest.approx(10.25)
    assert finding.baseline_runs == 2


def test_slowdown_beyond_tolerance_fails():
    report = check_history([entry(ms=10.0), entry(ms=13.0)])
    assert not report.ok
    (finding,) = report.findings
    assert finding.status == "regression"
    assert finding.ratio == pytest.approx(1.3)
    assert "FAIL" in report.summary()


def test_min_effect_floor_suppresses_tiny_absolute_slowdowns():
    # 50% slower but only 0.15 ms: below the 1 ms floor, so jitter.
    report = check_history([entry(ms=0.3), entry(ms=0.45)])
    assert report.ok
    # Lowering the floor lets the relative test bite.
    report = check_history(
        [entry(ms=0.3), entry(ms=0.45)],
        GateConfig(min_effect_ms=0.1),
    )
    assert not report.ok


def test_median_baseline_resists_one_outlier():
    runs = [entry(ms=m) for m in (10.0, 10.2, 120.0, 9.9, 10.1)]
    report = check_history(runs)
    assert report.ok
    (finding,) = report.findings
    assert finding.baseline_ms == pytest.approx(10.1)


def test_candidate_runs_median_damps_one_noisy_repeat():
    runs = [entry(ms=m) for m in (10.0, 10.0, 10.0, 10.1, 10.2, 25.0)]
    assert not check_history(runs).ok  # newest single run regressed...
    report = check_history(runs, GateConfig(candidate_runs=3))
    assert report.ok                   # ...but the median of 3 did not


def test_context_and_machine_matching():
    # A scale change is a different experiment: no baseline, passes.
    runs = [entry(ms=10.0, context={"db": 100}),
            entry(ms=50.0, context={"db": 1000})]
    report = check_history(runs)
    (finding,) = report.findings
    assert finding.status == "no-baseline"
    assert report.ok

    # Same context, different machine: skipped unless told otherwise.
    runs = [entry(ms=10.0, fingerprint="aaa"),
            entry(ms=30.0, fingerprint="bbb")]
    assert check_history(runs).ok
    report = check_history(runs, GateConfig(match_machine=False))
    assert not report.ok


def test_inject_slowdown_bites_even_without_baseline():
    """The CI self-test must fail on a single-entry (seeded) history."""
    report = check_history([entry(ms=10.0)])
    assert report.ok
    report = check_history([entry(ms=10.0)],
                           GateConfig(inject_slowdown=1.25))
    assert not report.ok
    (finding,) = report.findings
    assert finding.candidate_ms == pytest.approx(12.5)
    assert finding.ratio == pytest.approx(1.25)


def test_bench_and_metric_filters():
    runs = [entry(bench="a", ms=10.0), entry(bench="a", ms=30.0),
            entry(bench="b", ms=10.0), entry(bench="b", ms=10.0)]
    assert not check_history(runs).ok
    assert check_history(runs, GateConfig(benches=("b",))).ok
    assert check_history(runs, GateConfig(metrics=("other",))).ok


def test_gate_reads_benchhistory_object(tmp_path):
    history = BenchHistory(tmp_path / "hist.jsonl")
    history.record("cascade", {"cascade": 10.0}, {"db": 100})
    history.record("cascade", {"cascade": 10.4}, {"db": 100})
    report = check_history(history)
    assert report.ok
    doc = report.to_dict()
    assert doc["ok"] and doc["findings"]


def test_config_validation():
    with pytest.raises(ValueError):
        GateConfig(rel_tolerance=-0.1)
    with pytest.raises(ValueError):
        GateConfig(min_effect_ms=-1)
    with pytest.raises(ValueError):
        GateConfig(candidate_runs=0)
    with pytest.raises(ValueError):
        GateConfig(inject_slowdown=0)


class TestQualityFloors:
    """Higher-is-better metrics gate as floors, not ceilings."""

    def test_metric_direction_by_name(self):
        from repro.perf import metric_higher_is_better

        assert metric_higher_is_better("recall_at_10")
        assert metric_higher_is_better("transposition@0.25.recall_at_10")
        assert metric_higher_is_better("quality.shadow.agreement")
        assert metric_higher_is_better("mrr")
        assert not metric_higher_is_better("cascade_p50")
        assert not metric_higher_is_better("service_wall")

    def test_recall_drop_beyond_tolerance_fails(self):
        runs = [entry(bench="quality", metric="jitter@1.recall_at_10", ms=m)
                for m in (1.0, 1.0, 0.6)]
        report = check_history(runs)
        assert not report.ok
        (finding,) = report.findings
        assert finding.status == "regression"
        assert finding.ratio == pytest.approx(0.6)
        assert "below a quality floor" in report.summary()

    def test_recall_improvement_passes(self):
        runs = [entry(bench="quality", metric="jitter@1.recall_at_10", ms=m)
                for m in (0.6, 0.6, 1.0)]
        assert check_history(runs).ok

    def test_min_effect_floor_suppresses_tiny_drops(self):
        # 50% relative drop, but only 0.01 absolute: noise on a tiny
        # per-cell sample, below the default 0.02 floor.
        runs = [entry(bench="quality", metric="tempo@0.5.mrr", ms=m)
                for m in (0.02, 0.01)]
        assert check_history(runs).ok
        report = check_history(runs, GateConfig(min_effect_floor=0.005))
        assert not report.ok

    def test_latency_direction_unchanged_for_quality_bench(self):
        # The same bench's timing metrics still gate as ceilings.
        runs = [entry(bench="quality", metric="jitter@1.p50_ms", ms=m)
                for m in (10.0, 14.0)]
        assert not check_history(runs).ok

    def test_inject_slowdown_divides_floor_metrics(self):
        runs = [entry(bench="quality", metric="jitter@1.recall_at_10",
                      ms=1.0)]
        report = check_history(runs, GateConfig(inject_slowdown=1.5))
        assert not report.ok
        (finding,) = report.findings
        assert finding.candidate_ms == pytest.approx(1.0 / 1.5)
        assert finding.baseline_ms == pytest.approx(1.0)

    def test_inject_slowdown_at_exact_tolerance_does_not_fire(self):
        # 1/1.25 == baseline * (1 - 0.20) exactly; the comparison is
        # strict, so the self-test must inject more than 1.25.
        runs = [entry(bench="quality", metric="jitter@1.recall_at_10",
                      ms=1.0)]
        assert check_history(runs, GateConfig(inject_slowdown=1.25)).ok

    def test_config_rejects_negative_floor(self):
        with pytest.raises(ValueError):
            GateConfig(min_effect_floor=-0.01)
