"""Workload capture and deterministic replay parity."""

import json

import numpy as np
import pytest

from repro.datasets.generators import random_walks
from repro.engine import QueryEngine
from repro.obs import Observability
from repro.perf import WorkloadRecorder, load_workload, replay_workload
from repro.perf.replay import ReplayReport


@pytest.fixture(scope="module")
def corpus():
    return random_walks(150, 64, seed=41)


@pytest.fixture(scope="module")
def workload_file(corpus, tmp_path_factory):
    """Serve queries with capture on; return (path, expected answers)."""
    path = tmp_path_factory.mktemp("wl") / "workload.jsonl"
    obs = Observability.to_files(workload_out=path)
    engine = QueryEngine(corpus, band=4, obs=obs)
    rng = np.random.default_rng(42)
    expected = []
    for i in range(4):
        query = corpus[i] + 0.3 * rng.normal(size=64)
        if i % 2:
            expected.append(engine.range_search(query, 4.0)[0])
        else:
            expected.append(engine.knn(query, 5)[0])
    obs.close()
    return path, expected


def test_capture_schema_and_stable_ids(workload_file, corpus):
    path, expected = workload_file
    records = load_workload(path)
    assert len(records) == len(expected)
    for record, want in zip(records, expected):
        assert record["schema"] == 1
        assert record["kind"] in ("range", "knn")
        assert len(record["query_id"]) == 16
        assert record["backend"] == "vectorized"
        assert record["band"] == 4
        assert [tuple(pair) for pair in record["results"]] == [
            (item, pytest.approx(dist)) for item, dist in want
        ]
    # Content-digest ids: distinct queries get distinct ids.
    assert len({record["query_id"] for record in records}) == len(records)


def test_replay_parity_across_backends_and_modes(workload_file, corpus):
    path, _ = workload_file
    records = load_workload(path)
    report = replay_workload(
        lambda backend: QueryEngine(corpus, band=4, dtw_backend=backend),
        records, workers=2,
    )
    assert report.ok
    # One check per record per (backend, mode).
    assert len(report.checks) == len(records) * 4
    assert "PARITY OK" in report.summary()


def test_replay_detects_a_changed_answer(workload_file, corpus):
    path, _ = workload_file
    records = load_workload(path)
    # Corrupt one recorded distance and one survivor set.
    records[0]["results"][0][1] += 1.0
    if records[1]["results"]:
        records[1]["results"].pop(0)
    report = replay_workload(
        lambda backend: QueryEngine(corpus, band=4, dtw_backend=backend),
        records, backends=("vectorized",), modes=("serial",),
    )
    assert not report.ok
    assert len(report.failures) >= 1
    assert "FAILED" in report.summary()
    details = " ".join(check.detail for check in report.failures)
    assert "distance diff" in details or "survivor sets" in details


def test_slow_query_gate_restricts_capture(corpus, tmp_path):
    path = tmp_path / "wl.jsonl"
    obs = Observability.to_files(workload_out=path, slow_query_ms=10_000)
    engine = QueryEngine(corpus, band=4, obs=obs)
    engine.knn(corpus[0], 3)
    obs.close()
    assert load_workload(path) == []      # nothing was that slow


def test_capture_under_many_threads(corpus, tmp_path):
    path = tmp_path / "wl.jsonl"
    obs = Observability.to_files(workload_out=path)
    engine = QueryEngine(corpus, band=4, obs=obs)
    rng = np.random.default_rng(43)
    queries = [corpus[i] + 0.2 * rng.normal(size=64) for i in range(12)]
    expected, _ = engine.knn_many(queries, 3, workers=8)
    obs.close()

    records = load_workload(path)
    assert len(records) == len(queries)   # no record lost to interleaving
    for line in open(path):
        json.loads(line)                  # every line intact JSON
    # Completion order is arbitrary; match by query id digest.
    replayed = replay_workload(
        lambda backend: QueryEngine(corpus, band=4, dtw_backend=backend),
        records, backends=("vectorized",), modes=("serial",),
    )
    assert replayed.ok


def test_load_workload_skips_damaged_lines(tmp_path):
    path = tmp_path / "wl.jsonl"
    recorder = WorkloadRecorder(path)
    recorder({"schema": 1, "query_id": "x", "kind": "knn",
              "params": {"k": 3}, "query": [1.0], "results": []})
    recorder.close()
    with open(path, "a") as handle:
        handle.write("half a rec")
        handle.write("\n" + json.dumps({"kind": "knn"}) + "\n")
    records = load_workload(path)
    assert len(records) == 1


def test_empty_report_is_ok():
    assert ReplayReport().ok
    assert replay_workload(lambda backend: None, []).ok
