"""Bench history: entry construction, append-only storage, tolerance."""

import json

import pytest

from repro.perf import BenchHistory, machine_fingerprint, make_entry
from repro.perf.history import BENCH_HISTORY_SCHEMA, git_sha


def test_make_entry_fills_environment_fields():
    entry = make_entry("cascade", {"cascade": 9.4, "scalar": 300},
                       {"db_size": 100})
    assert entry["schema"] == BENCH_HISTORY_SCHEMA
    assert entry["bench"] == "cascade"
    assert entry["timings_ms"] == {"cascade": 9.4, "scalar": 300.0}
    assert entry["context"] == {"db_size": 100}
    assert entry["machine"]["fingerprint"]
    assert entry["timestamp_s"] > 0
    assert entry["git_sha"]


def test_make_entry_rejects_bad_timings():
    with pytest.raises(ValueError):
        make_entry("b", {})
    with pytest.raises(ValueError):
        make_entry("b", {"t": -1.0})
    with pytest.raises(ValueError):
        make_entry("b", {"t": "fast"})


def test_machine_fingerprint_is_stable():
    a, b = machine_fingerprint(), machine_fingerprint()
    assert a == b
    assert len(a["fingerprint"]) == 12
    assert a["cpu_count"] >= 1


def test_git_sha_env_override(monkeypatch):
    monkeypatch.setenv("REPRO_GIT_SHA", "deadbeef")
    assert git_sha() == "deadbeef"


def test_history_append_and_read_back(tmp_path):
    path = tmp_path / "hist.jsonl"
    history = BenchHistory(path)
    assert history.entries() == []        # missing file = empty history

    history.record("cascade", {"cascade": 10.0}, {"db": 100})
    history.record("cascade", {"cascade": 11.0}, {"db": 100})
    history.record("kernel", {"batch": 5.0}, {"n": 256})

    entries = history.entries()
    assert len(entries) == 3
    assert history.benches() == ["cascade", "kernel"]
    cascade = history.for_bench("cascade")
    assert [e["timings_ms"]["cascade"] for e in cascade] == [10.0, 11.0]
    # File order is time order.
    stamps = [e["timestamp_s"] for e in entries]
    assert stamps == sorted(stamps)


def test_history_append_validates_entries(tmp_path):
    history = BenchHistory(tmp_path / "hist.jsonl")
    with pytest.raises(ValueError, match="missing keys"):
        history.append({"bench": "x"})


def test_history_read_skips_damaged_lines(tmp_path):
    path = tmp_path / "hist.jsonl"
    history = BenchHistory(path)
    good = history.record("cascade", {"cascade": 10.0})
    with open(path, "a") as handle:
        handle.write("truncated {\n")
        handle.write(json.dumps({"bench": "no-schema"}) + "\n")
        handle.write(json.dumps(good, sort_keys=True) + "\n")

    entries = history.entries()
    assert len(entries) == 2
    assert history.read_stats.lines == 4
    assert history.read_stats.bad_lines == 2
    assert history.read_stats.entries == 2
