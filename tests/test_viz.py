"""Tests for the terminal visualisation helpers."""

import numpy as np
import pytest

from repro.core.envelope import k_envelope
from repro.dtw.path import warping_path
from repro.viz import ascii_bars, ascii_envelope, ascii_series, ascii_warping_grid


class TestAsciiSeries:
    def test_dimensions(self, rng):
        out = ascii_series(rng.normal(size=200), height=10, width=40)
        lines = out.splitlines()
        assert len(lines) == 10
        assert max(len(line) for line in lines) <= 40

    def test_extremes_on_border_rows(self):
        out = ascii_series([0.0, 10.0, 0.0], height=5, width=3)
        lines = out.splitlines()
        assert "*" in lines[0]       # the peak
        assert "*" in lines[-1]      # the valleys

    def test_nan_leaves_gap(self):
        out = ascii_series([1.0, np.nan, 1.0], height=3, width=3)
        column_chars = {line[1] if len(line) > 1 else " " for line in out.splitlines()}
        assert column_chars == {" "}

    def test_title_line(self, rng):
        out = ascii_series(rng.normal(size=5), title="hello")
        assert out.splitlines()[0] == "--- hello ---"

    def test_constant_series_single_row(self):
        out = ascii_series([2.0] * 10, height=4, width=10)
        starred = [line for line in out.splitlines() if "*" in line]
        assert len(starred) == 1

    def test_validation(self):
        with pytest.raises(ValueError, match="non-empty"):
            ascii_series([])
        with pytest.raises(ValueError, match=">= 2"):
            ascii_series([1.0, 2.0], height=1)
        with pytest.raises(ValueError, match="finite"):
            ascii_series([np.nan, np.nan])


class TestAsciiEnvelope:
    def test_contains_band_and_series(self, rng):
        x = np.cumsum(rng.normal(size=50))
        out = ascii_envelope(x, k_envelope(x, 4), height=10, width=50)
        assert "-" in out
        assert "*" in out

    def test_length_mismatch(self, rng):
        with pytest.raises(ValueError, match="differ"):
            ascii_envelope(rng.normal(size=5), k_envelope(rng.normal(size=6), 1))


class TestAsciiWarpingGrid:
    def test_path_cells_marked(self, rng):
        x = rng.normal(size=8)
        y = rng.normal(size=8)
        path = warping_path(x, y, k=2)
        out = ascii_warping_grid(path, 8, 8, k=2)
        lines = out.splitlines()
        assert len(lines) == 8
        for i, j in path:
            assert lines[i][j] == "#"

    def test_band_marked_with_dots(self):
        out = ascii_warping_grid([(0, 0), (1, 1)], 2, 2, k=1)
        assert "." in out or "#" in out

    def test_outside_band_blank(self):
        out = ascii_warping_grid([(0, 0)], 5, 5, k=0)
        lines = out.splitlines()
        assert lines[0][4] == " "

    def test_validation(self):
        with pytest.raises(ValueError, match="positive"):
            ascii_warping_grid([], 0, 3)


class TestAsciiBars:
    def test_proportional_lengths(self):
        out = ascii_bars(["a", "b"], [1.0, 2.0], width=10)
        line_a, line_b = out.splitlines()
        assert line_b.count("#") == 2 * line_a.count("#")

    def test_values_printed(self):
        out = ascii_bars(["x"], [0.25])
        assert "0.25" in out

    def test_zero_values_ok(self):
        out = ascii_bars(["x", "y"], [0.0, 0.0])
        assert "#" not in out

    def test_validation(self):
        with pytest.raises(ValueError, match="labels"):
            ascii_bars(["a"], [1.0, 2.0])
        with pytest.raises(ValueError, match="finite"):
            ascii_bars(["a"], [-1.0])
        with pytest.raises(ValueError, match="nothing"):
            ascii_bars([], [])
