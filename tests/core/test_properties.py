"""Property-based tests (hypothesis) for the core invariants.

These are the paper's theorems checked on arbitrary inputs:
lower-bounding (Theorem 1 / Lemma 2), container invariance
(Definition 8 / Lemma 3), and the structural properties of envelopes
and transforms they rest on.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.envelope import envelope_distance, k_envelope, sliding_max, sliding_min
from repro.core.envelope_transforms import (
    KeoghPAAEnvelopeTransform,
    NewPAAEnvelopeTransform,
    SignSplitEnvelopeTransform,
)
from repro.core.lower_bounds import lb_envelope_transform, lb_keogh, lb_yi
from repro.core.series import uniform_resample, upsample
from repro.core.transforms import DFTTransform, HaarTransform, PAATransform
from repro.dtw.distance import ldtw_distance

finite = st.floats(min_value=-100, max_value=100, allow_nan=False)


def series(length):
    return arrays(np.float64, length, elements=finite)


@given(series(32), st.integers(0, 10))
def test_envelope_contains_series(x, k):
    assert k_envelope(x, k).contains(x)


@given(series(32), st.integers(0, 31))
def test_sliding_extrema_bracket_series(x, k):
    assert np.all(sliding_min(x, k) <= x)
    assert np.all(sliding_max(x, k) >= x)


@given(series(24), st.integers(1, 8), st.integers(1, 8))
def test_envelope_nested_in_k(x, k1, k2):
    small, large = sorted((k1, k2))
    e_small = k_envelope(x, small)
    e_large = k_envelope(x, large)
    assert np.all(e_large.lower <= e_small.lower)
    assert np.all(e_large.upper >= e_small.upper)


@given(series(32), series(32), st.integers(0, 8))
def test_lb_keogh_lower_bounds_ldtw(x, y, k):
    assert lb_keogh(x, y, k) <= ldtw_distance(x, y, k) + 1e-6


@given(series(32), series(32), st.integers(0, 8))
def test_lb_yi_below_lb_keogh(x, y, k):
    assert lb_yi(x, y) <= lb_keogh(x, y, k) + 1e-6


@settings(max_examples=50)
@given(series(32), series(32), st.integers(0, 8), st.integers(1, 8))
def test_theorem1_new_paa(x, y, k, n_frames):
    lb = lb_envelope_transform(NewPAAEnvelopeTransform(32, n_frames), x, y, k=k)
    assert lb <= ldtw_distance(x, y, k) + 1e-6


@settings(max_examples=50)
@given(series(32), series(32), st.integers(0, 8), st.integers(1, 8))
def test_theorem1_dft(x, y, k, n_coeff):
    env_t = SignSplitEnvelopeTransform(DFTTransform(32, n_coeff))
    lb = lb_envelope_transform(env_t, x, y, k=k)
    assert lb <= ldtw_distance(x, y, k) + 1e-6


@settings(max_examples=50)
@given(series(32), st.integers(0, 8), st.integers(1, 8), st.data())
def test_container_invariance_on_contained_series(y, k, n_frames, data):
    """Any series drawn inside Env_k(y) maps inside the reduced envelope."""
    env = k_envelope(y, k)
    weights = data.draw(arrays(np.float64, 32,
                               elements=st.floats(0, 1, allow_nan=False)))
    z = env.lower + weights * env.width()
    for env_t in (
        NewPAAEnvelopeTransform(32, n_frames),
        KeoghPAAEnvelopeTransform(32, n_frames),
        SignSplitEnvelopeTransform(HaarTransform(32, min(n_frames, 32))),
    ):
        fe = env_t.reduce(env)
        assert fe.contains(env_t.transform_series(z), atol=1e-6)


@given(series(32), st.integers(0, 8), st.integers(1, 8))
def test_new_paa_band_within_keogh_band(y, k, n_frames):
    env = k_envelope(y, k)
    fe_new = NewPAAEnvelopeTransform(32, n_frames).reduce(env)
    fe_keogh = KeoghPAAEnvelopeTransform(32, n_frames).reduce(env)
    assert np.all(fe_new.lower >= fe_keogh.lower - 1e-9)
    assert np.all(fe_new.upper <= fe_keogh.upper + 1e-9)


@given(series(32), series(32), st.integers(1, 8))
def test_transforms_contract_euclidean_distance(x, y, n):
    for t in (PAATransform(32, n), DFTTransform(32, n), HaarTransform(32, n)):
        d_feat = np.linalg.norm(t(x) - t(y))
        d_orig = np.linalg.norm(x - y)
        assert d_feat <= d_orig + 1e-6


@given(series(16), st.integers(1, 6))
def test_upsample_preserves_multiset_counts(x, w):
    up = upsample(x, w)
    assert up.size == x.size * w
    assert np.array_equal(up[::w], x)


@given(series(16), st.integers(1, 64))
def test_uniform_resample_values_come_from_input(x, m):
    out = uniform_resample(x, m)
    assert out.size == m
    assert np.all(np.isin(out, x))


@given(series(24), st.integers(0, 6))
def test_envelope_distance_zero_iff_contained(x, k):
    env = k_envelope(x, k)
    assert envelope_distance(x, env) == 0.0
    poked = x.copy()
    poked[0] = env.upper[0] + 10.0
    assert envelope_distance(poked, env) > 0.0
