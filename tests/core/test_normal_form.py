"""Unit tests for repro.core.normal_form."""

import numpy as np
import pytest

from repro.core.normal_form import NormalForm, normalize, shift_normalize, utw_normal_form


class TestShiftNormalize:
    def test_zero_mean(self, rng):
        x = rng.normal(5.0, 1.0, size=50)
        assert shift_normalize(x).mean() == pytest.approx(0.0, abs=1e-12)

    def test_transposition_invariance(self, rng):
        x = rng.normal(size=30)
        shifted = x + 7.5
        assert np.allclose(shift_normalize(x), shift_normalize(shifted))

    def test_constant_becomes_zero(self):
        assert np.allclose(shift_normalize([3.0, 3.0, 3.0]), 0.0)


class TestUtwNormalForm:
    def test_target_length(self, rng):
        x = rng.normal(size=37)
        assert utw_normal_form(x, 256).size == 256

    def test_tempo_invariance(self, rng):
        """A series and its 2x slowed copy share the same normal form."""
        x = np.repeat(rng.normal(size=16), 4)   # length 64
        slow = np.repeat(x, 2)                  # length 128, same tune
        assert np.allclose(utw_normal_form(x, 128), utw_normal_form(slow, 128))


class TestNormalize:
    def test_shift_and_length(self, rng):
        x = rng.normal(10.0, 2.0, size=100)
        out = normalize(x, length=64)
        assert out.size == 64
        assert out.mean() == pytest.approx(0.0, abs=1e-12)

    def test_scale_option(self, rng):
        x = rng.normal(size=100)
        out = normalize(x, length=64, scale=True)
        assert out.std() == pytest.approx(1.0, abs=1e-9)

    def test_scale_constant_series_no_blowup(self):
        out = normalize([5.0] * 10, length=8, scale=True)
        assert np.allclose(out, 0.0)

    def test_length_none_keeps_sampling(self, rng):
        x = rng.normal(size=33)
        assert normalize(x, length=None).size == 33

    def test_no_shift(self, rng):
        x = rng.normal(4.0, 1.0, size=64)
        out = normalize(x, length=64, shift=False)
        assert out.mean() != pytest.approx(0.0, abs=1e-3)


class TestNormalFormConfig:
    def test_apply_equals_normalize(self, rng):
        x = rng.normal(size=80)
        nf = NormalForm(length=32, shift=True, scale=True)
        assert np.allclose(nf.apply(x), normalize(x, length=32, scale=True))

    def test_rejects_tiny_length(self):
        with pytest.raises(ValueError, match=">= 2"):
            NormalForm(length=1)

    def test_none_length_allowed(self):
        nf = NormalForm(length=None)
        assert nf.apply([1.0, 2.0]).size == 2

    def test_default_invariance_end_to_end(self, rng):
        """Same melody, different key and tempo -> same normal form."""
        tune = np.repeat(rng.normal(size=20), 3)
        variant = np.repeat(tune, 2) + 4.0  # slower and higher
        nf = NormalForm(length=120)
        assert np.allclose(nf.apply(tune), nf.apply(variant), atol=1e-9)
