"""Unit tests for repro.core.transforms."""

import numpy as np
import pytest

from repro.core.transforms import (
    DFTTransform,
    HaarTransform,
    IdentityTransform,
    LinearTransform,
    PAATransform,
    SVDTransform,
)

ALL_FIXED = [
    lambda: PAATransform(64, 8),
    lambda: DFTTransform(64, 8),
    lambda: HaarTransform(64, 8),
    lambda: IdentityTransform(64),
]


class TestLinearTransformBase:
    def test_rejects_expansion(self):
        with pytest.raises(ValueError, match="cannot have more outputs"):
            LinearTransform(np.ones((5, 3)))

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError, match="2-D"):
            LinearTransform(np.ones(4))

    def test_matrix_readonly(self):
        t = PAATransform(8, 2)
        with pytest.raises(ValueError):
            t.matrix[0, 0] = 5.0

    def test_transform_wrong_length(self):
        t = PAATransform(8, 2)
        with pytest.raises(ValueError, match="expects length 8"):
            t.transform(np.ones(9))

    def test_batch_matches_single(self, rng):
        t = DFTTransform(32, 6)
        data = rng.normal(size=(5, 32))
        batch = t.transform_batch(data)
        for i in range(5):
            assert np.allclose(batch[i], t.transform(data[i]))

    def test_batch_rejects_wrong_width(self, rng):
        t = DFTTransform(32, 6)
        with pytest.raises(ValueError, match="expects shape"):
            t.transform_batch(rng.normal(size=(5, 31)))

    def test_callable(self, rng):
        t = PAATransform(16, 4)
        x = rng.normal(size=16)
        assert np.allclose(t(x), t.transform(x))


class TestLowerBounding:
    @pytest.mark.parametrize("factory", ALL_FIXED)
    def test_is_lower_bounding_flag(self, factory):
        assert factory().is_lower_bounding()

    @pytest.mark.parametrize("factory", ALL_FIXED)
    def test_distances_contract(self, factory, rng):
        t = factory()
        for _ in range(20):
            x = rng.normal(size=64)
            y = rng.normal(size=64)
            d_feature = np.linalg.norm(t.transform(x) - t.transform(y))
            d_original = np.linalg.norm(x - y)
            assert d_feature <= d_original + 1e-9

    def test_svd_lower_bounding(self, rng):
        data = np.cumsum(rng.normal(size=(50, 32)), axis=1)
        t = SVDTransform.fit(data, 6)
        assert t.is_lower_bounding()
        x, y = data[0], data[1]
        assert np.linalg.norm(t(x) - t(y)) <= np.linalg.norm(x - y) + 1e-9


class TestPAA:
    def test_frame_means_on_divisible_length(self):
        t = PAATransform(8, 4)
        x = np.array([1, 1, 2, 2, 3, 3, 4, 4], dtype=float)
        assert t.frame_means(x).tolist() == [1.0, 2.0, 3.0, 4.0]

    def test_scaled_features_relate_to_means(self):
        t = PAATransform(8, 4)
        x = np.arange(8, dtype=float)
        assert np.allclose(t.transform(x), np.sqrt(2.0) * t.frame_means(x))

    def test_all_coefficients_positive(self):
        t = PAATransform(100, 7)
        assert np.all(t.matrix >= 0)
        assert np.all(t.matrix.sum(axis=1) > 0)

    def test_uneven_frames_cover_everything(self):
        t = PAATransform(10, 3)
        # every input column contributes to exactly one frame
        assert np.all((t.matrix > 0).sum(axis=0) == 1)

    def test_rejects_more_frames_than_samples(self):
        with pytest.raises(ValueError, match="cannot split"):
            PAATransform(4, 8)

    def test_constant_series_reconstructs(self):
        t = PAATransform(12, 3)
        assert np.allclose(t.frame_means(np.full(12, 2.5)), 2.5)


class TestDFT:
    def test_first_row_is_dc(self):
        t = DFTTransform(16, 5)
        x = np.full(16, 3.0)
        feats = t.transform(x)
        assert feats[0] == pytest.approx(3.0 * np.sqrt(16))
        assert np.allclose(feats[1:], 0.0, atol=1e-12)

    def test_pure_tone_energy_in_pair(self):
        n = 32
        t = DFTTransform(n, 3)
        x = np.cos(2 * np.pi * np.arange(n) / n)
        feats = t.transform(x)
        # energy preserved for a frequency-1 tone kept by the transform
        assert np.linalg.norm(feats) == pytest.approx(np.linalg.norm(x))

    def test_rows_orthonormal(self):
        t = DFTTransform(64, 9)
        gram = t.matrix @ t.matrix.T
        assert np.allclose(gram, np.eye(9), atol=1e-10)

    def test_full_dimension_allowed(self):
        t = DFTTransform(8, 8)
        assert t.output_dim == 8


class TestHaar:
    def test_requires_power_of_two(self):
        with pytest.raises(ValueError, match="power-of-two"):
            HaarTransform(12, 4)

    def test_rows_orthonormal(self):
        t = HaarTransform(16, 16)
        assert np.allclose(t.matrix @ t.matrix.T, np.eye(16), atol=1e-10)

    def test_full_haar_preserves_norm(self, rng):
        t = HaarTransform(32, 32)
        x = rng.normal(size=32)
        assert np.linalg.norm(t(x)) == pytest.approx(np.linalg.norm(x))

    def test_first_coefficient_is_scaled_mean(self, rng):
        t = HaarTransform(16, 1)
        x = rng.normal(size=16)
        assert t(x)[0] == pytest.approx(x.mean() * np.sqrt(16))


class TestSVD:
    def test_optimal_for_training_data(self, rng):
        """SVD captures more pairwise distance on its training set than
        a fixed transform of the same dimension."""
        data = np.cumsum(rng.normal(size=(100, 64)), axis=1)
        data = data - data.mean(axis=1, keepdims=True)
        svd = SVDTransform.fit(data, 4)
        paa = PAATransform(64, 4)
        svd_total = paa_total = 0.0
        for i in range(0, 20, 2):
            x, y = data[i], data[i + 1]
            svd_total += np.linalg.norm(svd(x) - svd(y))
            paa_total += np.linalg.norm(paa(x) - paa(y))
        assert svd_total >= paa_total

    def test_fit_rejects_too_many_components(self):
        data = np.zeros((5, 8))
        with pytest.raises(ValueError, match="output dimension"):
            SVDTransform.fit(data, 9)

    def test_fit_center_option(self, rng):
        data = rng.normal(size=(30, 16)) + 100.0
        t = SVDTransform.fit(data, 3, center=True)
        assert t.output_dim == 3


class TestIdentity:
    def test_is_identity(self, rng):
        t = IdentityTransform(10)
        x = rng.normal(size=10)
        assert np.allclose(t(x), x)

    def test_name(self):
        assert IdentityTransform(4).name == "LB"
