"""Unit tests for repro.core.series."""

import numpy as np
import pytest

from repro.core.series import (
    as_series,
    common_length,
    first,
    rest,
    uniform_resample,
    upsample,
)


class TestAsSeries:
    def test_accepts_list(self):
        arr = as_series([1, 2, 3])
        assert arr.dtype == np.float64
        assert arr.tolist() == [1.0, 2.0, 3.0]

    def test_accepts_ndarray(self):
        arr = as_series(np.array([1.5, 2.5]))
        assert arr.tolist() == [1.5, 2.5]

    def test_rejects_2d(self):
        with pytest.raises(ValueError, match="1-D"):
            as_series(np.zeros((2, 2)))

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="at least 1"):
            as_series([])

    def test_rejects_nan(self):
        with pytest.raises(ValueError, match="finite"):
            as_series([1.0, np.nan])

    def test_rejects_inf(self):
        with pytest.raises(ValueError, match="finite"):
            as_series([np.inf, 1.0])

    def test_min_length_enforced(self):
        with pytest.raises(ValueError, match="at least 3"):
            as_series([1.0, 2.0], min_length=3)


class TestUpsample:
    def test_repeats_each_value(self):
        assert upsample([1.0, 2.0], 3).tolist() == [1, 1, 1, 2, 2, 2]

    def test_factor_one_is_identity(self):
        assert upsample([4.0, 5.0], 1).tolist() == [4.0, 5.0]

    def test_rejects_zero_factor(self):
        with pytest.raises(ValueError, match=">= 1"):
            upsample([1.0], 0)

    def test_length_multiplies(self, rng):
        x = rng.normal(size=17)
        assert upsample(x, 5).size == 85


class TestUniformResample:
    def test_integer_upsample_matches_upsample(self, rng):
        x = rng.normal(size=8)
        assert np.array_equal(uniform_resample(x, 24), upsample(x, 3))

    def test_identity_when_same_length(self, rng):
        x = rng.normal(size=10)
        assert np.array_equal(uniform_resample(x, 10), x)

    def test_downsample_takes_subset_values(self, rng):
        x = rng.normal(size=100)
        out = uniform_resample(x, 10)
        assert all(value in x for value in out)

    def test_preserves_endpoints_of_constant_runs(self):
        x = np.array([1.0, 1.0, 2.0, 2.0])
        out = uniform_resample(x, 2)
        assert out.tolist() == [1.0, 2.0]

    def test_rejects_nonpositive_length(self):
        with pytest.raises(ValueError, match=">= 1"):
            uniform_resample([1.0], 0)


class TestCommonLength:
    def test_lcm(self):
        assert common_length(4, 6) == 12

    def test_coprime(self):
        assert common_length(3, 7) == 21

    def test_cap_applies(self):
        assert common_length(97, 101, cap=500) == 500

    def test_cap_not_reached(self):
        assert common_length(2, 4, cap=500) == 4

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            common_length(0, 5)


class TestFirstRest:
    def test_first(self):
        assert first([7.0, 8.0]) == 7.0

    def test_rest(self):
        assert rest([7.0, 8.0, 9.0]).tolist() == [8.0, 9.0]

    def test_rest_requires_two(self):
        with pytest.raises(ValueError):
            rest([7.0])
