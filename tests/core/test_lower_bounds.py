"""Unit tests for repro.core.lower_bounds."""

import numpy as np
import pytest

from repro.core.envelope import k_envelope
from repro.core.envelope_transforms import (
    KeoghPAAEnvelopeTransform,
    NewPAAEnvelopeTransform,
    SignSplitEnvelopeTransform,
)
from repro.core.lower_bounds import lb_envelope_transform, lb_keogh, lb_yi, tightness
from repro.core.transforms import DFTTransform, IdentityTransform
from repro.dtw.distance import ldtw_distance

N = 64
K = 5


def make_pair(rng):
    x = np.cumsum(rng.normal(size=N))
    y = np.cumsum(rng.normal(size=N))
    return x - x.mean(), y - y.mean()


class TestLbYi:
    def test_lower_bounds_dtw(self, rng):
        for _ in range(20):
            x, y = make_pair(rng)
            assert lb_yi(x, y) <= ldtw_distance(x, y, K) + 1e-9

    def test_zero_when_query_inside_range(self, rng):
        y = np.array([0.0, 5.0, 0.0, -5.0] * 8)
        x = np.zeros(32)
        assert lb_yi(x, y) == 0.0

    def test_looser_than_lb_keogh(self, rng):
        for _ in range(20):
            x, y = make_pair(rng)
            assert lb_yi(x, y) <= lb_keogh(x, y, K) + 1e-9


class TestLbKeogh:
    def test_lower_bounds_dtw(self, rng):
        for k in (0, 2, 8):
            for _ in range(10):
                x, y = make_pair(rng)
                assert lb_keogh(x, y, k) <= ldtw_distance(x, y, k) + 1e-9

    def test_k_zero_is_euclidean(self, rng):
        x, y = make_pair(rng)
        assert lb_keogh(x, y, 0) == pytest.approx(float(np.linalg.norm(x - y)))

    def test_symmetric_enough_for_self(self, rng):
        x, _ = make_pair(rng)
        assert lb_keogh(x, x, 3) == 0.0

    def test_rejects_length_mismatch(self, rng):
        with pytest.raises(ValueError, match="lengths differ"):
            lb_keogh(rng.normal(size=10), rng.normal(size=12), 2)

    def test_monotone_decreasing_in_k(self, rng):
        """Wider bands -> looser bounds."""
        x, y = make_pair(rng)
        bounds = [lb_keogh(x, y, k) for k in (0, 1, 2, 4, 8, 16)]
        assert all(a >= b - 1e-9 for a, b in zip(bounds, bounds[1:]))


class TestLbEnvelopeTransform:
    def test_theorem1_all_transforms(self, rng):
        transforms = [
            NewPAAEnvelopeTransform(N, 8),
            KeoghPAAEnvelopeTransform(N, 8),
            SignSplitEnvelopeTransform(DFTTransform(N, 8)),
            SignSplitEnvelopeTransform(IdentityTransform(N)),
        ]
        for env_t in transforms:
            for _ in range(10):
                x, y = make_pair(rng)
                lb = lb_envelope_transform(env_t, x, y, k=K)
                assert lb <= ldtw_distance(x, y, K) + 1e-9, env_t.name

    def test_identity_equals_lb_keogh(self, rng):
        env_t = SignSplitEnvelopeTransform(IdentityTransform(N))
        x, y = make_pair(rng)
        assert lb_envelope_transform(env_t, x, y, k=K) == pytest.approx(
            lb_keogh(x, y, K)
        )

    def test_new_paa_at_least_keogh_paa(self, rng):
        new = NewPAAEnvelopeTransform(N, 8)
        keogh = KeoghPAAEnvelopeTransform(N, 8)
        for _ in range(20):
            x, y = make_pair(rng)
            env = k_envelope(y, K)
            assert (
                lb_envelope_transform(new, x, envelope=env)
                >= lb_envelope_transform(keogh, x, envelope=env) - 1e-9
            )

    def test_precomputed_paths_agree(self, rng):
        env_t = NewPAAEnvelopeTransform(N, 8)
        x, y = make_pair(rng)
        env = k_envelope(y, K)
        fe = env_t.reduce(env)
        feats = env_t.transform_series(x)
        base = lb_envelope_transform(env_t, x, y, k=K)
        assert lb_envelope_transform(env_t, x, envelope=env) == pytest.approx(base)
        assert lb_envelope_transform(
            env_t, x, feature_envelope=fe
        ) == pytest.approx(base)
        assert lb_envelope_transform(
            env_t, None, feature_envelope=fe, query_features=feats
        ) == pytest.approx(base)

    def test_missing_candidate_raises(self, rng):
        env_t = NewPAAEnvelopeTransform(N, 8)
        with pytest.raises(ValueError, match="provide"):
            lb_envelope_transform(env_t, rng.normal(size=N))


class TestTightness:
    def test_range(self):
        assert tightness(0.5, 1.0) == 0.5
        assert tightness(0.0, 1.0) == 0.0

    def test_zero_distance_defined_as_one(self):
        assert tightness(0.0, 0.0) == 1.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            tightness(-1.0, 1.0)
        with pytest.raises(ValueError):
            tightness(1.0, -1.0)

    def test_correct_bounds_never_exceed_one(self, rng):
        x = np.cumsum(rng.normal(size=N))
        y = np.cumsum(rng.normal(size=N))
        x -= x.mean()
        y -= y.mean()
        d = ldtw_distance(x, y, K)
        assert tightness(lb_keogh(x, y, K), d) <= 1.0 + 1e-9
