"""Unit and property tests for query-time preprocessing."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.preprocess import (
    amplitude_normalize,
    clip_outliers,
    detrend,
    exponential_smoothing,
    median_smoothing,
    moving_average,
)

finite = st.floats(min_value=-100, max_value=100, allow_nan=False)


class TestMovingAverage:
    def test_constant_unchanged(self):
        assert np.allclose(moving_average([2.0] * 10, 5), 2.0)

    def test_window_one_is_copy(self, rng):
        x = rng.normal(size=10)
        out = moving_average(x, 1)
        assert np.array_equal(out, x)
        out[0] = 99
        assert x[0] != 99

    def test_known_interior_value(self):
        x = np.array([0.0, 3.0, 6.0, 9.0, 12.0])
        assert moving_average(x, 3)[2] == pytest.approx(6.0)

    def test_length_preserved(self, rng):
        x = rng.normal(size=37)
        assert moving_average(x, 7).size == 37

    def test_reduces_noise_variance(self, rng):
        x = rng.normal(size=500)
        assert moving_average(x, 9).std() < x.std()

    def test_rejects_even_window(self, rng):
        with pytest.raises(ValueError, match="odd"):
            moving_average(rng.normal(size=8), 4)


class TestExponentialSmoothing:
    def test_alpha_one_is_identity(self, rng):
        x = rng.normal(size=10)
        assert np.allclose(exponential_smoothing(x, 1.0), x)

    def test_recurrence(self):
        out = exponential_smoothing([0.0, 10.0], 0.5)
        assert out.tolist() == [0.0, 5.0]

    def test_rejects_bad_alpha(self):
        with pytest.raises(ValueError, match="alpha"):
            exponential_smoothing([1.0], 0.0)
        with pytest.raises(ValueError, match="alpha"):
            exponential_smoothing([1.0], 1.5)


class TestMedianSmoothing:
    def test_removes_single_blip(self):
        x = np.full(11, 5.0)
        x[5] = 50.0  # octave blip
        out = median_smoothing(x, 3)
        assert np.allclose(out, 5.0)

    def test_preserves_steps(self):
        x = np.array([0.0] * 6 + [4.0] * 6)
        out = median_smoothing(x, 3)
        assert set(np.unique(out)) == {0.0, 4.0}

    def test_rejects_even_window(self):
        with pytest.raises(ValueError, match="odd"):
            median_smoothing([1.0, 2.0], 2)


class TestAmplitudeNormalize:
    def test_unit_variance(self, rng):
        out = amplitude_normalize(rng.normal(3.0, 7.0, size=200))
        assert out.mean() == pytest.approx(0.0, abs=1e-12)
        assert out.std() == pytest.approx(1.0)

    def test_constant_maps_to_zeros(self):
        assert np.allclose(amplitude_normalize([4.0] * 5), 0.0)

    def test_scale_invariance(self, rng):
        x = rng.normal(size=50)
        assert np.allclose(
            amplitude_normalize(x), amplitude_normalize(3.5 * x + 2.0)
        )


class TestDetrend:
    def test_removes_pure_trend(self):
        t = np.arange(20, dtype=float)
        assert np.allclose(detrend(2.0 * t + 5.0), 0.0, atol=1e-9)

    def test_preserves_oscillation(self, rng):
        t = np.arange(200, dtype=float)
        wave = np.sin(2 * np.pi * t / 20)
        drifted = wave + 0.05 * t
        out = detrend(drifted)
        assert np.corrcoef(out, wave)[0, 1] > 0.99

    def test_single_sample(self):
        assert detrend([7.0]).tolist() == [0.0]


class TestClipOutliers:
    def test_clips_extreme_point(self, rng):
        x = rng.normal(size=100)
        x[50] = 100.0
        out = clip_outliers(x, n_sigmas=3.0)
        assert out[50] < 100.0
        assert out[50] == out.max()

    def test_no_change_for_tame_data(self):
        x = np.array([0.0, 1.0, 0.0, -1.0] * 10)
        assert np.allclose(clip_outliers(x, n_sigmas=3.0), x)

    def test_constant_series(self):
        assert np.allclose(clip_outliers([2.0] * 5), 2.0)

    def test_rejects_bad_sigma(self):
        with pytest.raises(ValueError, match="n_sigmas"):
            clip_outliers([1.0], n_sigmas=0.0)


@given(arrays(np.float64, 32, elements=finite), st.sampled_from([1, 3, 5, 9]))
def test_property_moving_average_bounded_by_extremes(x, window):
    out = moving_average(x, window)
    assert np.all(out >= x.min() - 1e-9)
    assert np.all(out <= x.max() + 1e-9)


@given(arrays(np.float64, 32, elements=finite), st.sampled_from([3, 5, 9]))
def test_property_median_smoothing_values_bounded(x, window):
    out = median_smoothing(x, window)
    assert np.all(out >= x.min() - 1e-9)
    assert np.all(out <= x.max() + 1e-9)


@given(arrays(np.float64, 16, elements=finite))
def test_property_detrend_is_idempotent(x):
    once = detrend(x)
    twice = detrend(once)
    assert np.allclose(once, twice, atol=1e-6)
