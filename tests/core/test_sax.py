"""Tests for SAX (symbolic aggregate approximation)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.sax import SAXWord, sax_breakpoints, sax_mindist, sax_transform


def znorm(x):
    return (x - x.mean()) / x.std()


class TestBreakpoints:
    def test_binary_alphabet_splits_at_zero(self):
        assert sax_breakpoints(2).tolist() == [0.0]

    def test_ascending(self):
        cuts = sax_breakpoints(8)
        assert np.all(np.diff(cuts) > 0)
        assert cuts.size == 7

    def test_symmetric(self):
        cuts = sax_breakpoints(6)
        assert np.allclose(cuts, -cuts[::-1])

    def test_equiprobable(self, rng):
        cuts = sax_breakpoints(4)
        samples = rng.normal(size=200_000)
        counts = np.histogram(samples, bins=[-np.inf, *cuts, np.inf])[0]
        assert np.allclose(counts / samples.size, 0.25, atol=0.01)

    def test_validation(self):
        with pytest.raises(ValueError):
            sax_breakpoints(1)
        with pytest.raises(ValueError):
            sax_breakpoints(27)


class TestSaxTransform:
    def test_word_shape(self, rng):
        word = sax_transform(rng.normal(size=128), 8, 4)
        assert word.word_length == 8
        assert word.alphabet_size == 4
        assert word.original_length == 128

    def test_string_rendering(self, rng):
        word = sax_transform(rng.normal(size=64), 8, 4)
        text = str(word)
        assert len(text) == 8
        assert set(text) <= set("abcd")

    def test_monotone_ramp_gives_sorted_word(self):
        word = sax_transform(np.linspace(-3, 3, 64), 8, 6)
        assert list(word.symbols) == sorted(word.symbols)
        assert word.symbols[0] == 0
        assert word.symbols[-1] == 5

    def test_scale_invariance_via_znorm(self, rng):
        x = np.cumsum(rng.normal(size=100))
        a = sax_transform(x, 10, 8)
        b = sax_transform(5.0 * x + 30.0, 10, 8)
        assert np.array_equal(a.symbols, b.symbols)

    def test_constant_series(self):
        word = sax_transform(np.full(32, 7.0), 4, 4)
        # Zero-variance input maps to the middle of the alphabet.
        assert word.word_length == 4

    def test_word_validation(self):
        with pytest.raises(ValueError, match="alphabet range"):
            SAXWord(symbols=np.array([5]), original_length=8, alphabet_size=4)
        with pytest.raises(ValueError, match="shorter"):
            SAXWord(symbols=np.array([0, 1, 1]), original_length=2,
                    alphabet_size=4)


class TestMindist:
    def test_lower_bounds_euclidean(self, rng):
        for _ in range(30):
            x = znorm(np.cumsum(rng.normal(size=96)))
            y = znorm(np.cumsum(rng.normal(size=96)))
            a = sax_transform(x, 12, 8, znormalize=False)
            b = sax_transform(y, 12, 8, znormalize=False)
            assert sax_mindist(a, b) <= np.linalg.norm(x - y) + 1e-9

    def test_identical_words_zero(self, rng):
        x = rng.normal(size=64)
        a = sax_transform(x, 8, 6)
        assert sax_mindist(a, a) == 0.0

    def test_adjacent_symbols_free(self):
        a = SAXWord(symbols=np.array([0, 1]), original_length=16,
                    alphabet_size=4)
        b = SAXWord(symbols=np.array([1, 2]), original_length=16,
                    alphabet_size=4)
        assert sax_mindist(a, b) == 0.0

    def test_distant_symbols_cost(self):
        a = SAXWord(symbols=np.array([0]), original_length=8, alphabet_size=4)
        b = SAXWord(symbols=np.array([3]), original_length=8, alphabet_size=4)
        assert sax_mindist(a, b) > 0.0

    def test_symmetry(self, rng):
        a = sax_transform(rng.normal(size=64), 8, 8)
        b = sax_transform(rng.normal(size=64), 8, 8)
        assert sax_mindist(a, b) == sax_mindist(b, a)

    def test_mismatch_validation(self, rng):
        a = sax_transform(rng.normal(size=64), 8, 8)
        b = sax_transform(rng.normal(size=64), 8, 4)
        with pytest.raises(ValueError, match="alphabets"):
            sax_mindist(a, b)
        c = sax_transform(rng.normal(size=64), 4, 8)
        with pytest.raises(ValueError, match="different lengths"):
            sax_mindist(a, c)


@settings(max_examples=60)
@given(
    arrays(np.float64, 48,
           elements=st.floats(-50, 50, allow_nan=False)),
    arrays(np.float64, 48,
           elements=st.floats(-50, 50, allow_nan=False)),
    st.sampled_from([4, 6, 8, 12]),
    st.sampled_from([3, 4, 8, 16]),
)
def test_property_mindist_lower_bounds(x, y, word_len, alphabet):
    if x.std() <= 1e-9 or y.std() <= 1e-9:
        return
    xz, yz = znorm(x), znorm(y)
    a = sax_transform(xz, word_len, alphabet, znormalize=False)
    b = sax_transform(yz, word_len, alphabet, znormalize=False)
    assert sax_mindist(a, b) <= np.linalg.norm(xz - yz) + 1e-6
