"""Family-wide sweep: every linear transform obeys the framework.

One parametrised suite over the whole transform family — including the
extension members (Chebyshev, random projection) — checking the two
properties the GEMINI pipeline needs (lower-bounding; container
invariance of the sign-split envelope transform) plus end-to-end index
exactness.  Adding a transform to ``FAMILY`` is all it takes to get it
verified.
"""

import numpy as np
import pytest

from repro.core.envelope import k_envelope
from repro.core.envelope_transforms import SignSplitEnvelopeTransform
from repro.core.lower_bounds import lb_envelope_transform
from repro.core.normal_form import NormalForm
from repro.core.transforms import (
    ChebyshevTransform,
    DFTTransform,
    HaarTransform,
    PAATransform,
    RandomProjectionTransform,
    SVDTransform,
)
from repro.datasets.generators import random_walks
from repro.dtw.distance import ldtw_distance
from repro.index.gemini import WarpingIndex

N = 64
DIMS = 8


def _svd():
    train = random_walks(60, N, seed=77)
    train = train - train.mean(axis=1, keepdims=True)
    return SVDTransform.fit(train, DIMS)


FAMILY = {
    "paa": lambda: PAATransform(N, DIMS),
    "dft": lambda: DFTTransform(N, DIMS),
    "haar": lambda: HaarTransform(N, DIMS),
    "svd": _svd,
    "chebyshev": lambda: ChebyshevTransform(N, DIMS),
    "randproj": lambda: RandomProjectionTransform(N, DIMS, seed=3),
}


@pytest.mark.parametrize("name", sorted(FAMILY))
class TestFamilyProperties:
    def test_lower_bounding(self, name, rng):
        t = FAMILY[name]()
        assert t.is_lower_bounding()
        for _ in range(15):
            x = rng.normal(size=N)
            y = rng.normal(size=N)
            assert (
                np.linalg.norm(t(x) - t(y))
                <= np.linalg.norm(x - y) + 1e-9
            )

    def test_sign_split_container_invariance(self, name, rng):
        env_t = SignSplitEnvelopeTransform(FAMILY[name]())
        for _ in range(10):
            y = np.cumsum(rng.normal(size=N))
            env = k_envelope(y, 4)
            z = env.lower + rng.random(N) * env.width()
            assert env_t.reduce(env).contains(
                env_t.transform_series(z), atol=1e-7
            )

    def test_theorem1_bound(self, name, rng):
        env_t = SignSplitEnvelopeTransform(FAMILY[name]())
        for _ in range(10):
            x = np.cumsum(rng.normal(size=N))
            y = np.cumsum(rng.normal(size=N))
            x -= x.mean()
            y -= y.mean()
            lb = lb_envelope_transform(env_t, x, y, k=4)
            assert lb <= ldtw_distance(x, y, 4) + 1e-9

    def test_end_to_end_index_exactness(self, name):
        env_t = SignSplitEnvelopeTransform(FAMILY[name]())
        walks = list(random_walks(120, 96, seed=88))
        index = WarpingIndex(
            walks, delta=0.1, env_transform=env_t,
            normal_form=NormalForm(length=N),
        )
        query = random_walks(1, 96, seed=89)[0]
        results, _ = index.range_query(query, 6.0)
        truth = index.ground_truth_range(query, 6.0)
        assert [i for i, _ in results] == [i for i, _ in truth]


class TestChebyshevSpecifics:
    def test_concentrates_smooth_energy(self, rng):
        """A smooth cubic trend is captured almost exactly by 8
        Chebyshev coefficients (unlike, say, 8-frame PAA)."""
        t = np.linspace(-1, 1, N)
        smooth = 3 * t**3 - 2 * t + 0.5
        cheb = ChebyshevTransform(N, DIMS)
        energy = np.linalg.norm(cheb(smooth)) / np.linalg.norm(smooth)
        assert energy > 0.999

    def test_rejects_bad_dims(self):
        with pytest.raises(ValueError):
            ChebyshevTransform(8, 9)


class TestRandomProjectionSpecifics:
    def test_deterministic_per_seed(self, rng):
        a = RandomProjectionTransform(32, 4, seed=5)
        b = RandomProjectionTransform(32, 4, seed=5)
        x = rng.normal(size=32)
        assert np.allclose(a(x), b(x))

    def test_spectral_norm_is_one(self):
        t = RandomProjectionTransform(32, 4, seed=1)
        assert np.linalg.norm(t.matrix, ord=2) == pytest.approx(1.0)
