"""Unit tests for APCA (adaptive piecewise constant approximation)."""

import numpy as np
import pytest

from repro.core.apca import APCA, apca_approximate, apca_dtw_lb, apca_euclidean_lb
from repro.core.envelope import k_envelope
from repro.core.transforms import PAATransform
from repro.dtw.distance import ldtw_distance


class TestApcaDataclass:
    def test_reconstruct(self):
        apca = APCA(values=np.array([1.0, 3.0]), ends=np.array([2, 5]))
        assert apca.reconstruct().tolist() == [1, 1, 3, 3, 3]

    def test_memory(self):
        apca = APCA(values=np.array([1.0, 3.0]), ends=np.array([2, 5]))
        assert apca.memory_floats() == 4

    def test_validation(self):
        with pytest.raises(ValueError, match="increasing"):
            APCA(values=np.array([1.0, 2.0]), ends=np.array([3, 3]))
        with pytest.raises(ValueError, match="at least one"):
            APCA(values=np.array([]), ends=np.array([]))
        with pytest.raises(ValueError, match="equally long"):
            APCA(values=np.array([1.0]), ends=np.array([1, 2]))


class TestApproximate:
    def test_exact_for_piecewise_constant_input(self):
        series = np.array([2.0] * 5 + [7.0] * 3 + [4.0] * 4)
        apca = apca_approximate(series, 3)
        assert apca.ends.tolist() == [5, 8, 12]
        assert apca.values.tolist() == [2.0, 7.0, 4.0]
        assert np.array_equal(apca.reconstruct(), series)

    def test_segment_count(self, rng):
        apca = apca_approximate(rng.normal(size=100), 7)
        assert apca.n_segments == 7
        assert apca.length == 100

    def test_one_segment_is_global_mean(self, rng):
        x = rng.normal(size=20)
        apca = apca_approximate(x, 1)
        assert apca.values[0] == pytest.approx(x.mean())

    def test_n_segments_equals_length(self, rng):
        x = rng.normal(size=10)
        apca = apca_approximate(x, 10)
        assert np.allclose(apca.reconstruct(), x)

    def test_values_are_segment_means(self, rng):
        x = rng.normal(size=64)
        apca = apca_approximate(x, 6)
        start = 0
        for value, end in zip(apca.values, apca.ends):
            assert value == pytest.approx(x[start:end].mean())
            start = end

    def test_adaptive_beats_fixed_frames_on_steppy_data(self, rng):
        """APCA's raison d'etre: adaptive boundaries fit step data
        better than equal-width PAA at the same segment budget."""
        steps = np.repeat(rng.normal(size=5), [3, 17, 2, 29, 13])
        apca = apca_approximate(steps, 5)
        apca_err = np.linalg.norm(steps - apca.reconstruct())
        paa = PAATransform(64, 5)
        paa_recon = np.repeat(paa.frame_means(steps),
                              np.diff(paa.frame_bounds))
        paa_err = np.linalg.norm(steps - paa_recon)
        assert apca_err < paa_err

    def test_validation(self, rng):
        with pytest.raises(ValueError, match="n_segments"):
            apca_approximate(rng.normal(size=10), 0)
        with pytest.raises(ValueError, match="n_segments"):
            apca_approximate(rng.normal(size=10), 11)


class TestEuclideanLb:
    def test_lower_bounds_true_distance(self, rng):
        for _ in range(20):
            x = np.cumsum(rng.normal(size=64))
            q = np.cumsum(rng.normal(size=64))
            apca = apca_approximate(x, 8)
            assert apca_euclidean_lb(q, apca) <= np.linalg.norm(q - x) + 1e-9

    def test_exact_when_segments_cover_constant_series(self):
        x = np.array([1.0] * 4 + [5.0] * 4)
        q = np.array([2.0] * 4 + [3.0] * 4)
        apca = apca_approximate(x, 2)
        assert apca_euclidean_lb(q, apca) == pytest.approx(
            np.linalg.norm(q - x)
        )

    def test_rejects_length_mismatch(self, rng):
        apca = apca_approximate(rng.normal(size=16), 4)
        with pytest.raises(ValueError, match="does not match"):
            apca_euclidean_lb(rng.normal(size=17), apca)


class TestDtwLb:
    def test_lower_bounds_constrained_dtw(self, rng):
        for _ in range(20):
            x = np.cumsum(rng.normal(size=64))
            q = np.cumsum(rng.normal(size=64))
            x -= x.mean()
            q -= q.mean()
            k = 4
            apca = apca_approximate(x, 8)
            lb = apca_dtw_lb(k_envelope(q, k), apca)
            assert lb <= ldtw_distance(x, q, k) + 1e-9

    def test_zero_for_series_inside_envelope(self, rng):
        q = np.cumsum(rng.normal(size=32))
        env = k_envelope(q, 3)
        apca = apca_approximate(q, 6)
        assert apca_dtw_lb(env, apca) == pytest.approx(0.0, abs=1e-9)

    def test_rejects_length_mismatch(self, rng):
        apca = apca_approximate(rng.normal(size=16), 4)
        env = k_envelope(rng.normal(size=20), 2)
        with pytest.raises(ValueError, match="does not match"):
            apca_dtw_lb(env, apca)
