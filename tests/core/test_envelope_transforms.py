"""Unit tests for repro.core.envelope_transforms."""

import numpy as np
import pytest

from repro.core.envelope import k_envelope
from repro.core.envelope_transforms import (
    KeoghPAAEnvelopeTransform,
    NaiveEnvelopeTransform,
    NewPAAEnvelopeTransform,
    SignSplitEnvelopeTransform,
)
from repro.core.transforms import (
    DFTTransform,
    HaarTransform,
    IdentityTransform,
    PAATransform,
    SVDTransform,
)

N = 64
FEATURES = 8


def sign_split_transforms(rng):
    data = np.cumsum(rng.normal(size=(40, N)), axis=1)
    return [
        SignSplitEnvelopeTransform(PAATransform(N, FEATURES)),
        SignSplitEnvelopeTransform(DFTTransform(N, FEATURES)),
        SignSplitEnvelopeTransform(HaarTransform(N, FEATURES)),
        SignSplitEnvelopeTransform(SVDTransform.fit(data, FEATURES)),
        SignSplitEnvelopeTransform(IdentityTransform(N)),
    ]


class TestContainerInvariance:
    def test_sign_split_is_container_invariant(self, rng):
        """Definition 8: x in e  =>  T(x) in T(e), for every transform."""
        for env_t in sign_split_transforms(rng):
            for _ in range(10):
                y = np.cumsum(rng.normal(size=N))
                env = k_envelope(y, 5)
                z = env.lower + rng.random(N) * env.width()
                feats = env_t.transform_series(z)
                assert env_t.reduce(env).contains(feats, atol=1e-7), env_t.name

    def test_keogh_paa_is_container_invariant(self, rng):
        env_t = KeoghPAAEnvelopeTransform(N, FEATURES)
        for _ in range(10):
            y = np.cumsum(rng.normal(size=N))
            env = k_envelope(y, 5)
            z = env.lower + rng.random(N) * env.width()
            assert env_t.reduce(env).contains(env_t.transform_series(z), atol=1e-7)

    def test_naive_dft_violates_container_invariance(self, rng):
        """The ablation case: without the sign split, DFT envelopes
        fail Definition 8 for some series."""
        env_t = NaiveEnvelopeTransform(DFTTransform(N, FEATURES))
        violations = 0
        for _ in range(50):
            y = np.cumsum(rng.normal(size=N))
            env = k_envelope(y, 5)
            z = env.lower + rng.random(N) * env.width()
            if not env_t.reduce(env).contains(env_t.transform_series(z), atol=1e-9):
                violations += 1
        assert violations > 0

    def test_naive_equals_signsplit_for_positive_transform(self, rng):
        """PAA has no negative coefficients, so naive == sign-split."""
        naive = NaiveEnvelopeTransform(PAATransform(N, FEATURES))
        split = SignSplitEnvelopeTransform(PAATransform(N, FEATURES))
        y = np.cumsum(rng.normal(size=N))
        env = k_envelope(y, 4)
        a, b = naive.reduce(env), split.reduce(env)
        assert np.allclose(a.lower, b.lower)
        assert np.allclose(a.upper, b.upper)


class TestNewVsKeogh:
    def test_new_paa_bounds_inside_keogh(self, rng):
        """Figure 5's claim: New_PAA's band is always within Keogh's."""
        new = NewPAAEnvelopeTransform(N, FEATURES)
        keogh = KeoghPAAEnvelopeTransform(N, FEATURES)
        for _ in range(20):
            y = np.cumsum(rng.normal(size=N))
            env = k_envelope(y, 5)
            fe_new = new.reduce(env)
            fe_keogh = keogh.reduce(env)
            assert np.all(fe_new.lower >= fe_keogh.lower - 1e-9)
            assert np.all(fe_new.upper <= fe_keogh.upper + 1e-9)

    def test_bands_equal_for_constant_envelope(self):
        new = NewPAAEnvelopeTransform(N, FEATURES)
        keogh = KeoghPAAEnvelopeTransform(N, FEATURES)
        env = k_envelope(np.full(N, 2.0), 3)
        a, b = new.reduce(env), keogh.reduce(env)
        assert np.allclose(a.lower, b.lower)
        assert np.allclose(a.upper, b.upper)

    def test_strictly_tighter_on_varying_data(self, rng):
        new = NewPAAEnvelopeTransform(N, FEATURES)
        keogh = KeoghPAAEnvelopeTransform(N, FEATURES)
        y = np.cumsum(rng.normal(size=N))
        env = k_envelope(y, 5)
        total_new = new.reduce(env).width().sum()
        total_keogh = keogh.reduce(env).width().sum()
        assert total_new < total_keogh


class TestShapesAndErrors:
    def test_reduce_output_dim(self, rng):
        env = k_envelope(rng.normal(size=N), 3)
        for env_t in (
            NewPAAEnvelopeTransform(N, FEATURES),
            KeoghPAAEnvelopeTransform(N, FEATURES),
        ):
            assert len(env_t.reduce(env)) == FEATURES

    def test_length_mismatch_raises(self, rng):
        env = k_envelope(rng.normal(size=32), 3)
        with pytest.raises(ValueError, match="expects envelopes of length"):
            NewPAAEnvelopeTransform(N, FEATURES).reduce(env)

    def test_degenerate_envelope_is_series_transform(self, rng):
        """k=0 envelope: transform of the envelope == transform of x."""
        x = rng.normal(size=N)
        env = k_envelope(x, 0)
        for env_t in sign_split_transforms(rng):
            fe = env_t.reduce(env)
            feats = env_t.transform_series(x)
            assert np.allclose(fe.lower, feats, atol=1e-9)
            assert np.allclose(fe.upper, feats, atol=1e-9)

    def test_names(self):
        assert NewPAAEnvelopeTransform(N, 4).name == "New_PAA"
        assert KeoghPAAEnvelopeTransform(N, 4).name == "Keogh_PAA"
        assert SignSplitEnvelopeTransform(DFTTransform(N, 4)).name == "DFT(4)"
