"""Unit tests for repro.core.envelope."""

import numpy as np
import pytest

from repro.core.envelope import (
    Envelope,
    envelope_distance,
    k_envelope,
    k_to_warping_width,
    sliding_max,
    sliding_min,
    warping_width_to_k,
)


def naive_env(x, k):
    """Reference O(nk) envelope for cross-checking."""
    n = len(x)
    lower = [min(x[max(0, i - k) : min(n, i + k + 1)]) for i in range(n)]
    upper = [max(x[max(0, i - k) : min(n, i + k + 1)]) for i in range(n)]
    return np.array(lower), np.array(upper)


class TestSlidingExtrema:
    def test_matches_naive_small(self):
        x = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0]
        lo, hi = naive_env(x, 2)
        assert np.array_equal(sliding_min(x, 2), lo)
        assert np.array_equal(sliding_max(x, 2), hi)

    def test_matches_naive_random(self, rng):
        for k in (0, 1, 3, 7, 20):
            x = rng.normal(size=50)
            lo, hi = naive_env(x, k)
            assert np.array_equal(sliding_min(x, k), lo)
            assert np.array_equal(sliding_max(x, k), hi)

    def test_k_zero_is_copy(self, rng):
        x = rng.normal(size=10)
        out = sliding_max(x, 0)
        assert np.array_equal(out, x)
        out[0] = 99.0  # must not alias the input
        assert x[0] != 99.0

    def test_k_larger_than_series(self, rng):
        x = rng.normal(size=5)
        assert np.all(sliding_max(x, 100) == x.max())
        assert np.all(sliding_min(x, 100) == x.min())

    def test_rejects_negative_k(self):
        with pytest.raises(ValueError, match=">= 0"):
            sliding_min([1.0], -1)


class TestEnvelope:
    def test_contains_the_series(self, rng):
        x = rng.normal(size=30)
        env = k_envelope(x, 4)
        assert env.contains(x)

    def test_contains_rejects_outside(self):
        env = Envelope(lower=np.zeros(3), upper=np.ones(3))
        assert not env.contains([0.5, 2.0, 0.5])

    def test_contains_rejects_wrong_length(self):
        env = Envelope(lower=np.zeros(3), upper=np.ones(3))
        assert not env.contains([0.5, 0.5])

    def test_invalid_band_rejected(self):
        with pytest.raises(ValueError, match="lower envelope exceeds"):
            Envelope(lower=np.ones(2), upper=np.zeros(2))

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError, match="differ in length"):
            Envelope(lower=np.zeros(2), upper=np.ones(3))

    def test_width(self):
        env = Envelope(lower=np.array([0.0, 1.0]), upper=np.array([2.0, 1.5]))
        assert env.width().tolist() == [2.0, 0.5]

    def test_clip_projects_onto_band(self):
        env = Envelope(lower=np.zeros(3), upper=np.ones(3))
        out = env.clip([-1.0, 0.5, 2.0])
        assert out.tolist() == [0.0, 0.5, 1.0]

    def test_clip_length_mismatch(self):
        env = Envelope(lower=np.zeros(3), upper=np.ones(3))
        with pytest.raises(ValueError, match="does not match"):
            env.clip([0.0, 0.0])

    def test_envelope_widens_with_k(self, rng):
        x = rng.normal(size=40)
        e1 = k_envelope(x, 1)
        e5 = k_envelope(x, 5)
        assert np.all(e5.lower <= e1.lower)
        assert np.all(e5.upper >= e1.upper)


class TestEnvelopeDistance:
    def test_zero_inside(self, rng):
        x = rng.normal(size=20)
        env = k_envelope(x, 3)
        assert envelope_distance(x, env) == 0.0

    def test_matches_clip_distance(self, rng):
        x = rng.normal(size=20)
        y = rng.normal(size=20)
        env = k_envelope(y, 2)
        expected = float(np.linalg.norm(x - env.clip(x)))
        assert envelope_distance(x, env) == pytest.approx(expected)

    def test_length_mismatch(self):
        env = Envelope(lower=np.zeros(3), upper=np.ones(3))
        with pytest.raises(ValueError, match="does not match"):
            envelope_distance([1.0, 2.0], env)

    def test_point_envelope_is_euclidean(self, rng):
        y = rng.normal(size=15)
        env = k_envelope(y, 0)
        x = rng.normal(size=15)
        assert envelope_distance(x, env) == pytest.approx(
            float(np.linalg.norm(x - y))
        )


class TestWarpingWidthConversion:
    def test_paper_example(self):
        # delta = (2k+1)/n: k=2, n=12 -> width 5/12
        assert warping_width_to_k(5 / 12, 12) == 2

    def test_roundtrip(self):
        for n in (64, 100, 256):
            for k in (0, 3, 10):
                delta = k_to_warping_width(k, n)
                assert warping_width_to_k(delta, n) == k

    def test_zero_width(self):
        assert warping_width_to_k(0.0, 100) == 0

    def test_full_width_clamped(self):
        assert warping_width_to_k(1.0, 10) <= 9

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            warping_width_to_k(1.5, 10)
        with pytest.raises(ValueError):
            k_to_warping_width(-1, 10)
