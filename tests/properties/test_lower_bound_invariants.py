"""Property tests for the no-false-negative guarantee.

Every test here sweeps the whole generated case pool (3 families x 8
queries x 30 candidates = 720 pairs), asserting the invariants the
filter cascade relies on:

* **Soundness** — every stage bound is <= the exact constrained DTW
  (Theorem 1 of the paper for the feature-space stages, Lemma 2 for
  LB_Keogh, corner-cell monotonicity for first/last).
* **Monotone tightness** — the envelope-family stages satisfy the
  pointwise chain ``keogh_paa <= new_paa <= lb_keogh <= lemire``,
  which is the documented cascade order.
* **New_PAA beats Keogh_PAA** — the paper's headline claim, both
  pointwise and strictly in aggregate.
* **Batch == scalar** — the vectorized kernels agree with the scalar
  reference implementations to 1e-9.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.envelope import k_envelope
from repro.core.lower_bounds import lb_envelope_transform, lb_keogh
from repro.engine.stages import (
    lb_envelope_batch,
    lb_first_last_batch,
    lb_lemire_batch,
)

from .conftest import (
    ALL_STAGES,
    BAND,
    ENVELOPE_CHAIN,
    _transforms,
    generate_bundles,
    make_bundle,
)

ATOL = 1e-9


def test_case_pool_is_large_enough(bundles):
    assert sum(b.size for b in bundles) >= 200
    assert {b.family for b in bundles} == {
        "random_walk", "sine_mixture", "synthetic_hum",
    }


@pytest.mark.parametrize("stage", ALL_STAGES)
def test_stage_never_overestimates_exact_dtw(bundles, stage):
    """No false negatives: bound <= exact constrained DTW, every case."""
    for bundle in bundles:
        bound = bundle.bounds[stage]
        assert bound.shape == bundle.exact.shape
        assert np.all(np.isfinite(bound))
        assert np.all(bound >= 0.0)
        excess = bound - bundle.exact
        assert np.max(excess) <= ATOL, (
            f"{stage} overestimates exact DTW by {np.max(excess):.3e} "
            f"on a {bundle.family} case"
        )


@pytest.mark.parametrize(
    "looser, tighter",
    list(zip(ENVELOPE_CHAIN[:-1], ENVELOPE_CHAIN[1:])),
)
def test_envelope_chain_is_monotonically_tighter(bundles, looser, tighter):
    """The documented cascade order is pointwise monotone in tightness."""
    for bundle in bundles:
        gap = bundle.bounds[looser] - bundle.bounds[tighter]
        assert np.max(gap) <= ATOL, (
            f"{looser} exceeded {tighter} by {np.max(gap):.3e} "
            f"on a {bundle.family} case"
        )


def test_new_paa_strictly_tighter_than_keogh_paa_in_aggregate(bundles):
    """New_PAA dominates Keogh_PAA pointwise and wins overall.

    Equality everywhere would mean one implementation is aliased to the
    other; over 720 random cases the envelope varies within frames, so
    the aggregate bound mass must be strictly larger.
    """
    total_keogh = 0.0
    total_new = 0.0
    for bundle in bundles:
        keogh = bundle.bounds["keogh_paa"]
        new = bundle.bounds["new_paa"]
        assert np.max(keogh - new) <= ATOL
        total_keogh += float(np.sum(keogh))
        total_new += float(np.sum(new))
    assert total_new > total_keogh


@pytest.mark.parametrize("stage", ALL_STAGES)
def test_tightness_ratio_in_unit_interval(bundles, stage):
    """bound / exact lies in [0, 1] wherever exact > 0."""
    for bundle in bundles:
        positive = bundle.exact > 0
        ratio = bundle.bounds[stage][positive] / bundle.exact[positive]
        assert np.all(ratio <= 1.0 + ATOL)
        assert np.all(ratio >= 0.0)


def test_batch_lb_keogh_matches_scalar(bundles):
    """Vectorized LB_Keogh row i == scalar lb_keogh(candidate_i, query)."""
    for bundle in bundles:
        batch = bundle.bounds["lb_keogh"]
        for i in range(bundle.size):
            scalar = lb_keogh(bundle.candidates[i], bundle.query, BAND)
            assert batch[i] == pytest.approx(scalar, abs=ATOL)


@pytest.mark.parametrize("stage", ["keogh_paa", "new_paa"])
def test_batch_feature_bound_matches_scalar_envelope_transform(
    bundles, stage
):
    """Vectorized feature-space bounds == scalar lb_envelope_transform."""
    env_t = _transforms()[stage]
    for bundle in bundles:
        batch = bundle.bounds[stage]
        feature_env = env_t.reduce(bundle.query_envelope)
        for i in range(bundle.size):
            scalar = lb_envelope_transform(
                env_t,
                query=bundle.candidates[i],
                feature_envelope=feature_env,
            )
            assert batch[i] == pytest.approx(scalar, abs=ATOL)


def test_lemire_second_pass_only_adds(bundles):
    """LB_Improved = LB_Keogh + a nonnegative second-pass term."""
    for bundle in bundles:
        assert np.max(bundle.bounds["lb_keogh"]
                      - bundle.bounds["lemire"]) <= ATOL


def test_first_last_is_exact_on_identical_series(bundles):
    """Sanity anchor: every bound is 0 when the candidate == query."""
    for bundle in bundles[:3]:
        q = bundle.query
        self_bundle = make_bundle(bundle.family, q, [q, q + 0.0])
        assert np.all(self_bundle.exact == 0.0)
        for stage in ALL_STAGES:
            assert np.all(np.abs(self_bundle.bounds[stage]) <= ATOL)


def test_manhattan_metric_bounds_are_sound():
    """The L1 variants of the batch kernels are lower bounds too."""
    from repro.dtw.distance import ldtw_distance

    rng = np.random.default_rng(7)
    q = np.cumsum(rng.normal(size=48))
    cands = np.cumsum(rng.normal(size=(40, 48)), axis=1)
    env = k_envelope(q, 4)
    exact = np.array([
        ldtw_distance(q, c, 4, metric="manhattan") for c in cands
    ])
    for bound in (
        lb_envelope_batch(cands, env, metric="manhattan"),
        lb_first_last_batch(q, cands, metric="manhattan"),
        lb_lemire_batch(q, cands, 4, q_envelope=env, metric="manhattan"),
    ):
        assert np.max(bound - exact) <= ATOL


def test_pool_is_deterministic_under_fixed_seed():
    """Regenerating the pool reproduces bit-identical bounds."""
    first = generate_bundles(seed=99)[:2]
    second = generate_bundles(seed=99)[:2]
    for a, b in zip(first, second):
        assert np.array_equal(a.query, b.query)
        assert np.array_equal(a.exact, b.exact)
        for stage in ALL_STAGES:
            assert np.array_equal(a.bounds[stage], b.bounds[stage])
