"""End-to-end properties of the QueryEngine filter cascade.

The cascade must be an *optimisation*, never an approximation: for any
stage configuration, corpus family, and metric, ``range_search`` and
``knn`` return exactly the results of a brute-force scan with the exact
banded DTW.  The stats object must additionally tell a coherent story
(stage i's survivors are stage i+1's candidates, pruned + survivors =
candidates in, ...), and everything is deterministic under a fixed seed.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.dtw.distance import ldtw_distance
from repro.engine import DEFAULT_STAGES, STAGE_ORDER, QueryEngine

from .conftest import _raw_random_walk, _raw_sine_mixture

BAND = 5
LENGTH = 72

STAGE_CONFIGS = [
    (),                             # no filtering: pure exact scan
    ("first_last",),
    ("keogh_paa",),
    ("new_paa",),
    ("lb_keogh",),
    ("lemire",),
    DEFAULT_STAGES,
    STAGE_ORDER,                    # everything, Lemire included
    ("lb_keogh", "first_last"),     # deliberately out of order
]


def _corpus(family: str, size: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    if family == "random_walk":
        return np.vstack(
            [_raw_random_walk(LENGTH, rng) for _ in range(size)]
        )
    return np.vstack(
        [_raw_sine_mixture(LENGTH, rng) for _ in range(size)]
    )


_FAMILY_SEEDS = {"random_walk": 11, "sine_mixture": 22}


@pytest.fixture(scope="module", params=sorted(_FAMILY_SEEDS))
def corpus(request):
    return _corpus(request.param, size=80, seed=_FAMILY_SEEDS[request.param])


@pytest.fixture(scope="module")
def query(corpus):
    rng = np.random.default_rng(4242)
    return corpus[3] + 0.35 * rng.normal(size=corpus.shape[1])


@pytest.mark.parametrize("stages", STAGE_CONFIGS,
                         ids=lambda s: "+".join(s) if s else "none")
def test_range_search_equals_ground_truth(corpus, query, stages):
    engine = QueryEngine(corpus, band=BAND, stages=stages)
    truth = engine.ground_truth_range(query, epsilon=6.0)
    results, stats = engine.range_search(query, epsilon=6.0)
    assert [(i, round(d, 9)) for i, d in results] == \
        [(i, round(d, 9)) for i, d in truth]
    assert stats.results == len(results)
    assert stats.corpus_size == corpus.shape[0]


@pytest.mark.parametrize("stages", STAGE_CONFIGS,
                         ids=lambda s: "+".join(s) if s else "none")
@pytest.mark.parametrize("k", [1, 5, 17])
def test_knn_equals_ground_truth(corpus, query, stages, k):
    engine = QueryEngine(corpus, band=BAND, stages=stages)
    truth = engine.ground_truth_knn(query, k)
    results, stats = engine.knn(query, k)
    assert len(results) == k
    assert [i for i, _ in results] == [i for i, _ in truth]
    np.testing.assert_allclose(
        [d for _, d in results], [d for _, d in truth], atol=1e-9
    )


@pytest.mark.parametrize("metric", ["euclidean", "manhattan"])
def test_metrics_give_exact_results(corpus, query, metric):
    engine = QueryEngine(corpus, band=BAND, metric=metric)
    truth = engine.ground_truth_knn(query, 7)
    results, _ = engine.knn(query, 7)
    assert [i for i, _ in results] == [i for i, _ in truth]


def test_epsilon_sweep_never_loses_results(corpus, query):
    """Zero false negatives across a sweep of selectivities."""
    engine = QueryEngine(corpus, band=BAND)
    for epsilon in (0.0, 1.0, 3.0, 8.0, 25.0, 1e6):
        truth = {i for i, _ in engine.ground_truth_range(query, epsilon)}
        got = {i for i, _ in engine.range_search(query, epsilon)[0]}
        assert got == truth, f"mismatch at epsilon={epsilon}"


def test_batch_and_scalar_refine_paths_agree(corpus, query):
    """The two exact-stage code paths return identical result sets."""
    batch = QueryEngine(corpus, band=BAND, batch_refine_threshold=1)
    scalar = QueryEngine(corpus, band=BAND,
                         batch_refine_threshold=10**9)
    r_batch, _ = batch.range_search(query, epsilon=7.0)
    r_scalar, _ = scalar.range_search(query, epsilon=7.0)
    assert [i for i, _ in r_batch] == [i for i, _ in r_scalar]
    np.testing.assert_allclose(
        [d for _, d in r_batch], [d for _, d in r_scalar], atol=1e-9
    )


def test_stats_tell_a_consistent_story(corpus, query):
    engine = QueryEngine(corpus, band=BAND, stages=STAGE_ORDER)
    _, stats = engine.range_search(query, epsilon=5.0)
    assert [s.name for s in stats.stages] == list(STAGE_ORDER)
    assert stats.stages[0].candidates_in == corpus.shape[0]
    for left, right in zip(stats.stages[:-1], stats.stages[1:]):
        assert left.survivors == right.candidates_in
    for stage in stats.stages:
        assert stage.pruned + stage.survivors == stage.candidates_in
        assert 0.0 <= stage.prune_rate <= 1.0
        assert stage.wall_time_s >= 0.0
    assert stats.pruned_total == sum(s.pruned for s in stats.stages)
    assert stats.exact_candidates == stats.stages[-1].survivors
    assert stats.dtw_computations <= stats.exact_candidates


def test_knn_stats_account_for_every_candidate(corpus, query):
    engine = QueryEngine(corpus, band=BAND)
    results, stats = engine.knn(query, 5)
    assert len(results) == 5
    # Every corpus series is pruned by a bound, refined exactly, or
    # skipped by the best-first walk once k answers were proven safe.
    # A radius-seeding candidate may be refined *and* later pruned, so
    # the sum can exceed the corpus size by at most one per refinement.
    accounted = (stats.pruned_total + stats.dtw_computations
                 + stats.exact_skipped)
    assert accounted >= stats.corpus_size
    assert accounted <= stats.corpus_size + stats.dtw_computations
    assert stats.dtw_computations <= stats.corpus_size
    assert stats.dtw_computations >= 5  # at least the k answers
    assert stats.dtw_abandoned <= stats.dtw_computations


def test_knn_distances_match_independent_recomputation(corpus, query):
    """Early abandoning never corrupts a returned distance."""
    engine = QueryEngine(corpus, band=BAND)
    results, _ = engine.knn(query, 9)
    for row, dist in results:
        plain = ldtw_distance(query, corpus[int(row)], BAND)
        assert dist == pytest.approx(plain, abs=1e-9)


def test_engine_is_deterministic(corpus, query):
    a_results, a_stats = QueryEngine(corpus, band=BAND).knn(query, 6)
    b_results, b_stats = QueryEngine(corpus, band=BAND).knn(query, 6)
    assert a_results == b_results
    assert ([(s.name, s.candidates_in, s.pruned) for s in a_stats.stages]
            == [(s.name, s.candidates_in, s.pruned) for s in b_stats.stages])
    assert a_stats.dtw_computations == b_stats.dtw_computations


def test_custom_ids_and_delta(corpus, query):
    ids = [f"melody-{i:03d}" for i in range(corpus.shape[0])]
    engine = QueryEngine(corpus, delta=0.08, ids=ids)
    results, _ = engine.knn(query, 3)
    assert all(isinstance(i, str) and i.startswith("melody-")
               for i, _ in results)
    truth = engine.ground_truth_knn(query, 3)
    assert [i for i, _ in results] == [i for i, _ in truth]


def test_stats_merge_summary_and_projection(corpus, query):
    """CascadeStats aggregates across queries and renders everywhere."""
    engine = QueryEngine(corpus, band=BAND)
    _, a = engine.knn(query, 3)
    _, b = engine.knn(query + 1.0, 3)
    merged = a + b
    assert merged.corpus_size == a.corpus_size + b.corpus_size
    assert merged.dtw_computations == a.dtw_computations + b.dtw_computations
    assert merged.pruned_total == a.pruned_total + b.pruned_total
    for stage, left, right in zip(merged.stages, a.stages, b.stages):
        assert stage.candidates_in == left.candidates_in + right.candidates_in
        assert stage.pruned == left.pruned + right.pruned
    summary = merged.summary()
    for name in DEFAULT_STAGES:
        assert name in summary
    assert "results" in summary
    projected = a.as_query_stats()
    assert projected.candidates == a.exact_candidates
    assert projected.extra["pruned_by_cascade"] == a.pruned_total
    assert projected.extra["dtw_abandoned"] == a.dtw_abandoned
    with pytest.raises(ValueError, match="merge"):
        a + QueryEngine(corpus, band=BAND, stages=()).knn(query, 1)[1]


def test_normal_form_engine_accepts_ragged_corpus():
    from repro.core.normal_form import NormalForm

    rng = np.random.default_rng(88)
    corpus = [np.cumsum(rng.normal(size=int(rng.integers(40, 90))))
              for _ in range(50)]
    engine = QueryEngine(corpus, delta=0.1,
                         normal_form=NormalForm(length=48))
    query = np.cumsum(rng.normal(size=70))
    results, _ = engine.knn(query, 4)
    truth = engine.ground_truth_knn(query, 4)
    assert [i for i, _ in results] == [i for i, _ in truth]


def test_validation_errors():
    data = np.zeros((4, 16))
    with pytest.raises(ValueError, match="exactly one"):
        QueryEngine(data)
    with pytest.raises(ValueError, match="exactly one"):
        QueryEngine(data, band=2, delta=0.1)
    with pytest.raises(ValueError, match="unknown stage"):
        QueryEngine(data, band=2, stages=("warp_speed",))
    engine = QueryEngine(data, band=2)
    with pytest.raises(ValueError, match="epsilon"):
        engine.range_search(np.zeros(16), -1.0)
    with pytest.raises(ValueError, match="k"):
        engine.knn(np.zeros(16), 0)


# ----------------------------------------------------------------------
# DTW kernel backends
# ----------------------------------------------------------------------

BACKENDS = ("vectorized", "scalar")


@pytest.mark.parametrize("backend", BACKENDS)
def test_kernel_backend_range_equals_ground_truth(corpus, query, backend):
    engine = QueryEngine(corpus, band=BAND, dtw_backend=backend)
    truth = engine.ground_truth_range(query, epsilon=6.0)
    results, _ = engine.range_search(query, epsilon=6.0)
    assert [i for i, _ in results] == [i for i, _ in truth]
    np.testing.assert_allclose(
        [d for _, d in results], [d for _, d in truth], atol=1e-9
    )


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("k", [1, 9])
def test_kernel_backend_knn_equals_ground_truth(corpus, query, backend, k):
    engine = QueryEngine(corpus, band=BAND, dtw_backend=backend)
    truth = engine.ground_truth_knn(query, k)
    results, _ = engine.knn(query, k)
    assert [i for i, _ in results] == [i for i, _ in truth]
    np.testing.assert_allclose(
        [d for _, d in results], [d for _, d in truth], atol=1e-9
    )


def test_kernel_backends_agree_to_1e9(corpus, query):
    """Scalar and vectorized serving paths are interchangeable."""
    answers = {}
    for backend in BACKENDS:
        engine = QueryEngine(corpus, band=BAND, dtw_backend=backend)
        answers[backend] = (engine.range_search(query, epsilon=8.0)[0],
                           engine.knn(query, 6)[0])
    for kind in (0, 1):
        ref, other = answers["vectorized"][kind], answers["scalar"][kind]
        assert [i for i, _ in ref] == [i for i, _ in other]
        np.testing.assert_allclose(
            [d for _, d in ref], [d for _, d in other], atol=1e-9
        )


def test_kernel_backend_validated_at_construction(corpus):
    with pytest.raises(ValueError, match="unknown DTW backend"):
        QueryEngine(corpus, band=BAND, dtw_backend="warp-core")


# ----------------------------------------------------------------------
# batched / parallel serving
# ----------------------------------------------------------------------


def _many_queries(corpus, count=9):
    rng = np.random.default_rng(777)
    rows = rng.choice(corpus.shape[0], size=count, replace=False)
    return [corpus[row] + 0.3 * rng.normal(size=corpus.shape[1])
            for row in rows]


@pytest.mark.parametrize("workers", [1, 4])
def test_range_search_many_matches_sequential(corpus, workers):
    engine = QueryEngine(corpus, band=BAND)
    queries = _many_queries(corpus)
    per_query, merged = engine.range_search_many(queries, 6.0,
                                                 workers=workers)
    assert len(per_query) == len(queries)
    total_results = 0
    for query, results in zip(queries, per_query):
        expect, _ = engine.range_search(query, 6.0)
        assert results == expect
        total_results += len(expect)
    assert merged.corpus_size == corpus.shape[0] * len(queries)
    assert merged.results == total_results
    assert merged.total_time_s >= 0.0


@pytest.mark.parametrize("workers", [1, 4])
def test_knn_many_matches_sequential(corpus, workers):
    engine = QueryEngine(corpus, band=BAND)
    queries = _many_queries(corpus)
    per_query, merged = engine.knn_many(queries, 5, workers=workers)
    for query, results in zip(queries, per_query):
        expect, _ = engine.knn(query, 5)
        assert [i for i, _ in results] == [i for i, _ in expect]
        np.testing.assert_allclose(
            [d for _, d in results], [d for _, d in expect], atol=1e-9
        )
    assert merged.dtw_computations >= 5 * len(queries)


def test_many_query_validation(corpus):
    engine = QueryEngine(corpus, band=BAND)
    with pytest.raises(ValueError, match="queries"):
        engine.range_search_many([], 1.0)
    with pytest.raises(ValueError, match="workers"):
        engine.knn_many(_many_queries(corpus, 2), 3, workers=0)
    with pytest.raises(ValueError, match="workers"):
        QueryEngine(corpus, band=BAND, workers=0)


def test_stage_kernel_validation():
    from repro.core.envelope import k_envelope
    from repro.engine import lb_envelope_batch, lb_first_last_batch

    q = np.zeros(16)
    env = k_envelope(q, 2)
    with pytest.raises(ValueError, match="metric"):
        lb_envelope_batch(np.zeros((3, 16)), env, metric="chebyshev")
    with pytest.raises(ValueError):
        lb_envelope_batch(np.zeros((3, 8)), env)       # length mismatch
    with pytest.raises(ValueError):
        lb_first_last_batch(q, np.zeros(16))           # not a matrix


@pytest.mark.parametrize("kind", ["knn", "range"])
def test_trace_is_lossless_stats_projection(corpus, query, kind):
    """A traced query's span tree rebuilds the exact CascadeStats.

    Observability is a projection, not a second bookkeeping system:
    every span attribute is set verbatim from the stats fields, so
    ``CascadeStats.from_trace`` must round-trip — for the live span
    objects and their exported-dict form alike.
    """
    from repro.engine import CascadeStats
    from repro.obs import Observability

    obs, sink = Observability.in_memory()
    engine = QueryEngine(corpus, band=BAND, obs=obs)
    if kind == "knn":
        _, stats = engine.knn(query, 4)
    else:
        _, stats = engine.range_search(query, 6.0)
    (trace,) = sink.traces
    assert CascadeStats.from_trace(trace) == stats
    assert CascadeStats.from_trace([s.to_dict() for s in trace]) == stats

    # The trace is one tree: a single root, every parent resolvable.
    ids = {span.span_id for span in trace}
    roots = [span for span in trace if span.parent_id is None]
    assert len(roots) == 1 and roots[0].name == "query"
    assert all(span.parent_id in ids for span in trace
               if span.parent_id is not None)


def test_traced_and_plain_engines_answer_identically(corpus, query):
    """Attaching observability never changes an answer."""
    from repro.obs import Observability

    plain = QueryEngine(corpus, band=BAND)
    traced = QueryEngine(corpus, band=BAND, obs=Observability())
    assert plain.knn(query, 5)[0] == traced.knn(query, 5)[0]
    assert (plain.range_search(query, 6.0)[0]
            == traced.range_search(query, 6.0)[0])
