"""Generated case pool for the lower-bound property suite.

Three series families — random walks, sine mixtures, and synthetic
hums — produce hundreds of seeded (query, candidate) pairs.  For each
bundle (one query against a candidate matrix) the exact banded DTW and
every cascade stage bound are precomputed once per session, so each
invariant test sweeps the whole pool cheaply.

Everything is seeded: the suite is deterministic run to run (the CI
workflow additionally pins ``PYTHONHASHSEED``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
import pytest

from repro.core.envelope import Envelope, k_envelope
from repro.core.envelope_transforms import (
    KeoghPAAEnvelopeTransform,
    NewPAAEnvelopeTransform,
)
from repro.core.normal_form import NormalForm
from repro.dtw.distance import ldtw_distance_batch
from repro.engine.stages import (
    lb_envelope_batch,
    lb_first_last_batch,
    lb_lemire_batch,
)
from repro.hum.singer import SingerProfile, hum_melody
from repro.music.corpus import generate_corpus, segment_corpus

#: Pool geometry: 3 families x QUERIES x CANDIDATES cases per invariant.
LENGTH = 64
BAND = 6
FEATURES = 8
QUERIES_PER_FAMILY = 8
CANDIDATES_PER_QUERY = 30

NORMAL_FORM = NormalForm(length=LENGTH)

#: Envelope-family stages in provably-monotone tightness order
#: (each is pointwise >= its predecessor; all are <= the exact DTW).
ENVELOPE_CHAIN = ("keogh_paa", "new_paa", "lb_keogh", "lemire")

#: Every cascade stage (first_last is sound but outside the chain).
ALL_STAGES = ("first_last",) + ENVELOPE_CHAIN


def _raw_random_walk(n: int, rng: np.random.Generator) -> np.ndarray:
    return np.cumsum(rng.normal(size=n))


def _raw_sine_mixture(n: int, rng: np.random.Generator) -> np.ndarray:
    t = np.arange(n, dtype=np.float64)
    series = np.zeros(n)
    for _ in range(int(rng.integers(1, 4))):
        period = n / rng.uniform(1.5, 16.0)
        series += rng.uniform(0.3, 2.0) * np.sin(
            2 * np.pi * t / period + rng.uniform(0, 2 * np.pi)
        )
    return series + 0.05 * rng.normal(size=n)


@dataclass
class CaseBundle:
    """One query against a candidate matrix, with all quantities cached."""

    family: str
    query: np.ndarray                    # (LENGTH,) normal form
    candidates: np.ndarray               # (CANDIDATES, LENGTH) normal forms
    exact: np.ndarray                    # exact banded DTW per candidate
    bounds: dict[str, np.ndarray] = field(default_factory=dict)
    query_envelope: Envelope | None = None

    @property
    def size(self) -> int:
        return self.candidates.shape[0]


def _transforms():
    return {
        "keogh_paa": KeoghPAAEnvelopeTransform(LENGTH, FEATURES),
        "new_paa": NewPAAEnvelopeTransform(LENGTH, FEATURES),
    }


def make_bundle(family: str, query_raw, candidate_raws) -> CaseBundle:
    """Normalise, then compute exact distances and every stage bound."""
    q = NORMAL_FORM.apply(query_raw)
    cands = np.vstack([NORMAL_FORM.apply(c) for c in candidate_raws])
    exact = ldtw_distance_batch(q, cands, BAND)
    bundle = CaseBundle(family=family, query=q, candidates=cands, exact=exact)
    env = k_envelope(q, BAND)
    bundle.query_envelope = env
    transforms = _transforms()
    features = transforms["new_paa"].transform.transform_batch(cands)
    bundle.bounds["first_last"] = lb_first_last_batch(q, cands)
    bundle.bounds["lb_keogh"] = lb_envelope_batch(cands, env)
    bundle.bounds["lemire"] = lb_lemire_batch(q, cands, BAND, q_envelope=env)
    for name in ("keogh_paa", "new_paa"):
        bundle.bounds[name] = lb_envelope_batch(
            features, transforms[name].reduce(env)
        )
    return bundle


def generate_bundles(seed: int = 2003) -> list[CaseBundle]:
    """The full deterministic pool: one bundle per (family, query)."""
    rng = np.random.default_rng(seed)
    melodies = segment_corpus(generate_corpus(4, seed=seed), per_song=10,
                              seed=seed)
    profile = SingerProfile.poor()
    bundles: list[CaseBundle] = []
    for _ in range(QUERIES_PER_FAMILY):
        raw_len = int(rng.integers(48, 128))
        bundles.append(make_bundle(
            "random_walk",
            _raw_random_walk(raw_len, rng),
            [_raw_random_walk(int(rng.integers(48, 128)), rng)
             for _ in range(CANDIDATES_PER_QUERY)],
        ))
        bundles.append(make_bundle(
            "sine_mixture",
            _raw_sine_mixture(raw_len, rng),
            [_raw_sine_mixture(int(rng.integers(48, 128)), rng)
             for _ in range(CANDIDATES_PER_QUERY)],
        ))
        bundles.append(make_bundle(
            "synthetic_hum",
            hum_melody(melodies[int(rng.integers(len(melodies)))], profile,
                       rng),
            [hum_melody(melodies[int(rng.integers(len(melodies)))], profile,
                        rng)
             for _ in range(CANDIDATES_PER_QUERY)],
        ))
    return bundles


@pytest.fixture(scope="session")
def bundles() -> list[CaseBundle]:
    pool = generate_bundles()
    total = sum(b.size for b in pool)
    # The acceptance bar: every invariant test sweeps >= 200 cases.
    assert total >= 200, f"case pool too small: {total}"
    return pool
