"""Float32 storage parity: the cascade over quantised data stays exact.

The columnar store keeps normal forms as float32 and GEMINI features
as float32 with a recorded quantisation margin.  Three properties keep
that sound:

* the engine recomputes features in float64 *from* the float32 rows,
  and float32→float64 promotion is exact — so a cascade over the
  stored corpus is **bitwise identical** to one over a float64 upcast
  copy, with no slack needed;
* tree searches over the stored float32 features inflate epsilon (and
  deflate k-NN bounds) by the manifest margin — range answers over the
  store can therefore never lose a true float32-corpus hit (zero false
  negatives vs the float64 reference corpus, up to the quantisation of
  the data itself);
* distances between the float64 index and the store-backed index agree
  to float32 resolution on the standard ablation corpus.
"""

import numpy as np
import pytest

from repro.core.normal_form import NormalForm
from repro.datasets.generators import random_walks
from repro.engine import QueryEngine
from repro.index.gemini import WarpingIndex
from repro.ingest import StreamingIndexBuilder

CORPUS_SIZE = 60
LENGTH = 128
NORMAL = 64
QUERIES = 8
# float32 has ~7 decimal digits; banded DTW over 64-sample rows keeps
# the accumulated quantisation error well under this
DIST_TOL = 1e-4


@pytest.fixture(scope="module")
def corpus():
    return random_walks(CORPUS_SIZE, LENGTH, seed=31)


@pytest.fixture(scope="module")
def queries(corpus):
    rng = np.random.default_rng(32)
    return [corpus[i % CORPUS_SIZE] + 0.2 * rng.normal(size=LENGTH)
            for i in range(QUERIES)]


@pytest.fixture(scope="module")
def pair(tmp_path_factory, corpus):
    """(float64 in-memory index, float32 store-backed index)."""
    ids = [f"m{i}" for i in range(CORPUS_SIZE)]
    f64 = WarpingIndex(list(corpus), delta=0.1, ids=ids,
                       normal_form=NormalForm(length=NORMAL))
    root = str(tmp_path_factory.mktemp("store"))
    builder = StreamingIndexBuilder(root,
                                    normal_form=NormalForm(length=NORMAL))
    store, _ = builder.build(list(corpus), ids)
    f32 = WarpingIndex.from_store(store)
    return f64, f32


def test_engine_over_f32_corpus_is_bitwise_exact(pair, queries):
    """Cascade(float32 rows) == Cascade(float64 upcast of those rows)."""
    _, f32 = pair
    upcast = QueryEngine(
        np.asarray(f32._data, dtype=np.float64),
        band=f32.band, n_features=f32.feature_dim,
        ids=list(f32.ids), metric=f32.metric,
    )
    for query in queries:
        q = f32.normal_form.apply(query)
        a, _ = f32.engine().knn(q, 5)
        b, _ = upcast.knn(q, 5)
        assert a == b  # bitwise: same ids, same float distances
        ra, _ = f32.engine().range_search(q, 18.0)
        rb, _ = upcast.range_search(q, 18.0)
        assert ra == rb


def test_range_zero_false_negatives_vs_f64(pair, queries):
    for query in queries:
        for epsilon in (10.0, 18.0, 30.0):
            exact, _ = pair[0].cascade_range_query(query, epsilon)
            stored, _ = pair[1].cascade_range_query(query,
                                                    epsilon + DIST_TOL)
            missing = ({item for item, _ in exact}
                       - {item for item, _ in stored})
            assert not missing, (
                f"float32 store lost range hits {missing} at "
                f"epsilon={epsilon}"
            )


def test_knn_matches_f64_within_float32_resolution(pair, queries):
    for query in queries:
        exact, _ = pair[0].cascade_knn_query(query, 5)
        stored, _ = pair[1].cascade_knn_query(query, 5)
        assert [item for item, _ in exact] == [item for item, _ in stored]
        drift = max(abs(a[1] - b[1]) for a, b in zip(exact, stored))
        assert drift < DIST_TOL


def test_tree_query_paths_stay_exact_on_store(pair, queries):
    """R*-tree filter answers (slackened by the margin) lose nothing."""
    _, f32 = pair
    for query in queries:
        tree, _ = f32.range_query(query, 18.0)
        cascade, _ = f32.cascade_range_query(query, 18.0)
        assert {item for item, _ in tree} == {item for item, _ in cascade}
        tree_knn, _ = f32.knn_query(query, 5)
        cascade_knn, _ = f32.cascade_knn_query(query, 5)
        assert ([item for item, _ in tree_knn]
                == [item for item, _ in cascade_knn])


def test_margin_covers_every_stored_feature(pair):
    _, f32 = pair
    store = f32.store
    feats64 = f32.env_transform.transform.transform_batch(
        np.asarray(store.normalized, dtype=np.float64)
    )
    worst = np.abs(feats64 - np.asarray(store.features)).max()
    assert worst <= store.feature_margin
