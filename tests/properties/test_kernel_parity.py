"""Kernel-parity properties over the generated case pool.

Every registered DTW backend must return *identical* distances (to
1e-9) on every bundle in the pool, under both metrics, and must never
produce a false negative under early-abandon cutoffs — the engine's
no-false-negative guarantee rests on this.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.dtw.distance import ldtw_distance, ldtw_distance_batch
from repro.dtw.kernels import available_backends

from .conftest import BAND

ATOL = 1e-9

BACKENDS = available_backends()
NON_DEFAULT = tuple(b for b in BACKENDS if b != BACKENDS[0])


def test_kernel_pool_has_both_backends():
    assert "scalar" in BACKENDS and "vectorized" in BACKENDS


@pytest.mark.parametrize("backend", NON_DEFAULT)
def test_kernel_batch_parity_over_pool(bundles, backend):
    """Backend batch distances match the pool's precomputed exact
    distances (themselves computed with the default backend)."""
    for bundle in bundles:
        got = ldtw_distance_batch(bundle.query, bundle.candidates, BAND,
                                  backend=backend)
        np.testing.assert_allclose(got, bundle.exact, atol=ATOL,
                                   err_msg=f"family={bundle.family}")


@pytest.mark.parametrize("metric", ["euclidean", "manhattan"])
def test_kernel_pairwise_parity_over_pool(bundles, metric):
    """Scalar and vectorized single-pair calls agree on sampled pairs
    from every bundle under both metrics."""
    for bundle in bundles[::3]:
        for row in range(0, bundle.size, 7):
            ref = ldtw_distance(bundle.query, bundle.candidates[row], BAND,
                                metric=metric, backend="scalar")
            vec = ldtw_distance(bundle.query, bundle.candidates[row], BAND,
                                metric=metric, backend="vectorized")
            assert vec == pytest.approx(ref, abs=ATOL)


@pytest.mark.parametrize("backend", BACKENDS)
def test_kernel_cutoffs_never_lose_answers_over_pool(bundles, backend):
    """For a grid of cutoffs: every candidate truly within the cutoff
    keeps its exact distance, under every backend."""
    for bundle in bundles[::2]:
        exact = bundle.exact
        for quantile in (0.1, 0.5, 0.9):
            cutoff = float(np.quantile(exact, quantile))
            got = ldtw_distance_batch(bundle.query, bundle.candidates,
                                      BAND, upper_bound=cutoff,
                                      backend=backend)
            inside = exact <= cutoff * (1.0 - 1e-9)
            np.testing.assert_allclose(got[inside], exact[inside],
                                       atol=ATOL)
            finite = np.isfinite(got)
            np.testing.assert_allclose(got[finite], exact[finite],
                                       atol=ATOL)
