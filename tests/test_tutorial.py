"""Execute every Python block of docs/TUTORIAL.md.

The tutorial promises its code runs; this test keeps that promise.
Blocks share one namespace and run in document order, so the test also
verifies the narrative's continuity.
"""

import os
import re

import pytest

TUTORIAL = os.path.join(os.path.dirname(__file__), "..", "docs", "TUTORIAL.md")

_BLOCK = re.compile(r"```python\n(.*?)```", re.DOTALL)


def python_blocks():
    with open(TUTORIAL) as handle:
        text = handle.read()
    return _BLOCK.findall(text)


def test_tutorial_has_blocks():
    assert len(python_blocks()) >= 8


def test_tutorial_blocks_execute_in_order():
    namespace: dict = {}
    for number, block in enumerate(python_blocks(), start=1):
        try:
            exec(compile(block, f"<tutorial block {number}>", "exec"), namespace)
        except Exception as exc:  # pragma: no cover - failure reporting
            pytest.fail(f"tutorial block {number} failed: {exc!r}\n{block}")


def test_tutorial_mentions_cli_lifecycle():
    with open(TUTORIAL) as handle:
        text = handle.read()
    for command in ("repro corpus", "repro index", "repro query"):
        assert command in text
