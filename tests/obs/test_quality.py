"""Quality telemetry: rank math, shadow scoring, facade recording."""

import json

import pytest

from repro.obs import OBS_DISABLED, Observability
from repro.obs.analysis import TraceReadStats, analyze_traces, read_traces
from repro.obs.tracing import InMemorySink
from repro.obs.quality import (
    RECALL_KS,
    ShadowScorer,
    rank_of_target,
    recall_at,
    reciprocal_rank,
    results_agree,
)

RESULTS = [(7, 0.1), (3, 0.2), (9, 0.5)]


class TestRankHelpers:
    def test_rank_of_target_positions(self):
        assert rank_of_target(RESULTS, 7) == 1
        assert rank_of_target(RESULTS, 3) == 2
        assert rank_of_target(RESULTS, 9) == 3

    def test_rank_of_target_miss_is_none(self):
        assert rank_of_target(RESULTS, 42) is None
        assert rank_of_target([], 7) is None

    def test_recall_at(self):
        assert recall_at(1, 1) == 1.0
        assert recall_at(2, 1) == 0.0
        assert recall_at(10, 10) == 1.0
        assert recall_at(None, 10) == 0.0

    def test_recall_at_rejects_bad_k(self):
        with pytest.raises(ValueError):
            recall_at(1, 0)

    def test_reciprocal_rank(self):
        assert reciprocal_rank(1) == 1.0
        assert reciprocal_rank(4) == 0.25
        assert reciprocal_rank(None) == 0.0
        with pytest.raises(ValueError):
            reciprocal_rank(0)

    def test_recall_ks_grid(self):
        assert RECALL_KS == (1, 5, 10)


class TestResultsAgree:
    def test_identical_lists_agree(self):
        assert results_agree(RESULTS, [tuple(r) for r in RESULTS])

    def test_id_swap_disagrees(self):
        swapped = [RESULTS[1], RESULTS[0], RESULTS[2]]
        assert not results_agree(RESULTS, swapped)

    def test_length_mismatch_disagrees(self):
        assert not results_agree(RESULTS, RESULTS[:2])

    def test_distance_within_atol_agrees(self):
        nudged = [(i, d + 1e-12) for i, d in RESULTS]
        assert results_agree(RESULTS, nudged)
        shifted = [(i, d + 1e-3) for i, d in RESULTS]
        assert not results_agree(RESULTS, shifted)
        assert results_agree(RESULTS, shifted, atol=0.01)


class TestShadowScorer:
    def test_fraction_one_checks_everything(self):
        shadow = ShadowScorer(lambda k, q, p: RESULTS, fraction=1.0)
        verdicts = [shadow.maybe_check("knn", None, 3, RESULTS)
                    for _ in range(5)]
        assert verdicts == [True] * 5
        assert shadow.checked == 5
        assert shadow.agreement == 1.0

    def test_sampling_is_deterministic_one_in_n(self):
        shadow = ShadowScorer(lambda k, q, p: RESULTS, fraction=0.25)
        verdicts = [shadow.maybe_check("knn", None, 3, RESULTS)
                    for _ in range(8)]
        assert verdicts == [True, None, None, None, True, None, None, None]
        assert shadow.checked == 2

    def test_disagreement_counts_and_gauge(self):
        obs = Observability()
        shadow = ShadowScorer(lambda k, q, p: RESULTS, fraction=1.0,
                              obs=obs)
        assert shadow.maybe_check("knn", None, 3, RESULTS) is True
        assert shadow.maybe_check("knn", None, 3, RESULTS[:2]) is False
        assert shadow.disagreed == 1
        assert shadow.agreement == 0.5
        snap = obs.metrics.snapshot()
        assert snap["counters"]["quality.shadow.checked_total"] == 2
        assert snap["counters"]["quality.shadow.disagreed_total"] == 1
        assert snap["gauges"]["quality.shadow.agreement"] == 0.5

    def test_snapshot_shape(self):
        shadow = ShadowScorer(lambda k, q, p: RESULTS, fraction=0.5)
        shadow.maybe_check("knn", None, 3, RESULTS)
        snap = shadow.snapshot()
        assert snap == {"fraction": 0.5, "offered": 1, "checked": 1,
                        "disagreed": 0, "agreement": 1.0}

    def test_agreement_none_before_first_check(self):
        shadow = ShadowScorer(lambda k, q, p: RESULTS, fraction=1.0)
        assert shadow.agreement is None
        assert shadow.snapshot()["agreement"] is None

    @pytest.mark.parametrize("fraction", [0.0, -0.5, 1.5])
    def test_bad_fraction_rejected(self, fraction):
        with pytest.raises(ValueError):
            ShadowScorer(lambda k, q, p: RESULTS, fraction=fraction)


class TestRecordQualityQuery:
    def test_metrics_and_instant_span(self):
        sink = InMemorySink()
        obs = Observability(trace_sink=sink)
        obs.record_quality_query("jitter", 0.5, rank=3, db_size=100,
                                 duration_s=0.01, contour_rank=7)
        snap = obs.metrics.snapshot()
        c = snap["counters"]
        assert c["quality.queries_total{scenario=jitter,severity=0.5}"] == 1
        assert c["quality.reciprocal_rank_total"
                 "{scenario=jitter,severity=0.5}"] == pytest.approx(1 / 3)
        assert c["quality.recall_hits_total"
                 "{k=5,scenario=jitter,severity=0.5}"] == 1
        assert c["quality.recall_hits_total"
                 "{k=10,scenario=jitter,severity=0.5}"] == 1
        assert ("quality.recall_hits_total"
                "{k=1,scenario=jitter,severity=0.5}") not in c

        spans = [s for s in sink.spans if s.name == "quality:query"]
        assert len(spans) == 1
        attrs = spans[0].attrs
        assert attrs["scenario"] == "jitter"
        assert attrs["severity"] == 0.5
        assert attrs["rank"] == 3
        assert attrs["db"] == 100
        assert attrs["contour_rank"] == 7

    def test_miss_rank_contributes_zero_hits(self):
        obs = Observability()
        obs.record_quality_query("tempo", 1.0, rank=99, db_size=99)
        snap = obs.metrics.snapshot()
        hits = [name for name in snap["counters"]
                if name.startswith("quality.recall_hits_total")]
        assert hits == []

    def test_disabled_facade_is_a_noop(self):
        OBS_DISABLED.record_quality_query("jitter", 0.5, rank=1, db_size=10)
        OBS_DISABLED.record_shadow_check(True)


def _quality_span(span_id, scenario, severity, rank, db=50, **extra):
    attrs = {"scenario": scenario, "severity": severity,
             "rank": rank, "db": db, **extra}
    return {"name": "quality:query", "trace_id": span_id,
            "span_id": span_id, "parent_id": None,
            "start_s": float(span_id), "duration_s": 0.0, "attrs": attrs}


class TestScenarioMatrixFromTraces:
    def _analyze(self, tmp_path, spans):
        path = tmp_path / "trace.jsonl"
        path.write_text("".join(json.dumps(s) + "\n" for s in spans))
        read = TraceReadStats()
        return analyze_traces(read_traces(path, read), read), read

    def test_aggregate_cells_and_recall(self, tmp_path):
        spans = [
            _quality_span(1, "jitter", 0.5, rank=1, duration_s=0.010),
            _quality_span(2, "jitter", 0.5, rank=8, duration_s=0.020),
            _quality_span(3, "jitter", 1.0, rank=30, contour_rank=45),
        ]
        report, stats = self._analyze(tmp_path, spans)
        assert stats.spans == 3
        quality = report.quality
        assert quality is not None
        assert quality.queries == 3
        rows = quality.rows()
        assert [(c.scenario, c.severity) for c in rows] == [
            ("jitter", 0.5), ("jitter", 1.0)]
        half = rows[0]
        assert half.recall(1) == 0.5
        assert half.recall(10) == 1.0
        assert half.mrr == pytest.approx((1.0 + 1 / 8) / 2)
        full = rows[1]
        assert full.recall(10) == 0.0
        assert full.contour_recall(10) == 0.0

    def test_format_scenario_matrix_renders_cells(self, tmp_path):
        spans = [
            _quality_span(1, "tempo", 0.25, rank=1, contour_rank=2),
            _quality_span(2, "jitter", 1.0, rank=3),
        ]
        report, _ = self._analyze(tmp_path, spans)
        text = report.format_scenario_matrix()
        assert "2 queries, 2 scenarios" in text
        assert "tempo" in text and "jitter" in text
        assert "contour r@10" in text

    def test_format_scenario_matrix_without_quality_spans(self, tmp_path):
        span = {"name": "query", "trace_id": 1, "span_id": 1,
                "parent_id": None, "start_s": 0.0, "duration_s": 0.1,
                "attrs": {}}
        report, _ = self._analyze(tmp_path, [span])
        text = report.format_scenario_matrix()
        assert "no quality:query spans" in text

    def test_quality_in_report_to_dict(self, tmp_path):
        spans = [_quality_span(1, "note_drop", 0.5, rank=2)]
        report, _ = self._analyze(tmp_path, spans)
        doc = report.to_dict()
        assert doc["quality"]["queries"] == 1
        [cell] = doc["quality"]["scenarios"]
        assert cell["scenario"] == "note_drop"
        assert cell["recall_at_5"] == 1.0
