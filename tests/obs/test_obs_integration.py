"""End-to-end observability: engine spans, stats projection, wiring.

These tests pin the acceptance criteria of the observability layer:
the span tree a traced query exports reconciles *exactly* with the
``CascadeStats`` the query returned, the slow-query gate fires only
past its threshold, and the facade propagates through
``WarpingIndex`` / ``QueryByHummingSystem`` without rebuilding.
"""

import json

import numpy as np
import pytest

from repro.datasets.generators import random_walks
from repro.engine import CascadeStats, QueryEngine
from repro.index import WarpingIndex
from repro.music import Melody
from repro.obs import OBS_DISABLED, Observability
from repro.qbh import QueryByHummingSystem


@pytest.fixture(scope="module")
def corpus():
    return random_walks(120, 64, seed=11)


@pytest.fixture(scope="module")
def query(corpus):
    rng = np.random.default_rng(12)
    return corpus[7] + 0.2 * rng.normal(size=64)


def _traced_query(corpus, query, run):
    obs, sink = Observability.in_memory()
    engine = QueryEngine(corpus, band=4, obs=obs)
    results, stats = run(engine, query)
    assert len(sink.traces) == 1
    return results, stats, sink.traces[0]


def _by_name(spans):
    out = {}
    for span in spans:
        out.setdefault(span.name, []).append(span)
    return out


class TestSpanTree:
    def test_knn_span_tree_nests_query_stage_refine_kernel(
        self, corpus, query
    ):
        _, stats, trace = _traced_query(
            corpus, query, lambda e, q: e.knn(q, 5)
        )
        spans = _by_name(trace)
        (root,) = spans["query"]
        assert root.parent_id is None
        assert root.attrs["kind"] == "knn"
        assert root.attrs["k"] == 5
        # Every stage and refine span hangs off the query root; every
        # kernel span hangs off a refine span.
        stage_spans = [
            s for name, group in spans.items() if name.startswith("stage:")
            for s in group
        ]
        assert len(stage_spans) == len(stats.stages)
        for span in stage_spans + spans["refine"]:
            assert span.parent_id == root.span_id
        refine_ids = {s.span_id for s in spans["refine"]}
        assert spans["kernel"], "refinement ran, kernel span expected"
        for span in spans["kernel"]:
            assert span.parent_id in refine_ids
            assert span.attrs["calls"] >= 0
        assert all(s.trace_id == root.trace_id for s in trace)
        assert trace[-1] is root  # root is delivered last

    def test_stage_span_attrs_reconcile_with_stats(self, corpus, query):
        _, stats, trace = _traced_query(
            corpus, query, lambda e, q: e.range_search(q, 5.0)
        )
        stage_spans = sorted(
            (s for s in trace if s.name.startswith("stage:")),
            key=lambda s: s.start_s,
        )
        assert [s.attrs["name"] for s in stage_spans] == [
            stage.name for stage in stats.stages
        ]
        for span, stage in zip(stage_spans, stats.stages):
            assert span.attrs["candidates_in"] == stage.candidates_in
            assert span.attrs["pruned"] == stage.pruned
            assert span.attrs["survivors"] == stage.survivors
        kernel_cells = sum(
            s.attrs["cells"] for s in trace if s.name == "kernel"
        )
        assert (kernel_cells > 0) == (stats.dtw_computations > 0)

    def test_from_trace_round_trips_exactly(self, corpus, query):
        for run in (lambda e, q: e.knn(q, 3),
                    lambda e, q: e.range_search(q, 5.0)):
            _, stats, trace = _traced_query(corpus, query, run)
            # Lossless from live Span objects and from their exported
            # JSONL form alike — the acceptance criterion.
            assert CascadeStats.from_trace(trace) == stats
            dicts = [json.loads(json.dumps(s.to_dict())) for s in trace]
            assert CascadeStats.from_trace(dicts) == stats

    def test_from_trace_rejects_bad_span_sets(self, corpus, query):
        _, _, trace = _traced_query(corpus, query, lambda e, q: e.knn(q, 3))
        with pytest.raises(ValueError, match="no root"):
            CascadeStats.from_trace(
                [s for s in trace if s.name != "query"]
            )
        with pytest.raises(ValueError, match="more than one"):
            CascadeStats.from_trace(list(trace) + list(trace))


class TestSlowQueryLog:
    def test_threshold_zero_logs_every_query(self, corpus, query):
        seen = []
        obs = Observability(slow_query_s=0.0, on_slow=seen.append)
        engine = QueryEngine(corpus, band=4, obs=obs)
        engine.knn(query, 3)
        engine.range_search(query, 5.0)
        assert len(obs.slow_queries) == 2
        assert seen == list(obs.slow_queries)
        record = seen[0]
        assert record["kind"] == "knn"
        assert record["duration_ms"] >= 0
        assert record["corpus_size"] == len(corpus)

    def test_huge_threshold_logs_and_exports_nothing(self, corpus, query):
        obs, sink = Observability.in_memory(
            slow_query_s=1e9, gate_traces=True
        )
        engine = QueryEngine(corpus, band=4, obs=obs)
        results, _ = engine.knn(query, 3)
        assert results  # the query itself is unaffected
        assert list(obs.slow_queries) == []
        assert sink.traces == []  # gated: fast traces are dropped

    def test_gated_tracing_keeps_slow_traces(self, corpus, query):
        obs, sink = Observability.in_memory(
            slow_query_s=0.0, gate_traces=True
        )
        engine = QueryEngine(corpus, band=4, obs=obs)
        engine.knn(query, 3)
        assert len(sink.traces) == 1
        assert len(obs.slow_queries) == 1


class TestFacadeWiring:
    def test_disabled_facade_records_nothing(self, corpus, query):
        engine = QueryEngine(corpus, band=4)  # default: OBS_DISABLED
        assert engine.obs is OBS_DISABLED
        assert not engine.obs.enabled
        results, stats = engine.knn(query, 3)
        assert results and stats.results == 3
        assert OBS_DISABLED.metrics.snapshot()["counters"] == {}
        assert list(OBS_DISABLED.slow_queries) == []

    def test_to_files_writes_trace_and_metrics(self, corpus, query,
                                               tmp_path):
        trace_path = tmp_path / "trace.jsonl"
        metrics_path = tmp_path / "metrics.json"
        obs = Observability.to_files(
            trace_out=trace_path, metrics_out=metrics_path
        )
        engine = QueryEngine(corpus, band=4, obs=obs)
        _, stats = engine.knn(query, 3)
        obs.close()

        spans = [json.loads(line)
                 for line in trace_path.read_text().splitlines()]
        assert CascadeStats.from_trace(spans) == stats
        snap = json.loads(metrics_path.read_text())
        assert snap["counters"]["engine.queries_total{kind=knn}"] == 1

    def test_index_set_observability_reaches_cached_engine(self, corpus):
        index = WarpingIndex(corpus, delta=0.1)
        engine = index.engine()  # cached before the facade exists
        assert engine.obs is OBS_DISABLED

        obs = Observability()
        index.set_observability(obs)
        assert index.obs is obs
        assert engine.obs is obs  # propagated, not rebuilt

        results, stats = index.knn_query(corpus[3], k=2)
        assert results
        m = obs.metrics
        assert m.counter("index.queries_total", kind="knn").value == 1
        assert (m.counter("index.dtw_computations_total").value
                == stats.dtw_computations)
        assert m.histogram("index.query_seconds", kind="knn").count == 1

        index.set_observability(None)
        assert index.obs is OBS_DISABLED
        assert engine.obs is OBS_DISABLED

    def test_qbh_system_passes_facade_through(self):
        melodies = [
            Melody([(60 + i, 1.0), (64 - i, 1.0), (62, 2.0)],
                   name=f"tune{i}")
            for i in range(6)
        ]
        obs = Observability()
        system = QueryByHummingSystem(melodies, obs=obs)
        assert system.obs is obs

        hum = melodies[2].to_time_series(system.samples_per_beat)
        results, _ = system.query(hum, k=2)
        assert results[0][0] == "tune2"
        assert obs.metrics.counter("index.queries_total",
                                   kind="knn").value >= 1

        system.set_observability(None)
        assert system.obs is OBS_DISABLED
