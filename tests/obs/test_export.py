"""Metrics-snapshot export: Prometheus text, JSONL series, `top`.

The export module consumes registry *snapshots* (plain dicts), so most
of these tests drive a real :class:`MetricsRegistry` and check the
rendered output: Prometheus exposition shape (one ``# TYPE`` per
family, labels re-expanded, cumulative histogram buckets), the
append-only JSONL series with its corrupt-line tolerance, the periodic
exporter's lifecycle, and the ``repro obs top`` terminal view with its
per-shard health table.
"""

import json
import threading

import pytest

from repro.obs import (
    MetricsRegistry,
    append_snapshot,
    format_top,
    prometheus_text,
    read_snapshot_series,
)
from repro.obs.export import PeriodicSnapshotExporter, parse_full_name


@pytest.fixture
def registry():
    m = MetricsRegistry()
    m.counter("engine.queries_total").inc(7)
    m.counter("shard.fanouts_total", kind="knn").inc(3)
    m.gauge("shard.health.alive", shard="0").set(1)
    m.gauge("shard.health.rss_bytes", shard="0").set(52_000_000)
    m.gauge("shard.health.ping_rtt_seconds", shard="0").set(0.0012)
    m.histogram("query.latency_seconds", edges=(0.01, 0.1)).observe(0.05)
    return m


class TestParseFullName:
    def test_plain_name(self):
        assert parse_full_name("engine.queries_total") == (
            "engine.queries_total", {})

    def test_labels_round_trip(self):
        name, labels = parse_full_name("shard.health.alive{shard=2}")
        assert name == "shard.health.alive"
        assert labels == {"shard": "2"}

    def test_multiple_labels(self):
        _, labels = parse_full_name("shard.lifecycle_total"
                                    "{event=spawn,shard=1}")
        assert labels == {"event": "spawn", "shard": "1"}

    def test_malformed_names_degrade_gracefully(self):
        assert parse_full_name("oops{not-a-label}") == ("oops{not-a-label}",
                                                        {})


class TestPrometheusText:
    def test_families_and_labels(self, registry):
        text = prometheus_text(registry.snapshot())
        assert "# TYPE repro_engine_queries_total counter" in text
        assert "repro_engine_queries_total 7" in text
        assert 'repro_shard_fanouts_total{kind="knn"} 3' in text
        assert "# TYPE repro_shard_health_alive gauge" in text
        assert 'repro_shard_health_alive{shard="0"} 1' in text

    def test_histogram_series(self, registry):
        text = prometheus_text(registry.snapshot())
        assert "# TYPE repro_query_latency_seconds histogram" in text
        assert 'repro_query_latency_seconds_bucket{le="0.1"} 1' in text
        assert 'repro_query_latency_seconds_bucket{le="+Inf"} 1' in text
        assert "repro_query_latency_seconds_count 1" in text

    def test_type_line_emitted_once_per_family(self, registry):
        text = prometheus_text(registry.snapshot())
        assert text.count("# TYPE repro_shard_health_alive gauge") == 1

    def test_names_are_sanitised(self):
        snapshot = {"counters": {"weird-name.x{shard=0}": 1},
                    "gauges": {}, "histograms": {}}
        text = prometheus_text(snapshot)
        assert 'repro_weird_name_x{shard="0"} 1' in text


class TestSnapshotSeries:
    def test_append_and_read_round_trip(self, registry, tmp_path):
        path = tmp_path / "series.jsonl"
        first = registry.snapshot()
        append_snapshot(path, first)
        registry.counter("engine.queries_total").inc()
        append_snapshot(path, registry.snapshot())
        snapshots, bad = read_snapshot_series(path)
        assert bad == 0
        assert len(snapshots) == 2
        assert snapshots[0] == first
        assert (snapshots[1]["counters"]["engine.queries_total"]
                == first["counters"]["engine.queries_total"] + 1)

    def test_corrupt_lines_are_counted_not_fatal(self, registry, tmp_path):
        path = tmp_path / "series.jsonl"
        append_snapshot(path, registry.snapshot())
        with open(path, "a") as handle:
            handle.write("{torn line\n")
            handle.write('{"not": "a snapshot"}\n')
            handle.write("\n")
        append_snapshot(path, registry.snapshot())
        snapshots, bad = read_snapshot_series(path)
        assert len(snapshots) == 2
        assert bad == 2                     # blank line is not an error


class TestPeriodicExporter:
    def test_requires_a_destination(self, registry):
        with pytest.raises(ValueError):
            PeriodicSnapshotExporter(registry)
        with pytest.raises(ValueError):
            PeriodicSnapshotExporter(registry, jsonl_path="x",
                                     interval_s=0.0)

    def test_export_once_writes_both_formats(self, registry, tmp_path):
        jsonl = tmp_path / "series.jsonl"
        prom = tmp_path / "metrics.prom"
        exporter = PeriodicSnapshotExporter(registry, jsonl_path=jsonl,
                                            prometheus_path=prom)
        exporter.export_once()
        snapshots, bad = read_snapshot_series(jsonl)
        assert (len(snapshots), bad) == (1, 0)
        assert "repro_engine_queries_total 7" in prom.read_text()

    def test_close_takes_a_final_sample(self, registry, tmp_path):
        jsonl = tmp_path / "series.jsonl"
        exporter = PeriodicSnapshotExporter(registry, jsonl_path=jsonl,
                                            interval_s=60.0).start()
        registry.counter("engine.queries_total").inc()
        exporter.close()                    # never beat: one final sample
        snapshots, _ = read_snapshot_series(jsonl)
        assert len(snapshots) == 1
        assert snapshots[0]["counters"]["engine.queries_total"] == 8

    def test_beats_on_the_interval(self, registry, tmp_path):
        jsonl = tmp_path / "series.jsonl"
        exporter = PeriodicSnapshotExporter(registry, jsonl_path=jsonl,
                                            interval_s=0.02).start()
        done = threading.Event()
        deadline = 5.0
        step = 0.02
        waited = 0.0
        while exporter.samples < 3 and waited < deadline:
            done.wait(step)
            waited += step
        exporter.close()
        assert exporter.samples >= 4        # >= 3 beats + the final one

    def test_start_is_idempotent(self, registry, tmp_path):
        exporter = PeriodicSnapshotExporter(
            registry, jsonl_path=tmp_path / "s.jsonl", interval_s=60.0)
        assert exporter.start() is exporter.start()
        exporter.close()

    def test_stop_flushes_without_start(self, registry, tmp_path):
        # A process that builds the exporter but dies before start()
        # (or before the first beat) must still leave one snapshot —
        # an empty series means the shutdown path was skipped.
        jsonl = tmp_path / "series.jsonl"
        exporter = PeriodicSnapshotExporter(registry, jsonl_path=jsonl,
                                            interval_s=60.0)
        exporter.stop()
        snapshots, bad = read_snapshot_series(jsonl)
        assert (len(snapshots), bad) == (1, 0)
        assert exporter.samples == 1

    def test_stop_final_sample_sees_last_updates(self, registry, tmp_path):
        jsonl = tmp_path / "series.jsonl"
        exporter = PeriodicSnapshotExporter(registry, jsonl_path=jsonl,
                                            interval_s=60.0).start()
        registry.counter("engine.queries_total").inc(5)
        exporter.stop()                     # shutdown flush, not a beat
        snapshots, _ = read_snapshot_series(jsonl)
        assert snapshots[-1]["counters"]["engine.queries_total"] == 12
        thread = exporter._thread
        assert thread is None or not thread.is_alive()


class TestFormatTop:
    def test_headline_counters_with_label_detail(self, registry):
        text = format_top(registry.snapshot())
        assert "engine.queries_total" in text
        assert "7" in text
        assert "kind=knn: 3" in text

    def test_health_table_reassembled_from_gauges(self, registry):
        text = format_top(registry.snapshot())
        assert "shard health:" in text
        header = next(line for line in text.splitlines()
                      if "alive" in line and "rtt_ms" in line)
        row = next(line for line in text.splitlines()
                   if line.strip().startswith("0 "))
        assert "up" in row
        assert "52.0" in row                # rss in MB
        assert "1.20" in row                # rtt in ms
        assert header.index("rss_mb") > header.index("respawns")

    def test_empty_snapshot_degrades_gracefully(self):
        text = format_top({"counters": {}, "gauges": {}, "histograms": {}})
        assert "no headline counters" in text
        assert "no shard.health.* gauges" in text

    def test_missing_gauges_render_as_dashes(self):
        snapshot = {"counters": {}, "histograms": {},
                    "gauges": {"shard.health.alive{shard=3}": 0.0}}
        text = format_top(snapshot)
        row = next(line for line in text.splitlines()
                   if line.strip().startswith("3 "))
        assert "DOWN" in row
        assert "-" in row                   # absent rtt/rss columns
