"""Tracer behaviour: nesting, delivery, export, and the no-op path."""

import json
import threading

from repro.obs import (
    NOOP_TRACER,
    InMemorySink,
    JsonlSpanExporter,
    Tracer,
    slow_trace_filter,
)


def test_spans_nest_and_parent_implicitly():
    sink = InMemorySink()
    tracer = Tracer(sink=sink)
    with tracer.span("root", kind="test") as root:
        with tracer.span("child") as child:
            with tracer.span("grandchild") as grand:
                assert tracer.current_span() is grand
            assert tracer.current_span() is child
        with tracer.span("sibling") as sib:
            pass
    assert tracer.current_span() is None

    assert child.parent_id == root.span_id
    assert grand.parent_id == child.span_id
    assert sib.parent_id == root.span_id
    assert root.parent_id is None
    assert {s.trace_id for s in (root, child, grand, sib)} == {root.trace_id}
    assert root.attrs == {"kind": "test"}


def test_trace_delivered_once_root_closes_root_last():
    sink = InMemorySink()
    tracer = Tracer(sink=sink)
    with tracer.span("root"):
        with tracer.span("child"):
            pass
        assert sink.traces == []  # nothing until the root closes
    assert len(sink.traces) == 1
    names = [s.name for s in sink.traces[0]]
    assert names == ["child", "root"]


def test_sequential_traces_get_distinct_ids():
    sink = InMemorySink()
    tracer = Tracer(sink=sink)
    for _ in range(2):
        with tracer.span("root"):
            pass
    assert len(sink.traces) == 2
    first, second = (trace[0] for trace in sink.traces)
    assert first.trace_id != second.trace_id
    assert len({s.span_id for s in sink.spans}) == 2


def test_threads_produce_independent_traces():
    sink = InMemorySink()
    tracer = Tracer(sink=sink)

    def work(tag):
        with tracer.span("root", tag=tag):
            with tracer.span("child"):
                pass

    threads = [threading.Thread(target=work, args=(i,)) for i in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert len(sink.traces) == 4
    for trace in sink.traces:
        root = trace[-1]
        assert root.parent_id is None
        assert all(s.trace_id == root.trace_id for s in trace)
    assert len({trace[-1].trace_id for trace in sink.traces}) == 4


def test_span_durations_and_late_attrs():
    sink = InMemorySink()
    tracer = Tracer(sink=sink)
    with tracer.span("root") as root:
        with tracer.span("child") as child:
            pass
        child.set(late=1)  # still writable until the trace is delivered
    assert child.end_s is not None
    assert 0.0 <= child.duration_s <= root.duration_s
    assert sink.traces[0][0].attrs == {"late": 1}


def test_jsonl_exporter_round_trip(tmp_path):
    path = tmp_path / "trace.jsonl"
    exporter = JsonlSpanExporter(path)
    tracer = Tracer(sink=exporter)
    with tracer.span("root", kind="t"):
        with tracer.span("child", n=3):
            pass
    exporter.close()
    exporter.close()  # idempotent

    lines = [json.loads(line) for line in path.read_text().splitlines()]
    assert [rec["name"] for rec in lines] == ["child", "root"]
    for rec in lines:
        assert set(rec) == {"name", "trace_id", "span_id", "parent_id",
                            "start_s", "duration_s", "attrs"}
        assert rec["duration_s"] >= 0
    assert lines[0]["parent_id"] == lines[1]["span_id"]
    assert lines[0]["attrs"] == {"n": 3}


def test_slow_trace_filter_gates_on_root_duration():
    received = InMemorySink()
    filtered = slow_trace_filter(0.05, received)
    tracer = Tracer(sink=filtered)
    with tracer.span("root") as root:
        pass
    # Fast root: dropped.
    assert received.traces == []
    # Forge a slow root through the same filter.
    root.start_s -= 1.0
    filtered([root])
    assert len(received.traces) == 1


def test_noop_tracer_is_inert_and_allocation_free():
    handle_a = NOOP_TRACER.span("a", big=list(range(3)))
    handle_b = NOOP_TRACER.span("b")
    assert handle_a is handle_b  # one shared handle
    with handle_a as span:
        span.set(anything=1)
        assert span.attrs == {}
    assert NOOP_TRACER.current_span() is None
    assert NOOP_TRACER.enabled is False
