"""Metrics registry: counters, gauges, histograms, labels, snapshots."""

import json

import pytest

from repro.obs import MetricsRegistry


def test_counter_basics_and_identity():
    registry = MetricsRegistry()
    counter = registry.counter("requests_total", kind="knn")
    counter.inc()
    counter.inc(4)
    assert counter.value == 5
    # Same (name, labels) -> the same metric object; different labels
    # -> a distinct one.
    assert registry.counter("requests_total", kind="knn") is counter
    other = registry.counter("requests_total", kind="range")
    assert other is not counter
    assert other.value == 0
    assert counter.full_name == "requests_total{kind=knn}"


def test_gauge_set_and_read():
    registry = MetricsRegistry()
    gauge = registry.gauge("pool_size")
    assert gauge.value == 0.0
    gauge.set(8)
    assert gauge.value == 8.0
    assert gauge.full_name == "pool_size"


def test_histogram_bucket_semantics():
    registry = MetricsRegistry()
    hist = registry.histogram("latency", edges=(1.0, 2.0, 4.0))
    for value in (0.5, 1.0, 1.5, 4.0, 9.0):
        hist.observe(value)
    merged = hist.merged()
    assert merged["count"] == 5
    assert merged["sum"] == pytest.approx(16.0)
    assert merged["min"] == 0.5
    assert merged["max"] == 9.0
    # Cumulative le-buckets: a value equal to an edge belongs to that
    # edge's bucket, and the +Inf bucket equals count.
    by_le = {bucket["le"]: bucket["count"] for bucket in merged["buckets"]}
    assert by_le == {1.0: 2, 2.0: 3, 4.0: 4, "+Inf": 5}
    assert hist.count == 5


def test_histogram_rejects_bad_edges():
    registry = MetricsRegistry()
    with pytest.raises(ValueError, match="strictly increasing"):
        registry.histogram("bad", edges=(1.0, 1.0, 2.0))
    with pytest.raises(ValueError, match="strictly increasing"):
        registry.histogram("empty", edges=())


def test_snapshot_structure_and_write_json(tmp_path):
    registry = MetricsRegistry()
    registry.counter("a_total").inc(3)
    registry.counter("b_total", stage="lb_keogh").inc(7)
    registry.gauge("level").set(2.5)
    registry.histogram("lat", edges=(0.1, 1.0)).observe(0.05)

    snap = registry.snapshot()
    assert set(snap) == {"timestamp_s", "counters", "gauges", "histograms"}
    assert snap["counters"]["a_total"] == 3
    assert snap["counters"]["b_total{stage=lb_keogh}"] == 7
    assert snap["gauges"]["level"] == 2.5
    assert snap["histograms"]["lat"]["count"] == 1

    path = tmp_path / "metrics.json"
    written = registry.write_json(path)
    loaded = json.loads(path.read_text())
    assert loaded["counters"] == written["counters"] == snap["counters"]
    assert loaded["histograms"]["lat"]["buckets"][-1]["le"] == "+Inf"


def test_empty_histogram_merges_cleanly():
    registry = MetricsRegistry()
    merged = registry.histogram("never", edges=(1.0,)).merged()
    assert merged["count"] == 0
    assert merged["min"] is None and merged["max"] is None
    assert all(bucket["count"] == 0 for bucket in merged["buckets"])
