"""Exactness of sharded metrics under the engine's thread pool.

The acceptance bar for the metrics registry: totals must be *exact* —
not approximately right — when queries are served by
``range_search_many``/``knn_many`` with many workers, and when raw
threads hammer a single counter.
"""

import threading
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.datasets.generators import random_walks
from repro.engine import QueryEngine
from repro.obs import MetricsRegistry, Observability

WORKERS = 8


def test_counter_exact_under_thread_hammer():
    registry = MetricsRegistry()
    counter = registry.counter("hammer_total")
    hist = registry.histogram("hammer_values", edges=(250.0, 500.0))
    n_threads, per_thread = 8, 5_000
    barrier = threading.Barrier(n_threads)

    def hammer():
        barrier.wait()
        for i in range(per_thread):
            counter.inc()
            hist.observe(i % 1000)

    with ThreadPoolExecutor(max_workers=n_threads) as pool:
        list(pool.map(lambda _: hammer(), range(n_threads)))

    assert counter.value == n_threads * per_thread
    merged = hist.merged()
    assert merged["count"] == n_threads * per_thread
    by_le = {bucket["le"]: bucket["count"] for bucket in merged["buckets"]}
    # 0..999 per cycle: 251 values <= 250, 501 values <= 500.
    cycles = n_threads * per_thread // 1000
    assert by_le[250.0] == 251 * cycles
    assert by_le[500.0] == 501 * cycles
    assert by_le["+Inf"] == merged["count"]


@pytest.fixture(scope="module")
def corpus():
    return random_walks(300, 64, seed=5)


@pytest.fixture(scope="module")
def queries(corpus):
    rng = np.random.default_rng(6)
    return [corpus[i] + 0.3 * rng.normal(size=64) for i in range(24)]


def test_metrics_exact_across_knn_many_workers(corpus, queries):
    obs = Observability()
    engine = QueryEngine(corpus, band=4, obs=obs, workers=WORKERS)
    results, merged = engine.knn_many(queries, 5)
    assert len(results) == len(queries)

    m = obs.metrics
    assert m.counter("engine.queries_total", kind="knn").value == len(queries)
    assert m.counter("engine.candidates_total").value == merged.corpus_size
    assert (m.counter("engine.candidates_refined_total").value
            == merged.dtw_computations)
    assert (m.counter("engine.dtw_abandoned_total").value
            == merged.dtw_abandoned)
    assert (m.counter("engine.exact_skipped_total").value
            == merged.exact_skipped)
    assert m.counter("engine.results_total").value == merged.results
    for stage in merged.stages:
        assert (m.counter("engine.stage.candidates_in_total",
                          stage=stage.name).value == stage.candidates_in)
        assert (m.counter("engine.stage.pruned_total",
                          stage=stage.name).value == stage.pruned)
    assert (m.histogram("engine.query_seconds", kind="knn").count
            == len(queries))
    # Kernel accounting flows through the same shards.
    assert m.counter("dtw.kernel_calls_total").value > 0
    assert m.counter("dtw.cells_total").value > 0


def test_metrics_exact_across_range_many_workers(corpus, queries):
    obs = Observability()
    engine = QueryEngine(corpus, band=4, obs=obs)
    results, merged = engine.range_search_many(queries, 4.0, workers=WORKERS)
    assert len(results) == len(queries)

    m = obs.metrics
    assert (m.counter("engine.queries_total", kind="range").value
            == len(queries))
    assert m.counter("engine.candidates_total").value == merged.corpus_size
    assert (m.counter("engine.candidates_refined_total").value
            == merged.dtw_computations)
    assert m.counter("engine.results_total").value == merged.results


@pytest.mark.parametrize("kind", ["knn", "range"])
def test_merged_stats_equal_sum_of_serial_stats(corpus, queries, kind):
    """``*_many`` merged counters == the sum over per-query serial runs.

    The merge is ``CascadeStats.__add__`` over the pool's per-query
    stats; queries are deterministic, so a separate serial pass must
    produce counter-identical stats.  Timers follow the documented
    split: ``cpu_time_s`` is additive (per-query times summed) while
    ``total_time_s`` reports the batch wall clock, which under a pool
    is at most the summed per-query time (plus scheduling slack).
    """
    engine = QueryEngine(corpus, band=4)
    if kind == "knn":
        _, merged = engine.knn_many(queries, 5, workers=WORKERS)
        serial = [engine.knn(query, 5)[1] for query in queries]
    else:
        _, merged = engine.range_search_many(queries, 4.0, workers=WORKERS)
        serial = [engine.range_search(query, 4.0)[1] for query in queries]

    summed = serial[0]
    for stats in serial[1:]:
        summed = summed + stats

    assert merged.corpus_size == summed.corpus_size
    assert merged.dtw_computations == summed.dtw_computations
    assert merged.dtw_abandoned == summed.dtw_abandoned
    assert merged.exact_skipped == summed.exact_skipped
    assert merged.results == summed.results
    assert merged.pruned_total == summed.pruned_total
    assert [s.name for s in merged.stages] == [s.name for s in summed.stages]
    for got, want in zip(merged.stages, summed.stages):
        assert got.candidates_in == want.candidates_in
        assert got.pruned == want.pruned
        assert got.bound_min == pytest.approx(want.bound_min)
        assert got.bound_mean == pytest.approx(want.bound_mean)
        assert got.bound_max == pytest.approx(want.bound_max)

    # Timer consistency: cpu additive, wall bounded by the cpu sum.
    assert summed.cpu_time_s == pytest.approx(
        sum(stats.cpu_time_s for stats in serial)
    )
    assert merged.cpu_time_s > 0
    assert merged.total_time_s <= merged.cpu_time_s + 0.25


def test_parallel_results_identical_and_cpu_vs_wall_time(corpus, queries):
    obs = Observability()
    instrumented = QueryEngine(corpus, band=4, obs=obs)
    plain = QueryEngine(corpus, band=4)

    par_results, par_stats = instrumented.knn_many(queries, 5, workers=WORKERS)
    seq_results = [plain.knn(query, 5)[0] for query in queries]
    assert par_results == seq_results

    # cpu_time_s sums per-query elapsed times; total_time_s is the
    # batch wall clock — under a pool the sum covers overlapped work,
    # and both always cover the summed stage/exact phases.
    assert par_stats.cpu_time_s > 0
    assert par_stats.total_time_s > 0
    phase_s = (sum(stage.wall_time_s for stage in par_stats.stages)
               + par_stats.exact_time_s)
    assert par_stats.cpu_time_s >= phase_s * 0.5
