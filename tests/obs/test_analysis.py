"""Trace analytics: the JSONL reader and the aggregated report.

Covers the tentpole acceptance criteria: the streaming reader survives
corrupt and truncated lines, ``analyze_traces`` reproduces the exact
candidate accounting ``--stats-json`` reports (both are projections of
the same ``StageStats`` objects), percentiles come off the cumulative
histogram buckets correctly, and ``CascadeStats.from_trace`` round-trips
through an export → parse → rebuild cycle.
"""

import json

import numpy as np
import pytest

from repro.datasets.generators import random_walks
from repro.engine import CascadeStats, QueryEngine
from repro.obs import (
    Observability,
    TraceReadStats,
    analyze_traces,
    percentile_from_histogram,
    read_traces,
)
from repro.obs.analysis import iter_span_lines
from repro.obs.metrics import Histogram


@pytest.fixture(scope="module")
def traced_run(tmp_path_factory):
    """One engine, several traced queries, exported to JSONL."""
    corpus = random_walks(200, 64, seed=11)
    rng = np.random.default_rng(12)
    queries = [corpus[i] + 0.3 * rng.normal(size=64) for i in range(6)]
    path = tmp_path_factory.mktemp("trace") / "trace.jsonl"
    obs = Observability.to_files(trace_out=path)
    engine = QueryEngine(corpus, band=4, obs=obs)
    stats = []
    for i, query in enumerate(queries):
        if i % 2:
            stats.append(engine.range_search(query, 4.0)[1])
        else:
            stats.append(engine.knn(query, 5)[1])
    obs.close()
    return path, stats


# ----------------------------------------------------------------------
# streaming reader
# ----------------------------------------------------------------------


def test_reader_skips_damaged_lines():
    good = json.dumps({
        "name": "query", "trace_id": 1, "span_id": 2, "parent_id": None,
        "start_s": 0.0, "duration_s": 0.5, "attrs": {},
    })
    lines = [
        good,
        "",                               # blank: ignored silently
        good[: len(good) // 2],           # truncated mid-write
        "not json at all {",
        json.dumps(["a", "list"]),        # JSON but not an object
        json.dumps({"name": "x"}),        # object but not a span
        good,
    ]
    stats = TraceReadStats()
    spans = list(iter_span_lines(lines, stats))
    assert len(spans) == 2
    assert stats.lines == 6               # blank not counted
    assert stats.spans == 2
    assert stats.bad_lines == 4


def test_read_traces_groups_interleaved_traces():
    def span(trace, sid, parent, name="x"):
        return json.dumps({
            "name": name, "trace_id": trace, "span_id": sid,
            "parent_id": parent, "start_s": 0.0, "duration_s": 0.1,
            "attrs": {},
        })

    # Two traces interleaved (as concurrent *_many roots are in the
    # file), plus one root-less trace left dangling.
    lines = [
        span(1, 11, 1),
        span(2, 21, 2),
        span(1, 12, 1),
        span(1, 1, None, "query"),        # trace 1 complete
        span(3, 31, 3),                   # never gets a root
        span(2, 2, None, "query"),        # trace 2 complete
    ]
    stats = TraceReadStats()
    traces = list(read_traces(lines, stats))
    assert [trace[-1]["trace_id"] for trace in traces] == [1, 2]
    assert [len(trace) for trace in traces] == [3, 2]
    # Root arrives last within each group.
    assert all(trace[-1]["parent_id"] is None for trace in traces)
    assert stats.traces == 2
    assert stats.incomplete_traces == 1


def test_read_traces_from_file(traced_run):
    path, stats_list = traced_run
    read = TraceReadStats()
    traces = list(read_traces(path, read))
    assert read.traces == len(traces) == len(stats_list)
    assert read.bad_lines == 0
    assert read.incomplete_traces == 0


# ----------------------------------------------------------------------
# percentiles
# ----------------------------------------------------------------------


def test_percentile_from_histogram_reads_bucket_edges():
    hist = Histogram("t", {}, (1.0, 2.0, 4.0))
    for value in (0.5, 1.5, 1.5, 3.0):
        hist.observe(value)
    merged = hist.merged()
    # Cumulative counts: le1=1, le2=3, le4=4.  p50 target 2 -> first
    # bucket reaching it is le=2.0; p95 target 3.8 -> le=4.0, capped
    # at the observed max.
    assert percentile_from_histogram(merged, 0.50) == 2.0
    assert percentile_from_histogram(merged, 0.95) == 3.0
    assert percentile_from_histogram(merged, 0.25) == 1.0


def test_percentile_above_top_edge_uses_observed_max():
    hist = Histogram("t", {}, (1.0,))
    hist.observe(9.0)
    merged = hist.merged()
    assert percentile_from_histogram(merged, 0.5) == 9.0
    empty = Histogram("e", {}, (1.0,)).merged()
    assert percentile_from_histogram(empty, 0.5) is None


# ----------------------------------------------------------------------
# the aggregated report
# ----------------------------------------------------------------------


def test_report_matches_engine_stats(traced_run):
    path, stats_list = traced_run
    read = TraceReadStats()
    report = analyze_traces(read_traces(path, read), read)

    assert report.queries == len(stats_list)
    assert report.results == sum(s.results for s in stats_list)
    assert report.dtw_computations == sum(
        s.dtw_computations for s in stats_list
    )
    assert report.corpus_candidates == sum(
        s.corpus_size for s in stats_list
    )
    # Pruning table: exact sums of the per-query StageStats — the same
    # numbers --stats-json carries, by construction.
    by_name = {agg.name: agg for agg in report.stages}
    for i, name in enumerate(s.name for s in stats_list[0].stages):
        agg = by_name[name]
        assert agg.candidates_in == sum(
            s.stages[i].candidates_in for s in stats_list
        )
        assert agg.pruned == sum(s.stages[i].pruned for s in stats_list)
        assert agg.survivors == agg.candidates_in - agg.pruned
    # The last (tightest) stage's tightness is 1 by definition.
    assert report.stages[-1].tightness == pytest.approx(1.0)

    latency_names = {row.name for row in report.latencies}
    assert "query" in latency_names
    assert any(name.startswith("stage:") for name in latency_names)
    query_row = next(row for row in report.latencies
                     if row.name == "query")
    assert query_row.count == len(stats_list)
    assert query_row.p50_s <= query_row.p95_s <= query_row.p99_s
    assert query_row.max_s >= query_row.p99_s or query_row.count > 0


def test_report_critical_paths_and_folded(traced_run):
    path, _ = traced_run
    read = TraceReadStats()
    report = analyze_traces(read_traces(path, read), read)

    assert report.critical_paths
    for entry in report.critical_paths:
        assert entry["path"].startswith("query")
        assert entry["count"] >= 1 and entry["mean_s"] >= 0

    folded = report.format_folded()
    assert folded
    for line in folded.splitlines():
        stack, value = line.rsplit(" ", 1)
        assert stack.startswith("query")
        assert int(value) >= 0
    # Self times partition each trace: the folded total equals the
    # summed root durations (to integer-microsecond rounding).
    total_us = sum(int(line.rsplit(" ", 1)[1])
                   for line in folded.splitlines())
    root_us = 0
    for trace in read_traces(path):
        root_us += trace[-1]["duration_s"] * 1e6
    assert total_us == pytest.approx(root_us, abs=len(folded.splitlines()))


def test_report_formats_render(traced_run):
    path, _ = traced_run
    read = TraceReadStats()
    report = analyze_traces(read_traces(path, read), read)
    table = report.format_table()
    assert "span" in table and "stage" in table and "tightness" in table
    doc = report.to_dict()
    assert doc["queries"] == report.queries
    assert json.dumps(doc)  # JSON-serialisable end to end


# ----------------------------------------------------------------------
# CascadeStats.from_trace round-trip through the JSONL reader
# ----------------------------------------------------------------------


def test_from_trace_round_trips_through_jsonl_reader(traced_run):
    path, stats_list = traced_run
    traces = list(read_traces(path))
    assert len(traces) == len(stats_list)
    for trace, want in zip(traces, stats_list):
        rebuilt = CascadeStats.from_trace(trace)
        assert rebuilt.corpus_size == want.corpus_size
        assert rebuilt.dtw_computations == want.dtw_computations
        assert rebuilt.dtw_abandoned == want.dtw_abandoned
        assert rebuilt.exact_skipped == want.exact_skipped
        assert rebuilt.results == want.results
        assert rebuilt.total_time_s == pytest.approx(want.total_time_s)
        assert rebuilt.cpu_time_s == pytest.approx(want.cpu_time_s)
        assert [s.name for s in rebuilt.stages] == [
            s.name for s in want.stages
        ]
        for got, exp in zip(rebuilt.stages, want.stages):
            assert got.candidates_in == exp.candidates_in
            assert got.pruned == exp.pruned
            assert got.bound_mean == pytest.approx(exp.bound_mean)


def test_from_trace_round_trip_tolerates_corrupt_lines(traced_run, tmp_path):
    """Damaging every other line loses traces, never correctness."""
    path, stats_list = traced_run
    lines = path.read_text().splitlines()
    # Truncate the first line (a span of the first trace) mid-JSON and
    # inject garbage between traces: the first trace becomes incomplete
    # or short, the rest must still round-trip exactly.
    damaged = tmp_path / "damaged.jsonl"
    damaged.write_text("\n".join(
        [lines[0][:20], "garbage {{{"] + lines[1:]
    ) + "\n")

    read = TraceReadStats()
    traces = list(read_traces(damaged, read))
    assert read.bad_lines == 2
    rebuilt = [CascadeStats.from_trace(trace) for trace in traces]
    # Every fully-intact trace matches its original stats record.
    intact = [s for s in rebuilt
              if s.corpus_size == stats_list[0].corpus_size
              and len(s.stages) == len(stats_list[0].stages)]
    assert len(intact) >= len(stats_list) - 1


# ----------------------------------------------------------------------
# serving-layer rows
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def served_run(tmp_path_factory):
    """A traced service run: serve spans interleaved with engine spans."""
    from repro.serve import QBHService

    corpus = random_walks(80, 64, seed=23)
    rng = np.random.default_rng(24)
    path = tmp_path_factory.mktemp("serve_trace") / "trace.jsonl"
    obs = Observability.to_files(trace_out=path)
    engine = QueryEngine(corpus, band=4, obs=obs)
    service = QBHService.from_engine(engine, linger_ms=0.0, max_batch=4,
                                     cache_size=16, obs=obs)
    try:
        repeat = corpus[0] + 0.1 * rng.normal(size=64)
        for _ in range(2):            # second one is a cache hit
            assert service.knn(repeat, 3).ok
        for i in range(1, 4):
            query = corpus[i] + 0.1 * rng.normal(size=64)
            assert service.range_search(query, 3.0).ok
    finally:
        service.close()
        obs.close()
    return path


def test_report_serve_rows(served_run):
    """serve:* spans fold into the serving section; engine analysis is
    untouched by their presence."""
    report = analyze_traces(read_traces(served_run))
    serve = report.serve
    assert serve is not None
    assert serve.requests == 5
    assert serve.by_status == {"ok": 5}
    assert serve.cache_hits == 1
    assert serve.cache_hit_rate == pytest.approx(0.2)
    assert serve.batches == 4          # 5 requests, one answered by cache
    assert serve.batched_requests == 4
    # occupancy observed for every batch, in (0, 1]
    occupancy = serve._percentiles(serve.occupancy)
    assert occupancy["count"] == 4
    assert 0.0 < occupancy["max"] <= 1.0
    # the engine's own query spans still aggregate as before
    assert report.queries == 4
    # serve spans are instant roots: they must not leak into latencies
    assert not any(lat.name.startswith("serve:")
                   for lat in report.latencies)


def test_report_serve_rows_render_and_roundtrip(served_run):
    report = analyze_traces(read_traces(served_run))
    table = report.format_table()
    assert "serving:" in table
    assert "cache-hit" in table
    assert "queue wait" in table or "queue_wait" in table
    doc = report.to_dict()
    assert doc["serve"]["requests"] == 5
    assert doc["serve"]["by_status"] == {"ok": 5}
    json.dumps(doc)  # JSON-ready end to end


def test_report_without_serve_spans_has_no_serve_section(traced_run):
    path, _ = traced_run
    report = analyze_traces(read_traces(path))
    assert report.serve is None
    assert report.to_dict()["serve"] is None
    assert "serving:" not in report.format_table()


# ----------------------------------------------------------------------
# per-shard breakdown (repro obs report --per-shard)
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def sharded_run(tmp_path_factory):
    """Traced queries through a 3-shard router, exported to JSONL."""
    from repro.shard import ShardRouter

    corpus = random_walks(60, 48, seed=31)
    rng = np.random.default_rng(32)
    path = tmp_path_factory.mktemp("shard_trace") / "trace.jsonl"
    obs = Observability.to_files(trace_out=path)
    engine = QueryEngine(list(corpus), delta=0.1, obs=obs)
    with ShardRouter.from_engine(engine, shards=3, obs=obs) as router:
        for i in range(4):
            query = corpus[i] + 0.1 * rng.normal(size=48)
            router.knn(query, 5)
    obs.close()
    return path


def test_per_shard_aggregates(sharded_run):
    report = analyze_traces(read_traces(sharded_run))
    assert len(report.shards) == 3
    assert [agg.shard for agg in report.shards] == [0, 1, 2]
    for agg in report.shards:
        assert agg.queries == 4
        assert agg.epochs == {0}
        assert 0.0 < agg.work_share < 1.0
        assert 0.0 <= agg.pruning_power <= 1.0
    assert sum(agg.work_share for agg in report.shards) == pytest.approx(1.0)
    assert report.shard_imbalance is not None
    assert report.shard_imbalance >= 1.0
    # worker roots are real spans: they show in the span table too
    assert any(lat.name == "shard:query" for lat in report.latencies)


def test_per_shard_table_renders(sharded_run):
    report = analyze_traces(read_traces(sharded_run))
    table = report.format_table(per_shard=True)
    assert "per-shard (3 shards" in table
    assert "work" in table and "pruned" in table
    # default rendering leaves the per-shard section out
    assert "per-shard" not in report.format_table()


def test_per_shard_to_dict_is_json_ready(sharded_run):
    report = analyze_traces(read_traces(sharded_run))
    doc = report.to_dict()
    assert len(doc["shards"]) == 3
    assert doc["shard_imbalance"] == pytest.approx(report.shard_imbalance)
    json.dumps(doc)


def test_per_shard_section_absent_without_shard_spans(traced_run):
    path, _ = traced_run
    report = analyze_traces(read_traces(path))
    assert report.shards == []
    assert report.shard_imbalance is None
    table = report.format_table(per_shard=True)
    assert "no shard:query spans" in table


def test_bad_lines_warn_in_the_table_header(sharded_run, tmp_path):
    damaged = tmp_path / "damaged.jsonl"
    with open(sharded_run) as src_handle:
        content = src_handle.read()
    with open(damaged, "w") as dst:
        dst.write("{torn line\n")
        dst.write(content)
        dst.write("also not json\n")
    stats = TraceReadStats()
    report = analyze_traces(read_traces(damaged, stats), stats)
    table = report.format_table()
    assert "WARNING: skipped 2 undecodable line(s)" in table
    assert "lower bound" in table
    # an intact log renders no warning
    clean = analyze_traces(read_traces(sharded_run, TraceReadStats()))
    assert "WARNING" not in clean.format_table()
