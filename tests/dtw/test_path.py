"""Unit tests for repro.dtw.path."""

import math

import numpy as np
import pytest

from repro.dtw.distance import dtw_distance, ldtw_distance
from repro.dtw.path import cost_matrix, is_valid_path, path_cost, warping_path


class TestCostMatrix:
    def test_corner_is_squared_distance(self, rng):
        x = rng.normal(size=8)
        y = rng.normal(size=10)
        acc = cost_matrix(x, y)
        assert math.sqrt(acc[-1, -1]) == pytest.approx(dtw_distance(x, y))

    def test_band_blocks_cells(self):
        acc = cost_matrix([1.0] * 6, [1.0] * 6, k=1)
        assert math.isinf(acc[0, 3])
        assert math.isfinite(acc[0, 1])

    def test_first_cell(self):
        acc = cost_matrix([2.0], [5.0])
        assert acc[0, 0] == pytest.approx(9.0)

    def test_rejects_negative_band(self):
        with pytest.raises(ValueError, match=">= 0"):
            cost_matrix([1.0], [1.0], k=-2)


class TestWarpingPath:
    def test_path_is_valid(self, rng):
        x = rng.normal(size=9)
        y = rng.normal(size=12)
        path = warping_path(x, y)
        assert is_valid_path(path, 9, 12)

    def test_path_respects_band(self, rng):
        x = rng.normal(size=10)
        y = rng.normal(size=10)
        path = warping_path(x, y, k=2)
        assert is_valid_path(path, 10, 10, k=2)

    def test_path_cost_equals_distance(self, rng):
        x = rng.normal(size=8)
        y = rng.normal(size=8)
        path = warping_path(x, y, k=3)
        assert path_cost(x, y, path) == pytest.approx(ldtw_distance(x, y, 3))

    def test_identical_series_diagonal_path(self, rng):
        x = rng.normal(size=7)
        path = warping_path(x, x)
        assert path == [(i, i) for i in range(7)]

    def test_no_path_raises(self):
        with pytest.raises(ValueError, match="no admissible"):
            warping_path([1.0] * 3, [1.0] * 10, k=1)

    def test_path_length_bounds(self, rng):
        """max(n, m) <= L <= n + m - 1 (from the paper)."""
        x = rng.normal(size=11)
        y = rng.normal(size=7)
        path = warping_path(x, y)
        assert max(11, 7) <= len(path) <= 11 + 7 - 1


class TestIsValidPath:
    def test_accepts_simple_diagonal(self):
        assert is_valid_path([(0, 0), (1, 1)], 2, 2)

    def test_rejects_empty(self):
        assert not is_valid_path([], 2, 2)

    def test_rejects_wrong_start(self):
        assert not is_valid_path([(0, 1), (1, 1)], 2, 2)

    def test_rejects_wrong_end(self):
        assert not is_valid_path([(0, 0), (1, 0)], 2, 2)

    def test_rejects_non_monotonic(self):
        assert not is_valid_path([(0, 0), (1, 1), (0, 1), (1, 1)], 2, 2)

    def test_rejects_jump(self):
        assert not is_valid_path([(0, 0), (2, 2)], 3, 3)

    def test_rejects_stall(self):
        assert not is_valid_path([(0, 0), (0, 0), (1, 1)], 2, 2)

    def test_rejects_band_violation(self):
        path = [(0, 0), (0, 1), (0, 2), (1, 2), (2, 2)]
        assert is_valid_path(path, 3, 3)
        assert not is_valid_path(path, 3, 3, k=1)
