"""Tests for Manhattan-metric DTW and its lower bounds.

The paper notes its framework admits "other distance metrics ... with
some modifications"; these tests pin down the L1 variant: the DTW
recurrence with absolute-difference costs, and the envelope bounds
that remain valid under it.
"""

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.envelope import envelope_distance, k_envelope
from repro.core.lower_bounds import lb_keogh, lb_yi
from repro.dtw.distance import dtw_distance, ldtw_distance, warping_distance

finite = st.floats(min_value=-50, max_value=50, allow_nan=False)


class TestManhattanDtw:
    def test_known_value(self):
        # x=[0,0], y=[3,3]: best path pairs each with cost 3 -> 6.
        assert dtw_distance([0.0, 0.0], [3.0, 3.0],
                            metric="manhattan") == pytest.approx(6.0)

    def test_self_distance_zero(self, rng):
        x = rng.normal(size=20)
        assert dtw_distance(x, x, metric="manhattan") == 0.0

    def test_symmetry(self, rng):
        x = rng.normal(size=13)
        y = rng.normal(size=17)
        assert dtw_distance(x, y, metric="manhattan") == pytest.approx(
            dtw_distance(y, x, metric="manhattan")
        )

    def test_k_zero_is_l1_distance(self, rng):
        x = rng.normal(size=16)
        y = rng.normal(size=16)
        assert ldtw_distance(x, y, 0, metric="manhattan") == pytest.approx(
            float(np.abs(x - y).sum())
        )

    def test_band_monotonicity(self, rng):
        x = rng.normal(size=24)
        y = rng.normal(size=24)
        dists = [ldtw_distance(x, y, k, metric="manhattan")
                 for k in (0, 2, 6, 23)]
        assert all(a >= b - 1e-9 for a, b in zip(dists, dists[1:]))

    def test_upper_bound_early_abandon(self, rng):
        x = rng.normal(size=20)
        assert ldtw_distance(x, x + 10, 2, upper_bound=1.0,
                             metric="manhattan") == math.inf

    def test_warping_distance_metric_passthrough(self, rng):
        x = rng.normal(size=64)
        y = rng.normal(size=64)
        d = warping_distance(x, y, delta=0.0, normal_length=64,
                             metric="manhattan")
        assert d == pytest.approx(float(np.abs(x - y).sum()))

    def test_rejects_unknown_metric(self, rng):
        with pytest.raises(ValueError, match="metric"):
            dtw_distance([1.0], [1.0], metric="chebyshev")
        with pytest.raises(ValueError, match="metric"):
            ldtw_distance([1.0], [1.0], 1, metric="cosine")


class TestManhattanLowerBounds:
    def test_lb_keogh_lower_bounds_l1_dtw(self, rng):
        for _ in range(20):
            x = np.cumsum(rng.normal(size=48))
            y = np.cumsum(rng.normal(size=48))
            k = 4
            lb = lb_keogh(x, y, k, metric="manhattan")
            assert lb <= ldtw_distance(x, y, k, metric="manhattan") + 1e-9

    def test_lb_yi_below_lb_keogh_l1(self, rng):
        x = np.cumsum(rng.normal(size=32))
        y = np.cumsum(rng.normal(size=32))
        assert lb_yi(x, y, metric="manhattan") <= lb_keogh(
            x, y, 3, metric="manhattan"
        ) + 1e-9

    def test_envelope_distance_l1(self, rng):
        y = rng.normal(size=16)
        env = k_envelope(y, 2)
        x = rng.normal(size=16)
        clipped = env.clip(x)
        assert envelope_distance(x, env, metric="manhattan") == pytest.approx(
            float(np.abs(x - clipped).sum())
        )

    def test_envelope_distance_rejects_bad_metric(self, rng):
        env = k_envelope(rng.normal(size=8), 1)
        with pytest.raises(ValueError, match="metric"):
            envelope_distance(rng.normal(size=8), env, metric="lp")


@given(arrays(np.float64, 20, elements=finite),
       arrays(np.float64, 20, elements=finite), st.integers(0, 6))
def test_property_l1_lb_keogh_sound(x, y, k):
    lb = lb_keogh(x, y, k, metric="manhattan")
    assert lb <= ldtw_distance(x, y, k, metric="manhattan") + 1e-6


@given(arrays(np.float64, 16, elements=finite),
       arrays(np.float64, 16, elements=finite))
def test_property_l1_at_most_pointwise(x, y):
    d = dtw_distance(x, y, metric="manhattan")
    assert d <= float(np.abs(x - y).sum()) + 1e-6
