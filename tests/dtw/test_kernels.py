"""Kernel parity, early-abandon, batch, and registry tests.

Every banded-DTW backend must agree with the scalar reference to
1e-9 (they actually agree bit for bit: the vectorized wavefront
performs the min-of-three and the cost addition in the same order per
cell).  Early abandoning must never produce a false negative: a
candidate whose true cost is within the cutoff always comes back with
its exact value.
"""

import math

import numpy as np
import pytest

from repro.dtw.distance import ldtw_distance, ldtw_distance_batch, ldtw_refiner
from repro.dtw.kernels import (
    DEFAULT_BACKEND,
    DTWKernel,
    _REGISTRY,
    available_backends,
    banded_dtw_cost,
    banded_dtw_cost_batch,
    get_kernel,
    register_kernel,
)

ATOL = 1e-9
N = 48
BANDS = (0, 1, 5, N)
METRICS = ("euclidean", "manhattan")

SCALAR = get_kernel("scalar")
VECTORIZED = get_kernel("vectorized")


def _pair(rng, n=N, m=N):
    x = np.cumsum(rng.normal(size=n))
    y = np.cumsum(rng.normal(size=m))
    return x, y


# ----------------------------------------------------------------------
# single-pair parity
# ----------------------------------------------------------------------


@pytest.mark.parametrize("metric", METRICS)
@pytest.mark.parametrize("k", BANDS)
def test_kernel_parity_equal_lengths(rng, k, metric):
    for _ in range(10):
        x, y = _pair(rng)
        ref = ldtw_distance(x, y, k, metric=metric, backend="scalar")
        vec = ldtw_distance(x, y, k, metric=metric, backend="vectorized")
        assert vec == pytest.approx(ref, abs=ATOL)
        assert math.isfinite(vec)


@pytest.mark.parametrize("metric", METRICS)
@pytest.mark.parametrize("m", (40, 44, 48, 53))
def test_kernel_parity_unequal_lengths(rng, m, metric):
    k = 8
    for _ in range(5):
        x, y = _pair(rng, n=N, m=m)
        ref = ldtw_distance(x, y, k, metric=metric, backend="scalar")
        vec = ldtw_distance(x, y, k, metric=metric, backend="vectorized")
        if abs(N - m) > k:
            assert ref == math.inf and vec == math.inf
        else:
            assert vec == pytest.approx(ref, abs=ATOL)


def test_kernel_k0_unequal_lengths_is_inf(rng):
    x, y = _pair(rng, n=20, m=21)
    for backend in ("scalar", "vectorized"):
        assert ldtw_distance(x, y, 0, backend=backend) == math.inf


def test_kernel_k0_is_pointwise(rng):
    x, y = _pair(rng)
    expect = float(np.linalg.norm(x - y))
    for backend in ("scalar", "vectorized"):
        assert ldtw_distance(x, y, 0, backend=backend) == pytest.approx(expect)


@pytest.mark.parametrize("metric", METRICS)
@pytest.mark.parametrize("k", BANDS)
def test_kernel_cutoff_grid_no_false_negatives(rng, k, metric):
    """Across a grid of cutoffs: never abandon a true answer, and any
    finite result is the exact value."""
    manhattan = metric == "manhattan"
    for _ in range(5):
        x, y = _pair(rng)
        true_cost = banded_dtw_cost(x, y, k, manhattan=manhattan,
                                    backend="scalar")
        for frac in (0.0, 0.25, 0.5, 0.9, 0.999, 1.0, 1.001, 1.5, 4.0):
            bound = true_cost * frac
            for backend in ("scalar", "vectorized"):
                got = banded_dtw_cost(x, y, k, bound, manhattan=manhattan,
                                      backend=backend)
                if frac > 1.0:
                    # Clearly inside the cutoff: must not be abandoned.
                    assert got == pytest.approx(true_cost, abs=ATOL)
                else:
                    # At (summation order can tip a bound == true tie
                    # by one ulp) or beyond the cutoff: abandoned (inf)
                    # or completed anyway — both sound; a wrong finite
                    # value is not.
                    assert got == math.inf or \
                        got == pytest.approx(true_cost, abs=ATOL)


def test_kernel_identical_series_zero_under_tight_cutoff(rng):
    x = np.cumsum(rng.normal(size=N))
    for backend in ("scalar", "vectorized"):
        assert banded_dtw_cost(x, x, 5, 0.0, backend=backend) == 0.0


# ----------------------------------------------------------------------
# batch kernel
# ----------------------------------------------------------------------


@pytest.mark.parametrize("metric", METRICS)
@pytest.mark.parametrize("k", BANDS)
def test_kernel_batch_matches_per_pair(rng, k, metric):
    x = np.cumsum(rng.normal(size=N))
    candidates = np.cumsum(rng.normal(size=(60, N)), axis=1)
    per_pair = np.array([
        ldtw_distance(x, row, k, metric=metric, backend="scalar")
        for row in candidates
    ])
    for backend in ("scalar", "vectorized"):
        batch = ldtw_distance_batch(x, candidates, k, metric=metric,
                                    backend=backend)
        np.testing.assert_allclose(batch, per_pair, atol=ATOL)


@pytest.mark.parametrize("backend", ("scalar", "vectorized"))
def test_kernel_batch_cutoffs_no_false_negatives(rng, backend):
    """Per-candidate cutoffs: survivors exact, non-survivors only ever
    candidates whose true distance exceeds their own cutoff."""
    x = np.cumsum(rng.normal(size=N))
    candidates = np.cumsum(rng.normal(size=(200, N)), axis=1)
    k = 5
    true = ldtw_distance_batch(x, candidates, k, backend="scalar")
    # Mostly killing cutoffs: with a majority of the batch dead the
    # vectorized kernel's dead-column compaction path runs (a pruned
    # candidate only comes back inf once compaction drops it — until
    # then it may finish with its exact, over-cutoff value, which is
    # an equally sound rejection).
    cuts = true * rng.choice([0.2, 1.005, 1.5], size=true.size,
                             p=[0.6, 0.2, 0.2])
    got = ldtw_distance_batch(x, candidates, k, upper_bound=cuts,
                              backend=backend)
    finite = np.isfinite(got)
    # Any finite result is the exact distance ...
    np.testing.assert_allclose(got[finite], true[finite], atol=ATOL)
    # ... anything clearly inside its cutoff survives ...
    must_survive = true <= cuts * (1.0 - 1e-9)
    assert np.all(finite[must_survive])
    # ... and everything pruned to inf was really over its cutoff.
    assert np.all(true[~finite] > cuts[~finite])
    assert np.any(~finite)  # the cutoffs really did bite


def test_kernel_batch_scalar_cutoff_broadcasts(rng):
    x = np.cumsum(rng.normal(size=N))
    candidates = np.cumsum(rng.normal(size=(20, N)), axis=1)
    true = ldtw_distance_batch(x, candidates, 5)
    cutoff = float(np.median(true))
    got = ldtw_distance_batch(x, candidates, 5, upper_bound=cutoff)
    keep = true <= cutoff
    np.testing.assert_allclose(got[keep], true[keep], atol=ATOL)
    assert np.all(np.isinf(got[~keep]) | (got[~keep] > cutoff))


def test_kernel_batch_bad_bounds_shape_raises(rng):
    x = np.cumsum(rng.normal(size=N))
    candidates = np.cumsum(rng.normal(size=(4, N)), axis=1)
    with pytest.raises(ValueError, match="bound_costs"):
        banded_dtw_cost_batch(x, candidates, 5, np.zeros(3))


def test_kernel_batch_empty_and_band_violation(rng):
    x = np.cumsum(rng.normal(size=N))
    empty = ldtw_distance_batch(x, np.empty((0, N)), 5)
    assert empty.shape == (0,)
    # ldtw_distance_batch requires equal lengths (the post-UTW shape);
    # the kernels themselves answer inf when |n - m| > k.
    short = np.cumsum(rng.normal(size=(3, N - 10)), axis=1)
    for backend in ("scalar", "vectorized"):
        assert np.all(np.isinf(
            banded_dtw_cost_batch(x, short, 5, backend=backend)
        ))


# ----------------------------------------------------------------------
# prepared refiners
# ----------------------------------------------------------------------


@pytest.mark.parametrize("backend", ("scalar", "vectorized"))
@pytest.mark.parametrize("metric", METRICS)
def test_kernel_refiner_matches_ldtw_distance(rng, backend, metric):
    x, _ = _pair(rng)
    refine = ldtw_refiner(x, 5, metric=metric, backend=backend)
    for _ in range(5):
        _, y = _pair(rng)
        expect = ldtw_distance(x, y, 5, metric=metric, backend=backend)
        assert refine(y) == pytest.approx(expect, abs=ATOL)
        assert refine(y, expect + 1.0) == pytest.approx(expect, abs=ATOL)
        tight = refine(y, expect * 0.5)
        assert tight == math.inf or tight == pytest.approx(expect, abs=ATOL)


def test_kernel_refiner_accepts_lists(rng):
    x, y = _pair(rng)
    refine = ldtw_refiner(list(x), 5)
    assert refine(list(y)) == pytest.approx(ldtw_distance(x, y, 5), abs=ATOL)


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------


def test_kernel_registry_default_and_listing():
    assert DEFAULT_BACKEND == "vectorized"
    assert get_kernel() is get_kernel("vectorized")
    names = available_backends()
    assert names[0] == DEFAULT_BACKEND
    assert "scalar" in names


def test_kernel_registry_unknown_backend():
    with pytest.raises(ValueError, match="unknown DTW backend"):
        get_kernel("cuda")
    with pytest.raises(ValueError, match="unknown DTW backend"):
        ldtw_distance([0.0, 1.0], [0.0, 1.0], 1, backend="nope")


def test_kernel_registry_register_and_overwrite():
    class DummyKernel(DTWKernel):
        name = "dummy-test"

        def prepare(self, x, k, *, manhattan=False):
            return lambda y, bound_cost=math.inf: 0.0

    try:
        register_kernel(DummyKernel())
        assert get_kernel("dummy-test").cost(
            np.zeros(3), np.zeros(3), 1) == 0.0
        with pytest.raises(ValueError, match="already registered"):
            register_kernel(DummyKernel())
        register_kernel(DummyKernel(), overwrite=True)
    finally:
        _REGISTRY.pop("dummy-test", None)


def test_kernel_registry_rejects_abstract_name():
    with pytest.raises(ValueError, match="concrete name"):
        register_kernel(DTWKernel())


def test_kernel_default_cost_batch_loops_refiner(rng):
    """The base-class batch path (prepared-refiner loop) is exact."""

    class LoopKernel(DTWKernel):
        name = "loop-test"
        prepare = type(SCALAR).prepare

    x = np.cumsum(rng.normal(size=N))
    candidates = np.cumsum(rng.normal(size=(8, N)), axis=1)
    got = LoopKernel().cost_batch(x, candidates, 5)
    expect = SCALAR.cost_batch(x, candidates, 5)
    np.testing.assert_allclose(got, expect, atol=ATOL)
