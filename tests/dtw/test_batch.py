"""Tests for the vectorised batch DTW against the scalar reference."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.dtw.distance import ldtw_distance, ldtw_distance_batch

finite = st.floats(min_value=-50, max_value=50, allow_nan=False)


class TestBatchMatchesScalar:
    @pytest.mark.parametrize("k", [0, 1, 4, 12, 63])
    def test_random_walks(self, rng, k):
        q = np.cumsum(rng.normal(size=64))
        cand = np.cumsum(rng.normal(size=(25, 64)), axis=1)
        batch = ldtw_distance_batch(q, cand, k)
        scalar = np.array([ldtw_distance(q, cand[i], k) for i in range(25)])
        assert np.allclose(batch, scalar)

    def test_manhattan(self, rng):
        q = rng.normal(size=32)
        cand = rng.normal(size=(10, 32))
        batch = ldtw_distance_batch(q, cand, 3, metric="manhattan")
        scalar = np.array(
            [ldtw_distance(q, cand[i], 3, metric="manhattan") for i in range(10)]
        )
        assert np.allclose(batch, scalar)

    def test_single_candidate(self, rng):
        q = rng.normal(size=16)
        c = rng.normal(size=(1, 16))
        assert ldtw_distance_batch(q, c, 2)[0] == pytest.approx(
            ldtw_distance(q, c[0], 2)
        )

    def test_self_in_batch_is_zero(self, rng):
        q = rng.normal(size=20)
        cand = np.vstack([rng.normal(size=20), q, rng.normal(size=20)])
        batch = ldtw_distance_batch(q, cand, 2)
        assert batch[1] == pytest.approx(0.0)

    def test_empty_batch(self, rng):
        out = ldtw_distance_batch(rng.normal(size=8), np.zeros((0, 8)), 2)
        assert out.shape == (0,)

    def test_validation(self, rng):
        q = rng.normal(size=8)
        with pytest.raises(ValueError, match="shape"):
            ldtw_distance_batch(q, np.zeros((3, 9)), 2)
        with pytest.raises(ValueError, match=">= 0"):
            ldtw_distance_batch(q, np.zeros((3, 8)), -1)
        with pytest.raises(ValueError, match="metric"):
            ldtw_distance_batch(q, np.zeros((3, 8)), 1, metric="lp")

    def test_no_finite_leakage_from_buffer_reuse(self, rng):
        """Alternating near/far candidates exercise the buffer borders."""
        q = np.zeros(30)
        near = np.zeros((5, 30))
        far = np.full((5, 30), 100.0)
        cand = np.empty((10, 30))
        cand[0::2] = near
        cand[1::2] = far
        batch = ldtw_distance_batch(q, cand, 3)
        scalar = np.array([ldtw_distance(q, cand[i], 3) for i in range(10)])
        assert np.allclose(batch, scalar)


@settings(max_examples=40, deadline=None)
@given(
    arrays(np.float64, 20, elements=finite),
    arrays(np.float64, (7, 20), elements=finite),
    st.integers(0, 20),
)
def test_property_batch_equals_scalar(q, cand, k):
    batch = ldtw_distance_batch(q, cand, k)
    for i in range(cand.shape[0]):
        expected = ldtw_distance(q, cand[i], k)
        if math.isinf(expected):
            assert math.isinf(batch[i])
        else:
            assert batch[i] == pytest.approx(expected, abs=1e-6)
