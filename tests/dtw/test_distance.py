"""Unit tests for repro.dtw.distance."""

import math

import numpy as np
import pytest

from repro.dtw.distance import dtw_distance, ldtw_distance, utw_distance, warping_distance


class TestDtwDistance:
    def test_identical_series_zero(self, rng):
        x = rng.normal(size=20)
        assert dtw_distance(x, x) == 0.0

    def test_known_small_example(self):
        # x=[0,0,1], y=[0,1]: optimal path aligns 0-0, 0-0, 1-1 -> 0
        assert dtw_distance([0.0, 0.0, 1.0], [0.0, 1.0]) == 0.0

    def test_known_nonzero_example(self):
        # No warping can fix a level difference.
        assert dtw_distance([0.0, 0.0], [1.0, 1.0]) == pytest.approx(math.sqrt(2))

    def test_symmetry(self, rng):
        x = rng.normal(size=15)
        y = rng.normal(size=23)
        assert dtw_distance(x, y) == pytest.approx(dtw_distance(y, x))

    def test_at_most_euclidean_for_equal_lengths(self, rng):
        x = rng.normal(size=30)
        y = rng.normal(size=30)
        assert dtw_distance(x, y) <= float(np.linalg.norm(x - y)) + 1e-9

    def test_warping_absorbs_time_shift(self, rng):
        base = np.repeat(rng.normal(size=8), 4)
        shifted = np.roll(base, 2)
        shifted[:2] = base[0]
        assert dtw_distance(base, shifted) < np.linalg.norm(base - shifted)

    def test_upper_bound_prunes(self, rng):
        x = rng.normal(size=20)
        y = x + 10.0
        assert dtw_distance(x, y, upper_bound=1.0) == math.inf

    def test_upper_bound_no_effect_when_below(self, rng):
        x = rng.normal(size=20)
        y = rng.normal(size=20)
        d = dtw_distance(x, y)
        assert dtw_distance(x, y, upper_bound=d + 1.0) == pytest.approx(d)

    def test_different_lengths_supported(self):
        # The middle 2 must align with 1 or 3, costing exactly 1.
        assert dtw_distance([1.0, 2.0, 3.0], [1.0, 3.0]) == pytest.approx(1.0)


class TestLdtwDistance:
    def test_k_zero_equal_lengths_is_euclidean(self, rng):
        x = rng.normal(size=25)
        y = rng.normal(size=25)
        assert ldtw_distance(x, y, 0) == pytest.approx(float(np.linalg.norm(x - y)))

    def test_k_zero_unequal_lengths_infinite(self):
        assert ldtw_distance([1.0, 2.0], [1.0, 2.0, 3.0], 0) == math.inf

    def test_band_too_narrow_for_length_gap(self):
        assert ldtw_distance([1.0] * 10, [1.0] * 20, 5) == math.inf

    def test_monotone_decreasing_in_k(self, rng):
        x = rng.normal(size=30)
        y = rng.normal(size=30)
        dists = [ldtw_distance(x, y, k) for k in (0, 1, 2, 5, 10, 29)]
        assert all(a >= b - 1e-9 for a, b in zip(dists, dists[1:]))

    def test_wide_band_equals_unconstrained(self, rng):
        x = rng.normal(size=20)
        y = rng.normal(size=20)
        assert ldtw_distance(x, y, 20) == pytest.approx(dtw_distance(x, y))

    def test_matches_full_matrix_dp(self, rng):
        """Cross-check the rolling-array DP against the matrix DP."""
        from repro.dtw.path import cost_matrix

        for _ in range(5):
            x = rng.normal(size=12)
            y = rng.normal(size=14)
            k = 4
            acc = cost_matrix(x, y, k)
            expected = math.sqrt(acc[-1, -1])
            assert ldtw_distance(x, y, k) == pytest.approx(expected)

    def test_rejects_negative_k(self):
        with pytest.raises(ValueError, match=">= 0"):
            ldtw_distance([1.0], [1.0], -1)

    def test_upper_bound_early_abandon(self, rng):
        x = rng.normal(size=30)
        y = x + 100.0
        assert ldtw_distance(x, y, 3, upper_bound=1.0) == math.inf

    def test_triangle_like_sanity(self, rng):
        """DTW is not a metric, but distance to self via warp is 0."""
        x = rng.normal(size=10)
        assert ldtw_distance(x, x, 2) == 0.0


class TestUtwDistance:
    def test_upsampled_copy_is_zero(self, rng):
        x = rng.normal(size=10)
        slow = np.repeat(x, 3)
        assert utw_distance(x, slow) == pytest.approx(0.0)

    def test_equal_lengths_is_scaled_euclidean(self, rng):
        x = rng.normal(size=12)
        y = rng.normal(size=12)
        expected = float(np.linalg.norm(x - y)) / math.sqrt(12)
        assert utw_distance(x, y) == pytest.approx(expected)

    def test_symmetry(self, rng):
        x = rng.normal(size=6)
        y = rng.normal(size=9)
        assert utw_distance(x, y) == pytest.approx(utw_distance(y, x))

    def test_normalisation_independent_of_stretch(self, rng):
        """Lemma 1: stretching both series equally leaves UTW unchanged."""
        x = rng.normal(size=5)
        y = rng.normal(size=5)
        assert utw_distance(np.repeat(x, 2), np.repeat(y, 2)) == pytest.approx(
            utw_distance(x, y)
        )


class TestWarpingDistance:
    def test_tempo_and_shift_invariant_pipeline(self, rng):
        """Definition 5 applied after normalisation: a slowed copy of a
        tune is near-zero distance from the original."""
        tune = np.repeat(rng.normal(size=16), 4)
        slow = np.repeat(tune, 2)
        d = warping_distance(tune, slow, delta=0.05, normal_length=128)
        assert d == pytest.approx(0.0, abs=1e-9)

    def test_larger_delta_never_increases(self, rng):
        x = np.cumsum(rng.normal(size=100))
        y = np.cumsum(rng.normal(size=80))
        d1 = warping_distance(x, y, delta=0.02, normal_length=128)
        d2 = warping_distance(x, y, delta=0.2, normal_length=128)
        assert d2 <= d1 + 1e-9

    def test_zero_delta_is_utw_euclidean(self, rng):
        x = rng.normal(size=64)
        y = rng.normal(size=64)
        d = warping_distance(x, y, delta=0.0, normal_length=64)
        assert d == pytest.approx(float(np.linalg.norm(x - y)))

    def test_upper_bound_passthrough(self, rng):
        x = rng.normal(size=64)
        y = x + 50.0
        assert warping_distance(x, y, delta=0.1, upper_bound=1.0) == math.inf
