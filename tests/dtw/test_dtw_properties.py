"""Property-based tests for the DTW engine."""

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.dtw.distance import dtw_distance, ldtw_distance, utw_distance
from repro.dtw.path import is_valid_path, path_cost, warping_path

finite = st.floats(min_value=-50, max_value=50, allow_nan=False)


def series(min_len=1, max_len=16):
    return st.integers(min_len, max_len).flatmap(
        lambda n: arrays(np.float64, n, elements=finite)
    )


@given(series())
def test_self_distance_zero(x):
    assert dtw_distance(x, x) == 0.0


@given(series(), series())
def test_symmetry(x, y):
    assert dtw_distance(x, y) == dtw_distance(y, x)


@given(series(2, 12), series(2, 12))
def test_dtw_at_most_ldtw(x, y):
    for k in (1, 3, 6):
        d_local = ldtw_distance(x, y, k)
        if math.isfinite(d_local):
            assert dtw_distance(x, y) <= d_local + 1e-6


@given(series(2, 12), series(2, 12), st.integers(0, 12))
def test_nonnegative(x, y, k):
    d = ldtw_distance(x, y, k)
    assert d >= 0.0 or math.isinf(d)


@settings(max_examples=40)
@given(series(2, 10), series(2, 10))
def test_optimal_path_cost_is_the_distance(x, y):
    path = warping_path(x, y)
    assert is_valid_path(path, len(x), len(y))
    assert abs(path_cost(x, y, path) - dtw_distance(x, y)) < 1e-6


@settings(max_examples=40)
@given(series(2, 10), series(2, 10), st.data())
def test_no_alignment_beats_the_optimum(x, y, data):
    """Any random admissible path costs at least the DTW distance."""
    # Build a random monotone path from (0,0) to (n-1, m-1).
    i, j = 0, 0
    path = [(0, 0)]
    while (i, j) != (len(x) - 1, len(y) - 1):
        moves = []
        if i < len(x) - 1:
            moves.append((i + 1, j))
        if j < len(y) - 1:
            moves.append((i, j + 1))
        if i < len(x) - 1 and j < len(y) - 1:
            moves.append((i + 1, j + 1))
        i, j = data.draw(st.sampled_from(moves))
        path.append((i, j))
    assert path_cost(x, y, path) >= dtw_distance(x, y) - 1e-6


@given(series(1, 8), st.integers(1, 4))
def test_utw_zero_for_upsampled(x, w):
    assert utw_distance(x, np.repeat(x, w)) < 1e-9


@given(series(1, 8), series(1, 8))
def test_utw_symmetric(x, y):
    assert abs(utw_distance(x, y) - utw_distance(y, x)) < 1e-9


@given(series(2, 16), series(2, 16))
def test_ldtw_band_monotonicity(x, y):
    prev = math.inf
    for k in range(0, 16, 3):
        d = ldtw_distance(x, y, k)
        assert d <= prev + 1e-9
        if math.isfinite(d):
            prev = d
