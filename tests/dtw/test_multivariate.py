"""Tests for multivariate DTW (the paper's video-processing hint)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.dtw.distance import ldtw_distance
from repro.dtw.multivariate import (
    lb_keogh_multivariate,
    lb_paa_multivariate,
    mdtw_distance,
    multivariate_envelope,
)

finite = st.floats(min_value=-20, max_value=20, allow_nan=False)


def trajectory(rng, length=40, dims=3):
    return np.cumsum(rng.normal(size=(length, dims)), axis=0)


class TestMdtwDistance:
    def test_self_distance_zero(self, rng):
        x = trajectory(rng)
        assert mdtw_distance(x, x) == 0.0

    def test_symmetry(self, rng):
        x = trajectory(rng, 20)
        y = trajectory(rng, 25)
        assert mdtw_distance(x, y) == pytest.approx(mdtw_distance(y, x))

    def test_one_dimension_matches_scalar_engine(self, rng):
        x = rng.normal(size=30)
        y = rng.normal(size=30)
        multi = mdtw_distance(x[:, None], y[:, None], k=4)
        scalar = ldtw_distance(x, y, 4)
        assert multi == pytest.approx(scalar)

    def test_band_too_narrow(self, rng):
        assert mdtw_distance(trajectory(rng, 10), trajectory(rng, 30),
                             k=5) == math.inf

    def test_at_most_pointwise_for_equal_lengths(self, rng):
        x = trajectory(rng, 25)
        y = trajectory(rng, 25)
        pointwise = float(np.sqrt(np.sum((x - y) ** 2)))
        assert mdtw_distance(x, y) <= pointwise + 1e-9

    def test_warping_absorbs_time_shift(self, rng):
        base = np.repeat(trajectory(rng, 10), 3, axis=0)
        shifted = np.roll(base, 3, axis=0)
        shifted[:3] = base[0]
        pointwise = float(np.sqrt(np.sum((base - shifted) ** 2)))
        assert mdtw_distance(base, shifted) < pointwise

    def test_upper_bound_abandons(self, rng):
        x = trajectory(rng, 20)
        assert mdtw_distance(x, x + 100.0, upper_bound=1.0) == math.inf

    def test_validation(self, rng):
        with pytest.raises(ValueError, match="shape"):
            mdtw_distance(np.zeros(5), np.zeros((5, 2)))
        with pytest.raises(ValueError, match="dimensionality"):
            mdtw_distance(np.zeros((5, 2)), np.zeros((5, 3)))
        with pytest.raises(ValueError, match="finite"):
            mdtw_distance(np.full((3, 2), np.nan), np.zeros((3, 2)))


class TestMultivariateEnvelope:
    def test_one_envelope_per_dimension(self, rng):
        seq = trajectory(rng, 30, dims=4)
        envs = multivariate_envelope(seq, 3)
        assert len(envs) == 4
        for d, env in enumerate(envs):
            assert env.contains(seq[:, d])

    def test_contains_banded_warps(self, rng):
        """Any admissible alignment partner stays inside the bands."""
        seq = trajectory(rng, 30, dims=2)
        k = 4
        envs = multivariate_envelope(seq, k)
        for shift in (-k, -1, 2, k):
            rolled = np.roll(seq, shift, axis=0)
            # Interior samples (away from the roll wrap) must fit.
            inner = slice(abs(shift), 30 - abs(shift))
            for d, env in enumerate(envs):
                track = rolled[inner, d]
                assert np.all(track >= env.lower[inner] - 1e-9)
                assert np.all(track <= env.upper[inner] + 1e-9)


class TestLowerBounds:
    def test_lb_keogh_sound(self, rng):
        for _ in range(15):
            x = trajectory(rng, 32, dims=3)
            y = trajectory(rng, 32, dims=3)
            k = 4
            envs = multivariate_envelope(y, k)
            lb = lb_keogh_multivariate(x, envs)
            assert lb <= mdtw_distance(x, y, k) + 1e-9

    def test_lb_paa_sound_and_below_keogh(self, rng):
        for _ in range(15):
            x = trajectory(rng, 32, dims=2)
            y = trajectory(rng, 32, dims=2)
            k = 4
            envs = multivariate_envelope(y, k)
            lb_full = lb_keogh_multivariate(x, envs)
            lb_paa = lb_paa_multivariate(x, envs, 8)
            assert lb_paa <= lb_full + 1e-9
            assert lb_paa <= mdtw_distance(x, y, k) + 1e-9

    def test_zero_for_contained(self, rng):
        x = trajectory(rng, 24, dims=2)
        envs = multivariate_envelope(x, 3)
        assert lb_keogh_multivariate(x, envs) == 0.0
        assert lb_paa_multivariate(x, envs, 6) == pytest.approx(0.0, abs=1e-9)

    def test_validation(self, rng):
        x = trajectory(rng, 20, dims=2)
        envs = multivariate_envelope(trajectory(rng, 20, dims=3), 2)
        with pytest.raises(ValueError, match="dims"):
            lb_keogh_multivariate(x, envs)


@settings(max_examples=40, deadline=None)
@given(
    arrays(np.float64, (12, 2), elements=finite),
    arrays(np.float64, (12, 2), elements=finite),
    st.integers(0, 6),
)
def test_property_multivariate_bounds_sound(x, y, k):
    envs = multivariate_envelope(y, k)
    d = mdtw_distance(x, y, k)
    assert lb_keogh_multivariate(x, envs) <= d + 1e-6
    assert lb_paa_multivariate(x, envs, 4) <= d + 1e-6
