"""Regression tests for early-abandoning DTW.

The contract the filter cascade's refinement phase relies on:

* ``upper_bound >= true distance``  →  never abandons, returns the
  exact distance (row minima never exceed the final cost, so a bound
  at or above the answer cannot fire).
* ``upper_bound <  true distance``  →  returns ``inf`` (abandoned) or
  the exact distance — **never** a corrupted finite value.
* Abandonment is sound: a returned ``inf`` implies the true distance
  really exceeds the bound ("never abandons below the true
  best-so-far").
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.dtw.distance import dtw_distance, ldtw_distance

N_PAIRS = 50
LENGTH = 64
BAND = 6


def _pairs(seed=1234):
    rng = np.random.default_rng(seed)
    for _ in range(N_PAIRS):
        x = np.cumsum(rng.normal(size=LENGTH))
        y = np.cumsum(rng.normal(size=LENGTH))
        yield x, y


@pytest.mark.parametrize("metric", ["euclidean", "manhattan"])
class TestLdtwEarlyAbandon:
    def test_bound_at_distance_is_never_a_wrong_finite_value(self, metric):
        """At exact equality the euclidean bound is squared internally,
        so an ulp of rounding may abandon — but a finite return must
        still be the exact distance (this is why the engine prunes
        with a small guard band rather than at strict equality)."""
        for x, y in _pairs():
            d = ldtw_distance(x, y, BAND, metric=metric)
            got = ldtw_distance(x, y, BAND, upper_bound=d, metric=metric)
            assert math.isinf(got) or got == pytest.approx(d, abs=1e-12)

    def test_bound_with_guard_band_never_abandons(self, metric):
        for x, y in _pairs():
            d = ldtw_distance(x, y, BAND, metric=metric)
            got = ldtw_distance(x, y, BAND, upper_bound=d + 1e-9,
                                metric=metric)
            assert got == pytest.approx(d, abs=1e-12)

    def test_bound_above_distance_returns_exact(self, metric):
        for x, y in _pairs():
            d = ldtw_distance(x, y, BAND, metric=metric)
            for slack in (1e-9, 0.5, 10.0, math.inf):
                got = ldtw_distance(
                    x, y, BAND, upper_bound=d + slack, metric=metric
                )
                assert got == pytest.approx(d, abs=1e-12)

    def test_bound_below_distance_is_inf_or_exact(self, metric):
        """A tight bound may or may not abandon, but can never yield a
        wrong finite distance."""
        abandoned = 0
        for x, y in _pairs():
            d = ldtw_distance(x, y, BAND, metric=metric)
            for fraction in (0.25, 0.5, 0.9, 0.999):
                got = ldtw_distance(
                    x, y, BAND, upper_bound=fraction * d, metric=metric
                )
                if math.isinf(got):
                    abandoned += 1
                else:
                    assert got == pytest.approx(d, abs=1e-12)
        # The mechanism must actually fire on these 200 cases.
        assert abandoned > 0

    def test_abandonment_is_sound_across_cutoff_grid(self, metric):
        """inf is only ever returned when the true distance exceeds
        the cutoff — abandoning never loses a qualifying candidate."""
        for x, y in _pairs(seed=77):
            d = ldtw_distance(x, y, BAND, metric=metric)
            for cutoff in np.linspace(0.0, 1.5 * d, 7):
                got = ldtw_distance(
                    x, y, BAND, upper_bound=cutoff, metric=metric
                )
                if math.isinf(got):
                    assert d > cutoff
                else:
                    assert got == pytest.approx(d, abs=1e-12)

    def test_zero_bound_on_identical_series(self, metric):
        x = np.sin(np.linspace(0, 6, LENGTH))
        got = ldtw_distance(x, x.copy(), BAND, upper_bound=0.0,
                            metric=metric)
        assert got == 0.0


@pytest.mark.parametrize("metric", ["euclidean", "manhattan"])
class TestDtwEarlyAbandon:
    """Same contract for the unconstrained dtw_distance wrapper."""

    def test_bound_at_and_above_distance_is_exact(self, metric):
        for x, y in _pairs(seed=5):
            d = dtw_distance(x, y, metric=metric)
            assert dtw_distance(
                x, y, upper_bound=d, metric=metric
            ) == pytest.approx(d, abs=1e-12)
            assert dtw_distance(
                x, y, upper_bound=2 * d + 1, metric=metric
            ) == pytest.approx(d, abs=1e-12)

    def test_bound_below_distance_is_inf_or_exact(self, metric):
        for x, y in _pairs(seed=6):
            d = dtw_distance(x, y, metric=metric)
            got = dtw_distance(x, y, upper_bound=0.5 * d, metric=metric)
            assert math.isinf(got) or got == pytest.approx(d, abs=1e-12)


class TestEngineRefinementUsesSoundAbandoning:
    """End to end: engine k-NN distances survive independent
    recomputation even though refinement abandons aggressively."""

    def test_knn_distances_are_exact(self):
        from repro.engine import QueryEngine

        rng = np.random.default_rng(321)
        corpus = np.cumsum(rng.normal(size=(120, LENGTH)), axis=1)
        query = corpus[11] + 0.3 * rng.normal(size=LENGTH)
        engine = QueryEngine(corpus, band=BAND)
        results, stats = engine.knn(query, 8)
        assert stats.dtw_abandoned >= 0
        for row, dist in results:
            plain = ldtw_distance(query, corpus[int(row)], BAND)
            assert dist == pytest.approx(plain, abs=1e-9)
