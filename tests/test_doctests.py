"""Run the doctests embedded in module docstrings."""

import doctest

import pytest

import repro.core.series
import repro.music.theory

MODULES_WITH_DOCTESTS = [
    repro.core.series,
    repro.music.theory,
]


@pytest.mark.parametrize(
    "module", MODULES_WITH_DOCTESTS, ids=lambda m: m.__name__
)
def test_module_doctests(module):
    result = doctest.testmod(module, verbose=False)
    assert result.attempted > 0, f"{module.__name__} has no doctests to run"
    assert result.failed == 0
