"""Unit tests for the autocorrelation pitch tracker."""

import numpy as np
import pytest

from repro.hum.pitch_tracking import PitchTrack, track_pitch
from repro.hum.synthesis import synthesize_pitch_series
from repro.music.melody import midi_to_hz


def tone(pitch, seconds=0.5, sample_rate=8000):
    t = np.arange(int(seconds * sample_rate)) / sample_rate
    return 0.5 * np.sin(2 * np.pi * midi_to_hz(pitch) * t)


class TestTrackPitch:
    @pytest.mark.parametrize("pitch", [50.0, 60.0, 69.0, 70.0])
    def test_pure_tone_recovered(self, pitch):
        """Tones inside the humming band (80-500 Hz) track accurately."""
        track = track_pitch(tone(pitch))
        voiced = track.pitch_series()
        assert voiced.size > 10
        assert np.median(voiced) == pytest.approx(pitch, abs=0.1)

    def test_silence_unvoiced(self):
        track = track_pitch(np.zeros(8000))
        assert track.voiced_fraction == 0.0
        assert track.pitch_series().size == 0

    def test_noise_mostly_unvoiced(self, rng):
        track = track_pitch(0.2 * rng.normal(size=8000))
        assert track.voiced_fraction < 0.3

    def test_tone_with_silence_gap(self):
        wave = np.concatenate([tone(60, 0.3), np.zeros(2400), tone(64, 0.3)])
        track = track_pitch(wave)
        voiced = track.pitch_series()
        assert (np.abs(voiced - 60) < 0.3).any()
        assert (np.abs(voiced - 64) < 0.3).any()
        assert track.voiced_fraction < 1.0

    def test_synthesized_hum_roundtrip(self):
        contour = np.concatenate([np.full(40, 62.0), np.full(40, 65.0)])
        wave = synthesize_pitch_series(contour, noise_level=0.005)
        voiced = track_pitch(wave).pitch_series()
        half = voiced.size // 2
        assert np.median(voiced[: half - 3]) == pytest.approx(62.0, abs=0.5)
        assert np.median(voiced[half + 3 :]) == pytest.approx(65.0, abs=0.5)

    def test_reported_pitches_stay_in_band(self):
        """Whatever the input, voiced output lies within the configured
        pitch band (out-of-band tones may alias to subharmonics — a
        documented autocorrelation limitation — but never escape it)."""
        from repro.music.melody import hz_to_midi

        for midi in (45.0, 60.0, 85.0, 100.0):
            track = track_pitch(tone(midi), fmin=80.0, fmax=500.0)
            voiced = track.pitch_series()
            if voiced.size:
                assert voiced.min() >= hz_to_midi(80.0 * 0.9) - 0.1
                assert voiced.max() <= hz_to_midi(500.0 * 1.1) + 0.1

    def test_frame_rate_derived(self):
        track = track_pitch(tone(60), frame_ms=10)
        assert track.frame_rate == 100

    def test_validation(self):
        with pytest.raises(ValueError, match="non-empty"):
            track_pitch([])
        with pytest.raises(ValueError, match="fmin"):
            track_pitch(tone(60), fmin=500, fmax=100)

    def test_median_filter_removes_blips(self):
        """A single octave blip in an otherwise stable tone is smoothed."""
        wave = tone(60, 0.5)
        track_filtered = track_pitch(wave, median_width=5)
        track_raw = track_pitch(wave, median_width=1)
        assert track_filtered.pitch_series().std() <= track_raw.pitch_series().std() + 1e-9


class TestPitchTrack:
    def test_len(self):
        track = PitchTrack(
            pitches=np.array([60.0, np.nan]), voiced=np.array([True, False]),
            frame_rate=100,
        )
        assert len(track) == 2
        assert track.voiced_fraction == 0.5

    def test_pitch_series_copies(self):
        track = PitchTrack(
            pitches=np.array([60.0]), voiced=np.array([True]), frame_rate=100
        )
        out = track.pitch_series()
        out[0] = 0.0
        assert track.pitches[0] == 60.0
