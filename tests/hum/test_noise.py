"""Tests for acoustic noise models and tracker robustness under noise."""

import numpy as np
import pytest

from repro.hum.noise import add_noise, babble_noise, mains_hum, snr_db, white_noise
from repro.hum.pitch_tracking import track_pitch
from repro.music.melody import midi_to_hz


def tone(pitch, seconds=0.5, sample_rate=8000, amp=0.5):
    t = np.arange(int(seconds * sample_rate)) / sample_rate
    return amp * np.sin(2 * np.pi * midi_to_hz(pitch) * t)


class TestGenerators:
    def test_unit_rms(self, rng):
        for noise in (
            white_noise(8000, rng),
            mains_hum(8000),
            babble_noise(8000, rng),
        ):
            assert np.sqrt(np.mean(noise**2)) == pytest.approx(1.0, rel=0.05)

    def test_mains_hum_spectrum(self):
        wave = mains_hum(8000, frequency=50.0)
        spectrum = np.abs(np.fft.rfft(wave))
        freqs = np.fft.rfftfreq(wave.size, d=1 / 8000)
        peak = freqs[np.argmax(spectrum)]
        assert peak == pytest.approx(50.0, abs=1.5)

    def test_babble_energy_in_voice_band(self, rng):
        wave = babble_noise(16000, rng)
        spectrum = np.abs(np.fft.rfft(wave)) ** 2
        freqs = np.fft.rfftfreq(wave.size, d=1 / 8000)
        voice_band = spectrum[(freqs > 80) & (freqs < 400)].sum()
        assert voice_band / spectrum.sum() > 0.8

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            white_noise(0, rng)
        with pytest.raises(ValueError):
            babble_noise(100, rng, n_voices=0)


class TestMixing:
    def test_requested_snr_achieved(self, rng):
        signal = tone(60)
        noise = white_noise(signal.size, rng)
        for target in (20.0, 6.0, 0.0):
            noisy = add_noise(signal, noise, snr_db_target=target)
            measured = snr_db(signal, noisy - signal)
            assert measured == pytest.approx(target, abs=0.1)

    def test_shape_mismatch(self, rng):
        with pytest.raises(ValueError, match="shapes differ"):
            add_noise(tone(60), white_noise(10, rng), snr_db_target=10)

    def test_silent_signal_rejected(self, rng):
        with pytest.raises(ValueError, match="positive power"):
            add_noise(np.zeros(100), white_noise(100, rng), snr_db_target=10)


class TestTrackerRobustness:
    @pytest.mark.parametrize("snr", [20.0, 10.0])
    def test_white_noise(self, rng, snr):
        signal = tone(62)
        noisy = add_noise(signal, white_noise(signal.size, rng),
                          snr_db_target=snr)
        voiced = track_pitch(noisy).pitch_series()
        assert voiced.size > 10
        assert np.median(voiced) == pytest.approx(62.0, abs=0.3)

    def test_mains_hum_at_10db(self, rng):
        """50 Hz hum sits below fmin and must not derail tracking."""
        signal = tone(64)
        noisy = add_noise(signal, mains_hum(signal.size),
                          snr_db_target=10.0)
        voiced = track_pitch(noisy).pitch_series()
        assert np.median(voiced) == pytest.approx(64.0, abs=0.3)

    def test_babble_is_harder_than_white(self, rng):
        """Voice-band babble must hurt more than white noise at the
        same SNR — confirming the generators stress what they claim."""
        signal = tone(60)

        def tracking_error(noise):
            noisy = add_noise(signal, noise, snr_db_target=3.0)
            voiced = track_pitch(noisy).pitch_series()
            if voiced.size == 0:
                return np.inf
            return float(np.mean(np.abs(voiced - 60.0)))

        white_err = tracking_error(white_noise(signal.size, rng))
        babble_err = tracking_error(babble_noise(signal.size, rng))
        assert babble_err >= white_err
