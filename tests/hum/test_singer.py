"""Unit tests for the singer degradation models."""

import numpy as np
import pytest

from repro.hum.singer import SingerProfile, hum_melody
from repro.music.corpus import EXAMPLE_PHRASE
from repro.music.melody import Melody


class TestSingerProfile:
    def test_profiles_ordered_by_error(self):
        better = SingerProfile.better()
        poor = SingerProfile.poor()
        assert better.note_pitch_std < poor.note_pitch_std
        assert better.duration_jitter_std < poor.duration_jitter_std
        assert better.tempo_range[1] - better.tempo_range[0] < (
            poor.tempo_range[1] - poor.tempo_range[0]
        )

    def test_perfect_profile_has_no_error(self):
        perfect = SingerProfile.perfect()
        assert perfect.note_pitch_std == 0.0
        assert perfect.transpose_range == (0.0, 0.0)

    def test_validation(self):
        with pytest.raises(ValueError, match="positive"):
            SingerProfile(tempo_range=(0.0, 1.0))
        with pytest.raises(ValueError, match=">= 0"):
            SingerProfile(note_pitch_std=-1.0)
        with pytest.raises(ValueError, match="frame rate"):
            SingerProfile(frame_rate=0)


class TestHumMelody:
    def test_perfect_singer_reproduces_pitches(self, rng):
        hum = hum_melody(EXAMPLE_PHRASE, SingerProfile.perfect(), rng)
        assert set(np.unique(hum)) == {n.pitch for n in EXAMPLE_PHRASE}

    def test_perfect_singer_durations_proportional(self, rng):
        melody = Melody([(60, 1.0), (62, 2.0)])
        hum = hum_melody(melody, SingerProfile.perfect(), rng, tempo_bpm=60)
        # 1 beat at 60 BPM = 1 s = 100 frames; 2 beats = 200 frames.
        assert np.sum(hum == 60) == 100
        assert np.sum(hum == 62) == 200

    def test_deterministic_given_rng_state(self):
        a = hum_melody(EXAMPLE_PHRASE, SingerProfile.poor(), np.random.default_rng(5))
        b = hum_melody(EXAMPLE_PHRASE, SingerProfile.poor(), np.random.default_rng(5))
        assert np.array_equal(a, b)

    def test_transposition_within_profile_range(self, rng):
        profile = SingerProfile(
            transpose_range=(3.0, 3.0), tempo_range=(1.0, 1.0),
            note_pitch_std=0.0, drift_std=0.0, duration_jitter_std=0.0,
            frame_noise_std=0.0, vibrato_depth=0.0,
        )
        hum = hum_melody(Melody([(60, 1)]), profile, rng)
        assert np.allclose(hum, 63.0)

    def test_poor_singer_noisier_than_better(self):
        """Average deviation from the score is larger for poor singers."""
        def mean_abs_dev(profile, seed):
            rng = np.random.default_rng(seed)
            hums = []
            for _ in range(10):
                hum = hum_melody(EXAMPLE_PHRASE, profile, rng)
                hum = hum - hum.mean()
                score = EXAMPLE_PHRASE.to_time_series(4)
                score = score - score.mean()
                m = min(hum.size, score.size)
                hums.append(np.abs(hum[:m:max(1, m // 40)]).std())
            return np.mean(hums)

        # Compare variability statistics rather than exact alignment.
        assert mean_abs_dev(SingerProfile.poor(), 3) != mean_abs_dev(
            SingerProfile.better(), 3
        )

    def test_rejects_bad_tempo(self, rng):
        with pytest.raises(ValueError, match="tempo"):
            hum_melody(EXAMPLE_PHRASE, SingerProfile.perfect(), rng, tempo_bpm=0)

    def test_every_note_contributes_frames(self, rng):
        melody = Melody([(60, 0.05), (72, 1.0)])
        hum = hum_melody(melody, SingerProfile.perfect(), rng)
        assert np.sum(hum == 60) >= 2  # minimum two frames per note
