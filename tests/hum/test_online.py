"""Tests for the streaming pitch tracker."""

import numpy as np
import pytest

from repro.hum.online import OnlinePitchTracker
from repro.hum.pitch_tracking import track_pitch
from repro.hum.synthesis import synthesize_pitch_series
from repro.music.melody import midi_to_hz


def tone(pitch, seconds=0.5, sample_rate=8000):
    t = np.arange(int(seconds * sample_rate)) / sample_rate
    return 0.5 * np.sin(2 * np.pi * midi_to_hz(pitch) * t)


class TestFeeding:
    def test_pure_tone_tracked(self):
        tracker = OnlinePitchTracker()
        frames = tracker.feed(tone(60))
        voiced = [f for f in frames if np.isfinite(f)]
        assert voiced
        assert np.median(voiced) == pytest.approx(60.0, abs=0.1)

    def test_chunk_size_does_not_matter(self, rng):
        wave = tone(64, 0.4)
        whole = OnlinePitchTracker()
        whole.feed(wave)
        chunked = OnlinePitchTracker()
        start = 0
        while start < wave.size:
            step = int(rng.integers(1, 700))
            chunked.feed(wave[start : start + step])
            start += step
        assert whole.frames_emitted == chunked.frames_emitted
        assert np.allclose(whole.pitches(), chunked.pitches(),
                           equal_nan=True)

    def test_empty_chunks_ok(self):
        tracker = OnlinePitchTracker()
        assert tracker.feed([]) == []
        tracker.feed(tone(60, 0.1))
        assert tracker.feed([]) == []

    def test_silence_is_unvoiced(self):
        tracker = OnlinePitchTracker()
        frames = tracker.feed(np.zeros(8000))
        assert frames
        assert all(np.isnan(f) for f in frames)

    def test_matches_offline_tracker_frame_count(self):
        wave = tone(62, 0.5)
        online = OnlinePitchTracker(median_width=1)
        online.feed(wave)
        offline = track_pitch(wave, median_width=1)
        assert online.frames_emitted == len(offline)

    def test_matches_offline_tracker_values(self):
        wave = tone(58, 0.5)
        online = OnlinePitchTracker(median_width=1)
        online.feed(wave)
        offline = track_pitch(wave, median_width=1)
        assert np.allclose(online.pitches(), offline.pitches,
                           equal_nan=True, atol=1e-9)

    def test_rejects_2d(self):
        with pytest.raises(ValueError, match="1-D"):
            OnlinePitchTracker().feed(np.zeros((2, 2)))


class TestLifecycle:
    def test_reset(self):
        tracker = OnlinePitchTracker()
        tracker.feed(tone(60, 0.2))
        assert tracker.frames_emitted > 0
        tracker.reset()
        assert tracker.frames_emitted == 0
        assert tracker.pitch_series().size == 0

    def test_pitch_series_drops_unvoiced(self):
        tracker = OnlinePitchTracker()
        tracker.feed(np.concatenate([tone(60, 0.2), np.zeros(1600)]))
        assert tracker.pitch_series().size < tracker.frames_emitted

    def test_validation(self):
        with pytest.raises(ValueError, match="fmin"):
            OnlinePitchTracker(fmin=500, fmax=100)
        with pytest.raises(ValueError, match="median"):
            OnlinePitchTracker(median_width=0)


class TestEndToEndQuery:
    def test_streamed_hum_queries_database(self):
        """Feed synthesized hum audio chunk by chunk, then query."""
        from repro.hum.singer import SingerProfile, hum_melody
        from repro.music.corpus import generate_corpus, segment_corpus
        from repro.qbh.system import QueryByHummingSystem

        melodies = segment_corpus(generate_corpus(8, seed=44), per_song=10)
        system = QueryByHummingSystem(melodies, delta=0.1)
        rng = np.random.default_rng(4)
        target = 31
        sung = hum_melody(melodies[target], SingerProfile.better(), rng)
        wave = synthesize_pitch_series(sung, rng=rng)

        tracker = OnlinePitchTracker()
        for start in range(0, wave.size, 1024):  # simulated audio callbacks
            tracker.feed(wave[start : start + 1024])
        rank = system.rank_of(tracker.pitch_series(), target)
        assert rank <= 3
