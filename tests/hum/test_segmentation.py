"""Unit tests for note segmentation."""

import numpy as np
import pytest

from repro.hum.segmentation import segment_notes


def contour(*blocks):
    """Build a pitch contour from (pitch, n_frames) blocks; None = gap."""
    parts = []
    for pitch, frames in blocks:
        value = np.nan if pitch is None else float(pitch)
        parts.append(np.full(frames, value))
    return np.concatenate(parts)


class TestSegmentNotes:
    def test_gap_separated_notes(self):
        pitches = contour((60, 30), (None, 10), (64, 30))
        melody = segment_notes(pitches)
        assert melody.pitches().tolist() == [60, 64]

    def test_pitch_jump_splits(self):
        pitches = contour((60, 30), (65, 30))
        melody = segment_notes(pitches)
        assert len(melody) == 2
        assert melody.pitches().tolist() == [60, 65]

    def test_small_wobble_does_not_split(self, rng):
        base = np.full(60, 62.0) + 0.15 * rng.normal(size=60)
        melody = segment_notes(base)
        assert len(melody) == 1

    def test_durations_proportional(self):
        pitches = contour((60, 50), (67, 100))
        melody = segment_notes(pitches, frame_rate=100, beat_seconds=0.5)
        assert melody.durations()[1] == pytest.approx(
            2 * melody.durations()[0]
        )

    def test_short_fragments_dropped(self):
        pitches = contour((60, 30), (None, 5), (72, 2), (None, 5), (64, 30))
        melody = segment_notes(pitches, min_note_frames=4)
        assert 72 not in melody.pitches()

    def test_median_pitch_used(self, rng):
        noisy = np.full(40, 60.0)
        noisy[3] = 60.4  # outlier inside a note
        melody = segment_notes(noisy)
        assert melody.pitches()[0] == pytest.approx(60.0, abs=0.05)

    def test_all_unvoiced_raises(self):
        with pytest.raises(ValueError, match="no notes"):
            segment_notes(np.full(50, np.nan))

    def test_validation(self):
        with pytest.raises(ValueError, match="non-empty"):
            segment_notes([])
        with pytest.raises(ValueError, match=">= 1"):
            segment_notes([60.0] * 10, min_note_frames=0)

    def test_three_note_scale(self):
        pitches = contour((60, 40), (62, 40), (64, 40))
        melody = segment_notes(pitches)
        assert melody.pitches().tolist() == [60, 62, 64]

    def test_vibrato_tolerated(self):
        t = np.arange(80)
        wobble = 62.0 + 0.3 * np.sin(2 * np.pi * t / 18.0)
        melody = segment_notes(wobble)
        assert len(melody) == 1
