"""Unit tests for hum audio synthesis."""

import numpy as np
import pytest

from repro.hum.synthesis import synthesize_melody, synthesize_pitch_series
from repro.music.melody import Melody, midi_to_hz


class TestSynthesizePitchSeries:
    def test_output_length(self):
        wave = synthesize_pitch_series(np.full(50, 60.0), frame_rate=100,
                                       sample_rate=8000)
        assert wave.size == 50 * 80

    def test_amplitude_bounded(self):
        wave = synthesize_pitch_series(np.full(20, 72.0), amplitude=1.0)
        assert np.all(np.abs(wave) <= 1.0)

    def test_dominant_frequency_matches_pitch(self):
        pitch = 69.0  # A4 = 440 Hz
        wave = synthesize_pitch_series(np.full(100, pitch), noise_level=0.0)
        spectrum = np.abs(np.fft.rfft(wave))
        freqs = np.fft.rfftfreq(wave.size, d=1 / 8000)
        peak = freqs[np.argmax(spectrum)]
        assert peak == pytest.approx(midi_to_hz(pitch), rel=0.02)

    def test_nan_frames_are_silent(self):
        contour = np.concatenate([np.full(20, 60.0), np.full(20, np.nan)])
        wave = synthesize_pitch_series(contour, noise_level=0.0)
        silent_part = wave[wave.size // 2 + 400 :]
        assert np.max(np.abs(silent_part)) < 0.05

    def test_validation(self):
        with pytest.raises(ValueError, match="non-empty"):
            synthesize_pitch_series([])
        with pytest.raises(ValueError, match="amplitude"):
            synthesize_pitch_series([60.0], amplitude=0.0)
        with pytest.raises(ValueError, match="8x"):
            synthesize_pitch_series([60.0], sample_rate=400)

    def test_deterministic_with_rng(self):
        a = synthesize_pitch_series(np.full(10, 60.0),
                                    rng=np.random.default_rng(1))
        b = synthesize_pitch_series(np.full(10, 60.0),
                                    rng=np.random.default_rng(1))
        assert np.array_equal(a, b)


class TestSynthesizeMelody:
    def test_length_scales_with_tempo(self):
        melody = Melody([(60, 2.0)])
        fast = synthesize_melody(melody, tempo_bpm=120)
        slow = synthesize_melody(melody, tempo_bpm=60)
        assert slow.size == pytest.approx(2 * fast.size, rel=0.05)

    def test_gaps_inserted(self):
        melody = Melody([(60, 1.0), (62, 1.0)])
        wave = synthesize_melody(melody, tempo_bpm=60, gap_fraction=0.3,
                                 noise_level=0.0)
        # RMS over 10ms windows: some windows must be near-silent.
        frames = wave[: wave.size // 80 * 80].reshape(-1, 80)
        rms = np.sqrt((frames**2).mean(axis=1))
        assert (rms < 0.01).any()
        assert (rms > 0.1).any()

    def test_validation(self):
        melody = Melody([(60, 1.0)])
        with pytest.raises(ValueError, match="tempo"):
            synthesize_melody(melody, tempo_bpm=0)
        with pytest.raises(ValueError, match="gap"):
            synthesize_melody(melody, gap_fraction=1.0)
