"""The hum error model: named, seeded, severity-scaled scenarios."""

import numpy as np
import pytest

from repro.hum.degrade import (
    DEFAULT_SEVERITIES,
    SCENARIOS,
    degrade,
    scenario_names,
)


@pytest.fixture
def clean():
    rng = np.random.default_rng(11)
    # A plausible hummed pitch series: piecewise-constant notes.
    notes = rng.integers(55, 79, size=12)
    return np.repeat(notes, 8).astype(np.float64)


class TestRegistry:
    def test_all_required_scenarios_named(self):
        assert set(scenario_names()) >= {
            "transposition", "tempo", "note_drop", "note_split", "jitter",
        }

    def test_registry_keys_match_scenario_names(self):
        for name, scenario in SCENARIOS.items():
            assert scenario.name == name
            assert scenario.description

    def test_default_severities_are_a_ladder(self):
        assert len(DEFAULT_SEVERITIES) >= 3
        assert list(DEFAULT_SEVERITIES) == sorted(DEFAULT_SEVERITIES)
        assert all(0.0 < s <= 1.0 for s in DEFAULT_SEVERITIES)

    def test_unknown_scenario_raises(self, clean):
        with pytest.raises(ValueError, match="unknown scenario"):
            degrade(clean, "autotune", 0.5, seed=0)

    @pytest.mark.parametrize("severity", [-0.1, 1.5])
    def test_severity_out_of_range_raises(self, clean, severity):
        with pytest.raises(ValueError):
            degrade(clean, "jitter", severity, seed=0)


class TestDegradation:
    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_severity_zero_is_identity(self, clean, name):
        out = degrade(clean, name, 0.0, seed=3)
        np.testing.assert_array_equal(out, clean)

    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_same_seed_same_output(self, clean, name):
        a = degrade(clean, name, 0.7, seed=5)
        b = degrade(clean, name, 0.7, seed=5)
        np.testing.assert_array_equal(a, b)

    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_full_severity_changes_the_series(self, clean, name):
        out = degrade(clean, name, 1.0, seed=5)
        changed = (out.shape != clean.shape
                   or not np.array_equal(out, clean))
        assert changed, f"{name} at severity 1.0 was a no-op"

    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_output_never_shares_memory_with_input(self, clean, name):
        for severity in (0.0, 0.5):
            out = degrade(clean, name, severity, seed=2)
            assert not np.shares_memory(out, clean)

    def test_tempo_changes_length(self, clean):
        out = degrade(clean, "tempo", 1.0, seed=4)
        assert out.size != clean.size

    def test_note_drop_shortens(self, clean):
        out = degrade(clean, "note_drop", 1.0, seed=4)
        assert out.size < clean.size

    def test_transposition_shifts_pitch(self, clean):
        out = degrade(clean, "transposition", 1.0, seed=4)
        assert out.size == clean.size
        assert abs(np.mean(out - clean)) > 1.0

    def test_jitter_preserves_length(self, clean):
        out = degrade(clean, "jitter", 1.0, seed=4)
        assert out.size == clean.size

    def test_rng_and_seed_are_exclusive(self, clean):
        rng = np.random.default_rng(1)
        with pytest.raises(ValueError):
            degrade(clean, "jitter", 0.5, seed=1, rng=rng)
