"""Property-based tests for the humming substrate."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hum.noise import add_noise, snr_db, white_noise
from repro.hum.segmentation import segment_notes
from repro.hum.singer import SingerProfile, hum_melody
from repro.music.melody import Melody

pitches = st.floats(min_value=45, max_value=75, allow_nan=False)
durations = st.floats(min_value=0.25, max_value=2.0, allow_nan=False)
note_lists = st.lists(st.tuples(pitches, durations), min_size=2, max_size=15)


@settings(max_examples=30, deadline=None)
@given(note_lists, st.integers(0, 2**31 - 1))
def test_perfect_singer_frames_cover_all_notes(notes, seed):
    melody = Melody(notes)
    rng = np.random.default_rng(seed)
    hum = hum_melody(melody, SingerProfile.perfect(), rng)
    sung_pitches = set(np.unique(hum).tolist())
    assert sung_pitches == {float(n.pitch) for n in melody}


@settings(max_examples=30, deadline=None)
@given(note_lists, st.integers(0, 2**31 - 1))
def test_better_singer_stays_in_register(notes, seed):
    """Register centering bounds the sung range: the melody's median
    note lands in the register, so every sung pitch stays within the
    register stretched by the melody's own span (plus error slack)."""
    melody = Melody(notes)
    rng = np.random.default_rng(seed)
    profile = SingerProfile.better()
    hum = hum_melody(melody, profile, rng)
    lo, hi = profile.voice_register
    span = float(melody.pitches().max() - melody.pitches().min())
    slack = 3.0
    assert hum.min() >= lo - span - slack
    assert hum.max() <= hi + span + slack


@settings(max_examples=25, deadline=None)
@given(note_lists, st.integers(0, 2**31 - 1))
def test_segmentation_never_invents_many_notes_for_perfect_hums(notes, seed):
    melody = Melody(notes)
    rng = np.random.default_rng(seed)
    hum = hum_melody(melody, SingerProfile.perfect(), rng)
    segmented = segment_notes(hum)
    # Adjacent equal-pitch notes merge; tiny notes may vanish — but a
    # clean hum must never explode into fragments.
    assert len(segmented) <= len(melody)


@settings(max_examples=25, deadline=None)
@given(st.floats(-5, 30, allow_nan=False), st.integers(0, 2**31 - 1))
def test_add_noise_hits_requested_snr(target, seed):
    rng = np.random.default_rng(seed)
    t = np.arange(4000) / 8000.0
    signal = 0.5 * np.sin(2 * np.pi * 200 * t)
    noise = white_noise(signal.size, rng)
    noisy = add_noise(signal, noise, snr_db_target=target)
    assert snr_db(signal, noisy - signal) == np.float64(target).item() \
        or abs(snr_db(signal, noisy - signal) - target) < 0.2
