"""Cross-shard parity suite: 1 vs N shards, byte-identical, every path.

The acceptance bar for the shard tier is the serving layer's, one
level down: partitioning must never change what the engine computes.
This suite drives the combinations that could disagree —
``dtw_backend`` (vectorized/scalar) x request kind (range/knn) x
serving path (serial / ``*_many``) x shard count — through the
``repro perf replay`` harness with ``atol=0.0``: the recorded
single-engine answer and every sharded replay must match to the last
float bit, order included.
"""

import numpy as np
import pytest

from repro.datasets.generators import random_walks
from repro.engine import QueryEngine
from repro.perf import replay_workload
from repro.serve.loadgen import result_digest
from repro.shard import ShardRouter

BACKENDS = ("vectorized", "scalar")
SHARD_COUNTS = (1, 2, 3)


@pytest.fixture(scope="module")
def corpus():
    return random_walks(36, 48, seed=91)


@pytest.fixture(scope="module")
def queries(corpus):
    rng = np.random.default_rng(92)
    return [corpus[i * 3] + 0.12 * rng.normal(size=corpus.shape[1])
            for i in range(5)]


def _engine(corpus, backend):
    return QueryEngine(list(corpus), delta=0.1, dtw_backend=backend)


def _records(engine, queries):
    """Ground-truth workload records, as the capture path would emit."""
    records = []
    for i, query in enumerate(queries):
        for kind, param in (("knn", 4), ("range", 5.0)):
            if kind == "range":
                got, _ = engine.range_search(query, param)
                params = {"epsilon": param}
            else:
                got, _ = engine.knn(query, param)
                params = {"k": param}
            records.append({
                "schema": 1, "query_id": f"q{i}-{kind}", "kind": kind,
                "params": params,
                "query": [float(v) for v in query],
                "results": [[item, float(dist)] for item, dist in got],
            })
    return records


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("shards", SHARD_COUNTS)
def test_replay_parity_exact(corpus, queries, backend, shards):
    """Recorded single-engine answers replay bit-exactly through a
    sharded fleet, serial and batched, on both kernels."""
    engine = _engine(corpus, backend)
    records = _records(engine, queries)
    routers = []

    def factory(name):
        router = ShardRouter.from_engine(_engine(corpus, name),
                                         shards=shards)
        routers.append(router)
        return router

    try:
        report = replay_workload(factory, records, backends=(backend,),
                                 modes=("serial", "many"), atol=0.0)
    finally:
        for router in routers:
            router.close()
    assert report.ok, report.summary()
    # 5 queries x 2 kinds x 2 modes on one backend.
    assert len(report.checks) == len(records) * 2


def test_digests_agree_across_shard_counts(corpus, queries):
    """The same request digests identically at every fleet width."""
    engine = _engine(corpus, None)
    digests = {}
    for shards in SHARD_COUNTS:
        with ShardRouter.from_engine(engine, shards=shards) as router:
            for i, query in enumerate(queries):
                knn, _ = router.knn(query, 5)
                rng_results, _ = router.range_search(query, 6.0)
                digests.setdefault(("knn", i), set()).add(result_digest(knn))
                digests.setdefault(("range", i), set()).add(
                    result_digest(rng_results))
    for key, seen in digests.items():
        assert len(seen) == 1, f"{key} digests diverged across shard counts"
