"""Thread-safety of the shard tier: the reviewer-found failure modes.

A :class:`ShardRouter`'s pipes carry one conversation at a time, so
the combinations the serving layer actually runs — ``shards>1`` with
``workers>1`` and/or ``dispatchers>1`` — used to interleave sends and
let one thread consume another's replies (dropped by the ``req_id``
filter, leaving the victim blocked in its gather loop forever).  These
tests pin the fix: fan-outs serialize on a router-level lock, the
manager serializes rebuilds, a threaded process never forks workers,
and garbage collection never blocks behind worker joins.
"""

import multiprocessing
import os
import threading
import time

import numpy as np
import pytest

from repro.datasets.generators import random_walks
from repro.engine import QueryEngine
from repro.index.gemini import WarpingIndex
from repro.serve import QBHService
from repro.serve.loadgen import result_digest
from repro.shard import IndexShardManager, ShardRouter, resolve_mp_context


@pytest.fixture(scope="module")
def corpus():
    return random_walks(36, 48, seed=211)


@pytest.fixture(scope="module")
def reference(corpus):
    return QueryEngine(list(corpus), delta=0.1)


@pytest.fixture(scope="module")
def queries(corpus):
    rng = np.random.default_rng(212)
    return [corpus[i % 36] + 0.1 * rng.normal(size=corpus.shape[1])
            for i in range(8)]


class TestConcurrentFanouts:
    def test_threaded_router_calls_stay_exact(self, reference, queries):
        """Many threads hammering one router: every answer must match
        the single-engine bytes and every thread must finish (the
        pre-lock failure mode was a silent reply steal + hang)."""
        want = {i: result_digest(reference.knn(q, 4)[0])
                for i, q in enumerate(queries)}
        failures = []
        with ShardRouter.from_engine(reference, shards=3) as router:
            def client(thread_idx):
                try:
                    for rep in range(3):
                        i = (thread_idx + rep) % len(queries)
                        got, _ = router.knn(queries[i], 4)
                        if result_digest(got) != want[i]:
                            failures.append((thread_idx, i, "bytes"))
                except Exception as exc:  # pragma: no cover - fail path
                    failures.append((thread_idx, None, repr(exc)))

            threads = [threading.Thread(target=client, args=(t,))
                       for t in range(6)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60.0)
            stuck = [t for t in threads if t.is_alive()]
            assert not stuck, "fan-out threads deadlocked"
        assert not failures, failures

    def test_sharded_service_with_workers_and_dispatchers(self, corpus,
                                                          reference,
                                                          queries):
        """The exact serving shape from the review: shards>1 plus
        workers>1 plus dispatchers>1, all exposed together on
        ``repro serve``."""
        want = {i: result_digest(reference.knn(q, 4)[0])
                for i, q in enumerate(queries)}
        service = QBHService.from_engine(
            reference, shards=2, workers=4, dispatchers=2,
            linger_ms=1.0, cache_size=0,
        )
        failures = []
        try:
            def client(thread_idx):
                for rep in range(4):
                    i = (thread_idx + rep) % len(queries)
                    outcome = service.knn(queries[i], 4, timeout=60.0)
                    if outcome.status != "ok":
                        failures.append((thread_idx, i, outcome.status))
                    elif result_digest(outcome.results) != want[i]:
                        failures.append((thread_idx, i, "bytes"))

            threads = [threading.Thread(target=client, args=(t,))
                       for t in range(6)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=120.0)
            assert not any(t.is_alive() for t in threads), (
                "service clients deadlocked"
            )
            assert not failures, failures
        finally:
            service.close()


class TestManagerSynchronization:
    def test_concurrent_rebuild_decisions_build_once(self, corpus):
        """Dispatcher threads racing ``router()`` after a mutation must
        converge on one fleet — never close a router out from under
        each other or build two."""
        index = WarpingIndex(list(corpus[:16]), delta=0.1)
        manager = IndexShardManager(index, shards=2)
        try:
            first = manager.router()
            epoch_before = manager.epoch
            index.insert(corpus[20], "newcomer")
            barrier = threading.Barrier(4)
            routers = []

            def dispatcher():
                barrier.wait()
                routers.append(manager.router())

            threads = [threading.Thread(target=dispatcher)
                       for _ in range(4)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60.0)
            assert len(routers) == 4
            rebuilt = {id(router) for router in routers}
            assert len(rebuilt) == 1, "concurrent rebuild built two fleets"
            router = routers[0]
            assert router is not first
            assert not router._closed
            assert first._closed
            # Epoch carried strictly forward, version consistent.
            assert manager.epoch > epoch_before
            assert manager.version() == (index.mutations, manager.epoch)
            got, _ = router.knn(index.normal_form.apply(corpus[2] + 0.05), 3)
            assert len(got) == 3
        finally:
            manager.close()


class TestStartMethodSafety:
    def test_default_prefers_fork_only_single_threaded(self, monkeypatch):
        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("platform has no fork")
        monkeypatch.setattr(threading, "active_count", lambda: 1)
        assert resolve_mp_context(None).get_start_method() == "fork"
        monkeypatch.setattr(threading, "active_count", lambda: 3)
        assert resolve_mp_context(None).get_start_method() == "spawn"

    def test_explicit_context_is_honored(self, monkeypatch):
        monkeypatch.setattr(threading, "active_count", lambda: 3)
        assert resolve_mp_context("spawn").get_start_method() == "spawn"

    def test_respawn_from_threaded_process_uses_spawn(self, reference,
                                                      monkeypatch):
        """A defaulted-``fork`` router re-decides per spawn: respawns on
        a live (threaded) service must not fork."""
        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("platform has no fork")
        monkeypatch.setattr(threading, "active_count", lambda: 1)
        router = ShardRouter.from_engine(reference, shards=2)
        try:
            assert router._mp.get_start_method() == "fork"
            assert router._spawn_context().get_start_method() == "fork"
            monkeypatch.setattr(threading, "active_count", lambda: 4)
            assert router._spawn_context().get_start_method() == "spawn"
            # An explicit context stays what the caller chose.
            router._mp_explicit = True
            assert router._spawn_context().get_start_method() == "fork"
        finally:
            router._mp_explicit = False
            router.close()


class TestGcTeardown:
    def test_del_path_never_joins_a_busy_worker(self, corpus):
        """``__del__`` must terminate-and-go, even with a worker deep in
        a request — the drain (with its 5 s joins) is reserved for
        explicit ``close()``."""
        engine = QueryEngine(list(corpus), delta=0.1)
        router = ShardRouter.from_engine(engine, shards=2)
        tmpdir = router._tmpdir
        processes = [shard.process for shard in router._shards]
        # Park worker 0 in a fat batch so it cannot see a poison pill
        # before teardown runs.
        big = [np.asarray(corpus[i % 36], dtype=np.float64)
               for i in range(64)]
        router._shards[0].conn.send(("req", 999, "knn", big, 3, None, False))
        started = time.perf_counter()
        router._shutdown(drain=False)  # what __del__ runs
        elapsed = time.perf_counter() - started
        assert elapsed < 2.0, f"gc teardown blocked for {elapsed:.1f}s"
        deadline = time.monotonic() + 10.0
        while (any(p.is_alive() for p in processes)
               and time.monotonic() < deadline):
            time.sleep(0.05)
        assert not any(p.is_alive() for p in processes)
        assert not os.path.exists(tmpdir)
