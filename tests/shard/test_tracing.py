"""Cross-process distributed tracing through the shard tier.

A sharded query's trace must read exactly like a single-process one —
``query → shard:fanout → shard:query → stage:*/refine/kernel`` — even
though the inner spans were produced in worker processes with their
own ``perf_counter`` epochs and their own span-id counters.  These
tests pin the whole contract: the merged tree is connected, worker
span ids never collide (string-prefixed by shard *and* epoch), clocks
re-anchor onto the router's timeline, a crash → respawn → retry run
tags its spans with the *respawned* worker's epoch, and an aborted
fan-out leaks no half-open spans.
"""

import numpy as np
import pytest

from repro.datasets.generators import random_walks
from repro.engine import QueryEngine
from repro.engine.errors import QueryAborted
from repro.obs import InMemorySink, Observability, Tracer
from repro.shard import ShardRouter


@pytest.fixture
def corpus():
    return random_walks(24, 40, seed=301)


@pytest.fixture
def reference(corpus):
    return QueryEngine(list(corpus), delta=0.1)


@pytest.fixture
def query(corpus):
    rng = np.random.default_rng(302)
    return corpus[3] + 0.1 * rng.normal(size=corpus.shape[1])


@pytest.fixture
def traced_router(reference):
    sink = InMemorySink()
    obs = Observability(tracer=Tracer(sink=sink))
    with ShardRouter.from_engine(reference, shards=3, obs=obs) as router:
        yield router, sink


def _query_traces(sink):
    """The fan-out traces (lifecycle instants filtered out)."""
    return [trace for trace in sink.traces
            if any(span.name == "query" for span in trace)]


def _by_name(trace, name):
    return [span for span in trace if span.name == name]


def _assert_connected(trace):
    """One root, every parent resolves, every span reachable from it."""
    ids = {span.span_id for span in trace}
    roots = [span for span in trace if span.parent_id is None]
    assert len(roots) == 1
    children = {}
    for span in trace:
        if span.parent_id is not None:
            assert span.parent_id in ids, (
                f"{span.name} has unresolved parent {span.parent_id}"
            )
            children.setdefault(span.parent_id, []).append(span.span_id)
    reached, frontier = set(), [roots[0].span_id]
    while frontier:
        span_id = frontier.pop()
        if span_id not in reached:
            reached.add(span_id)
            frontier.extend(children.get(span_id, ()))
    assert reached == ids
    return roots[0]


class TestMergedTree:
    def test_sharded_query_is_one_connected_tree(self, traced_router,
                                                 query):
        router, sink = traced_router
        router.knn(query, 5)
        traces = _query_traces(sink)
        assert len(traces) == 1
        trace = traces[0]
        root = _assert_connected(trace)
        assert root.name == "query"
        assert root.attrs["sharded"] is True
        fanouts = _by_name(trace, "shard:fanout")
        assert len(fanouts) == 1
        workers = _by_name(trace, "shard:query")
        assert len(workers) == 3
        # Each worker root hangs directly under the fan-out span and
        # is stamped with its provenance.
        for span in workers:
            assert span.parent_id == fanouts[0].span_id
            assert span.attrs["remote"] is True
            assert span.attrs["worker_epoch"] == 0
        assert {span.attrs["shard"] for span in workers} == {0, 1, 2}
        # The worker's inner taxonomy came along: every kernel span is
        # also tagged remote (the stamp applies to the whole subtree).
        kernels = _by_name(trace, "kernel")
        assert kernels
        assert all(span.attrs["remote"] is True for span in kernels)

    def test_worker_span_ids_never_collide(self, traced_router, query):
        router, sink = traced_router
        router.knn(query, 5)
        router.range_search(query, 6.0)
        for trace in _query_traces(sink):
            ids = [span.span_id for span in trace]
            assert len(ids) == len(set(ids))
            for span in _by_name(trace, "shard:query"):
                shard, epoch = span.attrs["shard"], span.attrs["worker_epoch"]
                assert str(span.span_id).startswith(f"w{shard}e{epoch}-")

    def test_worker_clocks_reanchor_inside_the_fanout_window(
            self, traced_router, query):
        """Worker spans land inside the fan-out's time window on the
        router's clock — the offset correction is one pipe hop, so a
        small slack absorbs the scheduling noise."""
        router, sink = traced_router
        router.knn(query, 5)
        trace = _query_traces(sink)[0]
        fanout = _by_name(trace, "shard:fanout")[0]
        slack = 2e-3
        for span in _by_name(trace, "shard:query"):
            assert span.start_s >= fanout.start_s - slack
            assert span.end_s <= fanout.end_s + slack

    def test_merged_stats_mirror_onto_the_root_span(self, traced_router,
                                                    query):
        router, sink = traced_router
        _, stats = router.knn(query, 5)
        root = _query_traces(sink)[0]
        (qspan,) = _by_name(root, "query")
        assert qspan.attrs["corpus_size"] == stats.corpus_size
        assert qspan.attrs["dtw_computations"] == stats.dtw_computations
        assert qspan.attrs["results"] == stats.results


class TestFaultTracing:
    def test_respawned_worker_spans_carry_the_new_epoch(
            self, traced_router, query):
        """Kill a worker, query through the respawn-and-retry path:
        the dead worker's shard answers with spans tagged by the
        *respawned* epoch, and the other shards stay at epoch 0."""
        router, sink = traced_router
        router._shards[1].conn.send(("crash", True))
        router._shards[1].process.join(timeout=10.0)
        router.knn(query, 5)
        assert router.epoch == 1
        trace = _query_traces(sink)[0]
        _assert_connected(trace)
        epochs = {span.attrs["shard"]: span.attrs["worker_epoch"]
                  for span in _by_name(trace, "shard:query")}
        assert epochs == {0: 0, 1: 1, 2: 0}

    def test_no_orphan_spans_from_the_dead_worker(self, traced_router,
                                                  query):
        """A mid-request crash means the dead worker shipped nothing;
        only the retry's spans appear, and the tree stays connected."""
        router, sink = traced_router
        router._shards[0].conn.send(("crash", False))  # die on next req
        router.knn(query, 5)
        trace = _query_traces(sink)[0]
        _assert_connected(trace)
        workers = _by_name(trace, "shard:query")
        assert len(workers) == 3                     # one per shard, no extra
        assert {span.attrs["shard"] for span in workers} == {0, 1, 2}


class TestAbortTracing:
    def test_aborted_fanout_leaks_no_half_open_spans(self, traced_router,
                                                     query):
        router, sink = traced_router
        with pytest.raises(QueryAborted):
            router.knn(query, 5, should_abort=lambda: True)
        # The abort still ships a finished (closed-span) trace: the
        # context managers unwound, so every span has an end time.
        traces = _query_traces(sink)
        assert len(traces) == 1
        for span in traces[0]:
            assert span.end_s is not None
            assert span.duration_s >= 0

    def test_stale_worker_spans_never_reach_a_later_trace(
            self, traced_router, query):
        """The workers of an abandoned fan-out finish anyway; their
        late replies (spans included) must be dropped, not grafted
        into whichever query runs next."""
        router, sink = traced_router
        with pytest.raises(QueryAborted):
            router.knn(query, 5, should_abort=lambda: True)
        router.knn(query, 5)
        fresh = _query_traces(sink)[-1]
        _assert_connected(fresh)
        fanout = _by_name(fresh, "shard:fanout")[0]
        workers = _by_name(fresh, "shard:query")
        assert len(workers) == 3
        assert all(span.parent_id == fanout.span_id for span in workers)


class TestDisabledPaths:
    def test_untraced_router_ships_no_spans(self, reference, query):
        """Metrics-only observability (no tracer): the fan-out must
        not ask workers to trace, and nothing lands in any sink."""
        obs = Observability()                        # NOOP tracer
        with ShardRouter.from_engine(reference, shards=2,
                                     obs=obs) as router:
            results, stats = router.knn(query, 5)
        assert len(results) == 5
        assert stats.corpus_size == 24

    def test_answers_match_unsharded_reference(self, traced_router,
                                               reference, query):
        """Tracing must never perturb the answer bytes."""
        router, _ = traced_router
        got, _ = router.knn(query, 5)
        want, _ = reference.knn(query, 5)
        assert [(name, pytest.approx(dist)) for name, dist in want] == got
