"""Fault injection: workers die, answers don't.

The router's failure contract — respawn from the pickled spec, retry
the in-flight request once, raise a typed :class:`ShardError` on a
second crash — is exercised here with the worker protocol's ``crash``
message (die immediately, or die on the *next* request: the
mid-request crash a load test can't schedule deterministically).  A
kill must never yield a lost or wrong answer: every outcome is either
a byte-correct result or a typed error.
"""

import dataclasses

import numpy as np
import pytest

from repro.datasets.generators import random_walks
from repro.engine import QueryEngine
from repro.serve.loadgen import result_digest
from repro.shard import ShardError, ShardRouter


@pytest.fixture
def corpus():
    return random_walks(30, 40, seed=101)


@pytest.fixture
def reference(corpus):
    return QueryEngine(list(corpus), delta=0.1)


@pytest.fixture
def query(corpus):
    rng = np.random.default_rng(102)
    return corpus[4] + 0.1 * rng.normal(size=corpus.shape[1])


def _kill_now(router, shard):
    """Crash one worker immediately and wait for it to be gone."""
    router._shards[shard].conn.send(("crash", True))
    router._shards[shard].process.join(timeout=10.0)
    assert not router._shards[shard].process.is_alive()


class TestRespawnAndRetry:
    def test_idle_kill_is_survived(self, reference, query):
        """A worker killed between requests: the next fan-out hits a
        dead pipe, respawns, retries, and answers correctly."""
        with ShardRouter.from_engine(reference, shards=3) as router:
            epoch = router.epoch
            _kill_now(router, 1)
            got, _ = router.knn(query, 5)
            assert router.epoch == epoch + 1
            want, _ = reference.knn(query, 5)
            assert result_digest(got) == result_digest(want)

    def test_mid_request_kill_is_survived(self, reference, query):
        """A worker that dies *while serving* the request: EOF at
        gather time, same respawn-and-retry, same bytes."""
        with ShardRouter.from_engine(reference, shards=3) as router:
            epoch = router.epoch
            router._shards[0].conn.send(("crash", False))  # die on next req
            got, _ = router.range_search(query, 6.0)
            assert router.epoch == epoch + 1
            want, _ = reference.range_search(query, 6.0)
            assert result_digest(got) == result_digest(want)

    def test_every_kill_bumps_the_epoch(self, reference, query):
        with ShardRouter.from_engine(reference, shards=2) as router:
            for expected in (1, 2, 3):
                _kill_now(router, 0)
                router.knn(query, 3)
                assert router.epoch == expected

    def test_respawned_worker_keeps_serving(self, reference, query):
        """The fleet is fully healthy after a crash: later requests
        need no retries and stay byte-correct."""
        with ShardRouter.from_engine(reference, shards=3) as router:
            _kill_now(router, 2)
            router.knn(query, 3)
            epoch = router.epoch
            for k in (1, 4, 7):
                got, _ = router.knn(query, k)
                want, _ = reference.knn(query, k)
                assert result_digest(got) == result_digest(want)
            assert router.epoch == epoch  # no further respawns needed


class TestDoubleCrash:
    def test_second_crash_raises_typed_error(self, reference, query):
        """A shard whose respawn also dies must surface a ShardError —
        never hang, never return a partial answer."""
        with ShardRouter.from_engine(reference, shards=2) as router:
            shard = router._shards[0]
            # Arm the running worker to die on the next request, and
            # poison the spec so the respawned worker cannot build.
            shard.conn.send(("crash", False))
            router._shards[0].spec = dataclasses.replace(
                shard.spec, data_path=shard.spec.data_path + ".gone"
            )
            with pytest.raises(ShardError, match="twice"):
                router.knn(query, 3)

    def test_bad_query_is_rejected_before_fanout(self, reference):
        """Router-side validation: a malformed query never reaches the
        workers (the fleet stays clean for the next request)."""
        with ShardRouter.from_engine(reference, shards=2) as router:
            with pytest.raises(ValueError, match="length"):
                router.knn(np.zeros(7), 3)


class TestWorkerProtocol:
    def test_worker_error_reply_is_typed(self, reference):
        """Speaking the pipe protocol directly: a request the engine
        rejects comes back as a typed ``error`` reply (which the
        router surfaces as ShardError), never a crash or a hang."""
        with ShardRouter.from_engine(reference, shards=2) as router:
            conn = router._shards[0].conn
            query = np.zeros(router.series_length)
            conn.send(("req", 12345, "knn", [query], 0, None, False))
            reply = conn.recv()
            assert reply[:3] == ("error", 12345, "ValueError")

    def test_ping_pong(self, reference):
        with ShardRouter.from_engine(reference, shards=2) as router:
            conn = router._shards[1].conn
            conn.send(("ping", 7))
            assert conn.recv() == ("pong", 7)
