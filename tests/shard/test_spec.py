"""EngineSpec: the picklable factory-args pattern.

A live engine cannot cross a process boundary; the spec is the
construction recipe that can.  These tests pin the two halves of that
contract: the spec pickles under any start method (the ``spawn``
regression test lives here, in a real module file — ``spawn``
re-imports ``__main__``, so it cannot run from a REPL or heredoc), and
``build()`` reconstructs an engine whose answers are byte-identical to
one built directly over the same rows.
"""

import pickle

import numpy as np
import pytest

from repro.datasets.generators import random_walks
from repro.engine import QueryEngine
from repro.serve.loadgen import result_digest
from repro.shard import EngineSpec, ShardRouter
from repro.shard.spec import DEFAULT_STAGES


@pytest.fixture(scope="module")
def corpus_file(tmp_path_factory):
    data = np.ascontiguousarray(random_walks(30, 48, seed=71))
    path = tmp_path_factory.mktemp("spec") / "corpus.f64"
    data.tofile(path)
    return str(path), data


def _spec(path, data, **overrides):
    fields = dict(
        data_path=path, dtype="float64",
        rows=data.shape[0], cols=data.shape[1],
        row_start=5, row_stop=20, shard=0, band=4,
        ids=tuple(range(5, 20)),
    )
    fields.update(overrides)
    return EngineSpec(**fields)


class TestPickling:
    def test_round_trips_through_pickle(self, corpus_file):
        path, data = corpus_file
        spec = _spec(path, data, dtw_backend="scalar", refine_chunk=7)
        clone = pickle.loads(pickle.dumps(spec))
        assert clone == spec

    def test_holds_only_plain_data(self, corpus_file):
        """Every field is data, never a live object — the property that
        makes the spec safe under ``spawn``."""
        path, data = corpus_file
        spec = _spec(path, data)
        for name, value in vars(spec).items():
            if name == "stages":
                continue  # stage tuple: picklable callables, checked below
            assert isinstance(value, (str, int, tuple, type(None))), (
                f"field {name} holds non-plain value {value!r}"
            )
        pickle.dumps(spec.stages)

    def test_defaults_match_engine_defaults(self, corpus_file):
        path, data = corpus_file
        spec = _spec(path, data)
        assert spec.stages == DEFAULT_STAGES
        assert spec.batch_refine_threshold == 64


class TestBuild:
    def test_build_is_byte_identical_to_direct_engine(self, corpus_file):
        path, data = corpus_file
        spec = _spec(path, data)
        built = spec.build()
        direct = QueryEngine(data[5:20], band=4, ids=list(range(5, 20)),
                             workers=1)
        query = data[7] + 0.05
        for kind, param in (("knn", 4), ("range", 6.0)):
            got, _ = getattr(built, kind if kind == "knn" else
                             "range_search")(query, param)
            want, _ = getattr(direct, kind if kind == "knn" else
                              "range_search")(query, param)
            assert result_digest(got) == result_digest(want)

    def test_build_maps_read_only(self, corpus_file):
        path, data = corpus_file
        engine = _spec(path, data).build()
        with pytest.raises((ValueError, RuntimeError)):
            engine._data[0, 0] = 99.0


class TestSpawnContext:
    """The spawn-context regression: everything shipped to a worker
    must pickle, and a spawn-started fleet must answer correctly."""

    def test_router_serves_under_spawn(self):
        data = random_walks(24, 40, seed=72)
        reference = QueryEngine(list(data), delta=0.1)
        query = data[3] + 0.1
        with ShardRouter.from_engine(reference, shards=2,
                                     mp_context="spawn") as router:
            got, stats = router.knn(query, 3)
        want, _ = reference.knn(query, 3)
        assert result_digest(got) == result_digest(want)
        assert stats.corpus_size == len(data)
