"""Per-shard health telemetry: pings, snapshots, and the heartbeat.

The router's health probe shares the worker pipes with fan-outs (and
the lock that serializes them), so these tests exercise the whole
surface against real worker processes: RTT and RSS from the extended
pong, lifecycle fields surviving a crash → respawn, the lock-free
:meth:`health_snapshot` read, the background
:class:`ShardHealthMonitor` heartbeat, manager delegation, the
``shard.health.*`` gauges, and the serving facade's ``shards``
saturation section.
"""

import time

import numpy as np
import pytest

from repro.datasets.generators import random_walks
from repro.engine import QueryEngine
from repro.index.gemini import WarpingIndex
from repro.obs import Observability
from repro.serve import QBHService
from repro.shard import (
    IndexShardManager,
    ShardHealth,
    ShardHealthMonitor,
    ShardRouter,
    read_rss_bytes,
)


@pytest.fixture
def corpus():
    return random_walks(24, 40, seed=401)


@pytest.fixture
def reference(corpus):
    return QueryEngine(list(corpus), delta=0.1)


@pytest.fixture
def query(corpus):
    rng = np.random.default_rng(402)
    return corpus[5] + 0.1 * rng.normal(size=corpus.shape[1])


def test_read_rss_bytes_reads_this_process():
    rss = read_rss_bytes()
    assert rss is not None
    assert rss > 1_000_000          # a python process is at least a few MB


def test_read_rss_bytes_tolerates_dead_pid():
    assert read_rss_bytes(2 ** 22 + 12345) is None


class TestRouterPing:
    def test_ping_fills_rtt_rss_and_identity(self, reference):
        with ShardRouter.from_engine(reference, shards=3) as router:
            rows = router.ping(timeout_s=5.0)
        assert len(rows) == 3
        assert [row.shard for row in rows] == [0, 1, 2]
        for row in rows:
            assert isinstance(row, ShardHealth)
            assert row.alive
            assert row.epoch == 0
            assert row.respawns == 0
            assert row.ping_rtt_s is not None and row.ping_rtt_s > 0
            assert row.rss_bytes is not None and row.rss_bytes > 1_000_000
            assert row.uptime_s >= 0

    def test_ping_counts_served_requests(self, reference, query):
        with ShardRouter.from_engine(reference, shards=2) as router:
            router.knn(query, 3)
            router.knn(query, 3)
            rows = router.ping(timeout_s=5.0)
        # 2 fan-outs + the ping itself per worker
        assert all(row.requests == 2 for row in rows)
        assert all(row.last_reply_age_s is not None for row in rows)

    def test_crash_and_respawn_show_in_health(self, reference, query):
        with ShardRouter.from_engine(reference, shards=2) as router:
            router._shards[1].conn.send(("crash", True))
            router._shards[1].process.join(timeout=10.0)
            rows = {row.shard: row for row in router.health_snapshot()}
            assert rows[1].alive is False       # dead, not yet respawned
            router.knn(query, 3)                # query path respawns
            rows = {row.shard: row for row in router.ping(timeout_s=5.0)}
        assert rows[0].epoch == 0 and rows[0].respawns == 0
        assert rows[1].epoch == 1 and rows[1].respawns == 1
        assert rows[1].alive

    def test_snapshot_is_lock_free_and_cheap(self, reference):
        """health_snapshot never touches the pipes — rows come from
        serving side-effects alone (no RTT until someone pings)."""
        with ShardRouter.from_engine(reference, shards=2) as router:
            rows = router.health_snapshot()
            assert len(rows) == 2
            assert all(row.ping_rtt_s is None for row in rows)
            assert all(row.alive for row in rows)

    def test_ping_after_close_reports_dead_fleet(self, reference):
        router = ShardRouter.from_engine(reference, shards=2)
        router.close()
        rows = router.ping()
        assert all(row.alive is False for row in rows)

    def test_health_rows_are_json_ready(self, reference):
        import json

        with ShardRouter.from_engine(reference, shards=2) as router:
            rows = router.ping(timeout_s=5.0)
        for row in rows:
            doc = row.to_dict()
            assert doc["shard"] == row.shard
            json.dumps(doc)


class TestHealthGauges:
    def test_ping_records_labelled_gauges(self, reference):
        obs = Observability()
        with ShardRouter.from_engine(reference, shards=2,
                                     obs=obs) as router:
            router.ping(timeout_s=5.0)
        gauges = obs.metrics.snapshot()["gauges"]
        for shard in (0, 1):
            assert gauges[f"shard.health.alive{{shard={shard}}}"] == 1
            assert gauges[f"shard.health.epoch{{shard={shard}}}"] == 0
            assert gauges[f"shard.health.rss_bytes{{shard={shard}}}"] > 0
            assert gauges[
                f"shard.health.ping_rtt_seconds{{shard={shard}}}"] > 0

    def test_respawn_overwrites_stale_gauges(self, reference, query):
        """A respawned worker's gauges replace its predecessor's — the
        old epoch must not linger as a parallel labelled row."""
        obs = Observability()
        with ShardRouter.from_engine(reference, shards=2,
                                     obs=obs) as router:
            router.ping(timeout_s=5.0)           # epoch-0 gauges exist
            router._shards[1].conn.send(("crash", True))
            router._shards[1].process.join(timeout=10.0)
            router.knn(query, 3)                 # query path respawns
            router.ping(timeout_s=5.0)
        gauges = obs.metrics.snapshot()["gauges"]
        epoch_rows = sorted(name for name in gauges
                            if name.startswith("shard.health.epoch"))
        # One row per shard — the label is the shard id, never the
        # epoch, so the dead worker cannot leave a stale series.
        assert epoch_rows == ["shard.health.epoch{shard=0}",
                              "shard.health.epoch{shard=1}"]
        assert gauges["shard.health.epoch{shard=0}"] == 0
        assert gauges["shard.health.epoch{shard=1}"] == 1
        assert gauges["shard.health.alive{shard=1}"] == 1
        assert gauges["shard.health.respawns{shard=1}"] == 1


class TestMonitor:
    def test_heartbeat_beats_and_keeps_the_latest(self, reference):
        with ShardRouter.from_engine(reference, shards=2) as router:
            monitor = ShardHealthMonitor(router, interval_s=0.05,
                                         ping_timeout_s=5.0)
            try:
                monitor.start()
                deadline = time.monotonic() + 10.0
                while monitor.beats < 2 and time.monotonic() < deadline:
                    time.sleep(0.02)
            finally:
                monitor.close()
            assert monitor.beats >= 2
            assert {row.shard for row in monitor.latest} == {0, 1}

    def test_monitor_survives_a_closed_source(self, reference):
        router = ShardRouter.from_engine(reference, shards=2)
        router.close()
        monitor = ShardHealthMonitor(router, interval_s=0.05)
        monitor.start()
        try:
            assert monitor.beat_once() is not None   # never raises
        finally:
            monitor.close()


class TestManagerDelegation:
    @pytest.fixture
    def manager(self, corpus):
        index = WarpingIndex(list(corpus), delta=0.1)
        manager = IndexShardManager(index, shards=2)
        yield manager
        manager.close()

    def test_manager_before_first_build_is_empty(self, manager):
        assert manager.health_snapshot() == []
        assert manager.ping() == []

    def test_manager_delegates_to_current_router(self, manager, query):
        manager.router()                 # force the first build
        rows = manager.ping(timeout_s=5.0)
        assert {row.shard for row in rows} == {0, 1}
        assert all(row.alive for row in rows)
        assert len(manager.health_snapshot()) == 2


class TestServiceHealth:
    def test_saturation_reports_shard_rows_when_owned(self, reference,
                                                      query):
        service = QBHService.from_engine(reference, shards=2,
                                         linger_ms=0.0)
        try:
            assert service.knn(query, 3).ok
            snapshot = service.saturation()
        finally:
            service.close()
        rows = snapshot["shards"]
        assert {row["shard"] for row in rows} == {0, 1}
        assert all(row["alive"] for row in rows)

    def test_respawned_worker_does_not_leave_stale_row(self, reference,
                                                       query):
        """saturation()['shards'] after a crash → respawn holds exactly
        one row per shard, at the new epoch — no old-epoch leftovers."""
        service = QBHService.from_engine(reference, shards=2,
                                         linger_ms=0.0, cache_size=0)
        try:
            assert service.knn(query, 3).ok
            router = service._owned_shards
            router._shards[1].conn.send(("crash", True))
            router._shards[1].process.join(timeout=10.0)
            assert service.knn(query, 3).ok      # respawns shard 1
            router.ping(timeout_s=5.0)
            rows = service.saturation()["shards"]
        finally:
            service.close()
        assert sorted(row["shard"] for row in rows) == [0, 1]
        by_shard = {row["shard"]: row for row in rows}
        assert by_shard[0]["epoch"] == 0
        assert by_shard[0]["respawns"] == 0
        assert by_shard[1]["epoch"] == 1
        assert by_shard[1]["respawns"] == 1
        assert by_shard[1]["alive"]

    def test_unsharded_service_has_no_shards_section(self, reference,
                                                     query):
        service = QBHService.from_engine(reference, linger_ms=0.0)
        try:
            assert service.knn(query, 3).ok
            assert "shards" not in service.saturation()
        finally:
            service.close()

    def test_health_interval_starts_and_stops_the_heartbeat(
            self, reference, query):
        service = QBHService.from_engine(reference, shards=2,
                                         linger_ms=0.0,
                                         health_interval_s=0.05)
        try:
            monitor = service._health_monitor
            assert monitor is not None
            deadline = time.monotonic() + 10.0
            while monitor.beats < 1 and time.monotonic() < deadline:
                time.sleep(0.02)
            assert monitor.beats >= 1
            rows = service.saturation()["shards"]
            assert any(row["ping_rtt_s"] is not None for row in rows)
        finally:
            service.close()
        assert service._health_monitor is None
