"""Tests for the sharded multi-process index tier."""
