"""The sharded service end to end: correctness under churn.

The composite cache version ``(index mutations, router epoch)`` is the
load-bearing piece: an index mutation *or* a worker respawn must
invalidate every cached answer computed before it.  The property test
at the bottom interleaves mutations, forced worker kills, and queries
under Hypothesis and checks every served answer against the *current*
index's ground truth — the exactness-critical acceptance criterion of
the shard tier.  Above it: deterministic versions of each moving part,
and a kill-under-load test where every outcome must be a byte-correct
result or a typed error, never a wrong or lost answer.
"""

import threading
import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets.generators import random_walks
from repro.engine import QueryEngine
from repro.index.gemini import WarpingIndex
from repro.serve import QBHService
from repro.serve.loadgen import (
    result_digest,
    run_load,
    service_dispatch,
    zipf_workload,
)


@pytest.fixture(scope="module")
def corpus():
    return random_walks(40, 64, seed=111)


def _current_router(service):
    """The live ShardRouter behind a sharded service (test access)."""
    owned = service._owned_shards
    return owned.router() if hasattr(owned, "router") else owned


def _kill_worker(service, shard=0):
    router = _current_router(service)
    router._shards[shard % router.n_shards].process.kill()
    router._shards[shard % router.n_shards].process.join(timeout=10.0)


class TestShardedService:
    def test_from_engine_answers_match_engine(self, corpus):
        engine = QueryEngine(list(corpus), delta=0.1)
        service = QBHService.from_engine(engine, shards=2, linger_ms=0.0)
        try:
            query = corpus[5] + 0.1
            outcome = service.knn(query, 4)
            assert outcome.status == "ok"
            want, _ = engine.knn(query, 4)
            assert result_digest(outcome.results) == result_digest(want)
        finally:
            service.close()

    def test_from_index_uses_saved_shard_default(self, corpus):
        index = WarpingIndex(list(corpus[:20]), delta=0.1, shards=2)
        service = QBHService.from_index(index, linger_ms=0.0)
        try:
            assert service._owned_shards is not None
            query = corpus[3] + 0.05
            outcome = service.knn(query, 3)
            assert outcome.status == "ok"
            truth = index.engine().ground_truth_knn(
                index.normal_form.apply(query), 3
            )
            assert [i for i, _ in outcome.results] == [i for i, _ in truth]
        finally:
            service.close()

    def test_respawn_invalidates_prior_cache_entries(self, corpus):
        """Kill -> next computed query respawns and bumps the epoch ->
        entries cached under the old epoch recompute (byte-identically,
        the corpus being unchanged)."""
        index = WarpingIndex(list(corpus[:20]), delta=0.1)
        service = QBHService.from_index(index, shards=2, linger_ms=0.0,
                                        cache_size=32)
        try:
            q_cached, q_other = corpus[2] + 0.05, corpus[7] + 0.05
            first = service.knn(q_cached, 3)
            assert not first.from_cache
            assert service.knn(q_cached, 3).from_cache
            epoch = service._owned_shards.epoch
            _kill_worker(service)
            # The crash is observed at the next actual fan-out (a cache
            # hit never touches the workers)...
            computed = service.knn(q_other, 3)
            assert computed.status == "ok" and not computed.from_cache
            assert service._owned_shards.epoch == epoch + 1
            # ...after which the pre-crash entry is stale: recomputed,
            # not served from cache, and still the same bytes.
            again = service.knn(q_cached, 3)
            assert not again.from_cache
            assert result_digest(again.results) == result_digest(
                first.results)
        finally:
            service.close()

    def test_mutation_rebuilds_the_fleet(self, corpus):
        index = WarpingIndex(list(corpus[:20]), delta=0.1)
        service = QBHService.from_index(index, shards=2, linger_ms=0.0)
        try:
            query = corpus[1] + 0.05
            assert service.knn(query, 3).status == "ok"
            index.insert(corpus[25], "newcomer")
            outcome = service.knn(query, 3)
            assert outcome.status == "ok"
            truth = index.engine().ground_truth_knn(
                index.normal_form.apply(query), 3
            )
            assert [i for i, _ in outcome.results] == [i for i, _ in truth]
        finally:
            service.close()

    def test_kill_under_load_loses_nothing(self, corpus):
        """Workers die while clients are in flight: every request
        resolves as a byte-correct result or a typed error."""
        engine = QueryEngine(list(corpus), delta=0.1)
        rng = np.random.default_rng(112)
        pool = [corpus[i % 40] + 0.1 * rng.normal(size=64) for i in range(8)]
        specs = zipf_workload(48, 8, seed=113, kinds=("knn", "range"),
                              knn_k=4, epsilon=5.0)
        truth = {}
        for spec in specs:
            if spec not in truth:
                query = pool[spec.query_index]
                if spec.kind == "range":
                    want, _ = engine.range_search(query, spec.param)
                else:
                    want, _ = engine.knn(query, spec.param)
                truth[spec] = result_digest(want)
        service = QBHService.from_engine(engine, shards=2, linger_ms=0.0,
                                         cache_size=0)
        stop = threading.Event()

        def killer():
            while not stop.is_set():
                time.sleep(0.05)
                try:
                    _kill_worker(service, shard=0)
                except Exception:
                    return  # service already closing
        thread = threading.Thread(target=killer, name="shard-killer")
        try:
            thread.start()
            report = run_load(service_dispatch(service), specs, pool,
                              clients=4)
        finally:
            stop.set()
            thread.join()
            service.close()
        assert report.completed == len(specs)
        for record in report.records:
            assert record.status in ("ok", "error"), record.status
            if record.status == "ok":
                assert record.digest == truth[record.spec], (
                    f"wrong answer under churn for {record.spec}"
                )


@pytest.fixture(scope="module")
def mutation_corpus():
    return random_walks(32, 48, seed=114)


@settings(max_examples=8, deadline=None)
@given(st.lists(
    st.tuples(st.sampled_from(["query", "insert", "remove", "kill"]),
              st.integers(min_value=0, max_value=7)),
    min_size=4, max_size=10,
))
def test_sharded_cache_never_serves_stale(mutation_corpus, ops):
    """Property: under any interleaving of index mutations, forced
    worker kills, and queries, a sharded caching service always serves
    the *current* index's ground truth — the composite
    ``(mutations, epoch)`` version leaves no stale window."""
    index = WarpingIndex(list(mutation_corpus[:16]), delta=0.1)
    service = QBHService.from_index(index, shards=2, linger_ms=0.0,
                                    cache_size=64)
    rng = np.random.default_rng(115)
    pool = [mutation_corpus[i] + 0.1 * rng.normal(size=48) for i in range(8)]
    next_insert = 16
    try:
        for op, arg in ops:
            if op == "insert" and next_insert < len(mutation_corpus):
                index.insert(mutation_corpus[next_insert], next_insert)
                next_insert += 1
            elif op == "remove" and len(index) > 5:
                index.remove(index.ids[arg % len(index)])
            elif op == "kill":
                _kill_worker(service, shard=arg)
            else:
                query = pool[arg]
                outcome = service.knn(query, 3)
                assert outcome.status == "ok"
                truth = index.engine().ground_truth_knn(
                    index.normal_form.apply(query), 3
                )
                assert [i for i, _ in outcome.results] == \
                    [i for i, _ in truth]
                np.testing.assert_allclose(
                    [d for _, d in outcome.results],
                    [d for _, d in truth], atol=1e-9,
                )
    finally:
        service.close()
