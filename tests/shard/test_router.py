"""ShardRouter: exact merging, stats re-merge, deadlines, lifecycle.

The router's whole claim is "N processes, same bytes": every result a
sharded fleet returns must be byte-identical to the single-engine
answer, and the merged :class:`CascadeStats` must read like a
partition of the single-engine counters.  Aborts and shutdown are
pinned alongside because they are the paths a load test never hits
deterministically.
"""

import numpy as np
import pytest

from repro.datasets.generators import random_walks
from repro.engine import QueryEngine
from repro.engine.errors import QueryAborted
from repro.obs.clock import monotonic_s
from repro.serve.loadgen import result_digest
from repro.shard import ShardError, ShardRouter, resolve_mp_context


@pytest.fixture(scope="module")
def corpus():
    return random_walks(40, 48, seed=81)


@pytest.fixture(scope="module")
def reference(corpus):
    return QueryEngine(list(corpus), delta=0.1)


@pytest.fixture(scope="module")
def router(corpus, reference):
    with ShardRouter.from_engine(reference, shards=3) as router:
        yield router


@pytest.fixture(scope="module")
def queries(corpus):
    rng = np.random.default_rng(82)
    return [corpus[i] + 0.1 * rng.normal(size=corpus.shape[1])
            for i in range(6)]


class TestExactMerging:
    def test_knn_byte_identical(self, router, reference, queries):
        for query in queries:
            got, _ = router.knn(query, 5)
            want, _ = reference.knn(query, 5)
            assert result_digest(got) == result_digest(want)

    def test_range_byte_identical(self, router, reference, queries):
        for query in queries:
            got, _ = router.range_search(query, 5.0)
            want, _ = reference.range_search(query, 5.0)
            assert result_digest(got) == result_digest(want)

    def test_many_byte_identical(self, router, reference, queries):
        got_all, _ = router.knn_many(queries, 4)
        want_all, _ = reference.knn_many(queries, 4)
        for got, want in zip(got_all, want_all):
            assert result_digest(got) == result_digest(want)
        got_all, _ = router.range_search_many(queries, 6.0, workers=3)
        want_all, _ = reference.range_search_many(queries, 6.0)
        for got, want in zip(got_all, want_all):
            assert result_digest(got) == result_digest(want)

    def test_single_shard_equals_engine(self, corpus, reference, queries):
        with ShardRouter.from_engine(reference, shards=1) as single:
            assert single.n_shards == 1
            got, _ = single.knn(queries[0], 5)
        want, _ = reference.knn(queries[0], 5)
        assert result_digest(got) == result_digest(want)

    def test_shards_clamped_to_rows(self, reference):
        with ShardRouter.from_engine(reference, shards=1000) as wide:
            assert wide.n_shards == len(reference)


class TestStatsMerge:
    def test_merged_stats_partition_the_corpus(self, router, reference,
                                               corpus, queries):
        got, stats = router.knn(queries[0], 5)
        _, want = reference.knn(queries[0], 5)
        assert stats.corpus_size == len(corpus)
        assert [s.name for s in stats.stages] == [s.name for s in want.stages]
        # Stage 0 sees every row exactly once across the partition.
        assert stats.stages[0].candidates_in == want.stages[0].candidates_in
        assert stats.dtw_computations >= want.dtw_computations
        # `results` counts per-shard supersets (each shard's local
        # top-k), so it is >= the merged global answer's size.
        assert stats.results >= len(got)
        assert stats.total_time_s > 0
        assert stats.cpu_time_s >= 0

    def test_wall_clock_is_fanout_not_sum(self, router, queries):
        _, stats = router.knn_many(queries, 3)
        # cpu_time_s sums per-shard work (overlapping in real time);
        # total_time_s is the single fan-out's wall clock.
        assert stats.total_time_s > 0
        assert stats.cpu_time_s > 0


class TestDeadlinesAndAborts:
    def test_lapsed_deadline_aborts_before_fanout(self, router, queries):
        with pytest.raises(QueryAborted) as exc:
            router.knn(queries[0], 3, deadline_s=monotonic_s() - 1.0)
        assert exc.value.phase == "shard:fanout"

    def test_should_abort_is_polled(self, router, queries):
        with pytest.raises(QueryAborted):
            router.knn(queries[0], 3, should_abort=lambda: True)

    def test_no_deadline_serves_normally(self, router, reference, queries):
        got, _ = router.knn(queries[0], 3,
                            deadline_s=monotonic_s() + 60.0)
        want, _ = reference.knn(queries[0], 3)
        assert result_digest(got) == result_digest(want)


class TestValidationAndLifecycle:
    def test_parameter_validation(self, router, queries, reference):
        with pytest.raises(ValueError, match="k must be"):
            router.knn(queries[0], 0)
        with pytest.raises(ValueError, match="epsilon"):
            router.range_search(queries[0], -1.0)
        with pytest.raises(ValueError, match="queries"):
            router.knn_many([], 3)
        with pytest.raises(ValueError, match="shards"):
            ShardRouter.from_engine(reference, shards=0)

    def test_resolve_mp_context(self):
        assert resolve_mp_context("spawn").get_start_method() == "spawn"
        ctx = resolve_mp_context(None)
        assert ctx.get_start_method() in ("fork", "spawn")
        assert resolve_mp_context(ctx) is ctx

    def test_close_is_idempotent_and_final(self, reference, queries):
        router = ShardRouter.from_engine(reference, shards=2)
        router.close()
        router.close()
        with pytest.raises(ShardError, match="closed"):
            router.knn(queries[0], 3)

    def test_len_and_series_length(self, router, corpus):
        assert len(router) == corpus.shape[0]
        assert router.series_length == corpus.shape[1]
