"""Public-API hygiene: __all__ lists are real, documented, importable."""

import importlib
import inspect

import pytest

MODULES = [
    "repro",
    "repro.core",
    "repro.dtw",
    "repro.index",
    "repro.music",
    "repro.hum",
    "repro.hum.degrade",
    "repro.qbh",
    "repro.qbh.quality",
    "repro.datasets",
    "repro.experiments",
    "repro.persistence",
    "repro.viz",
    "repro.cli",
    "repro.tuning",
    "repro.dtw.multivariate",
    "repro.obs",
    "repro.obs.tracing",
    "repro.obs.metrics",
    "repro.obs.observability",
    "repro.obs.analysis",
    "repro.obs.quality",
    "repro.perf",
    "repro.perf.history",
    "repro.perf.regress",
    "repro.perf.replay",
    "repro.serve",
    "repro.serve.scheduler",
    "repro.serve.admission",
    "repro.serve.cache",
    "repro.serve.service",
    "repro.serve.loadgen",
    "repro.store",
    "repro.store.corpus",
    "repro.store.manifest",
    "repro.ingest",
    "repro.ingest.builder",
    "repro.ingest.queue",
    "repro.ingest.worker",
]


@pytest.mark.parametrize("module_name", MODULES)
def test_all_names_resolve(module_name):
    module = importlib.import_module(module_name)
    assert hasattr(module, "__all__"), f"{module_name} lacks __all__"
    for name in module.__all__:
        assert hasattr(module, name), f"{module_name}.{name} missing"


@pytest.mark.parametrize("module_name", MODULES)
def test_module_docstrings(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__ and len(module.__doc__.strip()) > 20


def test_public_callables_documented():
    """Every public function/class reachable from the top level has a
    docstring — the 'doc comments on every public item' deliverable."""
    import repro

    undocumented = []
    for name in repro.__all__:
        obj = getattr(repro, name)
        if inspect.isfunction(obj) or inspect.isclass(obj):
            if not (obj.__doc__ and obj.__doc__.strip()):
                undocumented.append(name)
    assert not undocumented, f"undocumented public items: {undocumented}"


def test_public_methods_documented():
    """Public methods of the flagship classes carry docstrings."""
    from repro import (
        QueryByHummingSystem,
        RStarTree,
        SubsequenceIndex,
        WarpingIndex,
    )

    undocumented = []
    for cls in (WarpingIndex, RStarTree, QueryByHummingSystem,
                SubsequenceIndex):
        for name, member in inspect.getmembers(cls):
            if name.startswith("_") or not callable(member):
                continue
            if not (member.__doc__ and member.__doc__.strip()):
                undocumented.append(f"{cls.__name__}.{name}")
    assert not undocumented, f"undocumented methods: {undocumented}"


def test_version_string():
    import repro

    parts = repro.__version__.split(".")
    assert len(parts) == 3
    assert all(part.isdigit() for part in parts)
