"""Tests for the interactive feedback-loop session."""

import numpy as np
import pytest

from repro.hum.singer import SingerProfile, hum_melody
from repro.music.corpus import generate_corpus, segment_corpus
from repro.qbh.session import QuerySession
from repro.qbh.system import QueryByHummingSystem


@pytest.fixture(scope="module")
def system():
    melodies = segment_corpus(generate_corpus(15, seed=66), per_song=20)
    return QueryByHummingSystem(melodies, delta=0.1)


def squeezed_hum(system, target, rng, factor=0.45):
    hum = hum_melody(system.melodies[target], SingerProfile.perfect(), rng)
    return hum.mean() + (hum - hum.mean()) * factor


class TestSessionMechanics:
    def test_initially_uncalibrated(self, system):
        session = QuerySession(system)
        assert not session.calibrated
        assert session.confirmations == 0

    def test_confirm_requires_query(self, system):
        session = QuerySession(system)
        with pytest.raises(RuntimeError, match="must follow"):
            session.confirm(system.names[0])

    def test_confirm_unknown_name(self, system, rng):
        session = QuerySession(system)
        session.query(rng.normal(60, 2, size=200))
        with pytest.raises(KeyError, match="unknown melody"):
            session.confirm("no-such-melody")

    def test_profile_fits_after_min_confirmations(self, system, rng):
        session = QuerySession(system, min_confirmations=2)
        for target in (3, 41):
            session.query(squeezed_hum(system, target, rng))
            fitted = session.confirm(system.names[target])
        assert fitted
        assert session.calibrated
        assert session.profile.interval_scale < 0.7

    def test_history_capped(self, system, rng):
        session = QuerySession(system, min_confirmations=1, max_history=3)
        for target in (1, 2, 3, 4, 5):
            session.query(squeezed_hum(system, target, rng))
            session.confirm(system.names[target])
        assert session.confirmations == 3

    def test_reset_profile(self, system, rng):
        session = QuerySession(system, min_confirmations=1)
        session.query(squeezed_hum(system, 7, rng))
        session.confirm(system.names[7])
        assert session.calibrated
        session.reset_profile()
        assert not session.calibrated
        assert session.confirmations == 0

    def test_validation(self, system):
        with pytest.raises(ValueError, match="min_confirmations"):
            QuerySession(system, min_confirmations=0)
        with pytest.raises(ValueError, match="max_history"):
            QuerySession(system, min_confirmations=5, max_history=2)


class TestFeedbackLoopImprovesRetrieval:
    def test_calibration_kicks_in(self, system, rng):
        session = QuerySession(system, min_confirmations=3)

        # Three sessions of confirmations from a compressing singer.
        for target in (10, 60, 120):
            session.query(squeezed_hum(system, target, rng))
            session.confirm(system.names[target])
        assert session.calibrated

        # New queries are corrected transparently.
        hits = 0
        for target in (33, 99, 222):
            hum = squeezed_hum(system, target, rng)
            results, _ = session.query(hum, k=5)
            names = [name for name, _ in results]
            if system.names[target] in names[:1]:
                hits += 1
        assert hits >= 2

    def test_uncalibrated_baseline_worse(self, system, rng):
        """Sanity: without the feedback loop the same hums rank worse."""
        raw_top1 = 0
        for target in (33, 99, 222):
            hum = squeezed_hum(system, target, rng)
            results, _ = system.query(hum, k=5)
            if results[0][0] == system.names[target]:
                raw_top1 += 1
        assert raw_top1 <= 2
