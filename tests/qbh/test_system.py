"""Unit and integration tests for the query-by-humming system."""

import numpy as np
import pytest

from repro.hum.singer import SingerProfile, hum_melody
from repro.qbh.system import QueryByHummingSystem


@pytest.fixture(scope="module")
def system(small_corpus_module):
    return QueryByHummingSystem(small_corpus_module, delta=0.1, normal_length=128)


@pytest.fixture(scope="module")
def small_corpus_module():
    from repro.music import generate_corpus, segment_corpus

    songs = generate_corpus(10, seed=202)
    return segment_corpus(songs, per_song=20, seed=202)


class TestConstruction:
    def test_size(self, system, small_corpus_module):
        assert len(system) == len(small_corpus_module)

    def test_names(self, system):
        assert all(name for name in system.names)

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="empty"):
            QueryByHummingSystem([])

    def test_delta_exposed(self, system):
        assert system.delta == 0.1


class TestQuery:
    def test_exact_hum_hits_target(self, system, small_corpus_module):
        target = 17
        hum = small_corpus_module[target].to_time_series(8).astype(float)
        results, stats = system.query(hum, k=5)
        assert results[0][1] == pytest.approx(0.0, abs=1e-9)
        # The target (or an identical repeated melody) is rank 1.
        assert system.rank_of(hum, target) == 1

    def test_better_singer_rank1(self, system, small_corpus_module, rng):
        hits = 0
        for target in (3, 57, 111, 160):
            hum = hum_melody(small_corpus_module[target], SingerProfile.better(), rng)
            if system.rank_of(hum, target) == 1:
                hits += 1
        assert hits >= 3

    def test_transposed_and_slowed_hum_still_found(self, system, small_corpus_module):
        target = 42
        melody = small_corpus_module[target].transpose(-7).scale_tempo(1.5)
        hum = melody.to_time_series(8).astype(float)
        assert system.rank_of(hum, target) == 1

    def test_query_returns_names_and_stats(self, system, small_corpus_module, rng):
        hum = hum_melody(small_corpus_module[0], SingerProfile.better(), rng)
        results, stats = system.query(hum, k=10)
        assert len(results) == 10
        assert all(isinstance(name, str) for name, _ in results)
        assert stats.page_accesses > 0

    def test_collapse_duplicates_yields_distinct_tunes(
        self, system, small_corpus_module, rng
    ):
        from repro.music.analysis import find_duplicates

        hum = hum_melody(small_corpus_module[0], SingerProfile.better(), rng)
        plain, _ = system.query(hum, k=10)
        collapsed, _ = system.query(hum, k=10, collapse_duplicates=True)
        assert len(collapsed) == 10
        # No two collapsed results may be identical melodies.
        groups = find_duplicates(small_corpus_module)
        name_to_group = {}
        for gid, members in enumerate(groups):
            for m in members:
                name_to_group[small_corpus_module[m].name] = gid
        seen = [name_to_group.get(name, name) for name, _ in collapsed]
        assert len(seen) == len(set(seen))
        # Collapsing never worsens the best distance.
        assert collapsed[0][1] == pytest.approx(plain[0][1])

    def test_range_query(self, system, small_corpus_module):
        hum = small_corpus_module[5].to_time_series(8).astype(float)
        results, _ = system.query_range(hum, 1e-9)
        assert small_corpus_module[5].name in [name for name, _ in results]

    def test_rank_of_validates(self, system):
        with pytest.raises(ValueError, match="out of range"):
            system.rank_of(np.zeros(50), 10**6)

    def test_distances_to_all_shape(self, system, rng):
        dists = system.distances_to_all(rng.normal(60, 3, size=200))
        assert dists.shape == (len(system),)
        assert np.all(dists >= 0)


class TestAudioQuery:
    def test_query_from_synthesized_audio(self, system, small_corpus_module):
        from repro.hum.synthesis import synthesize_melody

        target = 88
        wave = synthesize_melody(small_corpus_module[target], tempo_bpm=100)
        results, _ = system.query_audio(wave, k=10)
        names = [name for name, _ in results]
        assert small_corpus_module[target].name in names

    def test_silent_audio_raises(self, system):
        with pytest.raises(ValueError, match="voiced"):
            system.query_audio(np.zeros(8000))
