"""Unit tests for rank-table evaluation."""

import pytest

from repro.qbh.evaluation import RankTable, bucket_label, format_rank_tables


class TestBucketLabel:
    @pytest.mark.parametrize(
        "rank,label",
        [(1, "1"), (2, "2-3"), (3, "2-3"), (4, "4-5"), (5, "4-5"),
         (6, "6-10"), (10, "6-10"), (11, "10-"), (500, "10-")],
    )
    def test_mapping(self, rank, label):
        assert bucket_label(rank) == label

    def test_rejects_zero(self):
        with pytest.raises(ValueError, match="1-based"):
            bucket_label(0)


class TestRankTable:
    def test_accumulates(self):
        table = RankTable(name="ts")
        for rank in (1, 1, 2, 7, 50):
            table.add(rank)
        assert table.total == 5
        assert table.top1 == 2
        assert table.counts["2-3"] == 1
        assert table.counts["6-10"] == 1
        assert table.counts["10-"] == 1

    def test_in_top(self):
        table = RankTable()
        for rank in (1, 3, 8, 12):
            table.add(rank)
        assert table.in_top(10) == 3
        assert table.in_top(1) == 1

    def test_mrr(self):
        table = RankTable()
        table.add(1)
        table.add(2)
        assert table.mean_reciprocal_rank() == pytest.approx(0.75)

    def test_mrr_empty(self):
        assert RankTable().mean_reciprocal_rank() == 0.0


class TestFormatRankTables:
    def test_layout(self):
        a = RankTable(name="Time series")
        b = RankTable(name="Contour")
        for rank in (1, 1, 2):
            a.add(rank)
        for rank in (1, 15, 20):
            b.add(rank)
        text = format_rank_tables([a, b], title="Table 2")
        lines = text.splitlines()
        assert lines[0] == "Table 2"
        assert "Time series" in lines[1]
        assert "Contour" in lines[1]
        # bucket rows present
        assert any(line.startswith("1 ") for line in lines)
        assert any(line.startswith("10-") for line in lines)
        assert any(line.startswith("MRR") for line in lines)

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="at least one"):
            format_rank_tables([])
