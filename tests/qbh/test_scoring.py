"""Tests for humming assessment (the singing tutor)."""

import numpy as np
import pytest

from repro.hum.singer import SingerProfile, hum_melody
from repro.music.corpus import EXAMPLE_PHRASE
from repro.music.melody import Melody
from repro.qbh.scoring import HummingReport, NoteAssessment, assess_humming


@pytest.fixture
def perfect_hum(rng):
    return hum_melody(EXAMPLE_PHRASE, SingerProfile.perfect(), rng)


class TestAssessHumming:
    def test_perfect_hum_grades_a(self, perfect_hum):
        report = assess_humming(perfect_hum, EXAMPLE_PHRASE)
        assert report.grade() == "A"
        assert report.mean_abs_pitch_error < 0.2
        assert report.dtw_distance < 2.0

    def test_perfect_hum_intervals_match(self, perfect_hum):
        report = assess_humming(perfect_hum, EXAMPLE_PHRASE)
        for note in report.notes:
            assert note.pitch_error == pytest.approx(0.0, abs=0.3)

    def test_transposed_hum_still_grades_a(self, rng):
        """Absolute pitch must not matter (shift invariance)."""
        hum = hum_melody(EXAMPLE_PHRASE.transpose(-7),
                         SingerProfile.perfect(), rng)
        report = assess_humming(hum, EXAMPLE_PHRASE)
        assert report.grade() == "A"

    def test_slowed_hum_still_grades_well(self, rng):
        """Global tempo must not matter (UTW invariance)."""
        hum = hum_melody(EXAMPLE_PHRASE, SingerProfile.perfect(), rng,
                         tempo_bpm=55)
        report = assess_humming(hum, EXAMPLE_PHRASE)
        assert report.grade() in ("A", "B")

    def test_flat_singer_caught(self, rng):
        """A singer who squeezes intervals gets pitch errors flagged."""
        faithful = hum_melody(EXAMPLE_PHRASE, SingerProfile.perfect(), rng)
        squeezed = faithful.mean() + (faithful - faithful.mean()) * 0.4
        report = assess_humming(squeezed, EXAMPLE_PHRASE)
        assert report.mean_abs_pitch_error > 0.8
        assert report.grade() in ("C", "D", "F")

    def test_worst_note_identified(self, rng):
        """A single badly sung note is pinpointed by index."""
        hum = hum_melody(EXAMPLE_PHRASE, SingerProfile.perfect(), rng)
        # Note 9 is the highest (pitch 64, 2 beats): flatten it badly.
        target_pitch = EXAMPLE_PHRASE.notes[9].pitch
        hum = hum.copy()
        hum[np.abs(hum - target_pitch) < 0.01] = target_pitch - 3.0
        report = assess_humming(hum, EXAMPLE_PHRASE)
        worst = report.worst_note
        assert worst is not None
        assert worst.index in (9, 10)  # notes 9 and 10 share the pitch
        assert worst.pitch_error < -1.5

    def test_poor_singer_grades_below_perfect(self, rng):
        perfect = assess_humming(
            hum_melody(EXAMPLE_PHRASE, SingerProfile.perfect(), rng),
            EXAMPLE_PHRASE,
        )
        poor = assess_humming(
            hum_melody(EXAMPLE_PHRASE, SingerProfile.poor(), rng),
            EXAMPLE_PHRASE,
        )
        order = "ABCDF"
        assert order.index(poor.grade()) >= order.index(perfect.grade())


class TestReportMechanics:
    def test_empty_report_defaults(self):
        report = HummingReport()
        assert report.grade() == "A"
        assert report.worst_note is None
        assert report.timing_consistency == 1.0

    def test_timing_consistency_range(self, rng):
        hum = hum_melody(EXAMPLE_PHRASE, SingerProfile.poor(), rng)
        report = assess_humming(hum, EXAMPLE_PHRASE)
        assert 0.0 < report.timing_consistency <= 1.0

    def test_note_assessment_fields(self):
        note = NoteAssessment(index=2, expected_interval=1.0,
                              sung_interval=0.5, pitch_error=-0.5,
                              timing_ratio=1.2)
        assert note.index == 2
        assert note.pitch_error == -0.5

    def test_two_note_melody(self, rng):
        melody = Melody([(60, 2.0), (67, 2.0)])
        hum = hum_melody(melody, SingerProfile.perfect(), rng)
        report = assess_humming(hum, melody)
        assert len(report.notes) == 2
        assert report.grade() == "A"
