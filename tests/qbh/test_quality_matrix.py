"""The scenario-matrix runner: shape, determinism, recording."""

import pytest

from repro.music.corpus import generate_corpus, segment_corpus
from repro.obs import Observability
from repro.qbh.quality import ScenarioCell, run_scenario_matrix
from repro.qbh.system import QueryByHummingSystem


@pytest.fixture(scope="module")
def system():
    melodies = segment_corpus(generate_corpus(5, seed=21), per_song=3,
                              seed=21)
    return QueryByHummingSystem(melodies, delta=0.1)


class TestRunScenarioMatrix:
    def test_matrix_covers_every_cell(self, system):
        matrix = run_scenario_matrix(
            system, scenarios=("transposition", "jitter"),
            severities=(0.25, 1.0), queries_per_cell=2, k=10, seed=1)
        assert len(matrix.cells) == 4
        assert matrix.queries == 8
        assert matrix.db_size == len(system)
        assert {(c.scenario, c.severity) for c in matrix.cells} == {
            ("transposition", 0.25), ("transposition", 1.0),
            ("jitter", 0.25), ("jitter", 1.0),
        }
        for cell in matrix.cells:
            assert cell.queries == 2
            assert len(cell.contour_ranks) == 2
            assert len(cell.latencies_s) == 2
            assert all(r >= 1 for r in cell.ranks)
            assert all(lat >= 0 for lat in cell.latencies_s)

    def test_same_seed_reproduces_ranks(self, system):
        kwargs = dict(scenarios=("jitter",), severities=(1.0,),
                      queries_per_cell=2, k=5, seed=9)
        a = run_scenario_matrix(system, **kwargs)
        b = run_scenario_matrix(system, **kwargs)
        assert a.cells[0].ranks == b.cells[0].ranks
        assert a.cells[0].contour_ranks == b.cells[0].contour_ranks

    def test_mild_degradation_keeps_recall_high(self, system):
        matrix = run_scenario_matrix(
            system, scenarios=("transposition",), severities=(0.25,),
            queries_per_cell=3, k=10, seed=2)
        (cell,) = matrix.cells
        assert cell.recall(10) >= 2 / 3

    def test_every_query_recorded_through_obs(self, system):
        obs = Observability()
        run_scenario_matrix(system, scenarios=("tempo",),
                            severities=(0.5,), queries_per_cell=2,
                            k=5, seed=3, obs=obs)
        counters = obs.metrics.snapshot()["counters"]
        assert counters[
            "quality.queries_total{scenario=tempo,severity=0.5}"] == 2

    def test_unknown_scenario_rejected(self, system):
        with pytest.raises(ValueError, match="unknown scenarios"):
            run_scenario_matrix(system, scenarios=("autotune",))

    def test_to_dict_and_table_render(self, system):
        matrix = run_scenario_matrix(
            system, scenarios=("note_drop",), severities=(0.5,),
            queries_per_cell=1, k=10, seed=4)
        doc = matrix.to_dict()
        assert doc["db_size"] == len(system)
        [cell] = doc["scenarios"]
        assert set(cell) == {
            "scenario", "severity", "queries", "recall_at_1",
            "recall_at_5", "recall_at_10", "mrr", "contour_recall_at_10",
            "p50_ms", "p95_ms",
        }
        table = matrix.format_table()
        assert "note_drop" in table
        assert "contour r@10" in table

    def test_cell_keys_match_trace_side_aggregate(self, system, tmp_path):
        """The in-process matrix and the trace-replayed matrix must
        speak the same row schema — one table, two sources."""
        import json

        from repro.obs.analysis import TraceReadStats, analyze_traces, \
            read_traces

        trace = tmp_path / "trace.jsonl"
        obs = Observability.to_files(trace_out=trace)
        matrix = run_scenario_matrix(
            system, scenarios=("jitter",), severities=(0.5,),
            queries_per_cell=2, k=10, seed=5, obs=obs)
        obs.close()
        read = TraceReadStats()
        report = analyze_traces(read_traces(trace, read), read)
        [trace_row] = [cell.to_dict() for cell in report.quality.rows()]
        [local_row] = [cell.to_dict() for cell in matrix.cells]
        assert set(trace_row) == set(local_row)
        for key in ("scenario", "severity", "queries", "recall_at_1",
                    "recall_at_10", "mrr", "contour_recall_at_10"):
            assert trace_row[key] == local_row[key]


class TestScenarioCell:
    def test_empty_cell_is_zero_not_crash(self):
        cell = ScenarioCell(scenario="jitter", severity=0.5)
        assert cell.recall(10) == 0.0
        assert cell.mrr == 0.0
        assert cell.contour_recall(10) is None
        assert cell.to_dict()["p50_ms"] is None

    def test_recall_and_mrr_math(self):
        cell = ScenarioCell(scenario="jitter", severity=0.5,
                            ranks=[1, 4, 20])
        assert cell.recall(1) == pytest.approx(1 / 3)
        assert cell.recall(5) == pytest.approx(2 / 3)
        assert cell.recall(10) == pytest.approx(2 / 3)
        assert cell.mrr == pytest.approx((1 + 0.25 + 0.05) / 3)
