"""Tests for progressive (query-while-humming) search."""

import numpy as np
import pytest

from repro.hum.singer import SingerProfile, hum_melody
from repro.music.corpus import generate_corpus, segment_corpus
from repro.qbh.progressive import ProgressiveQuery
from repro.qbh.system import QueryByHummingSystem


@pytest.fixture(scope="module")
def system():
    melodies = segment_corpus(generate_corpus(10, seed=67), per_song=15)
    return QueryByHummingSystem(melodies, delta=0.1)


@pytest.fixture
def full_hum(system, rng):
    target = 52
    return target, hum_melody(system.melodies[target],
                              SingerProfile.better(), rng)


class TestFeeding:
    def test_no_snapshot_before_min_frames(self, system, full_hum):
        _, hum = full_hum
        pq = ProgressiveQuery(system, min_frames=200)
        assert pq.feed(hum[:100]) is None
        assert pq.snapshots == []

    def test_snapshot_cadence(self, system, full_hum):
        _, hum = full_hum
        pq = ProgressiveQuery(system, min_frames=100, every=50)
        for start in range(0, 400, 25):
            pq.feed(hum[start : start + 25])
        # First snapshot at >=100 frames, then every >=50 frames.
        assert 4 <= len(pq.snapshots) <= 8
        heard = [s.frames_heard for s in pq.snapshots]
        assert heard == sorted(heard)

    def test_converges_to_target_song(self, system, full_hum):
        """A partial hum is genuinely ambiguous between overlapping
        windows of the same song, so convergence is judged at song
        granularity (names are 'songNNN#mMM')."""
        target, hum = full_hum
        pq = ProgressiveQuery(system, min_frames=100, every=50, stability=3)
        final = None
        for start in range(0, hum.size, 50):
            snap = pq.feed(hum[start : start + 50])
            if snap is not None:
                final = snap
            if pq.converged:
                break
        assert final is not None
        target_song = system.melodies[target].name.split("#")[0]
        assert final.top.split("#")[0] == target_song

    def test_full_hum_resolves_exact_melody(self, system, full_hum):
        """Once the whole hum is heard, the exact melody wins."""
        target, hum = full_hum
        pq = ProgressiveQuery(system, min_frames=100, every=50)
        pq.feed(hum)
        final = pq.finish()
        assert final.top == system.melodies[target].name

    def test_stability_counter(self, system, full_hum):
        _, hum = full_hum
        pq = ProgressiveQuery(system, min_frames=100, every=50, stability=2)
        for start in range(0, hum.size, 50):
            pq.feed(hum[start : start + 50])
        last = pq.snapshots[-1]
        assert last.stable_for >= 1
        if last.converged:
            assert last.stable_for >= 2

    def test_finish_forces_snapshot(self, system, full_hum):
        _, hum = full_hum
        pq = ProgressiveQuery(system, min_frames=10**6)  # never auto-fires
        pq.feed(hum)
        assert pq.snapshots == []
        final = pq.finish()
        assert final.frames_heard == hum.size

    def test_rejects_nan_frames(self, system):
        pq = ProgressiveQuery(system)
        with pytest.raises(ValueError, match="voiced"):
            pq.feed([60.0, np.nan])

    def test_finish_requires_audio(self, system):
        pq = ProgressiveQuery(system)
        with pytest.raises(ValueError, match="nothing hummed"):
            pq.finish()

    def test_validation(self, system):
        with pytest.raises(ValueError, match="configuration"):
            ProgressiveQuery(system, k=0)
        with pytest.raises(ValueError, match="configuration"):
            ProgressiveQuery(system, stability=0)


class TestEndToEndWithOnlineTracker:
    def test_stream_audio_to_converged_answer(self, system, rng):
        """Audio chunks -> online tracker -> progressive query."""
        from repro.hum.online import OnlinePitchTracker
        from repro.hum.synthesis import synthesize_pitch_series

        target = 31
        sung = hum_melody(system.melodies[target], SingerProfile.better(), rng)
        wave = synthesize_pitch_series(sung, rng=rng)

        tracker = OnlinePitchTracker()
        pq = ProgressiveQuery(system, min_frames=150, every=75, stability=3)
        for start in range(0, wave.size, 2048):  # simulated audio callbacks
            frames = tracker.feed(wave[start : start + 2048])
            pq.feed([f for f in frames if np.isfinite(f)])
        final = pq.finish()
        target_song = system.melodies[target].name.split("#")[0]
        assert final.top.split("#")[0] == target_song
        assert len(pq.snapshots) >= 3  # the ranking was live throughout
