"""Tests for hummer calibration (the paper's future-work feature)."""

import numpy as np
import pytest

from repro.hum.singer import SingerProfile, hum_melody
from repro.music.corpus import generate_corpus, segment_corpus
from repro.qbh.calibration import HummerProfile, fit_hummer_profile
from repro.qbh.system import QueryByHummingSystem


def compressing_singer(scale=0.5):
    """A singer who compresses every interval by *scale*."""
    return SingerProfile(
        transpose_range=(0.0, 0.0), tempo_range=(1.0, 1.0),
        note_pitch_std=0.0, drift_std=0.0, duration_jitter_std=0.0,
        frame_noise_std=0.0, vibrato_depth=0.0,
    ), scale


def hum_compressed(melody, scale, rng):
    """Render a melody with intervals shrunk by *scale*."""
    profile, _ = compressing_singer(scale)
    faithful = hum_melody(melody, profile, rng)
    return faithful.mean() + (faithful - faithful.mean()) * scale


class TestHummerProfile:
    def test_defaults_are_identity(self, rng):
        x = rng.normal(60, 3, size=100)
        assert np.allclose(HummerProfile().correct(x), x)

    def test_correct_undoes_compression(self, rng):
        x = rng.normal(60, 3, size=100)
        squeezed = x.mean() + (x - x.mean()) * 0.5
        profile = HummerProfile(interval_scale=0.5)
        assert np.allclose(profile.correct(squeezed), x, atol=1e-9)

    def test_correct_undoes_drift(self):
        base = np.full(100, 60.0)
        drifted = base + 0.02 * np.arange(100)
        profile = HummerProfile(drift_per_frame=0.02)
        out = profile.correct(drifted)
        assert np.allclose(out, out[0], atol=1e-9)

    def test_validation(self):
        with pytest.raises(ValueError, match="interval scale"):
            HummerProfile(interval_scale=0.0)
        with pytest.raises(ValueError, match="tempo ratio"):
            HummerProfile(tempo_ratio=-1.0)


class TestFitHummerProfile:
    @pytest.fixture(scope="class")
    def melodies(self):
        return segment_corpus(generate_corpus(5, seed=33), per_song=10)

    def test_recovers_interval_compression(self, melodies, rng):
        pairs = [
            (hum_compressed(melodies[i], 0.6, rng), melodies[i])
            for i in (1, 5, 9, 13)
        ]
        profile = fit_hummer_profile(pairs)
        assert profile.interval_scale == pytest.approx(0.6, abs=0.1)
        assert profile.n_samples == 4

    def test_faithful_singer_scores_near_one(self, melodies, rng):
        singer, _ = compressing_singer(1.0)
        pairs = [(hum_melody(melodies[i], singer, rng), melodies[i])
                 for i in (0, 4, 8)]
        profile = fit_hummer_profile(pairs)
        assert profile.interval_scale == pytest.approx(1.0, abs=0.05)
        assert profile.tempo_ratio == pytest.approx(1.0, abs=0.1)

    def test_recovers_tempo_ratio(self, melodies, rng):
        slow = SingerProfile(
            transpose_range=(0.0, 0.0), tempo_range=(0.5, 0.5),
            note_pitch_std=0.0, drift_std=0.0, duration_jitter_std=0.0,
            frame_noise_std=0.0, vibrato_depth=0.0,
        )
        pairs = [(hum_melody(melodies[i], slow, rng, tempo_bpm=60), melodies[i])
                 for i in (2, 6)]
        profile = fit_hummer_profile(pairs, tempo_bpm=60)
        assert profile.tempo_ratio == pytest.approx(2.0, abs=0.2)

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="at least one"):
            fit_hummer_profile([])

    def test_estimates_clamped(self, melodies, rng):
        """Degenerate pairs cannot produce a zero/negative scale."""
        flat = np.full(80, 60.0)
        profile = fit_hummer_profile([(flat, melodies[0])])
        assert 0.25 <= profile.interval_scale <= 4.0


class TestCalibrationImprovesRetrieval:
    def test_compressed_singer_ranks_better_after_calibration(self, rng):
        melodies = segment_corpus(generate_corpus(20, seed=34), per_song=20)
        system = QueryByHummingSystem(melodies, delta=0.1)

        # Confirmed pairs from a few earlier sessions.
        train_targets = [3, 47, 101, 199]
        pairs = [
            (hum_compressed(melodies[t], 0.45, rng), melodies[t])
            for t in train_targets
        ]
        profile = fit_hummer_profile(pairs)

        raw_ranks, corrected_ranks = [], []
        for target in (11, 88, 222, 305):
            hum = hum_compressed(melodies[target], 0.45, rng)
            raw_ranks.append(system.rank_of(hum, target))
            corrected_ranks.append(
                system.rank_of(profile.correct(hum), target)
            )
        assert np.mean(corrected_ranks) <= np.mean(raw_ranks)
        assert max(corrected_ranks) <= 3
