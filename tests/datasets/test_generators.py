"""Unit tests for the synthetic dataset generators."""

import numpy as np
import pytest

from repro.datasets.generators import (
    GENERATORS,
    dataset_names,
    make_dataset,
    random_walks,
)


class TestRegistry:
    def test_twenty_four_families(self):
        assert len(dataset_names()) == 24

    def test_random_walk_is_last(self):
        """Matches the paper's Figure 6 ordering (24 = random walk)."""
        assert dataset_names()[-1] == "Random_Walk"

    def test_all_generators_produce_finite_series(self, rng):
        for name, gen in GENERATORS.items():
            series = gen(128, rng)
            assert series.shape == (128,), name
            assert np.all(np.isfinite(series)), name

    def test_families_are_distinguishable(self, rng):
        """Different families have visibly different roughness."""
        def roughness(series):
            return float(np.mean(np.abs(np.diff(series)))) / (series.std() + 1e-9)

        values = {name: roughness(gen(512, rng)) for name, gen in GENERATORS.items()}
        assert max(values.values()) / (min(values.values()) + 1e-12) > 3


class TestMakeDataset:
    def test_shape(self):
        data = make_dataset("EEG", 10, 64)
        assert data.shape == (10, 64)

    def test_deterministic(self):
        a = make_dataset("Burst", 5, 32, seed=3)
        b = make_dataset("Burst", 5, 32, seed=3)
        assert np.array_equal(a, b)

    def test_seed_changes_data(self):
        a = make_dataset("Burst", 5, 32, seed=1)
        b = make_dataset("Burst", 5, 32, seed=2)
        assert not np.array_equal(a, b)

    def test_different_names_different_data(self):
        a = make_dataset("EEG", 3, 64)
        b = make_dataset("Tide", 3, 64)
        assert not np.allclose(a, b)

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown dataset"):
            make_dataset("NotADataset", 1, 16)

    def test_validation(self):
        with pytest.raises(ValueError):
            make_dataset("EEG", 0, 16)


class TestRandomWalks:
    def test_shape_and_determinism(self):
        a = random_walks(4, 100, seed=9)
        b = random_walks(4, 100, seed=9)
        assert a.shape == (4, 100)
        assert np.array_equal(a, b)

    def test_increments_are_standard_normal(self):
        walks = random_walks(50, 500, seed=0)
        increments = np.diff(walks, axis=1).ravel()
        assert abs(increments.mean()) < 0.02
        assert abs(increments.std() - 1.0) < 0.02
