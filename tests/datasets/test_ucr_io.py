"""Tests for UCR-format file IO."""

import numpy as np
import pytest

from repro.datasets.ucr_io import load_ucr_directory, read_ucr_file, write_ucr_file


class TestRoundtrip:
    def test_with_labels(self, tmp_path, rng):
        data = rng.normal(size=(5, 16))
        labels = np.array([1, 2, 1, 3, 2], dtype=float)
        path = tmp_path / "set.csv"
        write_ucr_file(path, data, labels)
        back, back_labels = read_ucr_file(path)
        assert np.allclose(back, data)
        assert np.allclose(back_labels, labels)

    def test_without_labels(self, tmp_path, rng):
        data = rng.normal(size=(3, 8))
        path = tmp_path / "plain.txt"
        write_ucr_file(path, data)
        back, labels = read_ucr_file(path, has_labels=False)
        assert np.allclose(back, data)
        assert labels is None

    def test_whitespace_separated(self, tmp_path):
        path = tmp_path / "ws.tsv"
        path.write_text("1 0.5 0.25\n2 1.5 1.25\n")
        data, labels = read_ucr_file(path)
        assert data.shape == (2, 2)
        assert labels.tolist() == [1.0, 2.0]

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "gaps.csv"
        path.write_text("1,0.5,0.25\n\n2,1.5,1.25\n\n")
        data, _ = read_ucr_file(path)
        assert data.shape == (2, 2)


class TestErrors:
    def test_ragged_rows(self, tmp_path):
        path = tmp_path / "ragged.csv"
        path.write_text("1,2,3\n1,2\n")
        with pytest.raises(ValueError, match="ragged"):
            read_ucr_file(path)

    def test_non_numeric(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("1,x,3\n")
        with pytest.raises(ValueError, match="non-numeric"):
            read_ucr_file(path)

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(ValueError, match="no series"):
            read_ucr_file(path)

    def test_label_only_line(self, tmp_path):
        path = tmp_path / "lab.csv"
        path.write_text("1\n")
        with pytest.raises(ValueError, match="no samples"):
            read_ucr_file(path)

    def test_write_validation(self, tmp_path, rng):
        with pytest.raises(ValueError, match="2-D"):
            write_ucr_file(tmp_path / "x", rng.normal(size=4))
        with pytest.raises(ValueError, match="one label"):
            write_ucr_file(tmp_path / "x", rng.normal(size=(2, 3)), [1.0])


class TestDirectory:
    def test_loads_all_files(self, tmp_path, rng):
        for name in ("alpha.csv", "beta.csv"):
            write_ucr_file(tmp_path / name, rng.normal(size=(2, 4)),
                           [1.0, 2.0])
        datasets = load_ucr_directory(tmp_path)
        assert set(datasets) == {"alpha", "beta"}
        assert datasets["alpha"].shape == (2, 4)

    def test_empty_directory(self, tmp_path):
        with pytest.raises(ValueError, match="no dataset files"):
            load_ucr_directory(tmp_path)

    def test_usable_with_fig6_pipeline(self, tmp_path, rng):
        """A user's local archive slots into the tightness experiment."""
        from repro.core.envelope import k_envelope
        from repro.core.envelope_transforms import NewPAAEnvelopeTransform
        from repro.core.lower_bounds import lb_envelope_transform

        write_ucr_file(tmp_path / "mine.csv",
                       np.cumsum(rng.normal(size=(4, 64)), axis=1),
                       [1.0, 1.0, 2.0, 2.0])
        data = load_ucr_directory(tmp_path)["mine"]
        env_t = NewPAAEnvelopeTransform(64, 8)
        lb = lb_envelope_transform(env_t, data[0], envelope=k_envelope(data[1], 3))
        assert lb >= 0.0
