"""Tests for index auto-tuning."""

import numpy as np
import pytest

from repro.datasets.generators import random_walks
from repro.tuning import TuningReport, tune_feature_count


@pytest.fixture(scope="module")
def workload():
    return (
        list(random_walks(400, 128, seed=5)),
        random_walks(5, 128, seed=6),
    )


class TestTuneFeatureCount:
    def test_report_shape(self, workload):
        database, queries = workload
        report = tune_feature_count(
            database, queries, delta=0.1, candidates_grid=(4, 8, 16)
        )
        assert [p.n_features for p in report.points] == [4, 8, 16]
        assert report.recommended in (4, 8, 16)

    def test_more_features_filter_better(self, workload):
        database, queries = workload
        report = tune_feature_count(
            database, queries, delta=0.1, candidates_grid=(4, 32)
        )
        by_n = {p.n_features: p.mean_candidates for p in report.points}
        assert by_n[32] <= by_n[4]

    def test_tolerance_prefers_small(self, workload):
        """A huge tolerance always recommends the smallest N."""
        database, queries = workload
        report = tune_feature_count(
            database, queries, delta=0.1, candidates_grid=(4, 8, 16),
            tolerance=1e9,
        )
        assert report.recommended == 4

    def test_tight_tolerance_prefers_filter_power(self, workload):
        database, queries = workload
        report = tune_feature_count(
            database, queries, delta=0.1, candidates_grid=(2, 32),
            tolerance=1.0,
        )
        by_n = {p.n_features: p.mean_candidates for p in report.points}
        if by_n[32] < by_n[2]:
            assert report.recommended == 32

    def test_sampling_caps_measurement_db(self, workload):
        database, queries = workload
        report = tune_feature_count(
            database, queries, delta=0.1, candidates_grid=(8,),
            sample_size=50,
        )
        # candidates cannot exceed the sampled database size
        assert report.points[0].mean_candidates <= 50

    def test_summary_text(self, workload):
        database, queries = workload
        report = tune_feature_count(
            database, queries, delta=0.1, candidates_grid=(4, 8)
        )
        text = report.summary()
        assert "recommended" in text
        assert "candidates" in text

    def test_validation(self, workload):
        database, queries = workload
        with pytest.raises(ValueError, match="non-empty"):
            tune_feature_count([], queries, delta=0.1)
        with pytest.raises(ValueError, match="exceed"):
            tune_feature_count(database, queries, delta=0.1,
                               normal_length=16, candidates_grid=(32,))
        with pytest.raises(ValueError, match="tolerance"):
            tune_feature_count(database, queries, delta=0.1, tolerance=0.5)
