"""Tests for the command-line interface (full lifecycle on disk)."""

import numpy as np
import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_corpus_defaults(self):
        args = build_parser().parse_args(["corpus", "--out", "x"])
        assert args.songs == 50
        assert args.per_song == 20

    def test_index_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["index", "--corpus", "c", "--out", "o", "--transform", "svd"]
            )


class TestLifecycle:
    def test_corpus_index_hum_query(self, tmp_path, capsys):
        corpus_dir = str(tmp_path / "corpus")
        index_file = str(tmp_path / "index.npz")
        hum_file = str(tmp_path / "hum.npy")

        assert main(["corpus", "--songs", "5", "--per-song", "10",
                     "--seed", "3", "--out", corpus_dir]) == 0
        assert main(["index", "--corpus", corpus_dir, "--out", index_file,
                     "--delta", "0.1"]) == 0
        assert main(["hum", "--corpus", corpus_dir, "--melody", "7",
                     "--seed", "4", "--out", hum_file]) == 0
        assert main(["query", "--index", index_file, "--hum", hum_file,
                     "-k", "5"]) == 0

        output = capsys.readouterr().out
        assert "50 melodies" in output
        assert "indexed 50 melodies" in output
        assert "DTW distance" in output

    def test_query_kernel_backends_agree(self, tmp_path, capsys):
        corpus_dir = str(tmp_path / "corpus")
        index_file = str(tmp_path / "index.npz")
        hum_file = str(tmp_path / "hum.npy")
        main(["corpus", "--songs", "3", "--per-song", "5", "--out", corpus_dir])
        main(["index", "--corpus", corpus_dir, "--out", index_file])
        main(["hum", "--corpus", corpus_dir, "--melody", "2",
              "--out", hum_file])
        outputs = {}
        for backend in ("vectorized", "scalar"):
            assert main(["query", "--index", index_file, "--hum", hum_file,
                         "-k", "4", "--dtw-backend", backend]) == 0
            out = capsys.readouterr().out
            outputs[backend] = [line for line in out.splitlines()
                                if "DTW distance" in line]
        assert outputs["vectorized"] == outputs["scalar"]
        assert len(outputs["scalar"]) == 4

    def test_query_kernel_multi_hum_batch(self, tmp_path, capsys):
        corpus_dir = str(tmp_path / "corpus")
        index_file = str(tmp_path / "index.npz")
        hum_a = str(tmp_path / "a.npy")
        hum_b = str(tmp_path / "b.npy")
        main(["corpus", "--songs", "3", "--per-song", "5", "--out", corpus_dir])
        main(["index", "--corpus", corpus_dir, "--out", index_file])
        main(["hum", "--corpus", corpus_dir, "--melody", "1",
              "--out", hum_a])
        main(["hum", "--corpus", corpus_dir, "--melody", "6", "--seed", "9",
              "--out", hum_b])
        assert main(["query", "--index", index_file, "--hum", hum_a, hum_b,
                     "-k", "3", "--workers", "2", "--stats"]) == 0
        out = capsys.readouterr().out
        assert "hums=2" in out
        assert out.count("DTW distance") == 6
        assert "merged filter cascade" in out

    def test_query_with_midi_hum(self, tmp_path, capsys):
        corpus_dir = str(tmp_path / "corpus")
        index_file = str(tmp_path / "index.npz")
        main(["corpus", "--songs", "3", "--per-song", "5", "--out", corpus_dir])
        main(["index", "--corpus", corpus_dir, "--out", index_file])
        midi_file = str(tmp_path / "corpus" / "melody_00002.mid")
        assert main(["query", "--index", index_file, "--hum", midi_file,
                     "-k", "3"]) == 0
        out = capsys.readouterr().out
        # Querying with an exact corpus melody must return it first.
        first_result = [line for line in out.splitlines() if line.strip().startswith("1.")]
        assert first_result and "0.000" in first_result[0]

    def test_hum_out_of_range(self, tmp_path, capsys):
        corpus_dir = str(tmp_path / "corpus")
        main(["corpus", "--songs", "2", "--per-song", "3", "--out", corpus_dir])
        code = main(["hum", "--corpus", corpus_dir, "--melody", "999",
                     "--out", str(tmp_path / "h.npy")])
        assert code == 2
        assert "out of range" in capsys.readouterr().err

    def test_demo(self, capsys):
        assert main(["demo", "--songs", "5", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "database: 100 melodies" in out
        assert "<-- target" in out

    def test_assess_command(self, tmp_path, capsys):
        corpus_dir = str(tmp_path / "corpus")
        hum_file = str(tmp_path / "hum.npy")
        main(["corpus", "--songs", "3", "--per-song", "5", "--out", corpus_dir])
        main(["hum", "--corpus", corpus_dir, "--melody", "4",
              "--out", hum_file])
        assert main(["assess", "--corpus", corpus_dir, "--melody", "4",
                     "--hum", hum_file]) == 0
        out = capsys.readouterr().out
        assert "grade:" in out
        assert "pitch error" in out

    def test_assess_out_of_range(self, tmp_path, capsys):
        corpus_dir = str(tmp_path / "corpus")
        hum_file = str(tmp_path / "hum.npy")
        main(["corpus", "--songs", "2", "--per-song", "3", "--out", corpus_dir])
        main(["hum", "--corpus", corpus_dir, "--melody", "0", "--out", hum_file])
        assert main(["assess", "--corpus", corpus_dir, "--melody", "99",
                     "--hum", hum_file]) == 2

    def test_analyze_command(self, tmp_path, capsys):
        corpus_dir = str(tmp_path / "corpus")
        main(["corpus", "--songs", "3", "--per-song", "5", "--out", corpus_dir])
        assert main(["analyze", "--corpus", corpus_dir, "--no-keys"]) == 0
        out = capsys.readouterr().out
        assert "melodies: 15" in out
        assert "duplicate groups" in out

    def test_tune_command(self, tmp_path, capsys):
        corpus_dir = str(tmp_path / "corpus")
        main(["corpus", "--songs", "4", "--per-song", "8", "--out", corpus_dir])
        assert main(["tune", "--corpus", corpus_dir, "--queries", "2",
                     "--grid", "4", "8"]) == 0
        out = capsys.readouterr().out
        assert "recommended feature count:" in out

    def test_experiment_command_smoke(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "smoke")
        assert main(["experiment", "scaling"]) == 0
        out = capsys.readouterr().out
        assert "db_size" in out

    def test_experiment_unknown(self, capsys):
        assert main(["experiment", "fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_experiment_table_smoke(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "smoke")
        assert main(["experiment", "table3"]) == 0
        out = capsys.readouterr().out
        assert "delta=0.1" in out

    def test_export_command(self, tmp_path, capsys):
        corpus_dir = str(tmp_path / "corpus")
        main(["corpus", "--songs", "2", "--per-song", "3", "--out", corpus_dir])
        assert main(["export", "--corpus", corpus_dir, "--melody", "1"]) == 0
        out = capsys.readouterr().out
        assert "X: 1" in out and "K: C" in out

    def test_export_to_file(self, tmp_path):
        corpus_dir = str(tmp_path / "corpus")
        abc_file = str(tmp_path / "tune.abc")
        main(["corpus", "--songs", "2", "--per-song", "3", "--out", corpus_dir])
        assert main(["export", "--corpus", corpus_dir, "--melody", "0",
                     "--out", abc_file]) == 0
        with open(abc_file) as handle:
            assert "T: " in handle.read()

    def test_poor_profile_hum(self, tmp_path):
        corpus_dir = str(tmp_path / "corpus")
        hum_file = str(tmp_path / "hum.npy")
        main(["corpus", "--songs", "2", "--per-song", "3", "--out", corpus_dir])
        assert main(["hum", "--corpus", corpus_dir, "--melody", "0",
                     "--profile", "poor", "--out", hum_file]) == 0
        assert np.load(hum_file).size > 0


class TestObservabilityFlags:
    @pytest.fixture()
    def pipeline(self, tmp_path):
        corpus_dir = str(tmp_path / "corpus")
        index_file = str(tmp_path / "index.npz")
        hum_file = str(tmp_path / "hum.npy")
        main(["corpus", "--songs", "3", "--per-song", "5", "--out", corpus_dir])
        main(["index", "--corpus", corpus_dir, "--out", index_file])
        main(["hum", "--corpus", corpus_dir, "--melody", "2",
              "--out", hum_file])
        return index_file, hum_file

    def test_stats_json_to_stdout(self, pipeline, capsys):
        import json

        index_file, hum_file = pipeline
        capsys.readouterr()
        assert main(["query", "--index", index_file, "--hum", hum_file,
                     "-k", "3", "--stats-json"]) == 0
        captured = capsys.readouterr()
        # stdout is the JSON document alone; diagnostics go to stderr.
        payload = json.loads(captured.out)
        assert payload["k"] == 3
        assert len(payload["results"]) == 3
        assert payload["cascade"]["corpus_size"] == payload["db"] == 15
        assert "DTW distance" not in captured.out
        assert "db=15" in captured.err

    def test_stats_json_to_file_keeps_rows_on_stdout(self, pipeline,
                                                     tmp_path, capsys):
        import json

        index_file, hum_file = pipeline
        stats_file = str(tmp_path / "stats.json")
        capsys.readouterr()
        assert main(["query", "--index", index_file, "--hum", hum_file,
                     "-k", "2", "--stats-json", stats_file]) == 0
        captured = capsys.readouterr()
        assert captured.out.count("DTW distance") == 2
        assert f"wrote stats to {stats_file}" in captured.err
        with open(stats_file) as handle:
            payload = json.load(handle)
        # The JSON rows match the human-readable rows on stdout.
        for name, _ in payload["results"]:
            assert name in captured.out
        assert payload["cascade"]["results"] >= 2

    def test_trace_and_metrics_exports(self, pipeline, tmp_path, capsys):
        import json

        from repro.engine import CascadeStats

        index_file, hum_file = pipeline
        trace_file = str(tmp_path / "trace.jsonl")
        metrics_file = str(tmp_path / "metrics.json")
        assert main(["query", "--index", index_file, "--hum", hum_file,
                     "-k", "3", "--trace-out", trace_file,
                     "--metrics-out", metrics_file]) == 0
        out = capsys.readouterr().out
        assert f"wrote trace spans to {trace_file}" in out
        assert f"wrote metrics snapshot to {metrics_file}" in out

        with open(trace_file) as handle:
            spans = [json.loads(line) for line in handle]
        stats = CascadeStats.from_trace(spans)
        assert stats.corpus_size == 15
        assert stats.results == 3
        with open(metrics_file) as handle:
            snap = json.load(handle)
        assert snap["counters"]["engine.queries_total{kind=knn}"] == 1
        assert (snap["counters"]["engine.candidates_refined_total"]
                == stats.dtw_computations)

    def test_slow_query_threshold_zero_reports_on_stderr(self, pipeline,
                                                         capsys):
        index_file, hum_file = pipeline
        capsys.readouterr()
        assert main(["query", "--index", index_file, "--hum", hum_file,
                     "-k", "2", "--slow-query-ms", "0"]) == 0
        assert "slow query:" in capsys.readouterr().err

    def test_batch_stats_json_keyed_by_hum_path(self, pipeline, tmp_path,
                                                capsys):
        import json

        index_file, hum_file = pipeline
        assert main(["query", "--index", index_file,
                     "--hum", hum_file, hum_file,
                     "-k", "2", "--workers", "2", "--stats-json"]) == 0
        captured = capsys.readouterr()
        payload = json.loads(captured.out)
        assert set(payload["results"]) == {hum_file}
        assert payload["cascade"]["corpus_size"] == 2 * 15
        assert "hums=2" in captured.err


class TestTelemetryCommands:
    """``repro obs report`` and the ``repro perf`` group."""

    @pytest.fixture()
    def pipeline(self, tmp_path):
        corpus_dir = str(tmp_path / "corpus")
        index_file = str(tmp_path / "index.npz")
        hum_file = str(tmp_path / "hum.npy")
        main(["corpus", "--songs", "3", "--per-song", "5", "--out", corpus_dir])
        main(["index", "--corpus", corpus_dir, "--out", index_file])
        main(["hum", "--corpus", corpus_dir, "--melody", "2",
              "--out", hum_file])
        return index_file, hum_file

    def test_obs_report_matches_stats_json(self, pipeline, tmp_path, capsys):
        import json

        index_file, hum_file = pipeline
        trace_file = str(tmp_path / "trace.jsonl")
        stats_file = str(tmp_path / "stats.json")
        assert main(["query", "--index", index_file,
                     "--hum", hum_file, hum_file, "-k", "3",
                     "--trace-out", trace_file, "--workers", "2",
                     "--stats-json", stats_file]) == 0
        capsys.readouterr()

        assert main(["obs", "report", "--trace", trace_file]) == 0
        table = capsys.readouterr().out
        assert "traces: 2 queries" in table
        assert "tightness" in table

        report_file = str(tmp_path / "report.json")
        assert main(["obs", "report", "--trace", trace_file,
                     "--format", "json", "--out", report_file]) == 0
        with open(report_file) as handle:
            report = json.load(handle)
        with open(stats_file) as handle:
            stats = json.load(handle)["cascade"]
        # The report's pruning table reproduces --stats-json exactly:
        # both are projections of the same StageStats objects.
        assert report["queries"] == 2
        assert report["corpus_candidates"] == stats["corpus_size"]
        assert report["dtw_computations"] == stats["dtw_computations"]
        assert report["results"] == stats["results"]
        by_name = {row["name"]: row for row in report["pruning"]}
        for stage in stats["stages"]:
            assert by_name[stage["name"]]["candidates_in"] == \
                stage["candidates_in"]
            assert by_name[stage["name"]]["pruned"] == stage["pruned"]

        capsys.readouterr()
        assert main(["obs", "report", "--trace", trace_file,
                     "--format", "folded"]) == 0
        folded = capsys.readouterr().out
        for line in folded.strip().splitlines():
            stack, value = line.rsplit(" ", 1)
            assert stack.startswith("query")
            assert int(value) >= 0

    def test_obs_report_fails_without_complete_traces(self, tmp_path,
                                                      capsys):
        trace_file = tmp_path / "empty.jsonl"
        trace_file.write_text("garbage {\n")
        assert main(["obs", "report", "--trace", str(trace_file)]) == 1
        captured = capsys.readouterr()
        assert "no valid spans" in captured.err
        assert "1 bad" in captured.err
        # Hard error, not a bare all-zero table on stdout.
        assert "latency" not in captured.out

    def test_obs_report_fails_on_empty_file(self, tmp_path, capsys):
        trace_file = tmp_path / "empty.jsonl"
        trace_file.write_text("")
        assert main(["obs", "report", "--trace", str(trace_file)]) == 1
        captured = capsys.readouterr()
        assert "no valid spans" in captured.err
        assert "0 line(s) read" in captured.err
        assert captured.out == ""

    def test_trace_append_accumulates_across_runs(self, pipeline, tmp_path):
        import json

        index_file, hum_file = pipeline
        trace_file = str(tmp_path / "trace.jsonl")
        base = ["query", "--index", index_file, "--hum", hum_file,
                "-k", "2", "--trace-out", trace_file]
        assert main(base) == 0
        once = sum(1 for _ in open(trace_file))
        assert main(base + ["--trace-append"]) == 0
        assert sum(1 for _ in open(trace_file)) == 2 * once
        # Default (no flag) truncates back to one run's spans.
        assert main(base) == 0
        assert sum(1 for _ in open(trace_file)) == once
        roots = [json.loads(line) for line in open(trace_file)]
        assert sum(1 for s in roots if s["parent_id"] is None) == 1

    def test_workload_capture_and_replay_roundtrip(self, pipeline, tmp_path,
                                                   capsys):
        import json

        index_file, hum_file = pipeline
        workload_file = str(tmp_path / "workload.jsonl")
        assert main(["query", "--index", index_file, "--hum", hum_file,
                     "-k", "3", "--workload-out", workload_file]) == 0
        assert f"wrote workload records to {workload_file}" in \
            capsys.readouterr().out

        assert main(["perf", "replay", "--workload", workload_file,
                     "--index", index_file]) == 0
        assert "replay PARITY OK" in capsys.readouterr().out

        # Tamper with a recorded distance: replay must fail.
        records = [json.loads(line) for line in open(workload_file)]
        records[0]["results"][0][1] += 5.0
        with open(workload_file, "w") as handle:
            for record in records:
                handle.write(json.dumps(record) + "\n")
        assert main(["perf", "replay", "--workload", workload_file,
                     "--index", index_file,
                     "--backends", "vectorized",
                     "--modes", "serial"]) == 1
        assert "FAILED" in capsys.readouterr().out

    def test_perf_record_and_check_gate(self, tmp_path, capsys):
        import json

        bench_file = str(tmp_path / "BENCH_x.json")
        history_file = str(tmp_path / "history.jsonl")
        with open(bench_file, "w") as handle:
            json.dump({"workload": {"db": 10},
                       "timings_ms": {"cascade": 10.0}}, handle)
        assert main(["perf", "record", "--bench", "cascade",
                     "--json", bench_file, "--history", history_file]) == 0

        # Seeded single-entry history: plain check passes...
        assert main(["perf", "check", "--history", history_file]) == 0
        assert "PASS" in capsys.readouterr().out
        # ...and the synthetic 25% slowdown self-test fails.
        assert main(["perf", "check", "--history", history_file,
                     "--inject-slowdown", "1.25",
                     "--min-effect-ms", "0.5"]) == 1
        assert "FAIL" in capsys.readouterr().out

        # A genuinely regressed second run fails the real gate.
        with open(bench_file, "w") as handle:
            json.dump({"workload": {"db": 10},
                       "timings_ms": {"cascade": 14.0}}, handle)
        assert main(["perf", "record", "--bench", "cascade",
                     "--json", bench_file, "--history", history_file]) == 0
        gate_file = str(tmp_path / "gate.json")
        assert main(["perf", "check", "--history", history_file,
                     "--json-out", gate_file]) == 1
        with open(gate_file) as handle:
            gate = json.load(handle)
        assert not gate["ok"]
        assert gate["findings"][0]["status"] == "regression"

    def test_perf_check_empty_history_is_an_error(self, tmp_path, capsys):
        missing = str(tmp_path / "none.jsonl")
        assert main(["perf", "check", "--history", missing]) == 2
        assert "no readable history entries" in capsys.readouterr().err

    def test_perf_check_recall_floor_gate(self, tmp_path, capsys):
        import json

        bench_file = str(tmp_path / "BENCH_q.json")
        history_file = str(tmp_path / "history.jsonl")
        with open(bench_file, "w") as handle:
            json.dump({"workload": {"db": 10},
                       "timings_ms": {"jitter@1.recall_at_10": 1.0}},
                      handle)
        assert main(["perf", "record", "--bench", "quality",
                     "--json", bench_file, "--history", history_file]) == 0
        assert main(["perf", "check", "--history", history_file]) == 0
        capsys.readouterr()
        # Injected degradation *divides* the floor metric and fails.
        assert main(["perf", "check", "--history", history_file,
                     "--inject-slowdown", "1.5"]) == 1
        assert "below a quality floor" in capsys.readouterr().out

        # A second run whose recall dropped fails the real gate...
        with open(bench_file, "w") as handle:
            json.dump({"workload": {"db": 10},
                       "timings_ms": {"jitter@1.recall_at_10": 0.6}},
                      handle)
        assert main(["perf", "record", "--bench", "quality",
                     "--json", bench_file, "--history", history_file]) == 0
        assert main(["perf", "check", "--history", history_file]) == 1
        capsys.readouterr()
        # ...unless --min-effect-floor absorbs the whole drop.
        assert main(["perf", "check", "--history", history_file,
                     "--min-effect-floor", "0.5"]) == 0


class TestQualityCommand:
    """``repro quality`` and ``repro obs report --scenarios``."""

    def test_matrix_runs_and_exports(self, tmp_path, capsys):
        import json

        trace_file = str(tmp_path / "q" / "trace.jsonl")
        metrics_file = str(tmp_path / "q" / "metrics.json")
        json_file = str(tmp_path / "q" / "matrix.json")
        assert main(["quality", "--songs", "4", "--per-song", "2",
                     "--queries", "1",
                     "--scenario", "transposition", "jitter",
                     "--severity", "0.25", "1.0", "--seed", "5",
                     "--trace-out", trace_file,
                     "--metrics-out", metrics_file,
                     "--json-out", json_file]) == 0
        captured = capsys.readouterr()
        assert "scenario matrix: 4 queries" in captured.out
        assert "contour r@10" in captured.out

        with open(json_file) as handle:
            doc = json.load(handle)
        assert doc["db_size"] == 8
        assert len(doc["scenarios"]) == 4
        with open(metrics_file) as handle:
            counters = json.load(handle)["counters"]
        assert counters["quality.queries_total"
                        "{scenario=jitter,severity=1}"] == 1

        # The exported spans replay into the same matrix offline.
        capsys.readouterr()
        assert main(["obs", "report", "--trace", trace_file,
                     "--scenarios"]) == 0
        table = capsys.readouterr().out
        assert "scenario matrix: 4 queries, 2 scenarios" in table
        assert "jitter" in table and "transposition" in table

    def test_scenarios_report_without_quality_spans(self, tmp_path,
                                                    capsys):
        import json

        span = {"name": "query", "trace_id": 1, "span_id": 1,
                "parent_id": None, "start_s": 0.0, "duration_s": 0.1,
                "attrs": {}}
        trace_file = tmp_path / "trace.jsonl"
        trace_file.write_text(json.dumps(span) + "\n")
        assert main(["obs", "report", "--trace", str(trace_file),
                     "--scenarios"]) == 0
        assert "no quality:query spans" in capsys.readouterr().out


class TestShardedTelemetryCommands:
    """Sharded tracing + the ``obs export`` / ``obs top`` group."""

    @pytest.fixture()
    def sharded_artifacts(self, tmp_path):
        """One sharded traced query: (trace.jsonl, metrics.json)."""
        corpus_dir = str(tmp_path / "corpus")
        index_file = str(tmp_path / "index.npz")
        hum_file = str(tmp_path / "hum.npy")
        trace_file = str(tmp_path / "trace.jsonl")
        metrics_file = str(tmp_path / "metrics.json")
        main(["corpus", "--songs", "3", "--per-song", "5",
              "--out", corpus_dir])
        main(["index", "--corpus", corpus_dir, "--out", index_file])
        main(["hum", "--corpus", corpus_dir, "--melody", "2",
              "--out", hum_file])
        assert main(["query", "--index", index_file, "--hum", hum_file,
                     "-k", "3", "--shards", "2",
                     "--trace-out", trace_file,
                     "--metrics-out", metrics_file]) == 0
        return trace_file, metrics_file

    def test_sharded_trace_is_one_connected_tree(self, sharded_artifacts):
        import json

        trace_file, _ = sharded_artifacts
        spans = [json.loads(line) for line in open(trace_file)]
        fanout = [s for s in spans if s["name"] == "shard:fanout"]
        workers = [s for s in spans if s["name"] == "shard:query"]
        assert len(fanout) == 1
        assert len(workers) == 2
        assert all(s["attrs"]["remote"] for s in workers)
        assert {s["attrs"]["shard"] for s in workers} == {0, 1}
        trace_id = fanout[0]["trace_id"]
        members = [s for s in spans if s["trace_id"] == trace_id]
        ids = {s["span_id"] for s in members}
        assert all(s["parent_id"] in ids for s in members
                   if s["parent_id"] is not None)

    def test_obs_report_per_shard_renders_table(self, sharded_artifacts,
                                                capsys):
        trace_file, _ = sharded_artifacts
        capsys.readouterr()
        assert main(["obs", "report", "--trace", trace_file,
                     "--per-shard"]) == 0
        table = capsys.readouterr().out
        assert "per-shard (2 shards" in table
        assert "work" in table and "pruned" in table

    def test_obs_export_prometheus_to_stdout(self, sharded_artifacts,
                                             capsys):
        _, metrics_file = sharded_artifacts
        capsys.readouterr()
        assert main(["obs", "export", "--metrics", metrics_file]) == 0
        text = capsys.readouterr().out
        assert "# TYPE repro_shard_fanouts_total counter" in text
        assert 'repro_shard_cpu_seconds_total{shard="0"}' in text

    def test_obs_export_jsonl_feeds_top(self, sharded_artifacts, tmp_path,
                                        capsys):
        _, metrics_file = sharded_artifacts
        series_file = str(tmp_path / "series.jsonl")
        assert main(["obs", "export", "--metrics", metrics_file,
                     "--format", "jsonl", "--out", series_file]) == 0
        assert main(["obs", "export", "--metrics", metrics_file,
                     "--format", "jsonl", "--out", series_file]) == 0
        capsys.readouterr()
        assert main(["obs", "top", "--series", series_file]) == 0
        out = capsys.readouterr().out
        assert "2 snapshot(s)" in out
        assert "shard.fanouts_total" in out

    def test_obs_top_on_snapshot(self, sharded_artifacts, capsys):
        _, metrics_file = sharded_artifacts
        capsys.readouterr()
        assert main(["obs", "top", "--metrics", metrics_file]) == 0
        out = capsys.readouterr().out
        assert "shard.lifecycle_total" in out

    def test_obs_export_jsonl_requires_out(self, sharded_artifacts, capsys):
        _, metrics_file = sharded_artifacts
        assert main(["obs", "export", "--metrics", metrics_file,
                     "--format", "jsonl"]) == 2
        assert "needs --out" in capsys.readouterr().err

    def test_obs_export_rejects_non_snapshot(self, tmp_path, capsys):
        bogus = tmp_path / "not_metrics.json"
        bogus.write_text('{"results": []}')
        assert main(["obs", "export", "--metrics", str(bogus)]) == 2
        assert "not a metrics snapshot" in capsys.readouterr().err

    def test_schema_checker_accepts_the_sharded_trace(self,
                                                      sharded_artifacts):
        import importlib.util
        import pathlib

        trace_file, metrics_file = sharded_artifacts
        tool = (pathlib.Path(__file__).resolve().parents[1]
                / "tools" / "check_obs_schema.py")
        spec = importlib.util.spec_from_file_location("check_obs_schema",
                                                      tool)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        assert module.main(["--trace", trace_file,
                            "--metrics", metrics_file,
                            "--expect-sharded"]) == 0
        # an unsharded trace must fail the --expect-sharded gate
        errors = []
        module.check_trace(trace_file, errors, expect_sharded=True)
        assert not errors
