"""Tests for building melody databases from raw MIDI directories."""

import pytest

from repro.music.corpus import generate_corpus, segment_corpus
from repro.music.midi import melody_to_midi_bytes
from repro.persistence import melodies_from_midi_directory


@pytest.fixture
def midi_dir(tmp_path):
    melodies = segment_corpus(generate_corpus(3, seed=55), per_song=4)
    for i, melody in enumerate(melodies):
        (tmp_path / f"tune_{i:02d}.mid").write_bytes(
            melody_to_midi_bytes(melody)
        )
    (tmp_path / "README.txt").write_text("not midi")
    return tmp_path, melodies


class TestMelodiesFromMidiDirectory:
    def test_loads_all_midi_files(self, midi_dir):
        directory, melodies = midi_dir
        loaded = melodies_from_midi_directory(directory)
        assert len(loaded) == len(melodies)

    def test_names_are_file_stems(self, midi_dir):
        directory, _ = midi_dir
        loaded = melodies_from_midi_directory(directory)
        assert loaded[0].name == "tune_00"

    def test_non_midi_files_ignored(self, midi_dir):
        directory, melodies = midi_dir
        loaded = melodies_from_midi_directory(directory)
        assert all(m.name.startswith("tune_") for m in loaded)

    def test_corrupt_file_skipped_by_default(self, midi_dir):
        directory, melodies = midi_dir
        (directory / "broken.mid").write_bytes(b"MThd garbage")
        loaded = melodies_from_midi_directory(directory)
        assert len(loaded) == len(melodies)

    def test_corrupt_file_raises_when_asked(self, midi_dir):
        directory, _ = midi_dir
        (directory / "broken.mid").write_bytes(b"MThd garbage")
        with pytest.raises(ValueError):
            melodies_from_midi_directory(directory, on_error="raise")

    def test_empty_directory_raises(self, tmp_path):
        with pytest.raises(ValueError, match="no usable"):
            melodies_from_midi_directory(tmp_path)

    def test_bad_on_error(self, tmp_path):
        with pytest.raises(ValueError, match="on_error"):
            melodies_from_midi_directory(tmp_path, on_error="ignore")

    def test_feeds_the_index(self, midi_dir):
        """The paper's pipeline: MIDI directory -> QBH database."""
        from repro.qbh.system import QueryByHummingSystem

        directory, melodies = midi_dir
        loaded = melodies_from_midi_directory(directory)
        system = QueryByHummingSystem(loaded, delta=0.1)
        hum = loaded[5].to_time_series(8).astype(float)
        assert system.rank_of(hum, 5) == 1
