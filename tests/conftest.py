"""Shared fixtures for the test suite."""

import numpy as np
import pytest

from repro.music import generate_corpus, segment_corpus


@pytest.fixture
def rng():
    """A fresh deterministic random generator per test."""
    return np.random.default_rng(12345)


@pytest.fixture
def random_walk_pair(rng):
    """Two zero-mean random walks of length 64."""
    x = np.cumsum(rng.normal(size=64))
    y = np.cumsum(rng.normal(size=64))
    return x - x.mean(), y - y.mean()


@pytest.fixture(scope="session")
def small_corpus():
    """A deterministic corpus of 10 songs, ~200 melodies."""
    songs = generate_corpus(10, seed=202)
    return segment_corpus(songs, per_song=20, seed=202)
