"""Live serving across ingest-triggered generation swaps.

The zero-downtime acceptance contract: a :class:`QBHService` over a
store-backed index keeps serving byte-identical answers across at
least three generation swaps, the versioned result cache is
invalidated exactly once per swap, and no request is dropped.
"""

import numpy as np
import pytest

from repro.core.normal_form import NormalForm
from repro.index.gemini import WarpingIndex
from repro.ingest import IngestCoordinator, IngestQueue, StreamingIndexBuilder
from repro.serve import QBHService
from repro.shard import RouterClosed
from repro.store import CorpusStore


def _walk(seed, length=110):
    rng = np.random.default_rng(seed)
    return np.cumsum(rng.normal(size=length))


def test_three_swaps_byte_identical_cache_invalidated_once(tmp_path):
    root = str(tmp_path / "store")
    builder = StreamingIndexBuilder(root, normal_form=NormalForm(length=64))
    store, _ = builder.build([_walk(i) for i in range(20)],
                             [f"m{i}" for i in range(20)])
    live = WarpingIndex.from_store(store)
    queue = IngestQueue()
    service = QBHService.from_index(live, max_batch=4)
    coordinator = IngestCoordinator(live, queue, min_batch=100)
    service.attach_ingest(coordinator)
    hums = [_walk(1000 + i) for i in range(3)]
    try:
        for swap in range(3):
            # warm the cache: second identical request must hit
            before = service.saturation()
            for hum in hums:
                assert service.knn(hum, 3).ok
            warm = [service.knn(hum, 3) for hum in hums]
            assert all(outcome.from_cache for outcome in warm), (
                "repeat requests must be served from the cache"
            )
            mutations = live.mutations
            for j in range(2):
                queue.add(f"s{swap}_{j}", _walk(2000 + 10 * swap + j))
            assert coordinator.rebuild_now() is not None
            assert live.mutations == mutations + 1, (
                "one swap must bump the version exactly once"
            )
            # first post-swap request recomputes (stale version evicted),
            # and is byte-identical to a fresh index on the new generation
            reference = WarpingIndex.from_store(CorpusStore.open(root))
            for hum in hums:
                outcome = service.knn(hum, 3)
                assert outcome.ok and not outcome.from_cache, (
                    "the swap must invalidate cached answers"
                )
                expected, _ = reference.cascade_knn_query(hum, 3)
                assert outcome.results == tuple(
                    (item, float(dist)) for item, dist in expected
                )
                # ...and exactly once: the recomputed answer caches again
                assert service.knn(hum, 3).from_cache
            after = service.saturation()
            assert after["error"] == before["error"] == 0
            assert after["shed"] == 0
            snapshot = after["ingest"]
            assert snapshot["rebuilds_total"] == swap + 1
            assert snapshot["failures_total"] == 0
    finally:
        service.close()
    assert not coordinator.running


def test_router_closed_is_retried_exactly_once():
    """The serve layer refetches the engine when a swap closed its router."""

    class GoodEngine:
        def knn(self, query, k, should_abort=None):
            return ((("m0", 1.0),), None)

    class ClosingEngine:
        def __init__(self):
            self.calls = 0

        def knn(self, query, k, should_abort=None):
            self.calls += 1
            raise RouterClosed("router is closed")

    closing = ClosingEngine()
    engines = [closing, GoodEngine()]
    versions = iter(range(100))
    service = QBHService(lambda: engines.pop(0),
                         version_fn=lambda: next(versions))
    try:
        outcome = service.knn(np.zeros(8), 1)
        assert outcome.ok
        assert outcome.results == (("m0", 1.0),)
        assert closing.calls == 1
    finally:
        service.close()


def test_router_closed_twice_is_an_error():
    class AlwaysClosed:
        def knn(self, query, k, should_abort=None):
            raise RouterClosed("router is closed")

    service = QBHService(lambda: AlwaysClosed(),
                         version_fn=lambda: 0)
    try:
        outcome = service.knn(np.zeros(8), 1)
        assert outcome.status == "error"
        assert "RouterClosed" in outcome.error
    finally:
        service.close()


def test_attach_ingest_rejects_double_attach(tmp_path):
    root = str(tmp_path / "store")
    builder = StreamingIndexBuilder(root, normal_form=NormalForm(length=64))
    store, _ = builder.build([_walk(i) for i in range(5)],
                             [f"m{i}" for i in range(5)])
    live = WarpingIndex.from_store(store)
    service = QBHService.from_index(live)
    coordinator = IngestCoordinator(live, IngestQueue())
    try:
        service.attach_ingest(coordinator)
        with pytest.raises(RuntimeError, match="already attached"):
            service.attach_ingest(IngestCoordinator(live, IngestQueue()))
        assert "ingest" in service.saturation()
    finally:
        service.close()
