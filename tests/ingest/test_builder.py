"""Streaming builder: budget accounting, parity, incremental builds."""

import numpy as np
import pytest

from repro.core.envelope import k_envelope
from repro.core.normal_form import NormalForm
from repro.index.gemini import WarpingIndex
from repro.index.subsequence import SubsequenceIndex
from repro.ingest import StreamingIndexBuilder, batch_envelope
from repro.store import CorpusStore
from repro.store.corpus import StoreError


def _walks(count, length, seed=5):
    rng = np.random.default_rng(seed)
    return [np.cumsum(rng.normal(size=length)) for _ in range(count)]


def test_batch_envelope_matches_per_row_k_envelope(rng):
    chunk = rng.normal(size=(7, 40)).astype(np.float32)
    for k in (0, 1, 3, 8):
        lower, upper = batch_envelope(chunk, k)
        for row in range(chunk.shape[0]):
            env = k_envelope(chunk[row], k)
            np.testing.assert_array_equal(lower[row], env.lower)
            np.testing.assert_array_equal(upper[row], env.upper)


def test_budget_does_not_change_the_output(tmp_path):
    series = _walks(40, 120)
    ids = [f"m{i}" for i in range(40)]
    stores = {}
    for label, budget in (("tight", 0.05), ("roomy", 64.0)):
        builder = StreamingIndexBuilder(
            str(tmp_path / label), normal_form=NormalForm(length=64),
            memory_budget_mb=budget,
        )
        stores[label], report = builder.build(series, ids)
        assert report.peak_buffer_bytes <= report.budget_bytes
        if label == "tight":
            assert report.flushes > 1  # the budget actually bit
    for column in ("normalized", "features", "env_lower", "env_upper",
                   "meta"):
        np.testing.assert_array_equal(
            np.asarray(stores["tight"].column(column)),
            np.asarray(stores["roomy"].column(column)),
        )
    assert stores["tight"].ids == stores["roomy"].ids


def test_melody_store_matches_in_memory_index(tmp_path):
    series = _walks(25, 100)
    ids = [f"m{i}" for i in range(25)]
    builder = StreamingIndexBuilder(str(tmp_path),
                                    normal_form=NormalForm(length=64))
    store, report = builder.build(series, ids)
    store.verify()
    reference = WarpingIndex(series, delta=0.1, ids=ids,
                             normal_form=NormalForm(length=64))
    # stored rows are the float32 quantization of the reference rows
    np.testing.assert_array_equal(
        np.asarray(store.normalized),
        reference._data.astype(np.float32),
    )
    # stored margin covers the float32 quantization of every feature
    feats64 = reference.env_transform.transform.transform_batch(
        np.asarray(store.normalized, dtype=np.float64)
    )
    assert np.abs(feats64 - store.features).max() <= store.feature_margin


def test_subsequence_windowing_matches_index(tmp_path):
    series = _walks(6, 150, seed=9)
    builder = StreamingIndexBuilder(
        str(tmp_path), kind="subsequence",
        normal_form=NormalForm(length=32), window_lengths=(48, 96),
        stride=16,
    )
    store, report = builder.build(series)
    reference = SubsequenceIndex(series, window_lengths=(48, 96),
                                 stride=16,
                                 normal_form=NormalForm(length=32))
    assert report.rows == reference.window_count
    meta = [tuple(int(v) for v in row) for row in np.asarray(store.meta)]
    assert meta == reference._windows
    np.testing.assert_array_equal(
        np.asarray(store.normalized),
        reference._normalized.astype(np.float32),
    )


def test_incremental_build_inherits_and_appends(tmp_path):
    root = str(tmp_path)
    builder = StreamingIndexBuilder(root, normal_form=NormalForm(length=64))
    base, _ = builder.build(_walks(10, 100), [f"a{i}" for i in range(10)])
    incremental = StreamingIndexBuilder.for_store(base)
    new = _walks(4, 100, seed=77)
    store, report = incremental.build(new, [f"b{i}" for i in range(4)],
                                      base=base)
    assert store.generation == base.generation + 1
    assert store.rows == 14
    assert store.ids[:10] == base.ids
    np.testing.assert_array_equal(
        np.asarray(store.normalized)[:10], np.asarray(base.normalized)
    )
    store.verify()
    assert CorpusStore.open(root).generation == store.generation


def test_id_count_mismatch_raises(tmp_path):
    builder = StreamingIndexBuilder(str(tmp_path),
                                    normal_form=NormalForm(length=64))
    series = _walks(3, 100)
    with pytest.raises(ValueError, match="fewer ids"):
        builder.build(series, ["a", "b"])
    with pytest.raises(ValueError, match="more ids"):
        builder.build(series, ["a", "b", "c", "d"])


def test_all_sequences_too_short_raises(tmp_path):
    builder = StreamingIndexBuilder(
        str(tmp_path), kind="subsequence",
        normal_form=NormalForm(length=32), window_lengths=(64,),
    )
    with pytest.raises(StoreError, match="no rows"):
        builder.build(_walks(3, 20))


def test_builder_config_round_trips_through_for_store(tmp_path):
    builder = StreamingIndexBuilder(
        str(tmp_path), delta=0.2, normal_form=NormalForm(length=48),
        n_features=6,
    )
    store, _ = builder.build(_walks(5, 90))
    again = StreamingIndexBuilder.for_store(store)
    assert again.delta == 0.2
    assert again.normal_length == 48
    assert again.n_features == 6
    assert again.env_transform.output_dim == 6
