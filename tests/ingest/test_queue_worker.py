"""Ingest staging queue and background rebuild coordinator."""

import threading

import numpy as np
import pytest

from repro.core.normal_form import NormalForm
from repro.index.gemini import WarpingIndex
from repro.ingest import (
    IngestCoordinator,
    IngestError,
    IngestQueue,
    StreamingIndexBuilder,
)


def _walk(seed, length=100):
    rng = np.random.default_rng(seed)
    return np.cumsum(rng.normal(size=length))


@pytest.fixture
def live_index(tmp_path):
    builder = StreamingIndexBuilder(str(tmp_path / "store"),
                                    normal_form=NormalForm(length=64))
    store, _ = builder.build([_walk(i) for i in range(12)],
                             [f"m{i}" for i in range(12)])
    return WarpingIndex.from_store(store)


class TestIngestQueue:
    def test_add_drain_counts(self):
        queue = IngestQueue()
        assert queue.add("a", _walk(1)) == 1
        assert queue.add("b", _walk(2)) == 2
        assert queue.pending == 2
        batch = queue.drain()
        assert [item_id for item_id, _ in batch] == ["a", "b"]
        assert queue.pending == 0
        assert queue.accepted_total == 2

    def test_validation(self):
        queue = IngestQueue()
        with pytest.raises(ValueError):
            queue.add("bad", np.zeros((2, 2)))
        with pytest.raises(ValueError):
            queue.add("short", np.zeros(1))

    def test_max_pending_overflow(self):
        queue = IngestQueue(max_pending=2)
        queue.add("a", _walk(1))
        queue.add("b", _walk(2))
        with pytest.raises(OverflowError):
            queue.add("c", _walk(3))
        queue.drain()
        queue.add("c", _walk(3))  # capacity freed

    def test_wait_for_items_wakes_on_add(self):
        queue = IngestQueue()
        seen = []

        def waiter():
            seen.append(queue.wait_for_items(5.0))

        thread = threading.Thread(target=waiter)
        thread.start()
        queue.add("a", _walk(1))
        thread.join(timeout=5.0)
        assert seen == [True]


class TestIngestCoordinator:
    def test_requires_store_backed_index(self):
        in_memory = WarpingIndex([_walk(i) for i in range(3)], delta=0.1)
        with pytest.raises(IngestError, match="store-backed"):
            IngestCoordinator(in_memory, IngestQueue())

    def test_rebuild_now_swaps_and_accounts(self, live_index):
        queue = IngestQueue()
        coordinator = IngestCoordinator(live_index, queue, min_batch=10)
        generation = live_index.store.generation
        mutations = live_index.mutations
        queue.add("new0", _walk(100))
        queue.add("new1", _walk(101))
        report = coordinator.rebuild_now()
        assert report is not None
        assert live_index.store.generation == generation + 1
        assert live_index.mutations == mutations + 1
        assert "new0" in live_index.ids and "new1" in live_index.ids
        snapshot = coordinator.snapshot()
        assert snapshot["rebuilds_total"] == 1
        assert snapshot["rows_ingested_total"] == 2
        assert snapshot["failures_total"] == 0
        assert snapshot["pending"] == 0

    def test_background_rebuild_on_min_batch(self, live_index):
        queue = IngestQueue()
        with IngestCoordinator(live_index, queue, min_batch=2,
                               poll_interval_s=0.01) as coordinator:
            generation = live_index.store.generation
            queue.add("bg0", _walk(200))
            queue.add("bg1", _walk(201))
            deadline = threading.Event()
            for _ in range(500):
                if live_index.store.generation != generation:
                    break
                deadline.wait(0.02)
            assert live_index.store.generation == generation + 1
            assert coordinator.snapshot()["rebuilds_total"] == 1

    def test_failed_batch_is_isolated(self, live_index):
        queue = IngestQueue()
        coordinator = IngestCoordinator(live_index, queue)
        generation = live_index.store.generation
        mutations = live_index.mutations
        queue.add("m0", _walk(1))  # duplicate id: the build must fail
        assert coordinator.rebuild_now() is None
        assert live_index.store.generation == generation  # untouched
        assert live_index.mutations == mutations
        snapshot = coordinator.snapshot()
        assert snapshot["failures_total"] == 1
        assert "duplicate id" in snapshot["last_error"]
        # the next good batch still lands
        queue.add("fresh", _walk(300))
        assert coordinator.rebuild_now() is not None
        assert coordinator.snapshot()["rebuilds_total"] == 1

    def test_close_drains_pending(self, live_index):
        queue = IngestQueue()
        coordinator = IngestCoordinator(live_index, queue,
                                        min_batch=50).start()
        generation = live_index.store.generation
        queue.add("tail", _walk(400))
        coordinator.close(drain=True)
        assert live_index.store.generation == generation + 1
        assert "tail" in live_index.ids
        assert not coordinator.running
