"""Failure-injection sweep: adversarial inputs across the public API.

Every public entry point must reject malformed input with ``ValueError``
(or a documented exception) — never crash with IndexError/TypeError or
silently produce garbage.
"""

import numpy as np
import pytest

from repro import (
    Melody,
    Note,
    WarpingIndex,
    dtw_distance,
    k_envelope,
    lb_keogh,
    ldtw_distance,
    normalize,
)
from repro.core.normal_form import NormalForm

BAD_SERIES = [
    [],                       # empty
    [np.nan],                 # NaN
    [np.inf, 1.0],            # inf
    np.zeros((2, 2)),         # wrong rank
]


class TestSeriesEntryPoints:
    @pytest.mark.parametrize("bad", BAD_SERIES)
    def test_normalize_rejects(self, bad):
        with pytest.raises(ValueError):
            normalize(bad)

    @pytest.mark.parametrize("bad", BAD_SERIES)
    def test_envelope_rejects(self, bad):
        with pytest.raises(ValueError):
            k_envelope(bad, 2)

    @pytest.mark.parametrize("bad", BAD_SERIES)
    def test_dtw_rejects(self, bad):
        with pytest.raises(ValueError):
            dtw_distance(bad, [1.0, 2.0])
        with pytest.raises(ValueError):
            ldtw_distance([1.0, 2.0], bad, 1)

    @pytest.mark.parametrize("bad", BAD_SERIES)
    def test_lb_keogh_rejects(self, bad):
        with pytest.raises(ValueError):
            lb_keogh(bad, [1.0, 2.0], 1)


class TestIndexEntryPoints:
    @pytest.fixture(scope="class")
    def index(self):
        rng = np.random.default_rng(1)
        walks = [np.cumsum(rng.normal(size=80)) for _ in range(20)]
        return WarpingIndex(walks, delta=0.1, normal_form=NormalForm(length=64))

    @pytest.mark.parametrize("bad", BAD_SERIES)
    def test_queries_reject_bad_series(self, index, bad):
        with pytest.raises(ValueError):
            index.range_query(bad, 1.0)
        with pytest.raises(ValueError):
            index.knn_query(bad, 3)

    def test_negative_parameters(self, index, rng):
        query = rng.normal(size=80)
        with pytest.raises(ValueError):
            index.range_query(query, -1.0)
        with pytest.raises(ValueError):
            index.knn_query(query, 0)

    @pytest.mark.parametrize("bad", BAD_SERIES)
    def test_insert_rejects_bad_series(self, index, bad):
        with pytest.raises(ValueError):
            index.insert(bad, "new-id")
        # ...and the failed insert must not corrupt the index.
        results, _ = index.range_query(np.zeros(80), 1e9)
        assert len(results) == len(index)


class TestMelodyEntryPoints:
    def test_note_bounds(self):
        for pitch, duration in ((0, 1.0), (200, 1.0), (60, 0.0), (60, -1.0)):
            with pytest.raises(ValueError):
                Note(pitch, duration)

    def test_melody_rejects_empty_and_bad(self):
        with pytest.raises(ValueError):
            Melody([])
        with pytest.raises(ValueError):
            Melody([(60, -1.0)])

    def test_time_series_bad_rate(self):
        melody = Melody([(60, 1.0)])
        with pytest.raises(ValueError):
            melody.to_time_series(0)


class TestHumEntryPoints:
    def test_track_pitch_rejects(self):
        from repro import track_pitch

        with pytest.raises(ValueError):
            track_pitch([])
        with pytest.raises(ValueError):
            track_pitch(np.zeros((2, 3)))

    def test_synthesize_rejects(self):
        from repro.hum.synthesis import synthesize_pitch_series

        with pytest.raises(ValueError):
            synthesize_pitch_series([])

    def test_segment_rejects(self):
        from repro.hum.segmentation import segment_notes

        with pytest.raises(ValueError):
            segment_notes([])


class TestExtremeButValidInputs:
    """Extreme magnitudes must flow through without overflow surprises."""

    def test_huge_values(self):
        x = np.full(32, 1e150)
        y = np.full(32, -1e150)
        d = ldtw_distance(x, y, 2)
        assert np.isinf(d) or d > 1e150  # overflow to inf is acceptable

    def test_tiny_values(self):
        x = np.full(32, 1e-200)
        y = np.zeros(32)
        assert ldtw_distance(x, y, 2) >= 0.0

    def test_single_point_series(self):
        assert dtw_distance([5.0], [7.0]) == pytest.approx(2.0)

    def test_length_one_index_query(self, rng):
        walks = [np.cumsum(rng.normal(size=80)) for _ in range(5)]
        index = WarpingIndex(walks, delta=0.1, normal_form=NormalForm(length=64))
        results, _ = index.range_query(np.array([3.0, 4.0]), 1e9)
        assert len(results) == 5
