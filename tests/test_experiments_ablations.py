"""Smoke tests for the ablation experiments (tiny workloads)."""

import numpy as np

from repro.experiments import (
    SMOKE,
    run_backend_ablation,
    run_knn_ablation,
    run_noise_sweep,
    run_second_filter_ablation,
    run_signsplit_ablation,
    run_split_ablation,
)


def test_signsplit_smoke():
    rows = run_signsplit_ablation(30)
    by_method = dict(zip(rows["method"], rows["container_violations"]))
    assert by_method["sign_split"] == 0
    assert by_method["naive"] > 0


def test_knn_smoke():
    rows = run_knn_ablation(150, 2)
    assert rows["refined_scan"] == [150, 150, 150]
    assert all(r <= 150 for r in rows["refined_multistep"])


def test_backends_smoke():
    rows, answers = run_backend_ablation(150, 2)
    assert set(rows["backend"]) == {"rstar", "grid", "cluster", "linear"}
    assert (answers["rstar"] == answers["grid"] == answers["cluster"]
            == answers["linear"])


def test_second_filter_smoke():
    rows = run_second_filter_ablation(150, 2)
    for c, p, e in zip(rows["candidates"], rows["pruned_by_LB"],
                       rows["exact_dtw"]):
        assert abs(c - (p + e)) <= 0.21


def test_splits_smoke():
    rows = run_split_ablation(200, 2)
    assert rows["strategy"] == ["rstar", "quadratic", "linear"]
    assert all(h >= 1 for h in rows["height"])


def test_noise_smoke():
    rows = run_noise_sweep(SMOKE)
    assert rows["error_level"][0] == 0.0
    assert rows["top1"][0] == SMOKE.table_queries
    assert np.all(np.array(rows["mean_rank"]) >= 1.0)
