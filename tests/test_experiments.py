"""Smoke tests for the programmatic experiment suite.

Every table/figure function must run end to end at SMOKE scale and
satisfy the invariants the full benchmarks assert; this keeps the
experiment code itself under test without benchmark-scale runtimes.
"""

import numpy as np
import pytest

from repro.experiments import (
    PAPER,
    REDUCED,
    SMOKE,
    ExperimentScale,
    active_scale,
    format_series,
    run_fig6,
    run_fig7,
    run_fig8,
    run_fig10,
    run_size_scaling,
    run_table2,
    run_table3,
)


class TestConfig:
    def test_presets_ordered(self):
        assert SMOKE.fig10_db < REDUCED.fig10_db < PAPER.fig10_db
        assert PAPER.fig9_db == 35000
        assert PAPER.fig10_db == 50000

    def test_validation(self):
        with pytest.raises(ValueError, match="must be >= 1"):
            ExperimentScale(
                name="bad", table_queries=0, corpus_songs=1,
                corpus_per_song=1, fig6_series=1, fig7_pairs=1,
                fig8_queries=1, fig9_db=1, fig10_db=1, sweep_deltas=(0.1,),
            )
        with pytest.raises(ValueError, match="sweep_deltas"):
            ExperimentScale(
                name="bad", table_queries=1, corpus_songs=1,
                corpus_per_song=1, fig6_series=1, fig7_pairs=1,
                fig8_queries=1, fig9_db=1, fig10_db=1, sweep_deltas=(),
            )

    def test_active_scale_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "full")
        assert active_scale() is PAPER
        monkeypatch.setenv("REPRO_SCALE", "smoke")
        assert active_scale() is SMOKE
        monkeypatch.delenv("REPRO_SCALE")
        assert active_scale() is REDUCED


class TestFormatSeries:
    def test_layout(self):
        text = format_series("t", {"a": [1, 22], "b": ["x", "y"]})
        lines = text.splitlines()
        assert lines[0] == "=== t ==="
        assert lines[1].split() == ["a", "b"]
        assert lines[2].split() == ["1", "x"]

    def test_unequal_columns_rejected(self):
        with pytest.raises(ValueError, match="unequal"):
            format_series("t", {"a": [1], "b": [1, 2]})

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            format_series("t", {})


class TestQualityExperiments:
    def test_table2_smoke(self):
        ts, ct = run_table2(SMOKE)
        assert ts.total == SMOKE.table_queries
        assert ct.total == SMOKE.table_queries
        assert ts.top1 >= ct.top1  # the paper's headline ordering

    def test_table3_smoke(self):
        tables = run_table3(SMOKE)
        assert [t.name for t in tables] == [
            "delta=0.05", "delta=0.1", "delta=0.2"
        ]
        assert all(t.total == SMOKE.table_queries for t in tables)


class TestTightnessExperiments:
    def test_fig6_smoke(self):
        rows = run_fig6(SMOKE)
        assert len(rows["dataset"]) == 24
        lb = np.array(rows["LB"])
        new = np.array(rows["New_PAA"])
        keogh = np.array(rows["Keogh_PAA"])
        assert np.all(lb >= new - 1e-9)
        assert np.all(new >= keogh - 1e-9)

    def test_fig7_smoke(self):
        rows = run_fig7(SMOKE)
        assert rows["width"][0] == 0.0
        assert np.all(np.array(rows["LB"]) >= np.array(rows["New_PAA"]) - 1e-9)


class TestScalabilityExperiments:
    def test_fig8_smoke(self):
        rows, results = run_fig8(SMOKE)
        assert len(rows["width"]) == len(SMOKE.sweep_deltas) * 2
        for point in results.values():
            assert point["New"][0] <= point["Keogh"][0] + 1e-9

    def test_fig10_smoke(self):
        rows, results = run_fig10(SMOKE)
        for point in results.values():
            assert point["New"][1] >= 0
            assert point["Keogh"][1] >= 0

    def test_size_scaling_smoke(self):
        rows = run_size_scaling(SMOKE)
        assert rows["db_size"][-1] == SMOKE.fig10_db
        assert rows["pages_scan"] == sorted(rows["pages_scan"])
