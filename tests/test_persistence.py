"""Tests for index/corpus persistence and dynamic index maintenance."""

import numpy as np
import pytest

from repro.core.envelope_transforms import (
    KeoghPAAEnvelopeTransform,
    SignSplitEnvelopeTransform,
)
from repro.core.normal_form import NormalForm
from repro.core.transforms import DFTTransform
from repro.datasets.generators import random_walks
from repro.index.gemini import WarpingIndex
from repro.music.corpus import generate_corpus, segment_corpus
from repro.persistence import load_corpus, load_index, save_corpus, save_index


@pytest.fixture
def walks():
    return list(random_walks(80, 96, seed=13))


class TestIndexRoundtrip:
    def test_default_index(self, walks, tmp_path):
        index = WarpingIndex(walks, delta=0.1, normal_form=NormalForm(length=64))
        path = tmp_path / "index.npz"
        save_index(index, path)
        loaded = load_index(path)
        assert len(loaded) == len(index)
        assert loaded.delta == index.delta
        query = random_walks(1, 96, seed=14)[0]
        a, _ = index.range_query(query, 5.0)
        b, _ = loaded.range_query(query, 5.0)
        assert a == b

    def test_keogh_transform_roundtrip(self, walks, tmp_path):
        index = WarpingIndex(
            walks, delta=0.08, env_transform=KeoghPAAEnvelopeTransform(64, 8),
            normal_form=NormalForm(length=64), index_kind="grid",
        )
        path = tmp_path / "index.npz"
        save_index(index, path)
        loaded = load_index(path)
        assert loaded.env_transform.name == "Keogh_PAA"
        assert loaded.index_kind == "grid"

    def test_sign_split_matrix_roundtrip(self, walks, tmp_path):
        env_t = SignSplitEnvelopeTransform(DFTTransform(64, 6))
        index = WarpingIndex(
            walks, delta=0.1, env_transform=env_t,
            normal_form=NormalForm(length=64),
        )
        path = tmp_path / "index.npz"
        save_index(index, path)
        loaded = load_index(path)
        assert np.allclose(
            loaded.env_transform.transform.matrix, env_t.transform.matrix
        )
        query = random_walks(1, 96, seed=15)[0]
        a, _ = index.knn_query(query, 5)
        b, _ = loaded.knn_query(query, 5)
        assert [i for i, _ in a] == [i for i, _ in b]

    def test_string_ids_roundtrip(self, walks, tmp_path):
        ids = [f"w{i}" for i in range(len(walks))]
        index = WarpingIndex(
            walks, delta=0.1, normal_form=NormalForm(length=64), ids=ids
        )
        path = tmp_path / "index.npz"
        save_index(index, path)
        assert load_index(path).ids == ids

    def test_serving_knobs_roundtrip(self, walks, tmp_path):
        """dtw_backend and workers survive save/load (regression).

        A restarted service must behave identically to the one that
        saved the file: same refine kernel, same batch pool size.
        """
        index = WarpingIndex(
            walks, delta=0.1, normal_form=NormalForm(length=64),
            dtw_backend="scalar", workers=4,
        )
        path = tmp_path / "index.npz"
        save_index(index, path)
        loaded = load_index(path)
        assert loaded.dtw_backend == "scalar"
        assert loaded.workers == 4
        assert loaded.engine().dtw_backend == "scalar"
        assert loaded.engine().workers == 4

    def test_serving_knobs_default_when_absent(self, walks, tmp_path):
        """Files written before the serving knobs still load."""
        import json

        index = WarpingIndex(walks[:5], delta=0.1,
                             normal_form=NormalForm(length=64))
        path = tmp_path / "index.npz"
        save_index(index, path)
        data = dict(np.load(path))
        config = json.loads(bytes(data["config"]).decode())
        del config["dtw_backend"]
        del config["workers"]
        data["config"] = np.frombuffer(
            json.dumps(config).encode(), dtype=np.uint8
        )
        np.savez(path, **data)
        loaded = load_index(path)
        assert loaded.dtw_backend == index.dtw_backend
        assert loaded.workers is None

    def test_bad_version_rejected(self, walks, tmp_path):
        import json

        index = WarpingIndex(walks[:5], delta=0.1,
                             normal_form=NormalForm(length=64))
        path = tmp_path / "index.npz"
        save_index(index, path)
        data = dict(np.load(path))
        config = json.loads(bytes(data["config"]).decode())
        config["version"] = 999
        data["config"] = np.frombuffer(
            json.dumps(config).encode(), dtype=np.uint8
        )
        np.savez(path, **data)
        with pytest.raises(ValueError, match="version"):
            load_index(path)


class TestCorpusRoundtrip:
    def test_roundtrip(self, tmp_path):
        melodies = segment_corpus(generate_corpus(3, seed=4), per_song=5)
        directory = tmp_path / "corpus"
        save_corpus(melodies, directory)
        loaded = load_corpus(directory)
        assert len(loaded) == len(melodies)
        for original, back in zip(melodies, loaded):
            assert back.name == original.name
            assert np.allclose(back.pitches(), np.round(original.pitches()))
            assert np.allclose(back.durations(), original.durations(),
                               atol=0.01)

    def test_manifest_written(self, tmp_path):
        melodies = segment_corpus(generate_corpus(2, seed=4), per_song=3)
        save_corpus(melodies, tmp_path / "c")
        assert (tmp_path / "c" / "manifest.json").exists()
        assert (tmp_path / "c" / "melody_00000.mid").exists()


class TestDynamicInsert:
    @pytest.mark.parametrize("kind", ["rstar", "grid", "linear"])
    def test_insert_then_query(self, walks, kind):
        index = WarpingIndex(
            walks, delta=0.1, normal_form=NormalForm(length=64),
            index_kind=kind,
        )
        rng = np.random.default_rng(77)
        newcomer = np.cumsum(rng.normal(size=96))
        index.insert(newcomer, "fresh")
        assert len(index) == len(walks) + 1
        results, _ = index.range_query(newcomer, 1e-9)
        assert results[0][0] == "fresh"

    def test_insert_duplicate_id_rejected(self, walks):
        index = WarpingIndex(walks, delta=0.1,
                             normal_form=NormalForm(length=64))
        with pytest.raises(ValueError, match="already present"):
            index.insert(walks[0], 0)

    def test_inserted_series_in_knn(self, walks):
        index = WarpingIndex(walks, delta=0.1,
                             normal_form=NormalForm(length=64))
        target = walks[3] + 0.01
        index.insert(target, "near3")
        results, _ = index.knn_query(walks[3], 2)
        assert {item for item, _ in results} == {3, "near3"}

    def test_ground_truth_sees_inserts(self, walks):
        index = WarpingIndex(walks[:10], delta=0.1,
                             normal_form=NormalForm(length=64))
        index.insert(walks[11], "x")
        truth = index.ground_truth_range(walks[11], 1e-9)
        assert truth and truth[0][0] == "x"
