"""Columnar store: writer/reader round trips, generations, integrity."""

import json
import os

import numpy as np
import pytest

from repro.store import (
    CorpusStore,
    GenerationWriter,
    StoreError,
    activate_generation,
    current_generation,
    generation_dirname,
    list_generations,
    prune_generations,
)


def _chunk(rows, n=16, d=4, seed=0):
    rng = np.random.default_rng(seed)
    normalized = rng.normal(size=(rows, n)).astype(np.float32)
    features = rng.normal(size=(rows, d)).astype(np.float32)
    env_lower = normalized - 1.0
    env_upper = normalized + 1.0
    meta = np.stack(
        [np.arange(rows), np.zeros(rows, dtype=np.int64),
         np.full(rows, n, dtype=np.int64)], axis=1,
    )
    return normalized, features, env_lower, env_upper, meta


def _write_generation(root, generation=0, rows=10, seed=0, *,
                      inherit_from=None, ids=None, activate=True):
    writer = GenerationWriter(
        root, generation, normal_length=16, n_features=4,
        metric="euclidean", kind="melody", inherit_from=inherit_from,
    )
    chunk = _chunk(rows, seed=seed)
    base = len(writer._ids)
    writer.append(*chunk, ids=ids if ids is not None
                  else [f"g{generation}-{base + i}" for i in range(rows)])
    store = writer.seal(feature_margin=1e-7)
    if activate:
        activate_generation(root, generation)
    return store, chunk


def test_round_trip_and_verify(tmp_path):
    root = str(tmp_path)
    store, chunk = _write_generation(root, rows=12)
    assert store.rows == 12
    np.testing.assert_array_equal(np.asarray(store.normalized), chunk[0])
    np.testing.assert_array_equal(np.asarray(store.features), chunk[1])
    np.testing.assert_array_equal(np.asarray(store.meta), chunk[4])
    assert store.feature_margin == pytest.approx(1e-7)
    store.verify()
    # reopened via CURRENT
    again = CorpusStore.open(root)
    assert again.generation == 0
    assert list(again.ids) == list(store.ids)


def test_checksum_corruption_detected(tmp_path):
    root = str(tmp_path)
    store, _ = _write_generation(root, rows=6)
    target = os.path.join(store.directory, store.manifest.segments[0]
                          .files["features"]["file"])
    with open(target, "r+b") as handle:
        handle.seek(0)
        handle.write(b"\xff\xff\xff\xff")
    with pytest.raises(StoreError, match="checksum"):
        CorpusStore.open(root).verify()


def test_generation_lifecycle_and_prune(tmp_path):
    root = str(tmp_path)
    base, _ = _write_generation(root, 0, rows=5)
    for generation in (1, 2, 3):
        base, _ = _write_generation(root, generation, rows=3,
                                    seed=generation, inherit_from=base)
    assert list_generations(root) == [0, 1, 2, 3]
    assert current_generation(root) == 3
    removed = prune_generations(root, keep=2)
    assert removed == [0, 1]
    assert list_generations(root) == [2, 3]
    # CURRENT is never pruned, even with keep=1 pointing elsewhere
    activate_generation(root, 2)
    removed = prune_generations(root, keep=1)
    assert 2 not in removed
    assert current_generation(root) == 2


def test_inheritance_hard_links_and_rows(tmp_path):
    root = str(tmp_path)
    base, _ = _write_generation(root, 0, rows=8)
    child, _ = _write_generation(root, 1, rows=4, seed=1,
                                 inherit_from=base)
    assert child.rows == 12
    assert len(child.ids) == 12
    # inherited segment files share inodes (O(new rows) bytes written)
    name = base.manifest.segments[0].files["normalized"]["file"]
    src = os.stat(os.path.join(base.directory, name))
    dst = os.stat(os.path.join(child.directory, name))
    assert src.st_ino == dst.st_ino
    child.verify()
    # first 8 rows are byte-identical to the base generation
    np.testing.assert_array_equal(
        np.asarray(child.normalized)[:8], np.asarray(base.normalized)
    )


def test_duplicate_ids_rejected_across_generations(tmp_path):
    root = str(tmp_path)
    base, _ = _write_generation(root, 0, rows=4)
    writer = GenerationWriter(
        root, 1, normal_length=16, n_features=4, metric="euclidean",
        kind="melody", inherit_from=base,
    )
    with pytest.raises(StoreError, match="duplicate id"):
        writer.add_ids([base.ids[0]])


def test_schema_mismatch_refuses_inherit(tmp_path):
    root = str(tmp_path)
    base, _ = _write_generation(root, 0, rows=4)
    with pytest.raises(StoreError, match="schema mismatch"):
        GenerationWriter(root, 1, normal_length=32, n_features=4,
                         metric="euclidean", kind="melody",
                         inherit_from=base)


def test_unsealed_leftovers_reclaimed_sealed_collision_raises(tmp_path):
    root = str(tmp_path)
    _write_generation(root, 0, rows=4)
    # a writer that dies before seal leaves a manifest-less directory
    GenerationWriter(root, 1, normal_length=16, n_features=4,
                     metric="euclidean", kind="melody")
    assert os.path.isdir(os.path.join(root, generation_dirname(1)))
    assert list_generations(root) == [0]  # not listed: no manifest
    # a fresh writer reclaims the garbage and can seal normally
    store, _ = _write_generation(root, 1, rows=3, seed=7)
    store.verify()
    # but a *sealed* generation is immutable — colliding is an error
    with pytest.raises(StoreError, match="already exists"):
        GenerationWriter(root, 1, normal_length=16, n_features=4,
                         metric="euclidean", kind="melody")


def test_activation_is_atomic_pointer_swap(tmp_path):
    root = str(tmp_path)
    _write_generation(root, 0, rows=4)
    _write_generation(root, 1, rows=4, seed=1, activate=False)
    assert current_generation(root) == 0
    activate_generation(root, 1)
    assert current_generation(root) == 1
    with pytest.raises(StoreError):
        activate_generation(root, 9)  # no such sealed generation


def test_manifest_config_round_trip(tmp_path):
    root = str(tmp_path)
    writer = GenerationWriter(
        root, 0, normal_length=16, n_features=4, metric="euclidean",
        kind="melody", config={"delta": 0.25, "custom": [1, 2]},
    )
    writer.append(*_chunk(3), ids=["a", "b", "c"])
    store = writer.seal(feature_margin=0.0, extra_config={"extra": True})
    cfg = CorpusStore.open(root, generation=0).manifest.config
    assert cfg["delta"] == 0.25
    assert cfg["custom"] == [1, 2]
    assert cfg["extra"] is True


def test_verify_catches_envelope_violation(tmp_path):
    root = str(tmp_path)
    writer = GenerationWriter(
        root, 0, normal_length=16, n_features=4, metric="euclidean",
        kind="melody",
    )
    normalized, features, env_lower, env_upper, meta = _chunk(3)
    env_lower = normalized + 0.5  # lower bound above the data: invalid
    writer.append(normalized, features, env_lower, env_upper, meta,
                  ids=["a", "b", "c"])
    writer.seal()
    with pytest.raises(StoreError, match="envelope"):
        CorpusStore.open(root, generation=0).verify()


def test_malformed_current_pointer(tmp_path):
    root = str(tmp_path)
    _write_generation(root, 0, rows=2)
    with open(os.path.join(root, "CURRENT"), "w") as handle:
        handle.write("nonsense")
    with pytest.raises(StoreError, match="CURRENT"):
        current_generation(root)


def test_ids_file_written_and_loaded(tmp_path):
    root = str(tmp_path)
    store, _ = _write_generation(root, 0, rows=3,
                                 ids=["x", 7, ["compound", 1]])
    with open(os.path.join(store.directory, store.manifest.ids_file)) as fh:
        assert json.load(fh) == ["x", 7, ["compound", 1]]
    assert list(CorpusStore.open(root).ids) == ["x", 7, ["compound", 1]]
