"""Tests for ABC-notation export."""

import pytest

from repro.music.corpus import EXAMPLE_PHRASE
from repro.music.melody import Melody
from repro.music.notation import _abc_duration, _abc_pitch, melody_to_abc

from fractions import Fraction


class TestAbcPitch:
    @pytest.mark.parametrize(
        "midi,abc",
        [
            (60, "C"),     # middle C, scientific octave 4
            (61, "^C"),
            (69, "A"),
            (72, "c"),     # octave 5
            (84, "c'"),    # octave 6
            (48, "C,"),
            (36, "C,,"),
        ],
    )
    def test_spelling(self, midi, abc):
        assert _abc_pitch(midi) == abc

    def test_fractional_rounds(self):
        assert _abc_pitch(60.4) == "C"
        assert _abc_pitch(60.6) == "^C"


class TestAbcDuration:
    def test_unit_is_empty(self):
        assert _abc_duration(0.5, Fraction(1, 2)) == ""

    def test_double_unit(self):
        assert _abc_duration(1.0, Fraction(1, 2)) == "2"

    def test_half_unit(self):
        assert _abc_duration(0.25, Fraction(1, 2)) == "/"

    def test_dotted(self):
        assert _abc_duration(0.75, Fraction(1, 2)) == "3/2"


class TestMelodyToAbc:
    def test_headers_present(self):
        abc = melody_to_abc(Melody([(60, 1)], name="tune"))
        for field in ("X: 1", "T: tune", "M: 4/4", "K: C", "Q: 1/4=100"):
            assert field in abc

    def test_body_notes(self):
        abc = melody_to_abc(Melody([(60, 0.5), (62, 0.5), (64, 1.0)]))
        body = abc.splitlines()[-1]
        assert body.startswith("C D E2")

    def test_barlines_every_four_beats(self):
        abc = melody_to_abc(Melody([(60, 1)] * 8))
        assert abc.count("|") == 2

    def test_example_phrase_renders(self):
        abc = melody_to_abc(EXAMPLE_PHRASE, title="Example")
        assert "T: Example" in abc
        assert "|" in abc
        # every note letter appears
        assert "c" in abc.lower()

    def test_validation(self):
        with pytest.raises(ValueError, match="positive"):
            melody_to_abc(Melody([(60, 1)]), unit_beats=0)

    def test_ends_with_barline_and_newline(self):
        abc = melody_to_abc(Melody([(60, 1.0), (62, 1.0)]))
        assert abc.rstrip().endswith("|")
        assert abc.endswith("\n")
