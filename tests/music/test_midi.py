"""Unit tests for the MIDI substrate."""

import numpy as np
import pytest

from repro.music.melody import Melody
from repro.music.midi import (
    MidiFile,
    MidiNoteEvent,
    _read_vlq,
    _write_vlq,
    melodies_from_midi_bytes,
    melody_to_midi_bytes,
)

import io


class TestVlq:
    @pytest.mark.parametrize(
        "value,encoded",
        [
            (0, b"\x00"),
            (0x40, b"\x40"),
            (0x7F, b"\x7f"),
            (0x80, b"\x81\x00"),
            (0x2000, b"\xc0\x00"),
            (0x0FFFFFFF, b"\xff\xff\xff\x7f"),
        ],
    )
    def test_known_vectors(self, value, encoded):
        """Test vectors straight from the SMF specification."""
        assert _write_vlq(value) == encoded
        assert _read_vlq(io.BytesIO(encoded)) == value

    def test_roundtrip_range(self):
        for value in (0, 1, 127, 128, 300, 50000, 2**21):
            data = _write_vlq(value)
            assert _read_vlq(io.BytesIO(data)) == value

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            _write_vlq(-1)

    def test_truncated_raises(self):
        with pytest.raises(ValueError, match="truncated"):
            _read_vlq(io.BytesIO(b"\x81"))


class TestRoundtrip:
    def test_simple_melody(self):
        m = Melody([(60, 1.0), (62, 0.5), (64, 2.0)])
        data = melody_to_midi_bytes(m)
        back = MidiFile.from_bytes(data).to_melody()
        assert back.pitches().tolist() == [60, 62, 64]
        assert np.allclose(back.durations(), [1.0, 0.5, 2.0], atol=1e-2)

    def test_fractional_pitch_rounded(self):
        m = Melody([(60.4, 1.0)])
        back = MidiFile.from_bytes(melody_to_midi_bytes(m)).to_melody()
        assert back.pitches().tolist() == [60]

    def test_header_fields(self):
        data = melody_to_midi_bytes(Melody([(60, 1)]))
        assert data[:4] == b"MThd"
        midi = MidiFile.from_bytes(data)
        assert midi.division == 480
        assert midi.tempo_us_per_beat == 500000

    def test_channel_preserved(self):
        m = Melody([(60, 1.0)])
        data = melody_to_midi_bytes(m, channel=3)
        midi = MidiFile.from_bytes(data)
        assert midi.notes[0].channel == 3

    def test_convenience_multichannel(self):
        melody = Melody([(60, 1.0), (62, 1.0)])
        out = melodies_from_midi_bytes(melody_to_midi_bytes(melody))
        assert len(out) == 1
        assert out[0].pitches().tolist() == [60, 62]


class TestParsing:
    def test_rejects_garbage(self):
        with pytest.raises(ValueError, match="MThd"):
            MidiFile.from_bytes(b"RIFFxxxx")

    def test_rejects_format2(self):
        import struct
        header = struct.pack(">4sIHHH", b"MThd", 6, 2, 1, 480)
        with pytest.raises(ValueError, match="format 2"):
            MidiFile.from_bytes(header)

    def test_rejects_smpte_division(self):
        import struct
        header = struct.pack(">4sIHHH", b"MThd", 6, 0, 1, 0x8000 | 25)
        with pytest.raises(ValueError, match="SMPTE"):
            MidiFile.from_bytes(header)

    def test_running_status_parsed(self):
        """A track using running status (status byte omitted)."""
        import struct
        track = bytes(
            [
                0x00, 0x90, 60, 90,   # note on C4
                0x60, 62, 90,         # running status: note on D4
                0x60, 60, 0,          # running status: note off C4 (vel 0)
                0x60, 62, 0,          # running status: note off D4
                0x00, 0xFF, 0x2F, 0x00,
            ]
        )
        data = (
            struct.pack(">4sIHHH", b"MThd", 6, 0, 1, 96)
            + struct.pack(">4sI", b"MTrk", len(track))
            + track
        )
        midi = MidiFile.from_bytes(data)
        assert len(midi.notes) == 2
        assert {n.pitch for n in midi.notes} == {60, 62}

    def test_tempo_meta_read(self):
        midi = MidiFile.from_melody(Melody([(60, 1)]))
        midi.tempo_us_per_beat = 400000
        back = MidiFile.from_bytes(midi.to_bytes())
        assert back.tempo_us_per_beat == 400000


class TestMelodyExtraction:
    def test_melody_channel_picks_busiest(self):
        midi = MidiFile()
        for i in range(5):
            midi.notes.append(MidiNoteEvent(0, 60, 90, i * 100, i * 100 + 90))
        midi.notes.append(MidiNoteEvent(1, 40, 90, 0, 480))
        assert midi.melody_channel() == 0

    def test_overlapping_notes_flattened(self):
        midi = MidiFile(division=480)
        midi.notes = [
            MidiNoteEvent(0, 60, 90, 0, 960),
            MidiNoteEvent(0, 64, 90, 480, 960),
        ]
        melody = midi.to_melody(0)
        assert melody.pitches().tolist() == [60, 64]
        assert np.allclose(melody.durations(), [1.0, 1.0])

    def test_empty_channel_raises(self):
        midi = MidiFile()
        midi.notes = [MidiNoteEvent(0, 60, 90, 0, 480)]
        with pytest.raises(ValueError, match="no notes"):
            midi.to_melody(5)

    def test_no_notes_at_all(self):
        with pytest.raises(ValueError, match="no notes"):
            MidiFile().melody_channel()
