"""Property-based tests for the music substrate."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.music.contour import contour_string, edit_distance
from repro.music.melody import Melody
from repro.music.theory import estimate_key, pitch_class_histogram

pitches = st.floats(min_value=36, max_value=96, allow_nan=False)
durations = st.floats(min_value=0.1, max_value=4.0, allow_nan=False)
note_lists = st.lists(st.tuples(pitches, durations), min_size=2, max_size=30)


@given(note_lists)
def test_time_series_length_tracks_beats(notes):
    melody = Melody(notes)
    series = melody.to_time_series(8)
    # Every note contributes at least one sample and about 8/beat.
    assert series.size >= len(melody)
    assert abs(series.size - melody.total_beats * 8) <= len(melody)


@given(note_lists, st.floats(-12, 12, allow_nan=False))
def test_transposition_preserves_contour(notes, shift):
    melody = Melody(notes)
    assert contour_string(melody) == contour_string(melody.transpose(shift))


@given(note_lists, st.floats(0.25, 4.0, allow_nan=False))
def test_tempo_scaling_preserves_pitches_and_ratios(notes, factor):
    melody = Melody(notes)
    scaled = melody.scale_tempo(factor)
    assert np.allclose(scaled.pitches(), melody.pitches())
    assert np.allclose(scaled.durations(), melody.durations() * factor)


@given(note_lists)
def test_roundtrip_through_series_preserves_run_structure(notes):
    melody = Melody(notes)
    series = melody.to_time_series(16)
    back = Melody.from_time_series(series, samples_per_beat=16)
    # Runs of equal pitch merge, so the round trip can only shrink.
    assert len(back) <= len(melody)
    assert back.total_beats == series.size / 16


@given(note_lists)
def test_pitch_class_histogram_is_distribution(notes):
    hist = pitch_class_histogram(Melody(notes))
    assert hist.shape == (12,)
    assert np.all(hist >= 0)
    assert hist.sum() == 1.0 or abs(hist.sum() - 1.0) < 1e-9


@settings(max_examples=30)
@given(note_lists, st.integers(-11, 11))
def test_key_estimate_transposes_with_the_melody(notes, shift):
    melody = Melody(notes)
    tonic_a, mode_a, conf_a = estimate_key(melody)
    tonic_b, mode_b, conf_b = estimate_key(melody.transpose(shift))
    if conf_a > 0.6 and conf_b > 0.6 and mode_a == mode_b:
        assert (tonic_b - tonic_a) % 12 == shift % 12


@given(st.text(alphabet="UDS", max_size=15),
       st.text(alphabet="UDS", max_size=15),
       st.text(alphabet="UDS", max_size=15))
def test_edit_distance_triangle_inequality(a, b, c):
    assert edit_distance(a, c) <= edit_distance(a, b) + edit_distance(b, c)


@given(st.text(alphabet="UDS", max_size=20),
       st.text(alphabet="UDS", max_size=20))
def test_edit_distance_metric_axioms(a, b):
    assert edit_distance(a, b) == edit_distance(b, a)
    assert edit_distance(a, a) == 0
    assert edit_distance(a, b) >= abs(len(a) - len(b))
