"""Tests for corpus analysis."""

import pytest

from repro.music.analysis import CorpusStats, analyze_corpus, find_duplicates
from repro.music.corpus import generate_corpus, segment_corpus
from repro.music.melody import Melody


@pytest.fixture(scope="module")
def corpus():
    return segment_corpus(generate_corpus(8, seed=88), per_song=10)


class TestAnalyzeCorpus:
    def test_counts(self, corpus):
        stats = analyze_corpus(corpus, estimate_keys=False)
        assert stats.n_melodies == len(corpus)
        assert stats.total_notes == sum(len(m) for m in corpus)
        assert stats.mean_notes == pytest.approx(
            stats.total_notes / stats.n_melodies
        )

    def test_pitch_range(self, corpus):
        stats = analyze_corpus(corpus, estimate_keys=False)
        all_pitches = [n.pitch for m in corpus for n in m]
        assert stats.pitch_min == min(all_pitches)
        assert stats.pitch_max == max(all_pitches)

    def test_interval_histogram_total(self):
        melody = Melody([(60, 1), (62, 1), (64, 1)])
        stats = analyze_corpus([melody], estimate_keys=False)
        assert sum(stats.interval_histogram.values()) == 2
        assert stats.interval_histogram[2] == 2

    def test_stepwise_fraction_of_tonal_corpus(self, corpus):
        """Step-biased generation must show in the statistic."""
        stats = analyze_corpus(corpus, estimate_keys=False)
        assert stats.stepwise_fraction() > 0.4

    def test_key_distribution(self, corpus):
        stats = analyze_corpus(corpus[:20], estimate_keys=True)
        assert sum(stats.key_distribution.values()) == 20

    def test_summary_text(self, corpus):
        stats = analyze_corpus(corpus[:10])
        text = stats.summary()
        assert "melodies: 10" in text
        assert "stepwise motion" in text

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="empty"):
            analyze_corpus([])

    def test_empty_stats_defaults(self):
        stats = CorpusStats()
        assert stats.mean_notes == 0.0
        assert stats.stepwise_fraction() == 0.0


class TestFindDuplicates:
    def test_exact_duplicates_grouped(self):
        a = Melody([(60, 1), (62, 1)])
        b = Melody([(60, 1), (62, 1)], name="other")
        c = Melody([(60, 1), (64, 1)])
        groups = find_duplicates([a, b, c])
        assert groups == [[0, 1]]

    def test_no_duplicates(self):
        melodies = [Melody([(60 + i, 1)]) for i in range(5)]
        assert find_duplicates(melodies) == []

    def test_corpus_has_motif_duplicates(self, corpus):
        """Segmenting repetitive songs produces duplicate melodies —
        the tied distances visible in query results."""
        groups = find_duplicates(corpus)
        assert groups  # motif reuse guarantees at least one group
