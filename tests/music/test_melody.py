"""Unit tests for repro.music.melody."""

import numpy as np
import pytest

from repro.music.melody import Melody, Note, hz_to_midi, midi_to_hz


class TestPitchConversion:
    def test_a440(self):
        assert midi_to_hz(69) == pytest.approx(440.0)
        assert hz_to_midi(440.0) == pytest.approx(69.0)

    def test_octave_doubles(self):
        assert midi_to_hz(81) == pytest.approx(880.0)

    def test_roundtrip(self):
        for pitch in (40.0, 60.5, 72.25):
            assert hz_to_midi(midi_to_hz(pitch)) == pytest.approx(pitch)

    def test_rejects_nonpositive_freq(self):
        with pytest.raises(ValueError):
            hz_to_midi(0.0)


class TestNote:
    def test_fields(self):
        note = Note(60, 1.5)
        assert note.pitch == 60
        assert note.duration == 1.5

    def test_name(self):
        assert Note(60, 1).name == "C4"
        assert Note(69, 1).name == "A4"
        assert Note(61, 1).name == "C#4"

    def test_frequency(self):
        assert Note(69, 1).frequency == pytest.approx(440.0)

    def test_validation(self):
        with pytest.raises(ValueError, match="pitch"):
            Note(0, 1)
        with pytest.raises(ValueError, match="duration"):
            Note(60, 0)

    def test_fractional_pitch_allowed(self):
        assert Note(60.4, 1).name == "C4"


class TestMelody:
    def test_from_tuples(self):
        m = Melody([(60, 1), (62, 0.5)])
        assert len(m) == 2
        assert m.notes[1].pitch == 62

    def test_from_notes(self):
        m = Melody([Note(60, 1), Note(64, 2)])
        assert m.total_beats == 3

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="at least one"):
            Melody([])

    def test_equality_and_hash(self):
        a = Melody([(60, 1), (62, 1)])
        b = Melody([(60, 1), (62, 1)], name="other")
        assert a == b  # names do not affect equality
        assert hash(a) == hash(b)

    def test_transpose(self):
        m = Melody([(60, 1)]).transpose(5)
        assert m.notes[0].pitch == 65

    def test_scale_tempo(self):
        m = Melody([(60, 1), (62, 2)]).scale_tempo(0.5)
        assert m.durations().tolist() == [0.5, 1.0]

    def test_scale_tempo_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            Melody([(60, 1)]).scale_tempo(0)

    def test_slice_notes(self):
        m = Melody([(60, 1), (62, 1), (64, 1)])
        assert m.slice_notes(1, 3).pitches().tolist() == [62, 64]

    def test_slice_validation(self):
        m = Melody([(60, 1)])
        with pytest.raises(ValueError):
            m.slice_notes(0, 2)


class TestTimeSeries:
    def test_durations_map_to_samples(self):
        m = Melody([(60, 1), (62, 2)])
        ts = m.to_time_series(samples_per_beat=4)
        assert ts.tolist() == [60] * 4 + [62] * 8

    def test_short_note_kept(self):
        m = Melody([(60, 0.01), (62, 1)])
        ts = m.to_time_series(samples_per_beat=4)
        assert 60 in ts  # at least one sample survives

    def test_roundtrip_from_time_series(self):
        m = Melody([(60, 1), (62, 0.5), (60, 1.5)])
        ts = m.to_time_series(samples_per_beat=8)
        back = Melody.from_time_series(ts, samples_per_beat=8)
        assert back.pitches().tolist() == m.pitches().tolist()
        assert np.allclose(back.durations(), m.durations())

    def test_from_time_series_merges_runs(self):
        back = Melody.from_time_series([1.0, 1.0, 2.0], samples_per_beat=1)
        assert len(back) == 2

    def test_from_time_series_rejects_empty(self):
        with pytest.raises(ValueError):
            Melody.from_time_series([])

    def test_repeated_pitch_distinct_notes_merge(self):
        """Adjacent equal-pitch notes merge in the series representation
        (a known limitation the paper shares: no rest information)."""
        m = Melody([(60, 1), (60, 1)])
        back = Melody.from_time_series(m.to_time_series(4), samples_per_beat=4)
        assert len(back) == 1
        assert back.total_beats == pytest.approx(2.0)
