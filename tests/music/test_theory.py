"""Tests for the music theory utilities."""

import numpy as np
import pytest

from repro.music.corpus import generate_corpus
from repro.music.melody import Melody
from repro.music.theory import (
    estimate_key,
    interval_name,
    key_name,
    pitch_class_histogram,
)


class TestIntervalName:
    @pytest.mark.parametrize(
        "semitones,name",
        [
            (0, "unison"),
            (1, "minor second"),
            (4, "major third"),
            (7, "perfect fifth"),
            (6, "tritone"),
            (12, "octave"),
            (-12, "octave"),
            (24, "2 octaves"),
            (19, "perfect fifth + 1 octave"),
        ],
    )
    def test_names(self, semitones, name):
        assert interval_name(semitones) == name

    def test_symmetric_in_sign(self):
        assert interval_name(-7) == interval_name(7)


class TestPitchClassHistogram:
    def test_sums_to_one(self):
        m = Melody([(60, 1), (64, 2), (67, 1)])
        assert pitch_class_histogram(m).sum() == pytest.approx(1.0)

    def test_duration_weighting(self):
        m = Melody([(60, 3), (62, 1)])
        hist = pitch_class_histogram(m)
        assert hist[0] == pytest.approx(0.75)
        assert hist[2] == pytest.approx(0.25)

    def test_unweighted(self):
        m = Melody([(60, 3), (62, 1)])
        hist = pitch_class_histogram(m, weighted=False)
        assert hist[0] == pytest.approx(0.5)

    def test_octave_equivalence(self):
        m = Melody([(48, 1), (60, 1), (72, 1)])
        hist = pitch_class_histogram(m)
        assert hist[0] == pytest.approx(1.0)

    def test_fractional_pitch_rounded(self):
        m = Melody([(60.4, 1)])
        assert pitch_class_histogram(m)[0] == pytest.approx(1.0)


class TestEstimateKey:
    def test_c_major_scale(self):
        scale = Melody([(60 + s, 1) for s in (0, 2, 4, 5, 7, 9, 11, 12)]
                       + [(60, 2)])
        tonic, mode, confidence = estimate_key(scale)
        assert tonic == 0
        assert mode == "major"
        assert confidence > 0.7

    def test_a_minor_scale(self):
        scale = Melody([(57 + s, 1) for s in (0, 2, 3, 5, 7, 8, 10, 12)]
                       + [(57, 2)])
        tonic, mode, _ = estimate_key(scale)
        assert tonic == 9
        assert mode == "minor"

    def test_transposition_moves_the_tonic(self):
        base = Melody([(60 + s, 1) for s in (0, 4, 7, 12, 7, 4, 0)])
        tonic_c, _, _ = estimate_key(base)
        tonic_d, _, _ = estimate_key(base.transpose(2))
        assert (tonic_d - tonic_c) % 12 == 2

    def test_generated_corpus_keys_recovered(self):
        """Songs generated in major keys should mostly be detected in
        their own key (pentatonic/minor modes are allowed to disagree
        about the mode but not wildly about the tonic)."""
        songs = [s for s in generate_corpus(30, seed=77) if s.mode == "major"]
        assert songs, "corpus should contain major-mode songs"
        hits = 0
        for song in songs:
            tonic, _, _ = estimate_key(song.melody)
            if tonic == song.key % 12:
                hits += 1
        assert hits / len(songs) >= 0.6

    def test_confidence_bounded(self):
        m = Melody([(60, 1), (61, 1), (62, 1)])
        _, _, confidence = estimate_key(m)
        assert -1.0 <= confidence <= 1.0


class TestKeyName:
    def test_names(self):
        assert key_name(0, "major") == "C major"
        assert key_name(9, "minor") == "A minor"

    def test_validation(self):
        with pytest.raises(ValueError, match="tonic"):
            key_name(12, "major")
        with pytest.raises(ValueError, match="mode"):
            key_name(0, "dorian")
