"""Unit tests for the synthetic song corpus."""

import numpy as np
import pytest

from repro.music.corpus import (
    EXAMPLE_PHRASE,
    SCALES,
    SongGenerator,
    generate_corpus,
    segment_corpus,
)


class TestSongGenerator:
    def test_deterministic_per_seed(self):
        a = SongGenerator(5).song("x")
        b = SongGenerator(5).song("x")
        assert a.melody == b.melody

    def test_different_seeds_differ(self):
        a = SongGenerator(1).song("x")
        b = SongGenerator(2).song("x")
        assert a.melody != b.melody

    def test_pitches_lie_in_scale(self):
        song = SongGenerator(3).song("x")
        degrees = set(SCALES[song.mode])
        for note in song.melody:
            assert (int(note.pitch) - song.key) % 12 in degrees

    def test_phrase_count(self):
        song = SongGenerator(0).song("x", n_phrases=7)
        assert len(song.phrases) == 7

    def test_motif_reuse_happens(self):
        """With 30 phrases some must be repeats of earlier motifs."""
        song = SongGenerator(4).song("x", n_phrases=30)
        sequences = [tuple((n.pitch, n.duration) for n in p) for p in song.phrases]
        assert len(set(sequences)) < len(sequences)

    def test_song_note_count_property(self):
        song = SongGenerator(0).song("x")
        assert song.note_count == len(song.melody)


class TestGenerateCorpus:
    def test_size_and_determinism(self):
        a = generate_corpus(5, seed=9)
        b = generate_corpus(5, seed=9)
        assert len(a) == 5
        assert all(x.melody == y.melody for x, y in zip(a, b))

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            generate_corpus(0)

    def test_names_unique(self):
        songs = generate_corpus(10)
        assert len({s.name for s in songs}) == 10


class TestSegmentCorpus:
    def test_paper_scale(self):
        """50 songs x 20 segments = the paper's 1000 melodies."""
        songs = generate_corpus(50, seed=1)
        melodies = segment_corpus(songs, per_song=20)
        assert len(melodies) == 1000

    def test_note_counts_in_range(self):
        songs = generate_corpus(10, seed=2)
        melodies = segment_corpus(songs, min_notes=15, max_notes=30)
        assert all(15 <= len(m) <= 30 for m in melodies)

    def test_names_carry_song(self):
        songs = generate_corpus(3, seed=0)
        melodies = segment_corpus(songs, per_song=5)
        assert melodies[0].name.startswith("song000#")

    def test_validation(self):
        songs = generate_corpus(2)
        with pytest.raises(ValueError):
            segment_corpus(songs, min_notes=10, max_notes=5)

    def test_deterministic(self):
        songs = generate_corpus(5, seed=6)
        a = segment_corpus(songs, seed=3)
        b = segment_corpus(songs, seed=3)
        assert all(x == y for x, y in zip(a, b))


class TestExamplePhrase:
    def test_shape(self):
        assert len(EXAMPLE_PHRASE) == 12
        assert EXAMPLE_PHRASE.total_beats > 0

    def test_contour_dips_then_rises(self):
        pitches = EXAMPLE_PHRASE.pitches()
        assert pitches[1] < pitches[0]      # opening drop
        assert pitches.max() == pitches[9]  # later climb
