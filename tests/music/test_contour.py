"""Unit tests for the contour baseline."""

import pytest

from repro.music.contour import (
    ContourIndex,
    contour_string,
    edit_distance,
    qgram_count_filter,
    qgram_profile,
)
from repro.music.melody import Melody


class TestContourString:
    def test_three_letter_alphabet(self):
        assert contour_string([60, 62, 62, 58]) == "USD"

    def test_five_letter_alphabet(self):
        # +1 (u), +5 (U), -2 (d), -7 (D), 0 (S)
        s = contour_string([60, 61, 66, 64, 57, 57], levels=5)
        assert s == "uUdDS"

    def test_same_threshold(self):
        assert contour_string([60, 60.3], same_threshold=0.5) == "S"
        assert contour_string([60, 60.7], same_threshold=0.5) == "U"

    def test_melody_input(self):
        m = Melody([(60, 1), (64, 1), (62, 1)])
        assert contour_string(m) == "UD"

    def test_transposition_invariant(self):
        a = contour_string([60, 64, 62, 65])
        b = contour_string([67, 71, 69, 72])
        assert a == b

    def test_needs_two_notes(self):
        with pytest.raises(ValueError, match="two notes"):
            contour_string([60])

    def test_rejects_bad_levels(self):
        with pytest.raises(ValueError, match="3 or 5"):
            contour_string([60, 62], levels=4)


class TestEditDistance:
    @pytest.mark.parametrize(
        "a,b,expected",
        [
            ("", "", 0),
            ("abc", "", 3),
            ("abc", "abc", 0),
            ("kitten", "sitting", 3),
            ("UDS", "UDS", 0),
            ("UDS", "UDD", 1),
            ("UD", "DU", 2),
        ],
    )
    def test_known_values(self, a, b, expected):
        assert edit_distance(a, b) == expected

    def test_symmetry(self):
        assert edit_distance("UUDS", "DS") == edit_distance("DS", "UUDS")

    def test_triangle_inequality(self):
        a, b, c = "UUDSD", "UDSD", "DDSU"
        assert edit_distance(a, c) <= edit_distance(a, b) + edit_distance(b, c)


class TestQgrams:
    def test_profile_counts(self):
        profile = qgram_profile("UUDU", 2)
        assert profile["UU"] == 1
        assert profile["UD"] == 1
        assert profile["DU"] == 1

    def test_short_string_empty_profile(self):
        assert not qgram_profile("U", 2)

    def test_filter_never_false_dismisses(self):
        """Every string within max_edits must pass the filter."""
        query = "UUDSDUDSUU"
        profile = qgram_profile(query, 3)
        for candidate in ("UUDSDUDSUU", "UUDSDUDSU", "UUDSDUDSUD", "UDSDUDSUU"):
            true_dist = edit_distance(query, candidate)
            if true_dist <= 2:
                assert qgram_count_filter(profile, candidate, 3, 2, len(query))

    def test_filter_dismisses_far_strings(self):
        query = "UUUUUUUUUU"
        profile = qgram_profile(query, 3)
        assert not qgram_count_filter(profile, "DDDDDDDDDD", 3, 1, len(query))

    def test_rejects_bad_q(self):
        with pytest.raises(ValueError):
            qgram_profile("UD", 0)


class TestContourIndex:
    @pytest.fixture
    def melodies(self):
        return [
            Melody([(60, 1), (62, 1), (64, 1), (62, 1), (60, 1)], name="a"),
            Melody([(60, 1), (58, 1), (56, 1), (58, 1), (60, 1)], name="b"),
            Melody([(60, 1), (62, 1), (64, 1), (66, 1), (68, 1)], name="c"),
        ]

    def test_rank_self_first(self, melodies):
        index = ContourIndex(melodies)
        ranked = index.rank(contour_string(melodies[1]))
        assert ranked[0][0] == 1
        assert ranked[0][1] == 0

    def test_search_with_filter_matches_rank(self, melodies):
        index = ContourIndex(melodies, q=2)
        query = contour_string(melodies[0])
        matches, verified = index.search(query, max_edits=2)
        full = [(i, d) for i, d in index.rank(query) if d <= 2]
        assert matches == full
        assert verified <= len(melodies)

    def test_rank_of_target(self, melodies):
        index = ContourIndex(melodies)
        assert index.rank_of(contour_string(melodies[2]), 2) == 1

    def test_rank_of_ties_do_not_penalise(self):
        same = Melody([(60, 1), (62, 1)])
        index = ContourIndex([same, same, same])
        assert index.rank_of(contour_string(same), 2) == 1

    def test_rank_of_validates_index(self, melodies):
        index = ContourIndex(melodies)
        with pytest.raises(ValueError, match="out of range"):
            index.rank_of("UD", 99)

    def test_rejects_empty_db(self):
        with pytest.raises(ValueError, match="empty"):
            ContourIndex([])
