"""Property/fuzz tests for the MIDI parser (failure injection).

A file parser's contract: valid inputs round-trip, arbitrary bytes
never crash with anything other than ``ValueError`` — no hangs, no
index errors, no silent corruption.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.music.melody import Melody
from repro.music.midi import MidiFile, melody_to_midi_bytes


@given(st.binary(max_size=300))
def test_arbitrary_bytes_never_crash(data):
    try:
        MidiFile.from_bytes(data)
    except ValueError:
        pass  # the only acceptable failure mode


@given(st.binary(max_size=120))
def test_truncated_valid_file_never_crashes(data):
    """A valid header followed by garbage must fail cleanly too."""
    melody = Melody([(60, 1.0), (64, 0.5)])
    valid = melody_to_midi_bytes(melody)
    for cut in (10, len(valid) // 2, len(valid) - 1):
        try:
            MidiFile.from_bytes(valid[:cut] + data)
        except ValueError:
            pass


@settings(max_examples=50)
@given(
    st.lists(
        st.tuples(
            st.integers(30, 100),                       # pitch
            st.floats(0.1, 4.0, allow_nan=False),       # duration (beats)
        ),
        min_size=1,
        max_size=40,
    )
)
def test_melody_roundtrip_property(note_specs):
    melody = Melody([(p, round(d, 2)) for p, d in note_specs])
    back = MidiFile.from_bytes(melody_to_midi_bytes(melody)).to_melody()
    assert len(back) == len(melody)
    assert np.array_equal(back.pitches(), np.round(melody.pitches()))
    assert np.allclose(back.durations(), melody.durations(), atol=0.01)


@settings(max_examples=50)
@given(st.integers(0, 2**27 - 1))
def test_vlq_roundtrip_property(value):
    import io

    from repro.music.midi import _read_vlq, _write_vlq

    assert _read_vlq(io.BytesIO(_write_vlq(value))) == value


@given(st.integers(1, 15), st.integers(1, 960))
def test_channel_and_division_roundtrip(channel, division):
    melody = Melody([(60, 1.0)])
    midi = MidiFile.from_melody(melody, channel=channel, division=division)
    back = MidiFile.from_bytes(midi.to_bytes())
    assert back.division == division
    assert back.notes[0].channel == channel
