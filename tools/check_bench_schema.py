#!/usr/bin/env python
"""Validate the benchmark-history file against its schema.

CI runs the gate's data path end to end and then::

    python tools/check_bench_schema.py --history BENCH_history.jsonl

Checks (each is part of the documented history contract — see
``src/repro/perf/history.py`` and ``docs/ARCHITECTURE.md``,
"Telemetry analysis & perf gates"):

One JSON object per line with keys ``schema`` / ``bench`` /
``timestamp_s`` / ``git_sha`` / ``machine`` / ``timings_ms`` /
``context``; the schema tag is a known version; timings are non-empty
maps of non-negative numbers; the machine record carries a
``fingerprint``; timestamps are positive and non-decreasing per bench
(the gate treats file order as time order); contexts are JSON objects.

Exit status 0 = valid, 1 = any violation (printed one per line).
"""

from __future__ import annotations

import argparse
import json
import sys

#: Schema versions this checker understands.
KNOWN_SCHEMAS = (1,)

ENTRY_KEYS = {"schema", "bench", "timestamp_s", "git_sha", "machine",
              "timings_ms", "context"}

#: Benches whose numbers are meaningless without knowing how many
#: cores and how much corpus the run saw: their history contexts must
#: record both, or trajectory comparisons silently mix machine sizes.
SIZED_BENCHES = ("shard", "ingest")

SIZED_CONTEXT_KEYS = ("cpu_count", "corpus_size")


def check_history(path: str, errors: list[str]) -> int:
    """Validate a history JSONL file; returns the number of entries."""
    last_timestamp: dict[str, float] = {}
    entries = 0
    with open(path) as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError as exc:
                errors.append(f"{path}:{lineno}: not JSON ({exc})")
                continue
            if not isinstance(entry, dict):
                errors.append(f"{path}:{lineno}: entry is not an object")
                continue
            missing = ENTRY_KEYS - entry.keys()
            if missing:
                errors.append(
                    f"{path}:{lineno}: entry missing keys {sorted(missing)}"
                )
                continue
            entries += 1
            if entry["schema"] not in KNOWN_SCHEMAS:
                errors.append(
                    f"{path}:{lineno}: unknown schema {entry['schema']!r} "
                    f"(known: {list(KNOWN_SCHEMAS)})"
                )
            if not isinstance(entry["bench"], str) or not entry["bench"]:
                errors.append(f"{path}:{lineno}: bench must be a non-empty "
                              f"string, got {entry['bench']!r}")
                continue
            timings = entry["timings_ms"]
            if not isinstance(timings, dict) or not timings:
                errors.append(
                    f"{path}:{lineno}: timings_ms must be a non-empty object"
                )
            else:
                for name, value in timings.items():
                    if not isinstance(value, (int, float)) or value < 0:
                        errors.append(
                            f"{path}:{lineno}: timing {name!r} has bad "
                            f"value {value!r}"
                        )
            machine = entry["machine"]
            if (not isinstance(machine, dict)
                    or not machine.get("fingerprint")):
                errors.append(
                    f"{path}:{lineno}: machine record lacks a fingerprint"
                )
            context = entry["context"]
            if not isinstance(context, dict):
                errors.append(
                    f"{path}:{lineno}: context must be a JSON object"
                )
            elif entry["bench"] in SIZED_BENCHES:
                for key in SIZED_CONTEXT_KEYS:
                    value = context.get(key)
                    if not isinstance(value, int) or value < 1:
                        errors.append(
                            f"{path}:{lineno}: {entry['bench']} context "
                            f"must record a positive integer {key!r}, "
                            f"got {value!r}"
                        )
            timestamp = entry["timestamp_s"]
            if not isinstance(timestamp, (int, float)) or timestamp <= 0:
                errors.append(
                    f"{path}:{lineno}: bad timestamp_s {timestamp!r}"
                )
            else:
                bench = entry["bench"]
                if timestamp < last_timestamp.get(bench, 0.0):
                    errors.append(
                        f"{path}:{lineno}: {bench} timestamps go backwards "
                        f"({timestamp} < {last_timestamp[bench]}) — file "
                        f"order must be time order"
                    )
                last_timestamp[bench] = timestamp
    return entries


def check_snapshot(path: str, errors: list[str],
                   required_sections: tuple[str, ...] = ()) -> None:
    """Validate one ``BENCH_*.json`` snapshot file.

    A snapshot is the document a benchmark writes before it is
    ingested into the history: it must be a JSON object whose
    ``timings_ms`` is a non-empty map of non-negative numbers and
    whose ``workload`` (the comparability context) is a JSON object.
    Optional sections get their own contracts: ``scenarios`` (the
    quality benchmark's per-cell rows — recall/MRR fractions in
    [0, 1], non-negative latencies), ``scaling`` (the shard
    benchmark's per-shard-count throughput points) and ``ingest``
    (the streaming builder's accounting — see
    :func:`check_ingest_section`).  *required_sections* (the
    ``--section`` flag) turns named optional sections into hard
    requirements for this snapshot.
    """
    try:
        with open(path) as handle:
            snapshot = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        errors.append(f"{path}: unreadable snapshot ({exc})")
        return
    if not isinstance(snapshot, dict):
        errors.append(f"{path}: snapshot is not a JSON object")
        return
    for section in required_sections:
        if section not in snapshot:
            errors.append(
                f"{path}: required section {section!r} is missing"
            )
    timings = snapshot.get("timings_ms")
    if not isinstance(timings, dict) or not timings:
        errors.append(f"{path}: timings_ms must be a non-empty object")
    else:
        for name, value in timings.items():
            if not isinstance(value, (int, float)) or value < 0:
                errors.append(
                    f"{path}: timing {name!r} has bad value {value!r}"
                )
    if not isinstance(snapshot.get("workload"), dict):
        errors.append(f"{path}: workload must be a JSON object")
    if "scenarios" in snapshot:
        # The quality benchmark's extra section: one row per
        # (scenario, severity) cell of the degradation matrix.
        scenarios = snapshot["scenarios"]
        if not isinstance(scenarios, list) or not scenarios:
            errors.append(f"{path}: scenarios must be a non-empty list")
        else:
            for i, cell in enumerate(scenarios):
                if not isinstance(cell, dict):
                    errors.append(f"{path}: scenarios[{i}] is not an object")
                    continue
                scenario = cell.get("scenario")
                if not isinstance(scenario, str) or not scenario:
                    errors.append(
                        f"{path}: scenarios[{i}].scenario must be a "
                        f"non-empty string, got {scenario!r}"
                    )
                severity = cell.get("severity")
                if (not isinstance(severity, (int, float))
                        or not 0.0 <= severity <= 1.0):
                    errors.append(
                        f"{path}: scenarios[{i}].severity has bad "
                        f"value {severity!r}"
                    )
                queries = cell.get("queries")
                if not isinstance(queries, int) or queries < 1:
                    errors.append(
                        f"{path}: scenarios[{i}].queries has bad "
                        f"value {queries!r}"
                    )
                for key, value in cell.items():
                    if (key.startswith("recall_at_")
                            or key.startswith("contour_recall_at_")
                            or key == "mrr"):
                        if (not isinstance(value, (int, float))
                                or not 0.0 <= value <= 1.0):
                            errors.append(
                                f"{path}: scenarios[{i}].{key} must be "
                                f"a fraction in [0, 1], got {value!r}"
                            )
                    elif key.endswith("_ms") and value is not None:
                        if not isinstance(value, (int, float)) or value < 0:
                            errors.append(
                                f"{path}: scenarios[{i}].{key} has bad "
                                f"value {value!r}"
                            )
    if "scaling" in snapshot:
        # The shard benchmark's extra section: one point per shard
        # count, each with the shard count and its measured throughput.
        scaling = snapshot["scaling"]
        if not isinstance(scaling, list) or not scaling:
            errors.append(f"{path}: scaling must be a non-empty list")
        else:
            for i, point in enumerate(scaling):
                if not isinstance(point, dict):
                    errors.append(f"{path}: scaling[{i}] is not an object")
                    continue
                for key in ("shards", "qps"):
                    value = point.get(key)
                    if not isinstance(value, (int, float)) or value < 0:
                        errors.append(
                            f"{path}: scaling[{i}].{key} has bad "
                            f"value {value!r}"
                        )
    if "ingest" in snapshot:
        check_ingest_section(path, snapshot["ingest"], errors)


#: Required numeric fields of a snapshot's ``ingest`` section, with
#: their minimum legal values.
INGEST_FIELDS = {
    "rows": 1,
    "rows_per_s": 0,
    "flushes": 1,
    "chunk_rows": 1,
    "peak_buffer_bytes": 0,
    "budget_bytes": 1,
    "feature_margin": 0,
    "swaps": 0,
    "parity_mismatches": 0,
    "false_negatives": 0,
}


def check_ingest_section(path: str, section, errors: list[str]) -> None:
    """Validate the streaming-ingest benchmark's accounting section.

    Beyond field presence/types, two invariants are the actual gates:
    the builder's staging buffers never exceeded the declared budget
    (``peak_buffer_bytes <= budget_bytes``), and the zero-downtime
    swap loop lost nothing (``parity_mismatches`` and
    ``false_negatives`` are both zero).
    """
    if not isinstance(section, dict):
        errors.append(f"{path}: ingest section is not an object")
        return
    for key, floor in INGEST_FIELDS.items():
        value = section.get(key)
        if not isinstance(value, (int, float)) or value < floor:
            errors.append(
                f"{path}: ingest.{key} has bad value {value!r} "
                f"(need a number >= {floor})"
            )
    peak = section.get("peak_buffer_bytes")
    budget = section.get("budget_bytes")
    if (isinstance(peak, (int, float)) and isinstance(budget, (int, float))
            and peak > budget):
        errors.append(
            f"{path}: ingest build exceeded its memory budget "
            f"({peak} > {budget} bytes)"
        )
    for key in ("parity_mismatches", "false_negatives"):
        value = section.get(key)
        if isinstance(value, (int, float)) and value != 0:
            errors.append(
                f"{path}: ingest.{key} must be 0, got {value!r}"
            )
    rebuilds = section.get("swap_rebuild_s")
    if rebuilds is not None:
        if (not isinstance(rebuilds, list)
                or any(not isinstance(v, (int, float)) or v < 0
                       for v in rebuilds)):
            errors.append(
                f"{path}: ingest.swap_rebuild_s must be a list of "
                f"non-negative seconds"
            )
        elif isinstance(section.get("swaps"), int) \
                and len(rebuilds) != section["swaps"]:
            errors.append(
                f"{path}: ingest.swap_rebuild_s has {len(rebuilds)} "
                f"entries for {section['swaps']} swaps"
            )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--history", default="BENCH_history.jsonl",
                        help="history JSONL to validate")
    parser.add_argument("--snapshot", action="append", default=[],
                        metavar="FILE",
                        help="also validate a BENCH_*.json snapshot "
                             "(repeatable)")
    parser.add_argument("--section", action="append", default=[],
                        metavar="NAME",
                        help="require each --snapshot to carry this "
                             "section (e.g. 'ingest'; repeatable)")
    args = parser.parse_args(argv)
    if args.section and not args.snapshot:
        parser.error("--section requires at least one --snapshot")
    errors: list[str] = []
    count = check_history(args.history, errors)
    print(f"{args.history}: {count} entries")
    for snapshot in args.snapshot:
        check_snapshot(snapshot, errors,
                       required_sections=tuple(args.section))
        print(f"{snapshot}: snapshot checked")
    for error in errors:
        print(f"SCHEMA ERROR: {error}", file=sys.stderr)
    if errors:
        return 1
    print("bench-history schema OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
