#!/usr/bin/env python
"""Forbid raw stdlib timers in the engine and perf packages.

All engine and perf-subsystem timing must go through
:mod:`repro.obs.clock` — the single timing source that traces, metrics,
``CascadeStats``, and the benchmark history share.  A raw
``time.perf_counter()`` (or ``time.time()`` / ``time.monotonic()``)
call sneaking into a linted package would produce timings that can
drift from what the observability layer reports, so this grep-style
lint fails CI when one appears outside a comment or docstring.

Usage::

    python tools/lint_timers.py [ROOT]

ROOT defaults to the repository root (the parent of this file's
directory).  Exit status 0 = clean, 1 = violations (printed one per
line as ``path:lineno: matched call``).
"""

from __future__ import annotations

import pathlib
import re
import sys
import tokenize

#: Packages in which raw timers are forbidden.
LINTED_DIRS = ("src/repro/engine", "src/repro/perf", "src/repro/serve",
               "src/repro/shard", "src/repro/store", "src/repro/ingest")

#: The allowed home of the timer wrappers.
ALLOWED_FILES = ("src/repro/obs/clock.py",)

_TIMER_CALL = re.compile(r"\btime\.(?:perf_counter|monotonic|time)\s*\(")


def find_violations(root: pathlib.Path) -> list[tuple[pathlib.Path, int, str]]:
    """All raw-timer call sites in the linted packages under *root*.

    Tokenises each file so matches inside comments and strings (e.g.
    docstrings that *mention* the forbidden call) are ignored — only
    real code hits count.
    """
    violations = []
    allowed = {root / rel for rel in ALLOWED_FILES}
    for rel in LINTED_DIRS:
        for path in sorted((root / rel).rglob("*.py")):
            if path in allowed:
                continue
            with tokenize.open(path) as handle:
                tokens = list(tokenize.generate_tokens(handle.readline))
            code_lines: dict[int, list[str]] = {}
            for tok in tokens:
                if tok.type in (tokenize.COMMENT, tokenize.STRING):
                    continue
                code_lines.setdefault(tok.start[0], []).append(tok.string)
            for lineno in sorted(code_lines):
                joined = "".join(code_lines[lineno])
                match = _TIMER_CALL.search(joined)
                if match:
                    violations.append((path, lineno, match.group(0) + ")"))
    return violations


def main(argv: list[str]) -> int:
    root = pathlib.Path(argv[1]) if len(argv) > 1 else (
        pathlib.Path(__file__).resolve().parent.parent
    )
    violations = find_violations(root)
    for path, lineno, call in violations:
        print(f"{path.relative_to(root)}:{lineno}: raw timer {call} — "
              f"use repro.obs.clock instead")
    if violations:
        return 1
    print(f"timer lint clean: {', '.join(LINTED_DIRS)}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
