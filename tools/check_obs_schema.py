#!/usr/bin/env python
"""Validate exported observability artifacts against their schema.

CI runs a traced query and then::

    python tools/check_obs_schema.py --trace trace.jsonl --metrics metrics.json

Checks (each is part of the documented export contract — see
``docs/ARCHITECTURE.md``, "Observability"):

Trace JSONL — one span object per line with keys ``name`` /
``trace_id`` / ``span_id`` / ``parent_id`` / ``start_s`` /
``duration_s`` / ``attrs``; span ids unique; every non-null parent id
resolves within the same trace; exactly one root per trace and its
name is one of the known root kinds (``query``, ``serve:request``,
``serve:batch``, ``shard:lifecycle``, ``quality:query``); every span
is reachable from the root (no detached subtrees); durations
non-negative; a root's stage spans carry the candidate-accounting
attributes; spans grafted from a worker process (``attrs.remote``
truthy) carry ``shard`` and ``worker_epoch``; ``quality:query``
instant spans carry ``scenario`` / ``severity`` / ``rank`` / ``db``
with severity in [0, 1] and rank in [1, db].

With ``--expect-sharded`` the trace must additionally contain at least
one ``shard:fanout`` span and at least one remote span — the CI proof
that a sharded run really produced one merged cross-process tree.

Metrics JSON — a registry snapshot with ``timestamp_s`` /
``counters`` / ``gauges`` / ``histograms``; counter values numeric and
non-negative; any ``quality.shadow.agreement`` gauge is a fraction in
[0, 1]; each histogram's bucket counts are cumulative, monotonically
non-decreasing, and end at the +Inf bucket equal to ``count``.

Exit status 0 = all given artifacts valid, 1 = any violation (printed).
"""

from __future__ import annotations

import argparse
import json
import sys

SPAN_KEYS = {"name", "trace_id", "span_id", "parent_id", "start_s",
             "duration_s", "attrs"}
STAGE_ATTRS = {"name", "candidates_in", "pruned", "survivors",
               "wall_time_s"}
#: Span names allowed at the root of a trace.  ``query`` covers both
#: the engine and the sharded router; the serve layer roots its own
#: request/batch traces; shard lifecycle events export as instant
#: single-span traces.
ROOT_NAMES = {"query", "serve:request", "serve:batch", "shard:lifecycle",
              "quality:query", "ingest:build", "ingest:rebuild"}
#: Attributes every quality:query instant span must carry — the
#: event the scenario matrix is rebuilt from offline.
QUALITY_ATTRS = {"scenario", "severity", "rank", "db"}
#: Attributes every remote (worker-grafted) span must carry.
REMOTE_ATTRS = {"shard", "worker_epoch"}
SNAPSHOT_KEYS = {"timestamp_s", "counters", "gauges", "histograms"}


def check_trace(path: str, errors: list[str],
                expect_sharded: bool = False) -> int:
    """Validate a span JSONL export; returns the number of spans."""
    spans = []
    with open(path) as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                span = json.loads(line)
            except json.JSONDecodeError as exc:
                errors.append(f"{path}:{lineno}: not JSON ({exc})")
                continue
            missing = SPAN_KEYS - span.keys()
            if missing:
                errors.append(
                    f"{path}:{lineno}: span missing keys {sorted(missing)}"
                )
                continue
            if span["duration_s"] < 0:
                errors.append(f"{path}:{lineno}: negative duration")
            spans.append((lineno, span))

    seen_ids: dict[tuple, int] = {}
    by_trace: dict[object, list[dict]] = {}
    for lineno, span in spans:
        key = (span["trace_id"], span["span_id"])
        if key in seen_ids:
            errors.append(
                f"{path}:{lineno}: duplicate span id {key} "
                f"(first at line {seen_ids[key]})"
            )
        seen_ids[key] = lineno
        by_trace.setdefault(span["trace_id"], []).append(span)

    fanout_spans = 0
    remote_spans = 0
    for trace_id, members in by_trace.items():
        ids = {span["span_id"] for span in members}
        roots = [span for span in members if span["parent_id"] is None]
        if len(roots) != 1:
            errors.append(
                f"{path}: trace {trace_id} has {len(roots)} roots (want 1)"
            )
        elif roots[0]["name"] not in ROOT_NAMES:
            errors.append(
                f"{path}: trace {trace_id} root is "
                f"{roots[0]['name']!r}, not one of {sorted(ROOT_NAMES)}"
            )
        for span in members:
            parent = span["parent_id"]
            if parent is not None and parent not in ids:
                errors.append(
                    f"{path}: trace {trace_id} span {span['span_id']} "
                    f"has unresolved parent {parent}"
                )
            if span["name"].startswith("stage:"):
                missing = STAGE_ATTRS - span["attrs"].keys()
                if missing:
                    errors.append(
                        f"{path}: trace {trace_id} stage span "
                        f"{span['name']!r} missing attrs {sorted(missing)}"
                    )
            if span["name"] == "quality:query":
                missing = QUALITY_ATTRS - span["attrs"].keys()
                if missing:
                    errors.append(
                        f"{path}: trace {trace_id} quality span "
                        f"missing attrs {sorted(missing)}"
                    )
                else:
                    attrs = span["attrs"]
                    if not (0.0 <= attrs["severity"] <= 1.0):
                        errors.append(
                            f"{path}: trace {trace_id} quality span "
                            f"severity {attrs['severity']!r} outside [0, 1]"
                        )
                    if not (1 <= attrs["rank"] <= attrs["db"]):
                        errors.append(
                            f"{path}: trace {trace_id} quality span rank "
                            f"{attrs['rank']!r} outside [1, db="
                            f"{attrs['db']!r}]"
                        )
            if span["name"] == "shard:fanout":
                fanout_spans += 1
            if span["attrs"].get("remote"):
                remote_spans += 1
                missing = REMOTE_ATTRS - span["attrs"].keys()
                if missing:
                    errors.append(
                        f"{path}: trace {trace_id} remote span "
                        f"{span['name']!r} missing attrs {sorted(missing)}"
                    )
        # Connectivity: every span must descend from the root.  Parent
        # resolution alone admits detached cycles (a graft bug would
        # produce spans pointing at each other but not at the tree).
        if len(roots) == 1:
            children: dict[object, list[object]] = {}
            for span in members:
                children.setdefault(span["parent_id"], []).append(
                    span["span_id"]
                )
            reached = set()
            frontier = [roots[0]["span_id"]]
            while frontier:
                span_id = frontier.pop()
                if span_id in reached:
                    continue
                reached.add(span_id)
                frontier.extend(children.get(span_id, ()))
            unreachable = ids - reached
            if unreachable:
                errors.append(
                    f"{path}: trace {trace_id} has {len(unreachable)} "
                    f"span(s) unreachable from the root: "
                    f"{sorted(map(str, unreachable))[:5]}"
                )

    if expect_sharded:
        if fanout_spans == 0:
            errors.append(
                f"{path}: --expect-sharded but no shard:fanout span found"
            )
        if remote_spans == 0:
            errors.append(
                f"{path}: --expect-sharded but no remote (worker) span "
                f"found — did the fan-out collect worker spans?"
            )
    return len(spans)


def check_metrics(path: str, errors: list[str]) -> int:
    """Validate a metrics snapshot; returns the number of metrics."""
    with open(path) as handle:
        try:
            snapshot = json.load(handle)
        except json.JSONDecodeError as exc:
            errors.append(f"{path}: not JSON ({exc})")
            return 0
    missing = SNAPSHOT_KEYS - snapshot.keys()
    if missing:
        errors.append(f"{path}: snapshot missing keys {sorted(missing)}")
        return 0
    for name, value in snapshot["counters"].items():
        if not isinstance(value, (int, float)) or value < 0:
            errors.append(f"{path}: counter {name!r} has bad value {value!r}")
    for name, value in snapshot["gauges"].items():
        # Shadow agreement is a fraction by contract; any other value
        # means the online re-check accounting went wrong.
        if (name.startswith("quality.shadow.agreement")
                and (not isinstance(value, (int, float))
                     or not 0.0 <= value <= 1.0)):
            errors.append(
                f"{path}: gauge {name!r} must be a fraction in [0, 1], "
                f"got {value!r}"
            )
    for name, hist in snapshot["histograms"].items():
        buckets = hist.get("buckets")
        if not buckets or buckets[-1].get("le") != "+Inf":
            errors.append(f"{path}: histogram {name!r} lacks a +Inf bucket")
            continue
        counts = [bucket["count"] for bucket in buckets]
        if any(b < a for a, b in zip(counts, counts[1:])):
            errors.append(
                f"{path}: histogram {name!r} bucket counts not cumulative"
            )
        if counts[-1] != hist.get("count"):
            errors.append(
                f"{path}: histogram {name!r} +Inf bucket {counts[-1]} != "
                f"count {hist.get('count')}"
            )
    return (len(snapshot["counters"]) + len(snapshot["gauges"])
            + len(snapshot["histograms"]))


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--trace", help="span JSONL export to validate")
    parser.add_argument("--metrics", help="metrics snapshot to validate")
    parser.add_argument("--expect-sharded", action="store_true",
                        help="require the trace to contain a shard:fanout "
                             "span and grafted worker spans")
    args = parser.parse_args(argv)
    if not args.trace and not args.metrics:
        parser.error("give --trace and/or --metrics")
    if args.expect_sharded and not args.trace:
        parser.error("--expect-sharded needs --trace")
    errors: list[str] = []
    if args.trace:
        count = check_trace(args.trace, errors,
                            expect_sharded=args.expect_sharded)
        print(f"{args.trace}: {count} spans")
    if args.metrics:
        count = check_metrics(args.metrics, errors)
        print(f"{args.metrics}: {count} metrics")
    for error in errors:
        print(f"SCHEMA ERROR: {error}", file=sys.stderr)
    if errors:
        return 1
    print("observability schema OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
