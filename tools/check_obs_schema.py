#!/usr/bin/env python
"""Validate exported observability artifacts against their schema.

CI runs a traced query and then::

    python tools/check_obs_schema.py --trace trace.jsonl --metrics metrics.json

Checks (each is part of the documented export contract — see
``docs/ARCHITECTURE.md``, "Observability"):

Trace JSONL — one span object per line with keys ``name`` /
``trace_id`` / ``span_id`` / ``parent_id`` / ``start_s`` /
``duration_s`` / ``attrs``; span ids unique; every non-null parent id
resolves within the same trace; exactly one root per trace and it is a
``query`` span; durations non-negative; a root's stage spans carry the
candidate-accounting attributes.

Metrics JSON — a registry snapshot with ``timestamp_s`` /
``counters`` / ``gauges`` / ``histograms``; counter values numeric and
non-negative; each histogram's bucket counts are cumulative,
monotonically non-decreasing, and end at the +Inf bucket equal to
``count``.

Exit status 0 = all given artifacts valid, 1 = any violation (printed).
"""

from __future__ import annotations

import argparse
import json
import sys

SPAN_KEYS = {"name", "trace_id", "span_id", "parent_id", "start_s",
             "duration_s", "attrs"}
STAGE_ATTRS = {"name", "candidates_in", "pruned", "survivors",
               "wall_time_s"}
SNAPSHOT_KEYS = {"timestamp_s", "counters", "gauges", "histograms"}


def check_trace(path: str, errors: list[str]) -> int:
    """Validate a span JSONL export; returns the number of spans."""
    spans = []
    with open(path) as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                span = json.loads(line)
            except json.JSONDecodeError as exc:
                errors.append(f"{path}:{lineno}: not JSON ({exc})")
                continue
            missing = SPAN_KEYS - span.keys()
            if missing:
                errors.append(
                    f"{path}:{lineno}: span missing keys {sorted(missing)}"
                )
                continue
            if span["duration_s"] < 0:
                errors.append(f"{path}:{lineno}: negative duration")
            spans.append((lineno, span))

    seen_ids: dict[tuple, int] = {}
    by_trace: dict[object, list[dict]] = {}
    for lineno, span in spans:
        key = (span["trace_id"], span["span_id"])
        if key in seen_ids:
            errors.append(
                f"{path}:{lineno}: duplicate span id {key} "
                f"(first at line {seen_ids[key]})"
            )
        seen_ids[key] = lineno
        by_trace.setdefault(span["trace_id"], []).append(span)

    for trace_id, members in by_trace.items():
        ids = {span["span_id"] for span in members}
        roots = [span for span in members if span["parent_id"] is None]
        if len(roots) != 1:
            errors.append(
                f"{path}: trace {trace_id} has {len(roots)} roots (want 1)"
            )
        elif roots[0]["name"] != "query":
            errors.append(
                f"{path}: trace {trace_id} root is "
                f"{roots[0]['name']!r}, not 'query'"
            )
        for span in members:
            parent = span["parent_id"]
            if parent is not None and parent not in ids:
                errors.append(
                    f"{path}: trace {trace_id} span {span['span_id']} "
                    f"has unresolved parent {parent}"
                )
            if span["name"].startswith("stage:"):
                missing = STAGE_ATTRS - span["attrs"].keys()
                if missing:
                    errors.append(
                        f"{path}: trace {trace_id} stage span "
                        f"{span['name']!r} missing attrs {sorted(missing)}"
                    )
    return len(spans)


def check_metrics(path: str, errors: list[str]) -> int:
    """Validate a metrics snapshot; returns the number of metrics."""
    with open(path) as handle:
        try:
            snapshot = json.load(handle)
        except json.JSONDecodeError as exc:
            errors.append(f"{path}: not JSON ({exc})")
            return 0
    missing = SNAPSHOT_KEYS - snapshot.keys()
    if missing:
        errors.append(f"{path}: snapshot missing keys {sorted(missing)}")
        return 0
    for name, value in snapshot["counters"].items():
        if not isinstance(value, (int, float)) or value < 0:
            errors.append(f"{path}: counter {name!r} has bad value {value!r}")
    for name, hist in snapshot["histograms"].items():
        buckets = hist.get("buckets")
        if not buckets or buckets[-1].get("le") != "+Inf":
            errors.append(f"{path}: histogram {name!r} lacks a +Inf bucket")
            continue
        counts = [bucket["count"] for bucket in buckets]
        if any(b < a for a, b in zip(counts, counts[1:])):
            errors.append(
                f"{path}: histogram {name!r} bucket counts not cumulative"
            )
        if counts[-1] != hist.get("count"):
            errors.append(
                f"{path}: histogram {name!r} +Inf bucket {counts[-1]} != "
                f"count {hist.get('count')}"
            )
    return (len(snapshot["counters"]) + len(snapshot["gauges"])
            + len(snapshot["histograms"]))


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--trace", help="span JSONL export to validate")
    parser.add_argument("--metrics", help="metrics snapshot to validate")
    args = parser.parse_args(argv)
    if not args.trace and not args.metrics:
        parser.error("give --trace and/or --metrics")
    errors: list[str] = []
    if args.trace:
        count = check_trace(args.trace, errors)
        print(f"{args.trace}: {count} spans")
    if args.metrics:
        count = check_metrics(args.metrics, errors)
        print(f"{args.metrics}: {count} metrics")
    for error in errors:
        print(f"SCHEMA ERROR: {error}", file=sys.stderr)
    if errors:
        return 1
    print("observability schema OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
