"""Vectorised lower-bound kernels for the filter cascade.

Every kernel here evaluates one query against an entire candidate
*matrix* of shape ``(num_candidates, n)`` in a handful of NumPy
operations, instead of the one-pair-at-a-time calls in
:mod:`repro.core.lower_bounds`.  Semantically each kernel agrees with
its scalar counterpart to floating-point precision (the property suite
in ``tests/properties/`` pins this to 1e-9), so the cascade inherits
the no-false-negative guarantee of Theorem 1 / Lemma 2 case by case.

Kernels, cheapest first:

* :func:`lb_first_last_batch` — the corner-cell bound (after Kim et
  al. 2001, specialised to equal-length banded DTW): cells ``(0, 0)``
  and ``(n-1, n-1)`` lie on *every* admissible warping path, so their
  costs alone lower-bound the distance.  Two subtractions per
  candidate.
* :func:`lb_envelope_batch` — distance from each candidate row to one
  fixed band.  With the query's full ``k``-envelope this is LB_Keogh
  (Lemma 2); with a reduced feature envelope and the candidate feature
  matrix it is the Theorem-1 feature-space bound (New_PAA or
  Keogh_PAA, depending on which reduction produced the band).
* :func:`lb_lemire_batch` — Lemire's two-pass LB_Improved (Pattern
  Recognition 2009): the LB_Keogh gaps plus the distance from the
  query to the envelope of each candidate's *projection* onto the
  query envelope.  Never looser than LB_Keogh, still O(n) per
  candidate thanks to vectorised sliding min/max.
"""

from __future__ import annotations

import numpy as np

from ..core.envelope import Envelope

__all__ = [
    "batch_gap_distance",
    "lb_first_last_batch",
    "lb_envelope_batch",
    "lb_lemire_batch",
]

_METRICS = ("euclidean", "manhattan")


def _check_metric(metric: str) -> bool:
    if metric not in _METRICS:
        raise ValueError(f"metric must be one of {_METRICS}, got {metric!r}")
    return metric == "manhattan"


def _as_matrix(candidates, width: int | None = None) -> np.ndarray:
    mat = np.asarray(candidates, dtype=np.float64)
    if mat.ndim != 2:
        raise ValueError(f"candidates must be 2-D, got shape {mat.shape}")
    if width is not None and mat.shape[1] != width:
        raise ValueError(
            f"candidates must have shape (m, {width}), got {mat.shape}"
        )
    return mat


def batch_gap_distance(
    candidates, lower, upper, *, metric: str = "euclidean"
) -> np.ndarray:
    """Distance from each candidate row to the band ``[lower, upper]``.

    The row-wise version of Definition 7: only the parts of each row
    that stick out of the band contribute.  ``lower``/``upper`` are
    length-``n`` vectors shared by all rows.
    """
    manhattan = _check_metric(metric)
    lo = np.asarray(lower, dtype=np.float64)
    hi = np.asarray(upper, dtype=np.float64)
    mat = _as_matrix(candidates, lo.size)
    if lo.shape != hi.shape or lo.ndim != 1:
        raise ValueError("band sides must be 1-D and of equal length")
    gap = np.maximum(lo - mat, 0.0) + np.maximum(mat - hi, 0.0)
    if manhattan:
        return np.sum(gap, axis=1)
    return np.sqrt(np.einsum("ij,ij->i", gap, gap))


def lb_envelope_batch(
    candidates, envelope: Envelope, *, metric: str = "euclidean"
) -> np.ndarray:
    """Vectorised envelope bound: each row against one envelope.

    With the query's full-dimension ``k``-envelope this is LB_Keogh
    (Lemma 2) for every candidate at once; with a container-invariantly
    reduced envelope and the candidates' feature vectors it is the
    paper's Theorem-1 bound.  Matches the scalar
    :func:`repro.core.lower_bounds.lb_keogh` /
    :func:`~repro.core.lower_bounds.lb_envelope_transform` values.
    """
    return batch_gap_distance(
        candidates, envelope.lower, envelope.upper, metric=metric
    )


def lb_first_last_batch(
    query, candidates, *, metric: str = "euclidean"
) -> np.ndarray:
    """Corner-cell bound for equal-length banded DTW, all rows at once.

    Both ``(0, 0)`` and ``(n-1, n-1)`` are on every admissible path of
    the banded DP (paths are anchored at the corners), so the combined
    cost of those two cells lower-bounds the full distance whatever
    the warping.  The cheapest possible screen: O(1) per candidate.
    """
    manhattan = _check_metric(metric)
    q = np.asarray(query, dtype=np.float64)
    mat = _as_matrix(candidates, q.size)
    first = np.abs(q[0] - mat[:, 0])
    if q.size == 1:
        return first
    last = np.abs(q[-1] - mat[:, -1])
    if manhattan:
        return first + last
    return np.sqrt(first * first + last * last)


def _sliding_minmax_rows(mat: np.ndarray, k: int) -> tuple[np.ndarray, np.ndarray]:
    """Per-row sliding min/max over the window ``[i-k, i+k]``.

    ``scipy.ndimage``'s 1-D rank filters with edge replication compute
    exactly the truncated centred window (the replicated edge value is
    itself part of every truncated window), vectorised across rows.
    """
    if k == 0:
        return mat, mat
    from scipy.ndimage import maximum_filter1d, minimum_filter1d

    size = 2 * k + 1
    lower = minimum_filter1d(mat, size=size, axis=1, mode="nearest")
    upper = maximum_filter1d(mat, size=size, axis=1, mode="nearest")
    return lower, upper


def lb_lemire_batch(
    query,
    candidates,
    k: int,
    *,
    q_envelope: Envelope | None = None,
    metric: str = "euclidean",
) -> np.ndarray:
    """Lemire's two-pass LB_Improved for every candidate row.

    First pass: the LB_Keogh gaps of each candidate against the query
    envelope.  Second pass: project each candidate onto that envelope
    and measure how far the *query* sticks out of the projection's own
    ``k``-envelope.  Both gap fields contribute to one distance, so
    ``LB_Keogh <= LB_Improved <= D_LDTW(k)`` pointwise (Lemire 2009,
    Theorem 2 — valid for the banded DP with L1 or L2 ground metric).
    """
    if k < 0:
        raise ValueError(f"band half-width must be >= 0, got {k}")
    manhattan = _check_metric(metric)
    q = np.asarray(query, dtype=np.float64)
    mat = _as_matrix(candidates, q.size)
    if q_envelope is None:
        from ..core.envelope import k_envelope

        q_envelope = k_envelope(q, k)
    lo, hi = q_envelope.lower, q_envelope.upper
    gap1 = np.maximum(lo - mat, 0.0) + np.maximum(mat - hi, 0.0)
    projected = np.clip(mat, lo, hi)
    proj_lower, proj_upper = _sliding_minmax_rows(projected, k)
    gap2 = np.maximum(proj_lower - q, 0.0) + np.maximum(q - proj_upper, 0.0)
    if manhattan:
        return np.sum(gap1, axis=1) + np.sum(gap2, axis=1)
    return np.sqrt(
        np.einsum("ij,ij->i", gap1, gap1) + np.einsum("ij,ij->i", gap2, gap2)
    )
