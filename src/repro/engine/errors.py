"""Typed engine errors.

:class:`QueryAborted` is the cooperative-cancellation signal of the
query path: when a caller passes ``should_abort=`` to
:meth:`~repro.engine.QueryEngine.range_search` /
:meth:`~repro.engine.QueryEngine.knn`, the engine polls the callback
at its natural checkpoints — before every cascade stage and between
refine chunks — and raises this exception the moment it returns true.
An aborted query therefore never produces a *wrong* answer, only no
answer: the serving layer (:mod:`repro.serve`) maps the exception to a
``deadline_exceeded`` outcome, and standalone callers can use it to
bound per-query work (a watchdog, a user hitting cancel, a cooperative
scheduler's time slice).
"""

from __future__ import annotations

__all__ = ["QueryAborted"]


class QueryAborted(RuntimeError):
    """A query was cancelled by its ``should_abort`` callback.

    Attributes
    ----------
    phase:
        Where the engine was when the callback fired — ``"stage:<name>"``
        for a checkpoint before a filter stage, ``"refine"`` for a
        checkpoint between exact-refinement chunks.  Useful to assert
        that cancellation is actually cooperative (the phases seen
        under load cover the whole cascade) and to debug deadlines
        that only ever fire in one place.
    """

    def __init__(self, message: str = "query aborted", *,
                 phase: str | None = None) -> None:
        if phase is not None:
            message = f"{message} (phase: {phase})"
        super().__init__(message)
        self.phase = phase
