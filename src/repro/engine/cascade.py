"""The batched query engine: a cascade of lower-bound filters.

GEMINI's filter-and-refine strategy, production-shaped: an entire
corpus is evaluated through a configurable sequence of increasingly
tight, increasingly expensive lower bounds — each stage vectorised
over a ``(num_candidates, n)`` matrix — and only the candidates no
bound could prune pay for an exact banded DTW, early-abandoned against
the best result found so far.

Stage names, in canonical cost order (:data:`STAGE_ORDER`):

========== ===================================================== ========
name       bound                                                 cost/row
========== ===================================================== ========
first_last corner cells of the banded DP (Kim-style)             O(1)
keogh_paa  Keogh_PAA feature envelope (prior art, §5.2)          O(N)
new_paa    New_PAA feature envelope (Theorem 1, the paper's)     O(N)
lb_keogh   full-dimension query envelope (Lemma 2)               O(n)
lemire     Lemire two-pass LB_Improved (2009 refinement)         O(n)
========== ===================================================== ========

Every stage bound is an individual lower bound on the exact distance,
so pruning against a query radius never loses a true answer; the
engine additionally carries the *running maximum* of all bounds seen
so far per candidate, which makes the effective bound monotonically
non-decreasing along the cascade by construction.  Within the envelope
family the raw bounds are themselves provably ordered::

    keogh_paa <= new_paa <= lb_keogh <= lemire <= exact LDTW

(`tests/properties/` asserts both chains on hundreds of generated
cases).  ``first_last`` is sound but outside that chain — it can beat
or lose to the envelope bounds depending on the data, which is exactly
why the running maximum is kept.

Per-query observability lives in :class:`CascadeStats`: candidates in,
pruned, bound statistics and wall time per stage, plus exact-phase
counters (computed / early-abandoned / skipped refinements).  The same
numbers also flow through the :mod:`repro.obs` layer when an
:class:`~repro.obs.Observability` facade is attached
(``QueryEngine(obs=...)``): every query emits a span tree
(``query → stage:<name> → refine → kernel``) whose attributes are set
from the exact ``CascadeStats``/``StageStats`` fields — so the
exported trace and the returned stats reconcile by construction (see
:meth:`CascadeStats.from_trace`) — and per-stage/per-kernel counters
land in the facade's sharded :class:`~repro.obs.MetricsRegistry`,
which aggregates exactly across the thread-pooled
:meth:`QueryEngine.range_search_many` / :meth:`~QueryEngine.knn_many`
paths.  All timing goes through :mod:`repro.obs.clock` — the lint in
``tools/lint_timers.py`` keeps raw ``time.perf_counter()`` calls out
of this package.
"""

from __future__ import annotations

import hashlib
import heapq
import math
import os
from collections.abc import Sequence
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

import numpy as np

from ..core.envelope import Envelope, k_envelope, warping_width_to_k
from ..core.envelope_transforms import (
    KeoghPAAEnvelopeTransform,
    NewPAAEnvelopeTransform,
)
from ..core.normal_form import NormalForm
from ..dtw.distance import ldtw_distance_batch, ldtw_refiner
from ..dtw.kernels import DEFAULT_BACKEND, KernelStats, get_kernel
from ..index.stats import QueryStats
from ..obs import OBS_DISABLED, Observability
from ..obs.clock import monotonic_s
from .errors import QueryAborted
from .stages import lb_envelope_batch, lb_first_last_batch, lb_lemire_batch

__all__ = ["QueryEngine", "CascadeStats", "StageStats", "STAGE_ORDER",
           "DEFAULT_STAGES", "QueryAborted"]

#: All known stage names, cheapest first.
STAGE_ORDER = ("first_last", "keogh_paa", "new_paa", "lb_keogh", "lemire")

#: The default cascade (Lemire's refinement is opt-in: it costs one
#: more O(n) pass per surviving candidate).
DEFAULT_STAGES = ("first_last", "keogh_paa", "new_paa", "lb_keogh")

#: Guard band against floating-point jitter at the pruning threshold:
#: a bound within this of the radius is never used to prune.
_PRUNE_ATOL = 1e-9


@dataclass
class StageStats:
    """What one filter stage did to the candidate stream.

    ``wall_time_s`` is the stage's elapsed time for one query; when
    stats objects for several queries are merged with ``+`` it becomes
    the *sum* over those queries (per-query stage runs overlap under
    the thread pool, so the sum is CPU-style accumulated time, not
    batch wall time).
    """

    name: str
    candidates_in: int = 0
    pruned: int = 0
    wall_time_s: float = 0.0
    bound_min: float = 0.0
    bound_mean: float = 0.0
    bound_max: float = 0.0

    @property
    def survivors(self) -> int:
        """Candidates passed on to the next stage."""
        return self.candidates_in - self.pruned

    @property
    def prune_rate(self) -> float:
        """Fraction of incoming candidates this stage removed."""
        if self.candidates_in == 0:
            return 0.0
        return self.pruned / self.candidates_in

    def to_dict(self) -> dict:
        """The stage record as a JSON-ready dict (``--stats-json``)."""
        return {
            "name": self.name,
            "candidates_in": self.candidates_in,
            "pruned": self.pruned,
            "survivors": self.survivors,
            "prune_rate": self.prune_rate,
            "wall_time_s": self.wall_time_s,
            "bound_min": self.bound_min,
            "bound_mean": self.bound_mean,
            "bound_max": self.bound_max,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "StageStats":
        """Rebuild a stage record from its :meth:`to_dict` form.

        Derived fields (``survivors``, ``prune_rate``) are recomputed,
        so ``StageStats.from_dict(s.to_dict()) == s`` for the stored
        fields — the round trip the shard tier uses to re-merge
        worker-process stats.
        """
        return cls(
            name=payload["name"],
            candidates_in=payload["candidates_in"],
            pruned=payload["pruned"],
            wall_time_s=payload["wall_time_s"],
            bound_min=payload["bound_min"],
            bound_mean=payload["bound_mean"],
            bound_max=payload["bound_max"],
        )

    def __add__(self, other: "StageStats") -> "StageStats":
        if not isinstance(other, StageStats):
            return NotImplemented
        if other.name != self.name:
            raise ValueError(
                f"cannot merge stage {other.name!r} into {self.name!r}"
            )
        total_in = self.candidates_in + other.candidates_in
        if total_in:
            mean = (
                self.bound_mean * self.candidates_in
                + other.bound_mean * other.candidates_in
            ) / total_in
        else:
            mean = 0.0
        return StageStats(
            name=self.name,
            candidates_in=total_in,
            pruned=self.pruned + other.pruned,
            wall_time_s=self.wall_time_s + other.wall_time_s,
            bound_min=min(self.bound_min, other.bound_min),
            bound_mean=mean,
            bound_max=max(self.bound_max, other.bound_max),
        )


@dataclass
class CascadeStats:
    """Full observability record of one engine query (or a merged batch).

    Attributes
    ----------
    corpus_size:
        Candidates entering the first stage.
    stages:
        One :class:`StageStats` per configured filter stage, in order.
    dtw_computations:
        Exact DTW dynamic programs started during refinement.
    dtw_abandoned:
        How many of those were cut short by early abandoning.
    exact_skipped:
        Survivors never refined because their lower bound already
        exceeded the final answer radius (k-NN best-first stop).
    results:
        Size of the final exact answer.
    exact_time_s:
        Elapsed time of the refinement phase (summed when merged).
    total_time_s:
        **Wall-clock time** of the call that produced this object.
        For a single query, the query's elapsed time.  For the merged
        stats of :meth:`QueryEngine.range_search_many` /
        :meth:`~QueryEngine.knn_many`, the *batch's* elapsed time
        under the thread pool — per-query times overlap there, so
        this is deliberately **not** the sum and is the right
        denominator for batch throughput.
    cpu_time_s:
        **Summed per-query elapsed time** across everything merged
        into this object (equals ``total_time_s`` for a single
        query).  This is the value comparable with the summed
        per-stage ``wall_time_s`` / ``exact_time_s`` fields, and the
        right numerator for per-query cost accounting.
    """

    corpus_size: int = 0
    stages: list[StageStats] = field(default_factory=list)
    dtw_computations: int = 0
    dtw_abandoned: int = 0
    exact_skipped: int = 0
    results: int = 0
    exact_time_s: float = 0.0
    total_time_s: float = 0.0
    cpu_time_s: float = 0.0

    @property
    def exact_candidates(self) -> int:
        """Candidates that survived every filter stage."""
        if self.stages:
            return self.stages[-1].survivors
        return self.corpus_size

    @property
    def pruned_total(self) -> int:
        """Candidates removed by lower bounds alone."""
        return sum(stage.pruned for stage in self.stages)

    def as_query_stats(self) -> QueryStats:
        """Project onto the paper's :class:`~repro.index.stats.QueryStats`."""
        stats = QueryStats(
            candidates=self.exact_candidates,
            dtw_computations=self.dtw_computations,
            results=self.results,
        )
        stats.extra["pruned_by_cascade"] = self.pruned_total
        stats.extra["dtw_abandoned"] = self.dtw_abandoned
        return stats

    def to_dict(self) -> dict:
        """The full record as a JSON-ready dict (``--stats-json``)."""
        return {
            "corpus_size": self.corpus_size,
            "stages": [stage.to_dict() for stage in self.stages],
            "exact_candidates": self.exact_candidates,
            "pruned_total": self.pruned_total,
            "dtw_computations": self.dtw_computations,
            "dtw_abandoned": self.dtw_abandoned,
            "exact_skipped": self.exact_skipped,
            "results": self.results,
            "exact_time_s": self.exact_time_s,
            "total_time_s": self.total_time_s,
            "cpu_time_s": self.cpu_time_s,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "CascadeStats":
        """Rebuild a stats record from its :meth:`to_dict` form.

        Lossless for every stored field (the derived
        ``exact_candidates`` / ``pruned_total`` keys are recomputed
        from the stages), so dicts shipped across a process boundary
        re-merge with ``+`` exactly as live objects would — how the
        shard router keeps ``--stats`` faithful.
        """
        return cls(
            corpus_size=payload["corpus_size"],
            stages=[StageStats.from_dict(s) for s in payload["stages"]],
            dtw_computations=payload["dtw_computations"],
            dtw_abandoned=payload["dtw_abandoned"],
            exact_skipped=payload["exact_skipped"],
            results=payload["results"],
            exact_time_s=payload["exact_time_s"],
            total_time_s=payload["total_time_s"],
            cpu_time_s=payload["cpu_time_s"],
        )

    @classmethod
    def from_trace(cls, spans) -> "CascadeStats":
        """Rebuild a stats record from one query's exported span tree.

        The engine sets every span attribute from the exact
        ``CascadeStats`` / ``StageStats`` fields, so this projection is
        lossless for the counters: ``CascadeStats.from_trace(spans)``
        equals the stats object the query returned (bound statistics
        and timings included).  *spans* may be
        :class:`~repro.obs.Span` objects or their ``to_dict()`` /
        JSONL dicts — one trace, i.e. exactly one root ``query`` span.
        """
        root_attrs = None
        stage_spans = []
        for item in spans:
            if isinstance(item, dict):
                name = item["name"]
                parent = item.get("parent_id")
                start = item.get("start_s", 0.0)
                attrs = item.get("attrs", {})
            else:
                name = item.name
                parent = item.parent_id
                start = item.start_s
                attrs = item.attrs
            if name == "query" and parent is None:
                if root_attrs is not None:
                    raise ValueError("spans contain more than one trace")
                root_attrs = attrs
            elif name.startswith("stage:"):
                stage_spans.append((start, attrs))
        if root_attrs is None:
            raise ValueError("no root 'query' span among the given spans")
        stage_spans.sort(key=lambda pair: pair[0])
        stages = [
            StageStats(
                name=attrs["name"],
                candidates_in=attrs["candidates_in"],
                pruned=attrs["pruned"],
                wall_time_s=attrs["wall_time_s"],
                bound_min=attrs["bound_min"],
                bound_mean=attrs["bound_mean"],
                bound_max=attrs["bound_max"],
            )
            for _, attrs in stage_spans
        ]
        return cls(
            corpus_size=root_attrs["corpus_size"],
            stages=stages,
            dtw_computations=root_attrs["dtw_computations"],
            dtw_abandoned=root_attrs["dtw_abandoned"],
            exact_skipped=root_attrs["exact_skipped"],
            results=root_attrs["results"],
            exact_time_s=root_attrs["exact_time_s"],
            total_time_s=root_attrs["total_time_s"],
            cpu_time_s=root_attrs["cpu_time_s"],
        )

    def __add__(self, other: "CascadeStats") -> "CascadeStats":
        if not isinstance(other, CascadeStats):
            return NotImplemented
        if [s.name for s in self.stages] != [s.name for s in other.stages]:
            raise ValueError("cannot merge stats of different cascades")
        return CascadeStats(
            corpus_size=self.corpus_size + other.corpus_size,
            stages=[a + b for a, b in zip(self.stages, other.stages)],
            dtw_computations=self.dtw_computations + other.dtw_computations,
            dtw_abandoned=self.dtw_abandoned + other.dtw_abandoned,
            exact_skipped=self.exact_skipped + other.exact_skipped,
            results=self.results + other.results,
            exact_time_s=self.exact_time_s + other.exact_time_s,
            total_time_s=self.total_time_s + other.total_time_s,
            cpu_time_s=self.cpu_time_s + other.cpu_time_s,
        )

    def summary(self) -> str:
        """A fixed-width per-stage table for terminals and logs."""
        lines = [
            f"{'stage':<12}{'in':>8}{'pruned':>8}{'left':>8}"
            f"{'rate':>7}{'ms':>9}",
        ]
        for stage in self.stages:
            lines.append(
                f"{stage.name:<12}{stage.candidates_in:>8}{stage.pruned:>8}"
                f"{stage.survivors:>8}{stage.prune_rate:>7.1%}"
                f"{stage.wall_time_s * 1e3:>9.2f}"
            )
        lines.append(
            f"{'exact dtw':<12}{self.exact_candidates:>8}"
            f"{self.exact_skipped:>8}{self.dtw_computations:>8}"
            f"{'':>7}{self.exact_time_s * 1e3:>9.2f}"
        )
        lines.append(
            f"refined {self.dtw_computations} "
            f"(early-abandoned {self.dtw_abandoned}), "
            f"{self.results} results, "
            f"{self.total_time_s * 1e3:.2f} ms total"
        )
        return "\n".join(lines)


def _query_id(q: np.ndarray, kind: str, param, band: int) -> str:
    """Stable 16-hex id of one (query, kind, parameter, band) request.

    A content digest, not a sequence number: replaying the same query
    with the same parameters yields the same id, which is what lets
    ``repro perf replay`` line a workload record up with the trace
    spans of both the recorded and the replayed run.  The DTW backend
    is deliberately excluded — backends must agree on the answer, so
    they share the id.
    """
    digest = hashlib.sha1(q.tobytes())
    digest.update(f"|{kind}|{param!r}|{band}".encode())
    return digest.hexdigest()[:16]


def _query_span_attrs(stats: CascadeStats) -> dict:
    """Root-span attributes, taken verbatim from the finished stats.

    Together with the per-stage span attributes this makes the trace a
    lossless projection of the stats — see
    :meth:`CascadeStats.from_trace`.
    """
    return {
        "corpus_size": stats.corpus_size,
        "dtw_computations": stats.dtw_computations,
        "dtw_abandoned": stats.dtw_abandoned,
        "exact_skipped": stats.exact_skipped,
        "results": stats.results,
        "exact_time_s": stats.exact_time_s,
        "total_time_s": stats.total_time_s,
        "cpu_time_s": stats.cpu_time_s,
    }


def _maybe_abort(should_abort, phase: str) -> None:
    """Cooperative-cancellation checkpoint: poll the callback, if any.

    Raises :class:`~repro.engine.errors.QueryAborted` tagged with
    *phase* the moment the callback returns true.  Checkpoints sit
    before every cascade stage and between refine chunks, so an abort
    (e.g. a missed serving deadline) cuts work short without ever
    producing a partial — and therefore possibly wrong — answer.
    """
    if should_abort is not None and should_abort():
        raise QueryAborted(phase=phase)


def _kernel_snapshot(ks: KernelStats | None):
    """Counter snapshot for span attribution (``None`` when untracked)."""
    if ks is None:
        return None
    return (ks.calls, ks.rows, ks.cells, ks.compacted_columns)


def _set_kernel_span(span, ks: KernelStats | None, before) -> None:
    """Attribute the kernel work done since *before* to *span*."""
    if before is None:
        return
    span.set(
        calls=ks.calls - before[0],
        rows=ks.rows - before[1],
        cells=ks.cells - before[2],
        compacted_columns=ks.compacted_columns - before[3],
    )


class _QueryContext:
    """Per-query precomputations, built lazily stage by stage."""

    __slots__ = ("q", "band", "_q_env", "_reduced", "_engine", "_refine",
                 "kernel_stats")

    def __init__(self, engine: "QueryEngine", q: np.ndarray) -> None:
        self._engine = engine
        self.q = q
        self.band = engine.band
        self._q_env: Envelope | None = None
        self._reduced: dict[str, Envelope] = {}
        self._refine = None
        # Kernel work counters are collected only when observability is
        # on: the kernels' per-row/per-diagonal accounting is cheap but
        # not free, and nothing reads it otherwise.
        self.kernel_stats = KernelStats() if engine.obs.enabled else None

    @property
    def q_envelope(self) -> Envelope:
        if self._q_env is None:
            self._q_env = k_envelope(self.q, self.band)
        return self._q_env

    @property
    def refine(self):
        """Prepared single-pair exact refiner (query converted once)."""
        if self._refine is None:
            self._refine = ldtw_refiner(
                self.q, self.band, metric=self._engine.metric,
                backend=self._engine.dtw_backend,
                kernel_stats=self.kernel_stats,
            )
        return self._refine

    def reduced(self, name: str) -> Envelope:
        if name not in self._reduced:
            transform = self._engine._env_transforms[name]
            self._reduced[name] = transform.reduce(self.q_envelope)
        return self._reduced[name]


class QueryEngine:
    """Batched filter-cascade search over a fixed-length series corpus.

    Parameters
    ----------
    corpus:
        Sequence of series.  With a *normal_form* they may have any
        lengths (each is normalised); without one they must already
        share a common length and be comparable as-is.
    delta / band:
        The DTW constraint, as a warping width ``(2k+1)/n`` or
        directly as the band half-width ``k`` (give exactly one).
    stages:
        Filter stages to run, in order; see :data:`STAGE_ORDER`.  An
        empty tuple degenerates to an exact scan (the ablation
        baseline).
    n_features:
        Dimensionality of the PAA feature stages.
    normal_form:
        Optional normalisation applied to the corpus and every query.
    ids:
        Optional identifiers, default ``range(len(corpus))``.
    metric:
        ``"euclidean"`` (default) or ``"manhattan"``.
    batch_refine_threshold:
        Range queries with at least this many surviving candidates are
        refined with one batched kernel call (per-candidate abandoning
        against epsilon, same result set) instead of a per-candidate
        refine loop.
    dtw_backend:
        DTW kernel backend for exact refinement (see
        :mod:`repro.dtw.kernels`): ``"vectorized"`` (default) or
        ``"scalar"``; both return identical results.
    refine_chunk:
        How many candidates the k-NN best-first loop refines per
        kernel call.  Larger chunks amortise dispatch overhead via the
        batched kernel but update the shrinking answer radius less
        often.  Default: 32 for batch-capable backends, 1 for
        ``"scalar"``.
    workers:
        Default thread count for :meth:`range_search_many` /
        :meth:`knn_many` (``None`` = one thread per CPU, capped by the
        batch size).
    obs:
        An :class:`~repro.obs.Observability` facade.  When given,
        every query emits a span tree
        (``query → stage:<name> → refine → kernel``), folds its
        :class:`CascadeStats` and kernel work counters into the
        facade's metrics registry, and participates in its slow-query
        log.  Default ``None`` uses the shared disabled facade
        (:data:`repro.obs.OBS_DISABLED`) whose hooks return
        immediately.
    """

    def __init__(
        self,
        corpus: Sequence,
        *,
        delta: float | None = None,
        band: int | None = None,
        stages: Sequence[str] = DEFAULT_STAGES,
        n_features: int = 8,
        normal_form: NormalForm | None = None,
        ids: Sequence | None = None,
        metric: str = "euclidean",
        batch_refine_threshold: int = 64,
        dtw_backend: str | None = None,
        refine_chunk: int | None = None,
        workers: int | None = None,
        obs: Observability | None = None,
    ) -> None:
        self.obs = OBS_DISABLED if obs is None else obs
        if metric not in ("euclidean", "manhattan"):
            raise ValueError(
                f"metric must be 'euclidean' or 'manhattan', got {metric!r}"
            )
        if not len(corpus):
            raise ValueError("corpus must not be empty")
        stages = tuple(stages)
        unknown = [s for s in stages if s not in STAGE_ORDER]
        if unknown:
            raise ValueError(
                f"unknown stages {unknown}; choose from {STAGE_ORDER}"
            )
        if len(set(stages)) != len(stages):
            raise ValueError(f"duplicate stages in {stages}")
        self.normal_form = normal_form
        if normal_form is not None:
            data = np.vstack([normal_form.apply(s) for s in corpus])
        else:
            # A float32 corpus (the columnar store's memory-mapped
            # columns) is kept as-is: every stage mixes it with float64
            # query arrays, and float32 → float64 promotion is exact,
            # so bounds and refinement are bitwise identical to an
            # upcast copy at half the resident memory.
            data = np.asarray(corpus)
            if data.dtype != np.float32:
                data = np.asarray(corpus, dtype=np.float64)
            if data.ndim != 2:
                raise ValueError(
                    "corpus series must share one length "
                    "(or pass a fixed-length normal_form)"
                )
        self._data = data
        m, n = data.shape
        if (band is None) == (delta is None):
            raise ValueError("give exactly one of band= or delta=")
        if band is None:
            band = warping_width_to_k(delta, n)
        if band < 0:
            raise ValueError(f"band half-width must be >= 0, got {band}")
        self.band = int(band)
        self.metric = metric
        self.stages = stages
        self.batch_refine_threshold = int(batch_refine_threshold)
        backend = DEFAULT_BACKEND if dtw_backend is None else dtw_backend
        get_kernel(backend)  # validate the name now, not at query time
        self.dtw_backend = backend
        if refine_chunk is None:
            refine_chunk = 1 if backend == "scalar" else 32
        if refine_chunk < 1:
            raise ValueError(f"refine_chunk must be >= 1, got {refine_chunk}")
        self.refine_chunk = int(refine_chunk)
        if workers is not None and workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        if ids is None:
            ids = list(range(m))
        else:
            ids = list(ids)
            if len(ids) != m:
                raise ValueError(f"{m} series but {len(ids)} ids")
        self.ids = ids
        n_features = min(n_features, n)
        self._env_transforms = {
            "keogh_paa": KeoghPAAEnvelopeTransform(n, n_features, metric=metric),
            "new_paa": NewPAAEnvelopeTransform(n, n_features, metric=metric),
        }
        # Both feature stages share the PAA series transform, so one
        # feature matrix serves both reduced envelopes.
        self._features = (
            self._env_transforms["new_paa"].transform.transform_batch(data)
        )

    def __len__(self) -> int:
        return self._data.shape[0]

    @property
    def series_length(self) -> int:
        return self._data.shape[1]

    def _normalise_query(self, query) -> np.ndarray:
        if self.normal_form is not None:
            return self.normal_form.apply(query)
        q = np.asarray(query, dtype=np.float64)
        if q.shape != (self.series_length,):
            raise ValueError(
                f"query must have length {self.series_length} "
                "(engine built without a normal form)"
            )
        return q

    def _workload(self, qid, query, params: dict, results) -> dict | None:
        """Replayable capture of one served query, or ``None``.

        Built only when the facade has a workload sink attached
        (:attr:`Observability.wants_workload`).  The *raw* query is
        recorded — pre-normalisation — so ``repro perf replay`` walks
        the identical public entry path, normal form included.
        """
        if not self.obs.wants_workload:
            return None
        return {
            "query_id": qid,
            "params": params,
            "backend": self.dtw_backend,
            "band": self.band,
            "query": np.asarray(query, dtype=np.float64).ravel(),
            "results": results,
        }

    def _stage_bounds(
        self, name: str, ctx: _QueryContext, rows: np.ndarray
    ) -> np.ndarray:
        if name == "first_last":
            return lb_first_last_batch(
                ctx.q, self._data[rows], metric=self.metric
            )
        if name in ("keogh_paa", "new_paa"):
            return lb_envelope_batch(
                self._features[rows], ctx.reduced(name), metric=self.metric
            )
        if name == "lb_keogh":
            return lb_envelope_batch(
                self._data[rows], ctx.q_envelope, metric=self.metric
            )
        if name == "lemire":
            return lb_lemire_batch(
                ctx.q,
                self._data[rows],
                self.band,
                q_envelope=ctx.q_envelope,
                metric=self.metric,
            )
        raise ValueError(f"unknown stage {name!r}")  # pragma: no cover

    def _run_stage(
        self,
        name: str,
        ctx: _QueryContext,
        alive: np.ndarray,
        bounds: np.ndarray,
        radius: float,
    ):
        """Evaluate one stage on the live set and prune against *radius*.

        Returns ``(alive, stage, span)``; the span is already closed,
        but its attributes stay writable until the trace is delivered,
        which lets :meth:`knn` fold its seed-radius re-prune into the
        first stage's record *and* span consistently.
        """
        with self.obs.span("stage:" + name) as span:
            started = monotonic_s()
            stage = StageStats(name=name, candidates_in=int(alive.size))
            if alive.size:
                raw = self._stage_bounds(name, ctx, alive)
                bounds[alive] = np.maximum(bounds[alive], raw)
                stage.bound_min = float(raw.min())
                stage.bound_mean = float(raw.mean())
                stage.bound_max = float(raw.max())
                if math.isfinite(radius):
                    keep = bounds[alive] <= radius + _PRUNE_ATOL
                    stage.pruned = int(alive.size - np.count_nonzero(keep))
                    alive = alive[keep]
            stage.wall_time_s = monotonic_s() - started
            span.set(**stage.to_dict())
        return alive, stage, span

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def range_search(
        self, query, epsilon: float, *, should_abort=None
    ) -> tuple[list[tuple[object, float]], CascadeStats]:
        """All series within DTW distance *epsilon*, with stage stats.

        Exact (no false negatives, no false positives): every filter
        stage is a lower bound, and survivors are refined with the
        exact banded DTW.  Results are ``(id, distance)`` pairs sorted
        by distance.

        *should_abort*, when given, is a zero-argument callable polled
        before every stage and between refine chunks; the query raises
        :class:`QueryAborted` as soon as it returns true (cooperative
        cancellation — the serving layer's deadline mechanism).
        """
        if epsilon < 0:
            raise ValueError(f"epsilon must be >= 0, got {epsilon}")
        ctx = _QueryContext(self, self._normalise_query(query))
        m = len(self)
        qid = (_query_id(ctx.q, "range", float(epsilon), self.band)
               if self.obs.enabled else None)
        with self.obs.span(
            "query", kind="range", epsilon=float(epsilon),
            backend=self.dtw_backend, band=self.band, query_id=qid,
        ) as qspan:
            started = monotonic_s()
            stats = CascadeStats(corpus_size=m)
            alive = np.arange(m)
            bounds = np.zeros(m)
            for name in self.stages:
                _maybe_abort(should_abort, "stage:" + name)
                alive, stage, _ = self._run_stage(
                    name, ctx, alive, bounds, float(epsilon)
                )
                stats.stages.append(stage)

            _maybe_abort(should_abort, "refine")
            exact_started = monotonic_s()
            # Best-first order: candidates most likely to be answers
            # first, so a consumer streaming the results sees hits early.
            alive = alive[np.argsort(bounds[alive], kind="stable")]
            results: list[tuple[object, float]] = []
            with self.obs.span("refine", rows=int(alive.size)):
                ks = ctx.kernel_stats
                with self.obs.span(
                    "kernel", backend=self.dtw_backend
                ) as kspan:
                    before = _kernel_snapshot(ks)
                    if alive.size >= self.batch_refine_threshold:
                        dists = ldtw_distance_batch(
                            ctx.q, self._data[alive], self.band,
                            metric=self.metric, upper_bound=epsilon,
                            backend=self.dtw_backend, kernel_stats=ks,
                        )
                        stats.dtw_computations = int(alive.size)
                        stats.dtw_abandoned = int(
                            np.count_nonzero(np.isinf(dists))
                        )
                        for row, dist in zip(alive, dists):
                            if dist <= epsilon:
                                results.append((self.ids[row], float(dist)))
                    else:
                        refine = ctx.refine
                        for row in alive:
                            _maybe_abort(should_abort, "refine")
                            dist = refine(self._data[row], epsilon)
                            stats.dtw_computations += 1
                            if math.isinf(dist):
                                stats.dtw_abandoned += 1
                                continue
                            if dist <= epsilon:
                                results.append((self.ids[row], float(dist)))
                    _set_kernel_span(kspan, ks, before)
            results.sort(key=lambda pair: pair[1])
            stats.results = len(results)
            now = monotonic_s()
            stats.exact_time_s = now - exact_started
            stats.total_time_s = now - started
            stats.cpu_time_s = stats.total_time_s
            qspan.set(**_query_span_attrs(stats))
        self.obs.record_cascade_query(
            "range", stats, ctx.kernel_stats,
            workload=self._workload(qid, query, {"epsilon": float(epsilon)},
                                    results),
        )
        return results, stats

    def knn(
        self, query, k: int, *, should_abort=None
    ) -> tuple[list[tuple[object, float]], CascadeStats]:
        """The *k* nearest series under the banded DTW, with stage stats.

        After the first (cheapest) stage the engine refines the *k*
        most promising candidates to seed a finite answer radius; every
        later stage prunes against the shrinking radius, and surviving
        candidates are refined best-first with early-abandoning DTW —
        the optimal multi-step stop (no unexamined candidate's lower
        bound is below the final k-th distance).

        *should_abort* works as in :meth:`range_search`: polled before
        every stage and before each refine chunk, raising
        :class:`QueryAborted` on the first true return.
        """
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        ctx = _QueryContext(self, self._normalise_query(query))
        m = len(self)
        qid = (_query_id(ctx.q, "knn", int(k), self.band)
               if self.obs.enabled else None)
        with self.obs.span(
            "query", kind="knn", k=int(k),
            backend=self.dtw_backend, band=self.band, query_id=qid,
        ) as qspan:
            started = monotonic_s()
            stats = CascadeStats(corpus_size=m)
            alive = np.arange(m)
            bounds = np.zeros(m)
            best: list[tuple[float, int, object]] = []  # max-heap, negated
            refined = np.zeros(m, dtype=bool)
            exact_time = 0.0
            ks = ctx.kernel_stats

            def radius() -> float:
                return -best[0][0] if len(best) >= k else math.inf

            def push(row: int, dist: float) -> None:
                if math.isinf(dist):
                    stats.dtw_abandoned += 1
                    return
                entry = (-dist, row, self.ids[row])
                if len(best) < k:
                    heapq.heappush(best, entry)
                elif dist < -best[0][0]:
                    heapq.heapreplace(best, entry)

            def refine_rows(rows: np.ndarray) -> None:
                """Refine a chunk with the cutoff frozen at the call.

                A stale (larger) cutoff only costs extra work, never a
                result: any candidate belonging in the final answer has
                a distance at most the final radius, which every
                earlier radius dominates, so it can never be abandoned.
                """
                nonlocal exact_time
                _maybe_abort(should_abort, "refine")
                refined[rows] = True
                cutoff = radius()
                with self.obs.span("refine", rows=int(rows.size)):
                    refine_started = monotonic_s()
                    with self.obs.span(
                        "kernel", backend=self.dtw_backend
                    ) as kspan:
                        before = _kernel_snapshot(ks)
                        if rows.size == 1 or self.refine_chunk == 1:
                            for row in rows:
                                row = int(row)
                                dist = ctx.refine(
                                    self._data[row],
                                    None if math.isinf(cutoff) else cutoff,
                                )
                                stats.dtw_computations += 1
                                push(row, dist)
                                cutoff = radius()
                        else:
                            dists = ldtw_distance_batch(
                                ctx.q, self._data[rows], self.band,
                                metric=self.metric,
                                upper_bound=(
                                    None if math.isinf(cutoff) else cutoff
                                ),
                                backend=self.dtw_backend, kernel_stats=ks,
                            )
                            stats.dtw_computations += int(rows.size)
                            for row, dist in zip(rows, dists):
                                push(int(row), float(dist))
                        _set_kernel_span(kspan, ks, before)
                    exact_time += monotonic_s() - refine_started

            for position, name in enumerate(self.stages):
                _maybe_abort(should_abort, "stage:" + name)
                alive, stage, sspan = self._run_stage(
                    name, ctx, alive, bounds, radius()
                )
                stats.stages.append(stage)
                if position == 0 and alive.size:
                    # Seed the answer radius from the k most promising
                    # candidates so later (pricier) stages can prune.
                    seeds = alive[np.argsort(bounds[alive], kind="stable")][:k]
                    refine_rows(seeds)
                    if math.isfinite(radius()):
                        keep = bounds[alive] <= radius() + _PRUNE_ATOL
                        stage.pruned += int(
                            alive.size - np.count_nonzero(keep)
                        )
                        alive = alive[keep]
                        # Keep the closed stage span a faithful
                        # projection of the (just amended) stage stats.
                        sspan.set(
                            pruned=stage.pruned,
                            survivors=stage.survivors,
                            prune_rate=stage.prune_rate,
                        )

            order = alive[np.argsort(bounds[alive], kind="stable")]
            pending = order[~refined[order]]
            position = 0
            while position < pending.size:
                if (len(best) >= k
                        and bounds[pending[position]]
                        >= radius() + _PRUNE_ATOL):
                    stats.exact_skipped += int(pending.size - position)
                    break
                # Grow the chunk only over candidates that still beat
                # the radius as of now; the rest are re-checked next
                # round against the (possibly smaller) radius.
                end = position + 1
                while (end < pending.size
                       and end - position < self.refine_chunk
                       and (len(best) < k
                            or bounds[pending[end]]
                            < radius() + _PRUNE_ATOL)):
                    end += 1
                refine_rows(pending[position:end])
                position = end
            results = sorted(
                ((item, -negd) for negd, _, item in best), key=lambda p: p[1]
            )
            stats.results = len(results)
            now = monotonic_s()
            stats.exact_time_s = exact_time
            stats.total_time_s = now - started
            stats.cpu_time_s = stats.total_time_s
            qspan.set(**_query_span_attrs(stats))
        self.obs.record_cascade_query(
            "knn", stats, ctx.kernel_stats,
            workload=self._workload(qid, query, {"k": int(k)}, results),
        )
        return results, stats

    # ------------------------------------------------------------------
    # batched / parallel serving
    # ------------------------------------------------------------------

    def _resolve_workers(self, workers: int | None, jobs: int) -> int:
        if workers is None:
            workers = self.workers
        if workers is None:
            workers = os.cpu_count() or 1
        elif workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        return max(1, min(int(workers), jobs))

    def _search_many(self, queries, one_query, workers):
        queries = list(queries)
        if not queries:
            raise ValueError("queries must not be empty")
        pool_size = self._resolve_workers(workers, len(queries))
        started = monotonic_s()
        if pool_size == 1:
            outcomes = [one_query(query) for query in queries]
        else:
            # Threads, not processes: every worker shares the corpus
            # matrix and the precomputed PAA features, and the hot
            # paths spend their time in NumPy (GIL released).
            with ThreadPoolExecutor(max_workers=pool_size) as pool:
                outcomes = list(pool.map(one_query, queries))
        all_results = [results for results, _ in outcomes]
        merged = outcomes[0][1]
        for _, stats in outcomes[1:]:
            merged = merged + stats
        # Per-query wall times overlap under the pool: total_time_s
        # reports the batch's true elapsed time, while the summed
        # per-query time survives as cpu_time_s (see CascadeStats).
        merged.total_time_s = monotonic_s() - started
        return all_results, merged

    def range_search_many(
        self, queries, epsilon: float, *, workers: int | None = None,
        should_abort=None,
    ) -> tuple[list[list[tuple[object, float]]], CascadeStats]:
        """Serve a batch of ε-range queries, sharded across threads.

        Returns ``(per_query_results, merged_stats)``: results are in
        query order and identical to one :meth:`range_search` call per
        query; the :class:`CascadeStats` is the per-stage sum over the
        batch with ``total_time_s`` measuring the batch wall clock.

        *should_abort* is shared by every query in the batch: the first
        true return aborts the whole call with :class:`QueryAborted`
        (per-request deadlines belong one level up, in
        :mod:`repro.serve`, where each request owns its own future).
        """
        return self._search_many(
            queries,
            lambda query: self.range_search(
                query, epsilon, should_abort=should_abort
            ),
            workers,
        )

    def knn_many(
        self, queries, k: int, *, workers: int | None = None,
        should_abort=None,
    ) -> tuple[list[list[tuple[object, float]]], CascadeStats]:
        """Serve a batch of k-NN queries, sharded across threads.

        Returns ``(per_query_results, merged_stats)`` in query order;
        answers are identical to sequential :meth:`knn` calls.
        *should_abort* is shared batch-wide, as in
        :meth:`range_search_many`.
        """
        return self._search_many(
            queries,
            lambda query: self.knn(query, k, should_abort=should_abort),
            workers,
        )

    # ------------------------------------------------------------------
    # oracles
    # ------------------------------------------------------------------

    def ground_truth_range(
        self, query, epsilon: float
    ) -> list[tuple[object, float]]:
        """Exact answer by an unfiltered vectorised scan (test oracle)."""
        q = self._normalise_query(query)
        dists = ldtw_distance_batch(
            q, self._data, self.band, metric=self.metric,
            backend=self.dtw_backend,
        )
        results = [
            (item_id, float(dist))
            for item_id, dist in zip(self.ids, dists)
            if dist <= epsilon
        ]
        results.sort(key=lambda pair: pair[1])
        return results

    def ground_truth_knn(self, query, k: int) -> list[tuple[object, float]]:
        """Exact k-NN by an unfiltered vectorised scan (test oracle)."""
        q = self._normalise_query(query)
        dists = ldtw_distance_batch(
            q, self._data, self.band, metric=self.metric,
            backend=self.dtw_backend,
        )
        order = np.argsort(dists, kind="stable")[:k]
        return [(self.ids[i], float(dists[i])) for i in order]
