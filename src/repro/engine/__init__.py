"""Batched query engine: vectorised lower-bound cascade + exact refine.

The production hot path of the library.  :class:`QueryEngine` runs a
whole corpus through a configurable cascade of vectorised DTW lower
bounds (corner cells, Keogh_PAA, New_PAA, full-dimension LB_Keogh,
Lemire's LB_Improved) and early-abandoning exact refinement, and
reports per-stage pruning/observability counters via
:class:`CascadeStats`.  See ``docs/ARCHITECTURE.md`` ("Engine & filter
cascade") for how it slots between the index and qbh layers.
"""

from .cascade import (
    DEFAULT_STAGES,
    STAGE_ORDER,
    CascadeStats,
    QueryEngine,
    StageStats,
)
from .errors import QueryAborted
from .stages import (
    batch_gap_distance,
    lb_envelope_batch,
    lb_first_last_batch,
    lb_lemire_batch,
)

__all__ = [
    "QueryEngine",
    "QueryAborted",
    "CascadeStats",
    "StageStats",
    "STAGE_ORDER",
    "DEFAULT_STAGES",
    "batch_gap_distance",
    "lb_envelope_batch",
    "lb_first_last_batch",
    "lb_lemire_batch",
]
