"""Synthetic time-series families standing in for the UCR archive.

Figure 6 of the paper evaluates lower-bound tightness on 24 datasets
from the UCR Time Series Data Mining Archive, spanning finance,
medicine, industry, astronomy and music.  The archive is not shipped
here, so each family is recreated synthetically with the qualitative
character its name implies (periodic, chaotic, bursty, drifting, ...).
The *heterogeneity* across families is what the experiment needs — the
claim under test is that New_PAA dominates Keogh_PAA on all of them.

Every generator takes ``(n, rng)`` and returns one series of length
``n``; :data:`GENERATORS` maps the paper's dataset numbering to them.
"""

from __future__ import annotations

import zlib
from collections.abc import Callable

import numpy as np

__all__ = ["GENERATORS", "dataset_names", "make_dataset", "random_walks"]

Generator = Callable[[int, np.random.Generator], np.ndarray]


def _t(n: int) -> np.ndarray:
    return np.arange(n, dtype=np.float64)


def sunspot(n: int, rng: np.random.Generator) -> np.ndarray:
    """Solar-cycle-like: rectified slow oscillation, modulated amplitude."""
    t = _t(n)
    period = n / rng.uniform(4, 7)
    amp = 1.0 + 0.5 * np.sin(2 * np.pi * t / (period * 3.7) + rng.uniform(0, 6))
    base = np.abs(np.sin(np.pi * t / period + rng.uniform(0, np.pi))) ** 1.5
    return amp * base + 0.05 * rng.normal(size=n)


def power(n: int, rng: np.random.Generator) -> np.ndarray:
    """Electric load: sharp daily cycle with a weekly dip."""
    t = _t(n)
    day = n / rng.uniform(8, 12)
    daily = np.clip(np.sin(2 * np.pi * t / day), 0, None) ** 0.5
    weekly = 1.0 - 0.4 * (np.sin(2 * np.pi * t / (day * 7)) > 0.7)
    return daily * weekly + 0.08 * rng.normal(size=n)


def spot_exrates(n: int, rng: np.random.Generator) -> np.ndarray:
    """Exchange rates: low-volatility random walk."""
    return np.cumsum(rng.normal(0, 0.3, size=n))


def shuttle(n: int, rng: np.random.Generator) -> np.ndarray:
    """Telemetry: long constant levels with abrupt regime changes."""
    series = np.empty(n)
    level = rng.normal(0, 1)
    i = 0
    while i < n:
        length = int(rng.integers(n // 16 + 1, n // 4 + 2))
        series[i : i + length] = level
        i += length
        level += rng.choice([-2.0, -1.0, 1.0, 2.0])
    return series + 0.05 * rng.normal(size=n)


def water(n: int, rng: np.random.Generator) -> np.ndarray:
    """River levels: seasonal swell plus trend and noise."""
    t = _t(n)
    season = np.sin(2 * np.pi * t / (n / rng.uniform(2, 4)) + rng.uniform(0, 6))
    trend = rng.uniform(-1, 1) * t / n
    return season + trend + 0.15 * rng.normal(size=n)


def chaotic(n: int, rng: np.random.Generator) -> np.ndarray:
    """Logistic-map chaos, lightly smoothed."""
    x = rng.uniform(0.2, 0.8)
    values = np.empty(n)
    for i in range(n):
        x = 3.9 * x * (1.0 - x)
        values[i] = x
    kernel = np.ones(3) / 3.0
    return np.convolve(values, kernel, mode="same")


def streamgen(n: int, rng: np.random.Generator) -> np.ndarray:
    """Piecewise-linear trends with breakpoints."""
    series = np.empty(n)
    value = 0.0
    slope = rng.normal(0, 0.05)
    for i in range(n):
        if rng.random() < 4.0 / n:
            slope = rng.normal(0, 0.05)
        value += slope
        series[i] = value
    return series + 0.1 * rng.normal(size=n)


def ocean(n: int, rng: np.random.Generator) -> np.ndarray:
    """Swell: a few superposed smooth waves."""
    t = _t(n)
    series = np.zeros(n)
    for _ in range(3):
        period = n / rng.uniform(3, 20)
        series += rng.uniform(0.3, 1.0) * np.sin(
            2 * np.pi * t / period + rng.uniform(0, 2 * np.pi)
        )
    return series + 0.05 * rng.normal(size=n)


def tide(n: int, rng: np.random.Generator) -> np.ndarray:
    """Tides: semidiurnal + diurnal constituents."""
    t = _t(n)
    semi = n / rng.uniform(10, 14)
    return (
        np.sin(2 * np.pi * t / semi)
        + 0.5 * np.sin(2 * np.pi * t / (semi * 2.1) + rng.uniform(0, 6))
        + 0.05 * rng.normal(size=n)
    )


def cstr(n: int, rng: np.random.Generator) -> np.ndarray:
    """Reactor: first-order lag chasing random step setpoints."""
    series = np.empty(n)
    state = 0.0
    target = rng.normal(0, 1)
    tau = rng.uniform(0.02, 0.1)
    for i in range(n):
        if rng.random() < 3.0 / n:
            target = rng.normal(0, 1)
        state += tau * (target - state)
        series[i] = state
    return series + 0.03 * rng.normal(size=n)


def winding(n: int, rng: np.random.Generator) -> np.ndarray:
    """Industrial winding: oscillatory AR(2) process."""
    a1, a2 = 1.6, -0.7
    series = np.zeros(n)
    for i in range(2, n):
        series[i] = a1 * series[i - 1] + a2 * series[i - 2] + rng.normal(0, 0.2)
    return series


def dryer2(n: int, rng: np.random.Generator) -> np.ndarray:
    """Hair dryer benchmark: lagged response to a binary input."""
    series = np.zeros(n)
    state = 0.0
    inp = 0.0
    for i in range(n):
        if rng.random() < 8.0 / n:
            inp = rng.choice([0.0, 1.0])
        state += 0.15 * (inp - state)
        series[i] = state + 0.05 * rng.normal()
    return series


def ph_data(n: int, rng: np.random.Generator) -> np.ndarray:
    """pH: plateaus with dosing steps and slow drift."""
    series = np.empty(n)
    level = 7.0
    for i in range(n):
        if rng.random() < 5.0 / n:
            level += rng.choice([-1.0, 1.0]) * rng.uniform(0.5, 1.5)
        level += rng.normal(0, 0.01)
        series[i] = level
    return series + 0.05 * rng.normal(size=n)


def power_plant(n: int, rng: np.random.Generator) -> np.ndarray:
    """Plant output: daily cycle, weekly cycle, slow ramp."""
    t = _t(n)
    day = n / rng.uniform(6, 10)
    return (
        np.sin(2 * np.pi * t / day)
        + 0.3 * np.sin(2 * np.pi * t / (day * 7) + rng.uniform(0, 6))
        + 0.2 * t / n * rng.uniform(-1, 1)
        + 0.1 * rng.normal(size=n)
    )


def balleam(n: int, rng: np.random.Generator) -> np.ndarray:
    """Ball-and-beam: damped oscillations after random kicks."""
    series = np.zeros(n)
    pos, vel = 0.0, 0.0
    for i in range(n):
        if rng.random() < 6.0 / n:
            vel += rng.normal(0, 1.5)
        acc = -0.05 * pos - 0.08 * vel
        vel += acc
        pos += vel
        series[i] = pos
    return series + 0.02 * rng.normal(size=n)


def standard_poor(n: int, rng: np.random.Generator) -> np.ndarray:
    """Equity index: geometric Brownian motion (log price)."""
    returns = rng.normal(0.0003, 0.01, size=n)
    return np.cumsum(returns) * 30.0


def soil_temp(n: int, rng: np.random.Generator) -> np.ndarray:
    """Soil temperature: seasonal wave with damped daily ripple."""
    t = _t(n)
    return (
        np.sin(2 * np.pi * t / n * rng.uniform(1, 2))
        + 0.2 * np.sin(2 * np.pi * t / (n / 30.0))
        + 0.05 * rng.normal(size=n)
    )


def wool(n: int, rng: np.random.Generator) -> np.ndarray:
    """Commodity prices: drifting walk with yearly seasonality."""
    t = _t(n)
    walk = np.cumsum(rng.normal(0, 0.2, size=n))
    return walk + 1.5 * np.sin(2 * np.pi * t / (n / rng.uniform(2, 5)))


def infrasound(n: int, rng: np.random.Generator) -> np.ndarray:
    """Infrasound: quiet background with oscillatory wave packets."""
    t = _t(n)
    series = 0.05 * rng.normal(size=n)
    for _ in range(int(rng.integers(2, 5))):
        centre = rng.uniform(0.1, 0.9) * n
        width = rng.uniform(0.02, 0.08) * n
        envelope = np.exp(-0.5 * ((t - centre) / width) ** 2)
        series += envelope * np.sin(2 * np.pi * t / rng.uniform(4, 10))
    return series


def eeg(n: int, rng: np.random.Generator) -> np.ndarray:
    """EEG: broadband AR(1)-coloured noise."""
    series = np.zeros(n)
    for i in range(1, n):
        series[i] = 0.92 * series[i - 1] + rng.normal(0, 0.4)
    return series


def koski_eeg(n: int, rng: np.random.Generator) -> np.ndarray:
    """Koski EEG: rhythmic alpha-like oscillation, wandering amplitude."""
    t = _t(n)
    period = rng.uniform(8, 14)
    amp = 1.0 + 0.5 * np.sin(2 * np.pi * t / (n / 3.0) + rng.uniform(0, 6))
    return amp * np.sin(2 * np.pi * t / period) + 0.2 * rng.normal(size=n)


def buoy_sensor(n: int, rng: np.random.Generator) -> np.ndarray:
    """Buoy: seasonal signal over a drifting baseline with spikes."""
    t = _t(n)
    base = np.cumsum(rng.normal(0, 0.05, size=n))
    series = base + np.sin(2 * np.pi * t / (n / rng.uniform(3, 6)))
    spikes = rng.random(n) < 3.0 / n
    series[spikes] += rng.normal(0, 3, size=int(spikes.sum()))
    return series


def burst(n: int, rng: np.random.Generator) -> np.ndarray:
    """Burst: near-silence broken by short high-energy events."""
    series = 0.05 * rng.normal(size=n)
    for _ in range(int(rng.integers(2, 6))):
        start = int(rng.integers(0, max(1, n - n // 10)))
        length = int(rng.integers(n // 50 + 1, n // 10 + 2))
        series[start : start + length] += rng.normal(0, 2.0, size=min(length, n - start))
    return series


def random_walk(n: int, rng: np.random.Generator) -> np.ndarray:
    """The most-studied indexing benchmark: a standard random walk."""
    return np.cumsum(rng.normal(size=n))


#: Paper's Figure 6 dataset numbering (1-24) to generator.
GENERATORS: dict[str, Generator] = {
    "Sunspot": sunspot,
    "Power": power,
    "Spot_Exrates": spot_exrates,
    "Shuttle": shuttle,
    "Water": water,
    "Chaotic": chaotic,
    "Streamgen": streamgen,
    "Ocean": ocean,
    "Tide": tide,
    "CSTR": cstr,
    "Winding": winding,
    "Dryer2": dryer2,
    "Ph_Data": ph_data,
    "Power_Plant": power_plant,
    "Balleam": balleam,
    "Standard_Poor": standard_poor,
    "Soil_Temp": soil_temp,
    "Wool": wool,
    "Infrasound": infrasound,
    "EEG": eeg,
    "Koski_EEG": koski_eeg,
    "Buoy_Sensor": buoy_sensor,
    "Burst": burst,
    "Random_Walk": random_walk,
}


def dataset_names() -> list[str]:
    """The 24 dataset names in the paper's Figure 6 order."""
    return list(GENERATORS)


def make_dataset(
    name: str, count: int, length: int, *, seed: int = 0
) -> np.ndarray:
    """Generate ``count`` series of ``length`` from the named family.

    Deterministic per ``(name, count, length, seed)``.
    """
    if name not in GENERATORS:
        raise KeyError(
            f"unknown dataset {name!r}; choose from {dataset_names()}"
        )
    if count < 1 or length < 1:
        raise ValueError("count and length must be >= 1")
    # zlib.crc32 is stable across processes (str hash() is salted).
    mixed = (zlib.crc32(name.encode()) ^ (seed * 0x9E3779B9)) & 0xFFFFFFFFFFFF
    rng = np.random.default_rng(mixed)
    gen = GENERATORS[name]
    return np.vstack([gen(length, rng) for _ in range(count)])


def random_walks(count: int, length: int, *, seed: int = 0) -> np.ndarray:
    """Batch of random-walk series (Figures 7 and 10)."""
    rng = np.random.default_rng(seed)
    return np.cumsum(rng.normal(size=(count, length)), axis=1)
