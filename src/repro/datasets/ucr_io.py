"""UCR time-series archive file format.

Figure 6 runs on datasets from the UCR Time Series Data Mining Archive
(Keogh & Folias 2002).  The archive itself cannot be bundled, but this
module reads and writes its classic on-disk format — one series per
line, optional class label first, whitespace- or comma-separated — so
a user who has the archive can run the benchmarks on the real data by
pointing the generators at their files.
"""

from __future__ import annotations

import os

import numpy as np

__all__ = ["read_ucr_file", "write_ucr_file", "load_ucr_directory"]


def read_ucr_file(
    path: str | os.PathLike, *, has_labels: bool = True
) -> tuple[np.ndarray, np.ndarray | None]:
    """Read a UCR-format file.

    Parameters
    ----------
    path:
        File with one series per line; fields separated by commas or
        whitespace.
    has_labels:
        Whether the first field of each line is a class label.

    Returns
    -------
    (data, labels)
        ``data`` has shape ``(m, n)``; ``labels`` is a float array of
        length ``m`` or ``None`` when *has_labels* is false.

    Raises
    ------
    ValueError
        On ragged rows, non-numeric fields, or empty files.
    """
    rows: list[list[float]] = []
    labels: list[float] = []
    with open(path) as handle:
        for line_no, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            fields = line.replace(",", " ").split()
            try:
                values = [float(field) for field in fields]
            except ValueError as exc:
                raise ValueError(
                    f"{path}: non-numeric field on line {line_no}"
                ) from exc
            if has_labels:
                if len(values) < 2:
                    raise ValueError(
                        f"{path}: line {line_no} has a label but no samples"
                    )
                labels.append(values[0])
                values = values[1:]
            rows.append(values)
    if not rows:
        raise ValueError(f"{path}: no series found")
    width = len(rows[0])
    if any(len(row) != width for row in rows):
        raise ValueError(f"{path}: ragged rows (expected width {width})")
    data = np.asarray(rows, dtype=np.float64)
    return data, (np.asarray(labels) if has_labels else None)


def write_ucr_file(
    path: str | os.PathLike,
    data,
    labels=None,
    *,
    delimiter: str = ",",
) -> None:
    """Write series (and optional labels) in UCR format."""
    matrix = np.asarray(data, dtype=np.float64)
    if matrix.ndim != 2:
        raise ValueError(f"data must be 2-D, got shape {matrix.shape}")
    if labels is not None:
        labels = np.asarray(labels, dtype=np.float64)
        if labels.shape != (matrix.shape[0],):
            raise ValueError(
                f"need one label per series: {labels.shape} vs "
                f"{matrix.shape[0]} series"
            )
    with open(path, "w") as handle:
        for row_index in range(matrix.shape[0]):
            fields = []
            if labels is not None:
                fields.append(f"{labels[row_index]:g}")
            fields.extend(f"{value:.10g}" for value in matrix[row_index])
            handle.write(delimiter.join(fields) + "\n")


def load_ucr_directory(
    directory: str | os.PathLike, *, has_labels: bool = True
) -> dict[str, np.ndarray]:
    """Load every UCR-format file of a directory, keyed by stem.

    Convenient for re-running Figure 6 on a local copy of the archive:
    each file becomes one named dataset.
    """
    datasets: dict[str, np.ndarray] = {}
    for name in sorted(os.listdir(directory)):
        path = os.path.join(directory, name)
        if not os.path.isfile(path):
            continue
        stem = os.path.splitext(name)[0]
        data, _ = read_ucr_file(path, has_labels=has_labels)
        datasets[stem] = data
    if not datasets:
        raise ValueError(f"no dataset files found in {directory}")
    return datasets
