"""Synthetic dataset families (UCR-archive stand-ins) and random walks."""

from .generators import GENERATORS, dataset_names, make_dataset, random_walks
from .ucr_io import load_ucr_directory, read_ucr_file, write_ucr_file

__all__ = [
    "GENERATORS",
    "dataset_names",
    "make_dataset",
    "random_walks",
    "load_ucr_directory",
    "read_ucr_file",
    "write_ucr_file",
]
