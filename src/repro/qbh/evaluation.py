"""Retrieval-quality evaluation in the paper's table format.

Tables 2 and 3 report, for a battery of hum queries, how many target
melodies were retrieved at rank 1, ranks 2-3, 4-5, 6-10, and beyond 10.
:class:`RankTable` accumulates ranks into those buckets and renders the
rows; :func:`format_rank_tables` lines several configurations up side
by side, which is exactly what the benchmark harness prints.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

__all__ = ["RANK_BUCKETS", "bucket_label", "RankTable", "format_rank_tables"]

#: (low, high, label) — inclusive rank buckets of Tables 2 and 3.
RANK_BUCKETS: tuple[tuple[int, float, str], ...] = (
    (1, 1, "1"),
    (2, 3, "2-3"),
    (4, 5, "4-5"),
    (6, 10, "6-10"),
    (11, math.inf, "10-"),
)


def bucket_label(rank: int) -> str:
    """The table bucket a 1-based rank falls into."""
    if rank < 1:
        raise ValueError(f"ranks are 1-based, got {rank}")
    for low, high, label in RANK_BUCKETS:
        if low <= rank <= high:
            return label
    raise AssertionError("buckets cover all ranks")  # pragma: no cover


@dataclass
class RankTable:
    """Counts of query targets per rank bucket."""

    name: str = ""
    counts: dict[str, int] = field(
        default_factory=lambda: {label: 0 for *_, label in RANK_BUCKETS}
    )
    ranks: list[int] = field(default_factory=list)

    def add(self, rank: int) -> None:
        """Record the rank of one query's intended target."""
        self.counts[bucket_label(rank)] += 1
        self.ranks.append(rank)

    @property
    def total(self) -> int:
        return len(self.ranks)

    @property
    def top1(self) -> int:
        return self.counts["1"]

    def in_top(self, n: int) -> int:
        """How many targets ranked at or better than *n*."""
        return sum(1 for rank in self.ranks if rank <= n)

    def mean_reciprocal_rank(self) -> float:
        """MRR — a modern summary the paper predates but implies."""
        if not self.ranks:
            return 0.0
        return sum(1.0 / rank for rank in self.ranks) / len(self.ranks)


def format_rank_tables(tables: list[RankTable], *, title: str = "") -> str:
    """Render rank tables side by side, one column per configuration.

    Mirrors the layout of Tables 2 and 3: a "Rank" column followed by
    the per-configuration counts.
    """
    if not tables:
        raise ValueError("need at least one rank table")
    headers = ["Rank"] + [table.name or f"cfg{i}" for i, table in enumerate(tables)]
    rows = [headers]
    for *_, label in RANK_BUCKETS:
        rows.append([label] + [str(table.counts[label]) for table in tables])
    rows.append(["MRR"] + [f"{table.mean_reciprocal_rank():.3f}" for table in tables])
    widths = [max(len(row[col]) for row in rows) for col in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    for i, row in enumerate(rows):
        lines.append("  ".join(cell.ljust(widths[c]) for c, cell in enumerate(row)))
        if i == 0:
            lines.append("  ".join("-" * widths[c] for c in range(len(headers))))
    return "\n".join(lines)
