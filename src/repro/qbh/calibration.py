"""Hummer calibration — the paper's stated future work.

The conclusion says the authors are "still working on ... adapting the
system to different hummers".  This module implements that adaptation:
from a handful of *confirmed* query→melody pairs (the user hummed,
then clicked the right answer), it estimates the singer's systematic
biases and corrects future queries before they hit the index.

Estimated biases:

* **interval compression** — timid singers shrink every leap; the
  compression factor is the least-squares slope between the hum's and
  the melody's deviations from their means (shift-invariant, so
  transposition does not pollute the estimate);
* **tempo ratio** — hum duration per melody beat, whose *variance*
  across sessions the normal form already absorbs but whose mean
  reveals a singer who always drags or rushes (useful when querying
  with duration-sensitive settings);
* **drift rate** — semitones of cumulative flat/sharp drift per
  second, removed by counter-rotating the query.

All estimates are robust to a few bad pairs via median aggregation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.series import as_series, uniform_resample
from ..music.melody import Melody

__all__ = ["HummerProfile", "fit_hummer_profile"]


@dataclass(frozen=True)
class HummerProfile:
    """A singer's systematic biases, learned from confirmed matches.

    Attributes
    ----------
    interval_scale:
        Multiplier the singer applies to intervals (1.0 = faithful,
        <1 compressed, >1 exaggerated).
    tempo_ratio:
        Seconds the singer spends per melody beat, divided by the
        nominal seconds-per-beat (1.0 = on tempo).
    drift_per_frame:
        Semitones of linear pitch drift per hum frame.
    n_samples:
        How many confirmed pairs produced the estimate.
    """

    interval_scale: float = 1.0
    tempo_ratio: float = 1.0
    drift_per_frame: float = 0.0
    n_samples: int = 0

    def __post_init__(self) -> None:
        if self.interval_scale <= 0:
            raise ValueError("interval scale must be positive")
        if self.tempo_ratio <= 0:
            raise ValueError("tempo ratio must be positive")

    def correct(self, pitch_series) -> np.ndarray:
        """Undo the singer's biases on a new hum query.

        Removes the linear drift, then rescales deviations from the
        mean by ``1 / interval_scale``.  (Tempo needs no pointwise
        correction — the UTW normal form absorbs it — but the ratio is
        exposed for callers that match on absolute durations.)
        """
        arr = as_series(pitch_series)
        t = np.arange(arr.size, dtype=np.float64)
        corrected = arr - self.drift_per_frame * t
        mean = corrected.mean()
        return mean + (corrected - mean) / self.interval_scale


def _pair_statistics(hum, melody: Melody, tempo_bpm: float,
                     frame_rate: int) -> tuple[float, float, float]:
    """(interval slope, tempo ratio, drift/frame) for one pair."""
    arr = as_series(hum, min_length=4)
    score = melody.to_time_series(8).astype(np.float64)
    # Compare on a common clock.
    length = 128
    hum_norm = uniform_resample(arr, length)
    score_norm = uniform_resample(score, length)
    hum_dev = hum_norm - hum_norm.mean()
    score_dev = score_norm - score_norm.mean()
    denom = float(np.dot(score_dev, score_dev))
    slope = float(np.dot(hum_dev, score_dev)) / denom if denom > 0 else 1.0

    nominal_seconds = melody.total_beats * 60.0 / tempo_bpm
    actual_seconds = arr.size / frame_rate
    ratio = actual_seconds / nominal_seconds if nominal_seconds > 0 else 1.0

    # Drift: slope of the residual after removing the melody shape.
    residual = hum_dev - slope * score_dev
    t = np.arange(length, dtype=np.float64)
    t_dev = t - t.mean()
    drift_norm = float(np.dot(residual, t_dev) / np.dot(t_dev, t_dev))
    # Convert from normal-form samples back to hum frames.
    drift_per_frame = drift_norm * length / arr.size
    return slope, ratio, drift_per_frame


def fit_hummer_profile(
    confirmed_pairs,
    *,
    tempo_bpm: float = 100.0,
    frame_rate: int = 100,
) -> HummerProfile:
    """Estimate a :class:`HummerProfile` from confirmed matches.

    Parameters
    ----------
    confirmed_pairs:
        Iterable of ``(hum_pitch_series, melody)`` pairs the user has
        confirmed as correct matches.
    tempo_bpm:
        Nominal tempo of the melodies (for the tempo-ratio estimate).
    frame_rate:
        Hum frames per second.

    Raises
    ------
    ValueError
        If no pairs are given.
    """
    slopes, ratios, drifts = [], [], []
    for hum, melody in confirmed_pairs:
        slope, ratio, drift = _pair_statistics(hum, melody, tempo_bpm,
                                               frame_rate)
        slopes.append(slope)
        ratios.append(ratio)
        drifts.append(drift)
    if not slopes:
        raise ValueError("need at least one confirmed pair")
    interval_scale = float(np.median(slopes))
    # Guard nonsensical estimates from degenerate pairs.
    interval_scale = min(max(interval_scale, 0.25), 4.0)
    return HummerProfile(
        interval_scale=interval_scale,
        tempo_ratio=float(np.median(ratios)),
        drift_per_frame=float(np.median(drifts)),
        n_samples=len(slopes),
    )
