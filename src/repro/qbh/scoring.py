"""Humming assessment — how well did the user sing the melody?

The paper's conclusion jokes that testers "even improved their singing
as a result" of using the system.  This module makes that a feature:
given a hum and the melody the user was aiming for, align them with
DTW and report *where* the singing deviates — per-note pitch error,
timing stretch, and an overall grade.

The alignment is the constrained warping path between the normal
forms, so the assessment is transposition- and tempo-invariant: only
relative pitch and local timing are graded, exactly the things a
singer can actually fix.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.normal_form import NormalForm
from ..dtw.path import warping_path
from ..music.melody import Melody

__all__ = ["NoteAssessment", "HummingReport", "assess_humming"]


@dataclass(frozen=True)
class NoteAssessment:
    """How one melody note was sung.

    Attributes
    ----------
    index:
        Note position in the melody (0-based).
    expected_interval:
        Semitones from the melody's mean pitch the score asks for.
    sung_interval:
        Semitones from the hum's mean pitch actually produced.
    pitch_error:
        ``sung_interval - expected_interval`` (positive = sharp).
    timing_ratio:
        Sung duration relative to the score (1.0 = on time, >1 held
        too long), measured from the warping-path column counts.
    """

    index: int
    expected_interval: float
    sung_interval: float
    pitch_error: float
    timing_ratio: float


@dataclass
class HummingReport:
    """Overall assessment of one hum against its intended melody."""

    notes: list[NoteAssessment] = field(default_factory=list)
    dtw_distance: float = 0.0

    @property
    def mean_abs_pitch_error(self) -> float:
        if not self.notes:
            return 0.0
        return float(np.mean([abs(n.pitch_error) for n in self.notes]))

    @property
    def worst_note(self) -> NoteAssessment | None:
        if not self.notes:
            return None
        return max(self.notes, key=lambda n: abs(n.pitch_error))

    @property
    def timing_consistency(self) -> float:
        """1.0 = perfectly even timing; lower = erratic note lengths."""
        if not self.notes:
            return 1.0
        ratios = np.array([n.timing_ratio for n in self.notes])
        spread = float(np.std(np.log(np.clip(ratios, 1e-6, None))))
        return float(np.exp(-spread))

    def grade(self) -> str:
        """A letter grade from pitch accuracy and timing consistency.

        A: choir-ready; B: solid; C: recognisable; D: the system will
        still probably find your song; F: hum it again.
        """
        pitch_penalty = self.mean_abs_pitch_error
        timing_penalty = 1.0 - self.timing_consistency
        score = pitch_penalty + 2.0 * timing_penalty
        for threshold, letter in ((0.35, "A"), (0.7, "B"), (1.2, "C"),
                                  (2.0, "D")):
            if score <= threshold:
                return letter
        return "F"


def assess_humming(
    hum_pitches,
    melody: Melody,
    *,
    delta: float = 0.1,
    normal_length: int = 128,
    samples_per_beat: int = 8,
) -> HummingReport:
    """Grade a hum against the melody the user was aiming for.

    Parameters
    ----------
    hum_pitches:
        Frame-level pitch series of the hum (from the pitch tracker or
        a singer model).
    melody:
        The intended melody.
    delta:
        DTW warping width used for the alignment.
    normal_length:
        Normal-form length on which the alignment is computed.
    """
    from ..core.envelope import warping_width_to_k

    nf = NormalForm(length=normal_length, shift=True)
    hum_norm = nf.apply(hum_pitches)
    score_series = melody.to_time_series(samples_per_beat).astype(np.float64)
    score_norm = nf.apply(score_series)
    k = warping_width_to_k(delta, normal_length)
    path = warping_path(score_norm, hum_norm, k=k)
    dtw_distance = float(
        np.sqrt(sum((score_norm[i] - hum_norm[j]) ** 2 for i, j in path))
    )

    # Map each melody note to its stretch of normal-form samples.
    raw_bounds = np.cumsum(
        [max(1, int(round(n.duration * samples_per_beat))) for n in melody]
    )
    total = raw_bounds[-1]
    note_of_sample = np.searchsorted(
        raw_bounds * (normal_length / total), np.arange(normal_length) + 0.5
    )
    np.clip(note_of_sample, 0, len(melody) - 1, out=note_of_sample)

    per_note_hum: dict[int, list[float]] = {}
    per_note_cols: dict[int, set[int]] = {}
    per_note_rows: dict[int, set[int]] = {}
    for i, j in path:
        note = int(note_of_sample[i])
        per_note_hum.setdefault(note, []).append(hum_norm[j])
        per_note_cols.setdefault(note, set()).add(j)
        per_note_rows.setdefault(note, set()).add(i)

    score_mean = float(melody.pitches().mean())
    report = HummingReport(dtw_distance=dtw_distance)
    for index, note in enumerate(melody):
        if index not in per_note_hum:
            continue  # swallowed entirely by the warping
        expected = float(note.pitch) - score_mean
        sung = float(np.median(per_note_hum[index]))
        rows = len(per_note_rows[index])
        cols = len(per_note_cols[index])
        report.notes.append(
            NoteAssessment(
                index=index,
                expected_interval=expected,
                sung_interval=sung,
                pitch_error=sung - expected,
                timing_ratio=cols / rows if rows else 1.0,
            )
        )
    return report
