"""Query-by-humming system and retrieval evaluation."""

from .calibration import HummerProfile, fit_hummer_profile
from .scoring import HummingReport, NoteAssessment, assess_humming
from .progressive import ProgressiveQuery, ProgressiveSnapshot
from .session import QuerySession
from .evaluation import RANK_BUCKETS, RankTable, bucket_label, format_rank_tables
from .quality import ScenarioCell, ScenarioMatrix, run_scenario_matrix
from .system import QueryByHummingSystem

__all__ = [
    "HummerProfile",
    "fit_hummer_profile",
    "HummingReport",
    "NoteAssessment",
    "assess_humming",
    "QuerySession",
    "ProgressiveQuery",
    "ProgressiveSnapshot",
    "RANK_BUCKETS",
    "RankTable",
    "bucket_label",
    "format_rank_tables",
    "ScenarioCell",
    "ScenarioMatrix",
    "run_scenario_matrix",
    "QueryByHummingSystem",
]
