"""The end-to-end query-by-humming system (Section 3).

Glues the substrates together exactly as the paper's architecture
diagram does:

* a **database of music**: melodies as ``(note, duration)`` tuples,
  expanded to piecewise-constant pitch time series;
* an **index**: the GEMINI warping index over their normal forms;
* **user humming**: a pitch time series from the tracker (or from a
  singer model), normalised the same way and matched with
  shift-invariant, tempo-invariant, locally-warped DTW.

Whole-sequence matching is used: the database stores pre-segmented
melodic sections (15-30 notes) rather than entire songs, as the paper
chooses in Section 3.2.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ..core.normal_form import NormalForm
from ..dtw.distance import ldtw_distance_batch
from ..hum.pitch_tracking import track_pitch
from ..index.gemini import WarpingIndex
from ..index.stats import QueryStats
from ..music.melody import Melody

__all__ = ["QueryByHummingSystem"]


class QueryByHummingSystem:
    """A searchable melody database for hummed queries.

    Parameters
    ----------
    melodies:
        The melody database (pre-segmented melodic sections).
    delta:
        Warping width of the DTW distance (0.1 is the paper's default
        sweet spot — Table 3).
    normal_length:
        UTW normal-form length for all series.
    n_features:
        Reduced dimensionality of the index.
    index_kind:
        ``"rstar"``, ``"grid"``, or ``"linear"``.
    samples_per_beat:
        Sampling of the melody time series.
    env_transform:
        Optional custom envelope transform (defaults to New_PAA).
    dtw_backend:
        DTW kernel backend for exact refinement (``"vectorized"``
        default, ``"scalar"`` reference) — a serving knob, results
        are identical.
    obs:
        An :class:`~repro.obs.Observability` facade, passed through to
        the underlying :class:`~repro.index.gemini.WarpingIndex` (and
        from there to the cascade engines), so a hummed query traces
        and meters end to end.  Default ``None`` = disabled.
    """

    def __init__(
        self,
        melodies: Sequence[Melody],
        *,
        delta: float = 0.1,
        normal_length: int = 128,
        n_features: int = 8,
        index_kind: str = "rstar",
        samples_per_beat: int = 8,
        env_transform=None,
        capacity: int = 50,
        dtw_backend: str | None = None,
        obs=None,
    ) -> None:
        if not melodies:
            raise ValueError("melody database must not be empty")
        self.melodies = list(melodies)
        self.names = [
            melody.name or f"melody{i}" for i, melody in enumerate(self.melodies)
        ]
        self.samples_per_beat = samples_per_beat
        series = [m.to_time_series(samples_per_beat) for m in self.melodies]
        self.index = WarpingIndex(
            series,
            delta=delta,
            env_transform=env_transform,
            n_features=n_features,
            normal_form=NormalForm(length=normal_length, shift=True),
            index_kind=index_kind,
            capacity=capacity,
            dtw_backend=dtw_backend,
            obs=obs,
        )

    def __len__(self) -> int:
        return len(self.melodies)

    @property
    def obs(self):
        """The attached observability facade (the index's)."""
        return self.index.obs

    def set_observability(self, obs) -> None:
        """Attach (or detach, with ``None``) an observability facade.

        Delegates to
        :meth:`repro.index.gemini.WarpingIndex.set_observability`, so
        cached cascade engines pick the facade up immediately.
        """
        self.index.set_observability(obs)

    @property
    def delta(self) -> float:
        return self.index.delta

    # ------------------------------------------------------------------
    # querying
    # ------------------------------------------------------------------

    def query(
        self, pitch_series, k: int = 10, *, collapse_duplicates: bool = False
    ) -> tuple[list[tuple[str, float]], QueryStats]:
        """Top-*k* melodies for a hummed pitch time series.

        Returns ``(results, stats)``; results are ``(melody_name,
        dtw_distance)`` pairs, best first.

        With *collapse_duplicates*, note-for-note identical melodies
        (phrase repetition produces them when songs are segmented)
        count as one result slot: the user sees *k* distinct tunes
        rather than the same tune at several tied ranks.
        """
        if not collapse_duplicates:
            hits, stats = self.index.knn_query(pitch_series, k)
            return [(self.names[idx], dist) for idx, dist in hits], stats
        # Over-fetch, then keep the best representative per duplicate
        # group until k distinct tunes are collected.
        fetch = min(len(self), k * 4)
        hits, stats = self.index.knn_query(pitch_series, fetch)
        group_of = self._duplicate_groups()
        results: list[tuple[str, float]] = []
        seen_groups: set[int] = set()
        for idx, dist in hits:
            group = group_of[idx]
            if group in seen_groups:
                continue
            seen_groups.add(group)
            results.append((self.names[idx], dist))
            if len(results) == k:
                break
        return results, stats

    def _duplicate_groups(self) -> dict[int, int]:
        """Map melody index -> duplicate-group id (cached)."""
        if not hasattr(self, "_dup_groups"):
            keys: dict[tuple, int] = {}
            groups: dict[int, int] = {}
            for idx, melody in enumerate(self.melodies):
                key = tuple((n.pitch, n.duration) for n in melody)
                groups[idx] = keys.setdefault(key, idx)
            self._dup_groups = groups
        return self._dup_groups

    def query_range(
        self, pitch_series, epsilon: float
    ) -> tuple[list[tuple[str, float]], QueryStats]:
        """All melodies within DTW distance *epsilon* of the hum."""
        hits, stats = self.index.range_query(pitch_series, epsilon)
        return [(self.names[idx], dist) for idx, dist in hits], stats

    def query_cascade(self, pitch_series, k: int = 10, *, stages=None,
                      dtw_backend=None):
        """Top-*k* melodies via the batched filter-cascade engine.

        Returns the same exact answer as :meth:`query`, but evaluated
        with :class:`~repro.engine.QueryEngine` — vectorised
        lower-bound stages followed by best-first, early-abandoning
        exact DTW — and returns a
        :class:`~repro.engine.CascadeStats` whose per-stage counters
        show where candidates were pruned (``repro query --stats``
        prints it).
        """
        hits, stats = self.index.cascade_knn_query(
            pitch_series, k, stages=stages, dtw_backend=dtw_backend
        )
        return [(self.names[idx], dist) for idx, dist in hits], stats

    def query_cascade_many(
        self, pitch_series_batch, k: int = 10, *, stages=None,
        dtw_backend=None, workers: int | None = None,
    ):
        """Top-*k* melodies for a batch of hums, served in parallel.

        Shards the batch across a thread pool (see
        :meth:`repro.engine.QueryEngine.range_search_many`); every hum
        gets exactly the answer :meth:`query_cascade` would return.
        Returns ``(per_hum_results, merged_stats)`` where
        ``per_hum_results[i]`` is the ``(melody_name, distance)`` list
        for hum ``i`` and *merged_stats* aggregates the cascade
        counters over the whole batch.
        """
        per_query, stats = self.index.cascade_knn_query_many(
            pitch_series_batch, k, stages=stages,
            dtw_backend=dtw_backend, workers=workers,
        )
        named = [
            [(self.names[idx], dist) for idx, dist in hits]
            for hits in per_query
        ]
        return named, stats

    def query_audio(
        self, waveform, *, sample_rate: int = 8000, k: int = 10
    ) -> tuple[list[tuple[str, float]], QueryStats]:
        """Top-*k* melodies for raw hum audio (runs the pitch tracker)."""
        track = track_pitch(waveform, sample_rate=sample_rate)
        pitches = track.pitch_series()
        if pitches.size < 2:
            raise ValueError("no voiced frames found in the audio")
        return self.query(pitches, k)

    # ------------------------------------------------------------------
    # evaluation helpers
    # ------------------------------------------------------------------

    def distances_to_all(self, pitch_series) -> np.ndarray:
        """Exact DTW distance from the hum to every database melody.

        Vectorised across the database (one banded DP over all rows),
        so full-scan evaluation of 1000 melodies takes milliseconds.
        """
        q = self.index.normal_form.apply(pitch_series)
        return ldtw_distance_batch(q, self.index._data, self.index.band)

    def rank_of(self, pitch_series, target_index: int) -> int:
        """1-based competition rank of the intended melody.

        One plus the number of database melodies strictly closer to
        the hum than the target (ties do not penalise).
        """
        if not 0 <= target_index < len(self):
            raise ValueError(f"target index {target_index} out of range")
        dists = self.distances_to_all(pitch_series)
        return int(np.sum(dists < dists[target_index])) + 1
