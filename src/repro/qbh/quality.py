"""The scenario-matrix quality runner: degrade → query → record.

This is the workload half of the quality-observability axis.  For
every (scenario × severity) cell it renders clean hums of known
database melodies (:func:`repro.hum.singer.hum_melody` with the
perfect singer, so the *named degradation is the only error source*),
perturbs them with :func:`repro.hum.degrade.degrade`, times the
served top-k query, and resolves the ground truth's true competition
rank — falling back to the exact full scan when the target fell
outside the served top-k.  Each query is recorded through the
:class:`~repro.obs.Observability` facade
(``record_quality_query`` → ``quality.*`` metrics + ``quality:query``
instant spans), so the same run feeds the live scrape, the trace-file
matrix of ``repro obs report --scenarios``, and the in-process
:class:`ScenarioMatrix` returned to the caller.

The contour-string baseline (the paper's comparison point) runs on
the *identical* degraded hums through its own fragile pipeline — note
segmentation then contour lookup — with a total transcription failure
scored as rank ``len(db)``, exactly as in
:mod:`repro.experiments.quality`.

Sits in ``qbh`` because it needs melodies, singers, contours, and the
index — everything the stdlib-only ``obs`` layer must not import.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..hum.degrade import DEFAULT_SEVERITIES, SCENARIOS, degrade
from ..hum.segmentation import segment_notes
from ..hum.singer import SingerProfile, hum_melody
from ..music.contour import ContourIndex, contour_string
from ..obs import OBS_DISABLED
from ..obs.clock import monotonic_s
from ..obs.quality import RECALL_KS, rank_of_target

__all__ = ["ScenarioCell", "ScenarioMatrix", "run_scenario_matrix"]


def _exact_percentile(sorted_values: list[float], q: float) -> float | None:
    if not sorted_values:
        return None
    idx = min(len(sorted_values) - 1,
              int(round(q * (len(sorted_values) - 1))))
    return sorted_values[idx]


@dataclass
class ScenarioCell:
    """Raw per-query outcomes for one (scenario, severity) cell."""

    scenario: str
    severity: float
    ranks: list[int] = field(default_factory=list)
    contour_ranks: list[int] = field(default_factory=list)
    latencies_s: list[float] = field(default_factory=list)

    @property
    def queries(self) -> int:
        return len(self.ranks)

    def recall(self, k: int) -> float:
        """Fraction of queries whose ground truth ranked within *k*."""
        if not self.ranks:
            return 0.0
        return sum(1 for r in self.ranks if r <= k) / len(self.ranks)

    def contour_recall(self, k: int) -> float | None:
        """The contour baseline's recall@k on the same degraded hums."""
        if not self.contour_ranks:
            return None
        return (sum(1 for r in self.contour_ranks if r <= k)
                / len(self.contour_ranks))

    @property
    def mrr(self) -> float:
        """Mean reciprocal rank of the ground-truth melody."""
        if not self.ranks:
            return 0.0
        return sum(1.0 / r for r in self.ranks) / len(self.ranks)

    def to_dict(self) -> dict:
        """One matrix row, same keys as the trace-side
        :meth:`repro.obs.analysis.QualityCell.to_dict`."""
        lat = sorted(self.latencies_s)
        p50 = _exact_percentile(lat, 0.50)
        p95 = _exact_percentile(lat, 0.95)
        return {
            "scenario": self.scenario,
            "severity": self.severity,
            "queries": self.queries,
            **{f"recall_at_{k}": self.recall(k) for k in RECALL_KS},
            "mrr": self.mrr,
            "contour_recall_at_10": self.contour_recall(10),
            "p50_ms": None if p50 is None else p50 * 1e3,
            "p95_ms": None if p95 is None else p95 * 1e3,
        }


@dataclass
class ScenarioMatrix:
    """The full scenario × severity sweep over one melody database."""

    db_size: int
    k: int
    cells: list[ScenarioCell] = field(default_factory=list)

    @property
    def queries(self) -> int:
        return sum(cell.queries for cell in self.cells)

    def to_dict(self) -> dict:
        """JSON document for ``--json-out`` and the quality bench."""
        return {
            "db_size": self.db_size,
            "k": self.k,
            "queries": self.queries,
            "scenarios": [cell.to_dict() for cell in self.cells],
        }

    def format_table(self) -> str:
        """The recall@k × latency matrix as a fixed-width table."""
        scenarios = sorted({cell.scenario for cell in self.cells})
        severities = sorted({cell.severity for cell in self.cells})
        lines = [
            f"scenario matrix: {self.queries} queries over db of "
            f"{self.db_size} (top-{self.k} served), "
            f"{len(scenarios)} scenarios x {len(severities)} severities",
            f"{'scenario':<15}{'sev':>6}{'n':>5}{'r@1':>7}{'r@5':>7}"
            f"{'r@10':>7}{'mrr':>7}{'p50 ms':>9}{'p95 ms':>9}"
            f"{'contour r@10':>14}",
        ]
        for cell in sorted(self.cells,
                           key=lambda c: (c.scenario, c.severity)):
            d = cell.to_dict()
            p50 = f"{d['p50_ms']:>9.2f}" if d["p50_ms"] is not None \
                else f"{'-':>9}"
            p95 = f"{d['p95_ms']:>9.2f}" if d["p95_ms"] is not None \
                else f"{'-':>9}"
            contour = d["contour_recall_at_10"]
            contour_txt = (f"{contour:>14.2f}" if contour is not None
                           else f"{'-':>14}")
            lines.append(
                f"{cell.scenario:<15}{cell.severity:>6.2f}"
                f"{cell.queries:>5}"
                f"{d['recall_at_1']:>7.2f}{d['recall_at_5']:>7.2f}"
                f"{d['recall_at_10']:>7.2f}{d['mrr']:>7.2f}"
                f"{p50}{p95}{contour_txt}"
            )
        return "\n".join(lines)


def run_scenario_matrix(system, *, scenarios=None,
                        severities=DEFAULT_SEVERITIES,
                        queries_per_cell: int = 3, k: int = 10,
                        seed: int = 0, obs=OBS_DISABLED,
                        contour_levels: int = 3) -> ScenarioMatrix:
    """Sweep degradation scenarios × severities over *system*.

    *system* is a :class:`~repro.qbh.system.QueryByHummingSystem`.
    Every cell draws its own deterministic generator from
    ``(seed, scenario, severity)``, so cells reproduce independently
    and adding a scenario never reshuffles the others.  Each query is
    recorded through *obs* (``record_quality_query``); pass a facade
    wired with ``to_files`` to leave a trace/metrics artifact behind.
    """
    if scenarios is None:
        scenarios = tuple(SCENARIOS)
    unknown = [s for s in scenarios if s not in SCENARIOS]
    if unknown:
        raise ValueError(f"unknown scenarios: {unknown}")
    profile = SingerProfile.perfect()
    contour_index = ContourIndex(system.melodies, levels=contour_levels)
    matrix = ScenarioMatrix(db_size=len(system), k=k)
    for s_idx, scenario in enumerate(scenarios):
        for v_idx, severity in enumerate(severities):
            rng = np.random.default_rng([seed, s_idx, v_idx])
            cell = ScenarioCell(scenario=scenario,
                                severity=float(severity))
            targets = rng.integers(0, len(system),
                                   size=queries_per_cell)
            for target in (int(t) for t in targets):
                clean = hum_melody(system.melodies[target], profile, rng)
                query = degrade(clean, scenario, float(severity), rng=rng)
                t0 = monotonic_s()
                results, _ = system.query_cascade(query, k)
                elapsed_s = monotonic_s() - t0
                rank = rank_of_target(results, system.names[target])
                if rank is None:
                    # Outside the served top-k: resolve the true
                    # competition rank with the exact full scan
                    # (untimed — latency measures the served path).
                    rank = system.rank_of(query, target)
                try:
                    notes = segment_notes(query)
                    contour_rank = contour_index.rank_of(
                        contour_string(notes), target)
                except ValueError:
                    contour_rank = len(system)   # transcription failed
                cell.ranks.append(rank)
                cell.contour_ranks.append(contour_rank)
                cell.latencies_s.append(elapsed_s)
                obs.record_quality_query(
                    scenario, float(severity), rank, len(system),
                    duration_s=elapsed_s, contour_rank=contour_rank,
                )
            matrix.cells.append(cell)
    return matrix
