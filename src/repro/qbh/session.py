"""Interactive query sessions with a feedback loop.

A :class:`QuerySession` wraps a :class:`~repro.qbh.system.QueryByHummingSystem`
with the per-user state a real deployment keeps: the hums the user
confirmed, the :class:`~repro.qbh.calibration.HummerProfile` fitted
from them, and automatic correction of subsequent queries.  The loop:

1. ``session.query(hum)`` → ranked melodies (corrected by the current
   profile, if any);
2. the user clicks the right answer → ``session.confirm(name)``;
3. after ``min_confirmations`` the profile is (re)fitted and every
   later query benefits.

This operationalises the paper's future-work note on "adapting the
system to different hummers".
"""

from __future__ import annotations

import numpy as np

from ..index.stats import QueryStats
from .calibration import HummerProfile, fit_hummer_profile
from .system import QueryByHummingSystem

__all__ = ["QuerySession"]


class QuerySession:
    """Stateful per-user session over a humming system.

    Parameters
    ----------
    system:
        The shared, immutable melody index.
    min_confirmations:
        Confirmed matches required before a profile is fitted.
    max_history:
        Most recent confirmations kept for fitting (older singing
        habits fade out).
    """

    def __init__(
        self,
        system: QueryByHummingSystem,
        *,
        min_confirmations: int = 3,
        max_history: int = 20,
    ) -> None:
        if min_confirmations < 1:
            raise ValueError("min_confirmations must be >= 1")
        if max_history < min_confirmations:
            raise ValueError("max_history must be >= min_confirmations")
        self.system = system
        self.min_confirmations = min_confirmations
        self.max_history = max_history
        self.profile: HummerProfile | None = None
        self._confirmed: list[tuple[np.ndarray, object]] = []
        self._last_hum: np.ndarray | None = None
        self._name_to_index = {
            name: idx for idx, name in enumerate(system.names)
        }

    @property
    def confirmations(self) -> int:
        return len(self._confirmed)

    @property
    def calibrated(self) -> bool:
        return self.profile is not None

    def query(self, pitch_series, k: int = 10) -> tuple[list, QueryStats]:
        """Ranked melodies for a hum, corrected by the fitted profile.

        Remembers the (raw) hum so a subsequent :meth:`confirm` can
        attribute it.
        """
        hum = np.asarray(pitch_series, dtype=np.float64)
        self._last_hum = hum.copy()
        corrected = self.profile.correct(hum) if self.profile else hum
        return self.system.query(corrected, k)

    def confirm(self, melody_name: str) -> bool:
        """Record that the last query's intended melody was *melody_name*.

        Returns True if the profile was (re)fitted as a result.

        Raises
        ------
        RuntimeError
            If no query preceded the confirmation.
        KeyError
            If the name is not in the database.
        """
        if self._last_hum is None:
            raise RuntimeError("confirm() must follow a query()")
        if melody_name not in self._name_to_index:
            raise KeyError(f"unknown melody {melody_name!r}")
        melody = self.system.melodies[self._name_to_index[melody_name]]
        self._confirmed.append((self._last_hum, melody))
        self._last_hum = None
        if len(self._confirmed) > self.max_history:
            self._confirmed = self._confirmed[-self.max_history :]
        if len(self._confirmed) >= self.min_confirmations:
            self.profile = fit_hummer_profile(self._confirmed)
            return True
        return False

    def reset_profile(self) -> None:
        """Drop the fitted profile and confirmation history."""
        self.profile = None
        self._confirmed.clear()
        self._last_hum = None
