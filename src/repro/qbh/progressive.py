"""Progressive querying: results that converge while the user hums.

A responsive frontend should not wait for the user to finish: it
re-queries as pitch frames arrive and shows the ranking firming up.

The subtlety is that a half-finished hum, UTW-normalised, is *not* a
degraded version of the whole target melody — it is a faithful version
of the target's first half, and can genuinely resemble some other
whole melody.  :class:`ProgressiveQuery` therefore matches prefixes to
prefixes: every database melody is indexed at several prefix fractions
(25/50/75/100 % by default), and the streamed hum is matched against
the multi-fraction index, deduplicated per melody.  Convergence — a
stable top answer over several snapshots — is the stop signal.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.normal_form import NormalForm
from ..index.gemini import WarpingIndex
from .system import QueryByHummingSystem

__all__ = ["ProgressiveSnapshot", "ProgressiveQuery"]

#: Dense enough that any hum prefix is within ~5% of an indexed
#: fraction — the UTW normal form absorbs the rest.
DEFAULT_FRACTIONS = (0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0)


@dataclass(frozen=True)
class ProgressiveSnapshot:
    """One intermediate ranking during a progressive query.

    Attributes
    ----------
    frames_heard:
        Voiced pitch frames consumed so far.
    results:
        Current top-k ``(melody_name, distance)``, deduplicated per
        melody (the distance is to the best-matching prefix).
    stable_for:
        Consecutive snapshots (including this one) with the same top-1.
    converged:
        Whether the stability criterion has been met.
    """

    frames_heard: int
    results: list
    stable_for: int
    converged: bool

    @property
    def top(self) -> str | None:
        return self.results[0][0] if self.results else None


class ProgressiveQuery:
    """Re-query a humming system as pitch frames stream in.

    Parameters
    ----------
    system:
        The melody database (its melodies are re-indexed at several
        prefix fractions; the system's own index is untouched).
    k:
        Results per snapshot (per distinct melody).
    min_frames:
        Do not query before this many voiced frames.
    every:
        Re-query after every *every* new voiced frames.
    stability:
        Consecutive identical top-1 answers required to declare
        convergence.
    fractions:
        Prefix fractions to index per melody.
    """

    def __init__(
        self,
        system: QueryByHummingSystem,
        *,
        k: int = 5,
        min_frames: int = 100,
        every: int = 50,
        stability: int = 3,
        fractions: tuple[float, ...] = DEFAULT_FRACTIONS,
    ) -> None:
        if min_frames < 2 or every < 1 or stability < 1 or k < 1:
            raise ValueError("invalid progressive-query configuration")
        if not fractions or any(not 0 < f <= 1 for f in fractions):
            raise ValueError("prefix fractions must lie in (0, 1]")
        self.system = system
        self.k = k
        self.min_frames = min_frames
        self.every = every
        self.stability = stability
        self._frames: list[float] = []
        self._since_last_query = 0
        self._last_top: str | None = None
        self._stable_for = 0
        self.snapshots: list[ProgressiveSnapshot] = []

        prefix_series = []
        prefix_ids = []
        for idx, melody in enumerate(system.melodies):
            series = melody.to_time_series(system.samples_per_beat)
            for fraction in sorted(set(fractions)):
                length = max(2, int(round(series.size * fraction)))
                prefix_series.append(series[:length].astype(np.float64))
                prefix_ids.append((idx, fraction))
        self._prefix_index = WarpingIndex(
            prefix_series,
            delta=system.delta,
            normal_form=NormalForm(length=system.index.normal_length),
            ids=prefix_ids,
        )

    @property
    def converged(self) -> bool:
        return self._stable_for >= self.stability

    def feed(self, pitch_frames) -> ProgressiveSnapshot | None:
        """Consume voiced pitch frames; maybe produce a new snapshot.

        Returns the new :class:`ProgressiveSnapshot` when a re-query
        fired, else ``None``.  Frames containing NaN are rejected —
        feed the *voiced* series (e.g. from
        :meth:`~repro.hum.online.OnlinePitchTracker.pitch_series`).
        """
        arr = np.asarray(pitch_frames, dtype=np.float64)
        if arr.ndim != 1:
            raise ValueError("pitch frames must be 1-D")
        if arr.size and not np.all(np.isfinite(arr)):
            raise ValueError("feed voiced frames only (no NaN)")
        self._frames.extend(arr.tolist())
        self._since_last_query += arr.size
        if len(self._frames) < self.min_frames:
            return None
        if self.snapshots and self._since_last_query < self.every:
            return None
        return self._snapshot()

    def _snapshot(self) -> ProgressiveSnapshot:
        self._since_last_query = 0
        hum = np.asarray(self._frames)
        # Over-fetch so per-melody dedup still fills k slots.
        hits, _ = self._prefix_index.knn_query(
            hum, min(self.k * len(DEFAULT_FRACTIONS) * 2,
                     len(self._prefix_index))
        )
        best: dict[int, float] = {}
        for (melody_idx, _fraction), dist in hits:
            if melody_idx not in best or dist < best[melody_idx]:
                best[melody_idx] = dist
        ranked = sorted(best.items(), key=lambda kv: kv[1])[: self.k]
        results = [
            (self.system.names[melody_idx], dist)
            for melody_idx, dist in ranked
        ]
        top = results[0][0] if results else None
        if top is not None and top == self._last_top:
            self._stable_for += 1
        else:
            self._stable_for = 1
        self._last_top = top
        snapshot = ProgressiveSnapshot(
            frames_heard=len(self._frames),
            results=results,
            stable_for=self._stable_for,
            converged=self.converged,
        )
        self.snapshots.append(snapshot)
        return snapshot

    def finish(self) -> ProgressiveSnapshot:
        """Force a final snapshot on everything heard so far."""
        if len(self._frames) < 2:
            raise ValueError("nothing hummed yet")
        return self._snapshot()
