"""Terminal visualisation helpers.

Matplotlib-free plotting for examples, benchmarks, and debugging:
scatter a series, band an envelope, draw a warping grid — all as
monospace text.  Deliberately simple; everything returns a string so
callers decide where it goes.
"""

from __future__ import annotations

import math

import numpy as np

from .core.envelope import Envelope

__all__ = ["ascii_series", "ascii_envelope", "ascii_warping_grid", "ascii_bars"]


def _scale_rows(values: np.ndarray, lo: float, hi: float, height: int) -> np.ndarray:
    """Map values to row indices, top row = max."""
    span = (hi - lo) or 1.0
    rows = ((hi - values) / span * (height - 1)).round().astype(int)
    return np.clip(rows, 0, height - 1)


def ascii_series(series, *, height: int = 12, width: int = 72,
                 marker: str = "*", title: str = "") -> str:
    """Scatter a series as text; NaN samples are left blank."""
    arr = np.asarray(series, dtype=np.float64)
    if arr.ndim != 1 or arr.size == 0:
        raise ValueError("series must be a non-empty 1-D array")
    if height < 2 or width < 2:
        raise ValueError("height and width must be >= 2")
    finite = arr[np.isfinite(arr)]
    if finite.size == 0:
        raise ValueError("series has no finite values to plot")
    lo, hi = float(finite.min()), float(finite.max())
    cols = min(width, arr.size)
    idx = np.linspace(0, arr.size - 1, cols).astype(int)
    grid = [[" "] * cols for _ in range(height)]
    sampled = arr[idx]
    mask = np.isfinite(sampled)
    rows = _scale_rows(np.where(mask, sampled, lo), lo, hi, height)
    for col in range(cols):
        if mask[col]:
            grid[rows[col]][col] = marker
    lines = ["".join(row).rstrip() for row in grid]
    if title:
        lines.insert(0, f"--- {title} ---")
    return "\n".join(lines)


def ascii_envelope(series, envelope: Envelope, *, height: int = 14,
                   width: int = 72, title: str = "") -> str:
    """Overlay a series (``*``) on its envelope band (``-``)."""
    arr = np.asarray(series, dtype=np.float64)
    if arr.size != len(envelope):
        raise ValueError("series and envelope lengths differ")
    if height < 2 or width < 2:
        raise ValueError("height and width must be >= 2")
    lo = float(min(arr.min(), envelope.lower.min()))
    hi = float(max(arr.max(), envelope.upper.max()))
    cols = min(width, arr.size)
    idx = np.linspace(0, arr.size - 1, cols).astype(int)
    grid = [[" "] * cols for _ in range(height)]
    upper_rows = _scale_rows(envelope.upper[idx], lo, hi, height)
    lower_rows = _scale_rows(envelope.lower[idx], lo, hi, height)
    series_rows = _scale_rows(arr[idx], lo, hi, height)
    for col in range(cols):
        grid[upper_rows[col]][col] = "-"
        grid[lower_rows[col]][col] = "-"
        grid[series_rows[col]][col] = "*"
    lines = ["".join(row).rstrip() for row in grid]
    if title:
        lines.insert(0, f"--- {title} ---")
    return "\n".join(lines)


def ascii_warping_grid(path: list[tuple[int, int]], n: int, m: int,
                       k: int | None = None) -> str:
    """Draw a warping path (``#``) inside its admissible band (``.``)."""
    if n < 1 or m < 1:
        raise ValueError("grid dimensions must be positive")
    cells = set(path)
    lines = []
    for i in range(n):
        row = []
        for j in range(m):
            if (i, j) in cells:
                row.append("#")
            elif k is None or abs(i - j) <= k:
                row.append(".")
            else:
                row.append(" ")
        lines.append("".join(row))
    return "\n".join(lines)


def ascii_bars(labels, values, *, width: int = 50, title: str = "") -> str:
    """Horizontal bar chart (for tightness/candidate comparisons)."""
    labels = [str(label) for label in labels]
    vals = np.asarray(values, dtype=np.float64)
    if len(labels) != vals.size:
        raise ValueError(f"{len(labels)} labels but {vals.size} values")
    if vals.size == 0:
        raise ValueError("nothing to plot")
    if np.any(vals < 0) or not np.all(np.isfinite(vals)):
        raise ValueError("bar values must be finite and non-negative")
    top = vals.max() or 1.0
    label_width = max(len(label) for label in labels)
    lines = []
    if title:
        lines.append(f"--- {title} ---")
    for label, value in zip(labels, vals):
        bar = "#" * max(0, int(math.ceil(value / top * width)))
        lines.append(f"{label.ljust(label_width)} |{bar} {value:g}")
    return "\n".join(lines)
