"""Core time-series machinery: envelopes, transforms, normal forms, bounds."""

from .apca import APCA, apca_approximate, apca_dtw_lb, apca_euclidean_lb
from .sax import SAXWord, sax_breakpoints, sax_mindist, sax_transform
from .envelope import (
    Envelope,
    envelope_distance,
    k_envelope,
    k_to_warping_width,
    sliding_max,
    sliding_min,
    warping_width_to_k,
)
from .envelope_transforms import (
    EnvelopeTransform,
    KeoghPAAEnvelopeTransform,
    NaiveEnvelopeTransform,
    NewPAAEnvelopeTransform,
    SignSplitEnvelopeTransform,
)
from .lower_bounds import lb_envelope_transform, lb_keogh, lb_yi, tightness
from .preprocess import (
    amplitude_normalize,
    clip_outliers,
    detrend,
    exponential_smoothing,
    median_smoothing,
    moving_average,
)
from .normal_form import (
    DEFAULT_NORMAL_LENGTH,
    NormalForm,
    normalize,
    shift_normalize,
    utw_normal_form,
)
from .series import as_series, common_length, uniform_resample, upsample
from .transforms import (
    ChebyshevTransform,
    DFTTransform,
    HaarTransform,
    IdentityTransform,
    LinearTransform,
    PAATransform,
    RandomProjectionTransform,
    SVDTransform,
)

__all__ = [
    "APCA",
    "apca_approximate",
    "apca_dtw_lb",
    "apca_euclidean_lb",
    "SAXWord",
    "sax_breakpoints",
    "sax_mindist",
    "sax_transform",
    "amplitude_normalize",
    "clip_outliers",
    "detrend",
    "exponential_smoothing",
    "median_smoothing",
    "moving_average",
    "Envelope",
    "envelope_distance",
    "k_envelope",
    "k_to_warping_width",
    "sliding_max",
    "sliding_min",
    "warping_width_to_k",
    "EnvelopeTransform",
    "KeoghPAAEnvelopeTransform",
    "NaiveEnvelopeTransform",
    "NewPAAEnvelopeTransform",
    "SignSplitEnvelopeTransform",
    "lb_envelope_transform",
    "lb_keogh",
    "lb_yi",
    "tightness",
    "DEFAULT_NORMAL_LENGTH",
    "NormalForm",
    "normalize",
    "shift_normalize",
    "utw_normal_form",
    "as_series",
    "common_length",
    "uniform_resample",
    "upsample",
    "ChebyshevTransform",
    "DFTTransform",
    "HaarTransform",
    "IdentityTransform",
    "LinearTransform",
    "PAATransform",
    "RandomProjectionTransform",
    "SVDTransform",
]
