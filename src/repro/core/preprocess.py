"""Query-time series transformations (Rafiei & Mendelzon 1997).

The related work the paper builds on allows "transformations, including
shifting, scaling and moving average, on the time series before
similarity queries".  Shifting and time scaling are already normal-form
citizens (:mod:`repro.core.normal_form`); this module supplies the
rest: smoothing filters that suppress pitch-tracker jitter before
matching, amplitude scaling, and trend removal.

All functions preserve length and return new arrays.
"""

from __future__ import annotations

import numpy as np

from .series import as_series

__all__ = [
    "moving_average",
    "exponential_smoothing",
    "median_smoothing",
    "amplitude_normalize",
    "detrend",
    "clip_outliers",
]


def moving_average(series, window: int) -> np.ndarray:
    """Centred moving average with edge-shrunk windows.

    The classic query transformation of Rafiei & Mendelzon: matching
    smoothed series finds trends rather than exact shapes.  Window
    must be odd so the filter is centred and phase-free.
    """
    arr = as_series(series)
    if window < 1 or window % 2 == 0:
        raise ValueError(f"window must be a positive odd number, got {window}")
    if window == 1:
        return arr.copy()
    half = window // 2
    padded = np.concatenate([arr[:1].repeat(half), arr, arr[-1:].repeat(half)])
    kernel = np.ones(window) / window
    return np.convolve(padded, kernel, mode="valid")


def exponential_smoothing(series, alpha: float) -> np.ndarray:
    """First-order exponential smoothing ``s_i = a x_i + (1-a) s_{i-1}``."""
    arr = as_series(series)
    if not 0.0 < alpha <= 1.0:
        raise ValueError(f"alpha must be in (0, 1], got {alpha}")
    out = np.empty_like(arr)
    out[0] = arr[0]
    for i in range(1, arr.size):
        out[i] = alpha * arr[i] + (1.0 - alpha) * out[i - 1]
    return out


def median_smoothing(series, window: int) -> np.ndarray:
    """Centred running median — removes impulsive pitch-tracker blips
    without rounding note corners the way a mean filter does."""
    arr = as_series(series)
    if window < 1 or window % 2 == 0:
        raise ValueError(f"window must be a positive odd number, got {window}")
    if window == 1:
        return arr.copy()
    half = window // 2
    out = np.empty_like(arr)
    for i in range(arr.size):
        lo = max(0, i - half)
        hi = min(arr.size, i + half + 1)
        out[i] = np.median(arr[lo:hi])
    return out


def amplitude_normalize(series, *, eps: float = 1e-12) -> np.ndarray:
    """Zero-mean, unit-variance scaling (full z-normalisation).

    Complements the shift-only normal form when interval *sizes*
    should also be forgiven (a singer compressing every leap).
    Constant series map to zeros.
    """
    arr = as_series(series)
    centred = arr - arr.mean()
    std = centred.std()
    if std <= eps:
        return np.zeros_like(arr)
    return centred / std


def detrend(series) -> np.ndarray:
    """Remove the least-squares linear trend.

    Useful against cumulative pitch drift — a singer slowly going
    flat — which shifting alone cannot absorb.
    """
    arr = as_series(series)
    if arr.size == 1:
        return np.zeros(1)
    t = np.arange(arr.size, dtype=np.float64)
    slope, intercept = np.polyfit(t, arr, 1)
    return arr - (slope * t + intercept)


def clip_outliers(series, *, n_sigmas: float = 3.0) -> np.ndarray:
    """Clamp samples further than ``n_sigmas`` deviations from the mean.

    A cheap guard against octave errors surviving the pitch tracker's
    median filter.
    """
    arr = as_series(series)
    if n_sigmas <= 0:
        raise ValueError(f"n_sigmas must be positive, got {n_sigmas}")
    mean = arr.mean()
    std = arr.std()
    if std == 0.0:
        return arr.copy()
    return np.clip(arr, mean - n_sigmas * std, mean + n_sigmas * std)
