"""Linear dimensionality-reduction transforms (GEMINI feature extractors).

Every transform here is *linear* — it exposes its full coefficient
matrix ``A`` (shape ``N x n``), so the envelope transform of Lemma 3 can
be derived from it mechanically — and *lower-bounding* — its rows form a
partial orthonormal system, so plain Euclidean distance between feature
vectors never exceeds the Euclidean distance between the original
series:

.. math:: D(T(x), T(y)) \\le D(x, y).

Implemented transforms:

* :class:`PAATransform` — Piecewise Aggregate Approximation (frame
  means, scaled by ``sqrt(n/N)``); the transform the paper builds its
  New_PAA envelope reduction from.  All coefficients are positive,
  which is why its envelope transform stays tight (Section 4.3).
* :class:`DFTTransform` — first Fourier coefficients as real
  cosine/sine rows (orthonormal real DFT basis).
* :class:`HaarTransform` — coarsest coefficients of the orthonormal
  Haar wavelet basis.
* :class:`SVDTransform` — data-adapted basis from the top right
  singular vectors of a training matrix.
* :class:`IdentityTransform` — no reduction; used for the full-envelope
  LB bound that serves as a sanity ceiling in the experiments.
"""

from __future__ import annotations

import numpy as np

from .series import as_series

__all__ = [
    "LinearTransform",
    "PAATransform",
    "DFTTransform",
    "HaarTransform",
    "SVDTransform",
    "ChebyshevTransform",
    "RandomProjectionTransform",
    "IdentityTransform",
]


class LinearTransform:
    """A linear map ``R^n -> R^N`` given by an explicit matrix.

    Parameters
    ----------
    matrix:
        Coefficient matrix of shape ``(N, n)``; feature ``X_j`` is
        ``sum_i matrix[j, i] * x_i``.
    name:
        Human-readable name used in benchmark output.
    """

    def __init__(self, matrix, *, name: str | None = None,
                 metrics: tuple[str, ...] = ("euclidean",)) -> None:
        mat = np.asarray(matrix, dtype=np.float64)
        if mat.ndim != 2:
            raise ValueError(f"coefficient matrix must be 2-D, got shape {mat.shape}")
        if mat.shape[0] > mat.shape[1]:
            raise ValueError(
                "a dimensionality reduction cannot have more outputs "
                f"than inputs: {mat.shape}"
            )
        self._matrix = mat
        self.name = name or type(self).__name__
        #: Ground metrics under which feature-space distance
        #: lower-bounds original distance.
        self.metrics = metrics

    @property
    def matrix(self) -> np.ndarray:
        """The ``(N, n)`` coefficient matrix (read-only view)."""
        view = self._matrix.view()
        view.flags.writeable = False
        return view

    @property
    def input_length(self) -> int:
        return self._matrix.shape[1]

    @property
    def output_dim(self) -> int:
        return self._matrix.shape[0]

    def transform(self, series) -> np.ndarray:
        """Map one series of length ``n`` to its ``N``-dim feature vector."""
        arr = as_series(series)
        if arr.size != self.input_length:
            raise ValueError(
                f"{self.name} expects length {self.input_length}, got {arr.size}"
            )
        return self._matrix @ arr

    def transform_batch(self, data) -> np.ndarray:
        """Map a ``(m, n)`` matrix of series to ``(m, N)`` features."""
        mat = np.asarray(data, dtype=np.float64)
        if mat.ndim != 2 or mat.shape[1] != self.input_length:
            raise ValueError(
                f"{self.name} expects shape (m, {self.input_length}), "
                f"got {mat.shape}"
            )
        return mat @ self._matrix.T

    def __call__(self, series) -> np.ndarray:
        return self.transform(series)

    def is_lower_bounding(self, *, atol: float = 1e-9) -> bool:
        """Check the partial-orthonormality condition ``A A^T <= I``.

        A linear map contracts Euclidean distances iff its largest
        singular value is at most 1.
        """
        smax = float(np.linalg.norm(self._matrix, ord=2))
        return smax <= 1.0 + atol

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{type(self).__name__}(n={self.input_length}, N={self.output_dim})"
        )


def _frame_bounds(n: int, n_frames: int) -> np.ndarray:
    """Frame boundary indices splitting ``n`` samples into ``n_frames``.

    Frames are as equal as possible; when ``n_frames`` divides ``n``
    they all have length ``n / n_frames`` as in the paper.
    """
    return np.round(np.linspace(0, n, n_frames + 1)).astype(np.int64)


class PAATransform(LinearTransform):
    """Piecewise Aggregate Approximation with lower-bounding scaling.

    With ``norm="l2"`` (the paper's), feature ``j`` is
    ``sqrt(w_j) * mean(frame_j)``: the rows are orthonormal, so
    Euclidean feature distance lower-bounds Euclidean series distance.
    With ``norm="l1"``, feature ``j`` is the plain frame *sum*
    ``w_j * mean(frame_j)``: by the triangle inequality
    ``|sum(x - y)| <= sum|x - y|`` per frame, so Manhattan feature
    distance lower-bounds Manhattan series distance — the
    "modification" the paper alludes to for other metrics.  Either
    way every coefficient is positive.  Use :meth:`frame_means` for
    the unscaled averages in the paper's notation.
    """

    def __init__(self, input_length: int, n_frames: int, *,
                 norm: str = "l2") -> None:
        if n_frames < 1:
            raise ValueError(f"number of frames must be >= 1, got {n_frames}")
        if n_frames > input_length:
            raise ValueError(
                f"cannot split {input_length} samples into {n_frames} frames"
            )
        if norm not in ("l2", "l1"):
            raise ValueError(f"norm must be 'l2' or 'l1', got {norm!r}")
        bounds = _frame_bounds(input_length, n_frames)
        matrix = np.zeros((n_frames, input_length))
        for j in range(n_frames):
            lo, hi = bounds[j], bounds[j + 1]
            width = hi - lo
            matrix[j, lo:hi] = 1.0 / np.sqrt(width) if norm == "l2" else 1.0
        metrics = ("euclidean",) if norm == "l2" else ("manhattan",)
        super().__init__(matrix, name=f"PAA({n_frames})", metrics=metrics)
        self._bounds = bounds
        self.norm = norm

    @property
    def frame_bounds(self) -> np.ndarray:
        return self._bounds.copy()

    def frame_means(self, series) -> np.ndarray:
        """Unscaled frame averages (``X_i = (N/n) * sum`` in the paper)."""
        arr = as_series(series)
        if arr.size != self.input_length:
            raise ValueError(
                f"PAA expects length {self.input_length}, got {arr.size}"
            )
        return np.array(
            [
                arr[self._bounds[j] : self._bounds[j + 1]].mean()
                for j in range(self.output_dim)
            ]
        )


class DFTTransform(LinearTransform):
    """First Fourier coefficients in an orthonormal real basis.

    The rows are, in order: the DC component, then cosine and sine rows
    for frequencies 1, 2, ... — i.e. the real and imaginary parts of
    the low DFT coefficients, which carry most of the energy of smooth
    series (Agrawal et al. 1993).

    Parameters
    ----------
    input_length:
        Series length ``n``.
    output_dim:
        Number of real coefficients to keep (DC + cos/sin pairs).
    """

    def __init__(self, input_length: int, output_dim: int) -> None:
        if output_dim < 1:
            raise ValueError(f"output dimension must be >= 1, got {output_dim}")
        if output_dim > input_length:
            raise ValueError(
                f"cannot keep {output_dim} coefficients of a length-"
                f"{input_length} series"
            )
        n = input_length
        t = np.arange(n)
        rows = [np.full(n, 1.0 / np.sqrt(n))]
        freq = 1
        while len(rows) < output_dim:
            angle = 2.0 * np.pi * freq * t / n
            cos_row = np.cos(angle)
            sin_row = np.sin(angle)
            # At the Nyquist frequency (even n) the sine row is zero and
            # the cosine row has norm sqrt(n) instead of sqrt(n/2).
            cos_norm = np.linalg.norm(cos_row)
            rows.append(cos_row / cos_norm)
            if len(rows) < output_dim:
                sin_norm = np.linalg.norm(sin_row)
                if sin_norm > 1e-12:
                    rows.append(sin_row / sin_norm)
            freq += 1
            if freq > n:  # pragma: no cover - guarded by output_dim check
                break
        super().__init__(np.array(rows[:output_dim]), name=f"DFT({output_dim})")


def _haar_matrix(n: int) -> np.ndarray:
    """Full orthonormal Haar matrix for ``n`` a power of two.

    Rows are ordered coarse-to-fine: the scaling (average) row first,
    then difference rows of increasing resolution.
    """
    if n & (n - 1) != 0:
        raise ValueError(f"Haar transform requires a power-of-two length, got {n}")
    mat = np.array([[1.0]])
    while mat.shape[0] < n:
        m = mat.shape[0]
        top = np.kron(mat, np.array([1.0, 1.0])) / np.sqrt(2.0)
        bottom = np.kron(np.eye(m), np.array([1.0, -1.0])) / np.sqrt(2.0)
        mat = np.vstack([top, bottom])
    return mat


class HaarTransform(LinearTransform):
    """Coarsest ``N`` coefficients of the orthonormal Haar wavelet.

    Requires a power-of-two input length (standard for DWT indexing,
    cf. Chan & Fu 1999).
    """

    def __init__(self, input_length: int, output_dim: int) -> None:
        if output_dim < 1:
            raise ValueError(f"output dimension must be >= 1, got {output_dim}")
        if output_dim > input_length:
            raise ValueError(
                f"cannot keep {output_dim} coefficients of a length-"
                f"{input_length} series"
            )
        full = _haar_matrix(input_length)
        super().__init__(full[:output_dim], name=f"DWT({output_dim})")


class SVDTransform(LinearTransform):
    """Data-adapted basis: top right singular vectors of a training set.

    SVD is the optimal linear reduction for Euclidean distance on the
    training distribution (Korn et al. 1997); the paper uses it as the
    strongest Euclidean competitor in Figure 7.
    """

    def __init__(self, components, *, name: str | None = None) -> None:
        comp = np.asarray(components, dtype=np.float64)
        super().__init__(comp, name=name or f"SVD({comp.shape[0]})")

    @classmethod
    def fit(cls, data, output_dim: int, *, center: bool = False) -> "SVDTransform":
        """Fit the basis on a ``(m, n)`` matrix of training series.

        Parameters
        ----------
        data:
            Training series, one per row.
        output_dim:
            Number of components ``N`` to keep.
        center:
            Subtract the column means before the decomposition.  The
            default is off because the indexing pipeline already works
            on shift-normalised series.
        """
        mat = np.asarray(data, dtype=np.float64)
        if mat.ndim != 2:
            raise ValueError(f"training data must be 2-D, got shape {mat.shape}")
        if output_dim < 1 or output_dim > mat.shape[1]:
            raise ValueError(
                f"output dimension must be in [1, {mat.shape[1]}], got {output_dim}"
            )
        if center:
            mat = mat - mat.mean(axis=0)
        _, _, vt = np.linalg.svd(mat, full_matrices=False)
        if vt.shape[0] < output_dim:
            raise ValueError(
                f"training data has rank {vt.shape[0]} < {output_dim} components"
            )
        return cls(vt[:output_dim])


class ChebyshevTransform(LinearTransform):
    """Low-order Chebyshev-polynomial coefficients.

    The basis later popularised for trajectory indexing (Cai & Ng,
    SIGMOD 2004): Chebyshev polynomials of the first kind sampled on
    the series' time axis, then orthonormalised (QR) so the partial
    system is exactly lower-bounding.  Smooth series concentrate their
    energy in the first few polynomials the way DFT concentrates
    periodic energy in low frequencies.
    """

    def __init__(self, input_length: int, output_dim: int) -> None:
        if output_dim < 1:
            raise ValueError(f"output dimension must be >= 1, got {output_dim}")
        if output_dim > input_length:
            raise ValueError(
                f"cannot keep {output_dim} coefficients of a length-"
                f"{input_length} series"
            )
        # Chebyshev points mapped onto the sample grid.
        t = np.linspace(-1.0, 1.0, input_length)
        basis = np.polynomial.chebyshev.chebvander(t, output_dim - 1)
        # Orthonormalise the columns (QR) so rows of Q^T are a partial
        # orthonormal system over the discrete grid.
        q, _ = np.linalg.qr(basis)
        super().__init__(q.T, name=f"Chebyshev({output_dim})")


class RandomProjectionTransform(LinearTransform):
    """Gaussian random projection, spectrally normalised.

    Johnson-Lindenstrauss-style reduction: random rows preserve
    distances *approximately*; dividing by the largest singular value
    makes the map a strict contraction, so it is sound for GEMINI
    (no false negatives) at the cost of extra slack.  Included as the
    data-oblivious baseline of the transform family.
    """

    def __init__(self, input_length: int, output_dim: int, *,
                 seed: int = 0) -> None:
        if output_dim < 1:
            raise ValueError(f"output dimension must be >= 1, got {output_dim}")
        if output_dim > input_length:
            raise ValueError(
                f"cannot keep {output_dim} dimensions of a length-"
                f"{input_length} series"
            )
        rng = np.random.default_rng(seed)
        matrix = rng.normal(size=(output_dim, input_length))
        matrix /= np.linalg.norm(matrix, ord=2)
        super().__init__(matrix, name=f"RandomProj({output_dim})")


class IdentityTransform(LinearTransform):
    """The identity map — no dimensionality reduction.

    Feature space equals the original space, so the envelope bound it
    induces is exactly LB_Keogh.  Used as the "LB" ceiling in Figures
    6 and 7.
    """

    def __init__(self, input_length: int) -> None:
        super().__init__(np.eye(input_length), name="LB")
