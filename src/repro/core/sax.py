"""SAX — Symbolic Aggregate approXimation (Lin, Keogh et al. 2003).

Contemporary with the paper and from the same lineage as its PAA
machinery: PAA-reduce the z-normalised series, then discretise each
frame mean into a small alphabet using breakpoints that make symbols
equiprobable under a Gaussian.  The resulting *word* supports a
``MINDIST`` lower bound of the true Euclidean distance, so symbolic
indexes (suffix trees, hashing, plain string B-trees) can prune
without false dismissals — a symbolic cousin of the paper's GEMINI
feature vectors.

Included here both for completeness of the transform family and
because the contour strings of the QBH baseline are themselves a crude
SAX (adaptive alphabet over pitch *differences*); this is the
principled version.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats

from .series import as_series
from .transforms import PAATransform

__all__ = ["SAXWord", "sax_breakpoints", "sax_transform", "sax_mindist"]

_ALPHABET = "abcdefghijklmnopqrstuvwxyz"


def sax_breakpoints(alphabet_size: int) -> np.ndarray:
    """Breakpoints splitting N(0,1) into equiprobable regions.

    Returns ``alphabet_size - 1`` ascending cut points.
    """
    if not 2 <= alphabet_size <= 26:
        raise ValueError(
            f"alphabet size must be in [2, 26], got {alphabet_size}"
        )
    quantiles = np.arange(1, alphabet_size) / alphabet_size
    return stats.norm.ppf(quantiles)


@dataclass(frozen=True)
class SAXWord:
    """A SAX word: one symbol per PAA frame.

    Attributes
    ----------
    symbols:
        Integer symbol per frame, ``0 .. alphabet_size-1`` (0 = lowest).
    original_length:
        Length ``n`` of the series the word encodes.
    alphabet_size:
        Size of the symbol alphabet.
    """

    symbols: np.ndarray
    original_length: int
    alphabet_size: int

    def __post_init__(self) -> None:
        symbols = np.asarray(self.symbols, dtype=np.int64)
        if symbols.ndim != 1 or symbols.size == 0:
            raise ValueError("symbols must be a non-empty 1-D array")
        if not 2 <= self.alphabet_size <= 26:
            raise ValueError("alphabet size must be in [2, 26]")
        if symbols.min() < 0 or symbols.max() >= self.alphabet_size:
            raise ValueError("symbols out of alphabet range")
        if self.original_length < symbols.size:
            raise ValueError("original length shorter than the word")
        object.__setattr__(self, "symbols", symbols)

    @property
    def word_length(self) -> int:
        return int(self.symbols.size)

    def __str__(self) -> str:
        return "".join(_ALPHABET[s] for s in self.symbols)


def sax_transform(
    series,
    n_segments: int,
    alphabet_size: int = 8,
    *,
    znormalize: bool = True,
) -> SAXWord:
    """SAX word of a series.

    Parameters
    ----------
    series:
        Input series (z-normalised first unless *znormalize* is off —
        the MINDIST guarantees assume z-normalised input).
    n_segments:
        PAA word length.
    alphabet_size:
        Alphabet cardinality (2-26).
    """
    arr = as_series(series, min_length=n_segments)
    if znormalize:
        std = arr.std()
        arr = (arr - arr.mean()) / std if std > 1e-12 else arr - arr.mean()
    means = PAATransform(arr.size, n_segments).frame_means(arr)
    cuts = sax_breakpoints(alphabet_size)
    symbols = np.searchsorted(cuts, means, side="right")
    return SAXWord(
        symbols=symbols,
        original_length=arr.size,
        alphabet_size=alphabet_size,
    )


def sax_mindist(a: SAXWord, b: SAXWord) -> float:
    """MINDIST lower bound of the Euclidean distance between the two
    (z-normalised) series the words encode.

    Per frame, two symbols at least one cell apart must differ by at
    least the gap between their nearest breakpoints; adjacent or equal
    symbols contribute zero.  Combined with the PAA bound this yields

    .. math:: MINDIST = \\sqrt{n/w} \\sqrt{\\sum_j cell(a_j, b_j)^2}
    """
    if a.alphabet_size != b.alphabet_size:
        raise ValueError("words use different alphabets")
    if a.word_length != b.word_length:
        raise ValueError("words have different lengths")
    if a.original_length != b.original_length:
        raise ValueError("words encode series of different lengths")
    cuts = sax_breakpoints(a.alphabet_size)
    hi = np.maximum(a.symbols, b.symbols)
    lo = np.minimum(a.symbols, b.symbols)
    # np.where evaluates both branches eagerly: clip the indices so the
    # (discarded) adjacent-symbol branch cannot index out of bounds.
    hi_idx = np.clip(hi - 1, 0, cuts.size - 1)
    lo_idx = np.clip(lo, 0, cuts.size - 1)
    gaps = np.where(hi - lo <= 1, 0.0, cuts[hi_idx] - cuts[lo_idx])
    n = a.original_length
    w = a.word_length
    return float(np.sqrt(n / w) * np.sqrt(np.sum(gaps * gaps)))
