"""Lower bounds for the constrained DTW distance.

Three families, from loosest to tightest:

* :func:`lb_yi` — the global bound of Yi, Jagadish & Faloutsos (1998):
  only the overall min/max of the candidate is used.
* :func:`lb_keogh` — the envelope bound (Keogh 2002, Lemma 2 in the
  paper): distance from the query to the candidate's ``k``-envelope in
  full dimension.  Tightest, but not indexable without reduction.
* :func:`lb_envelope_transform` — the paper's Theorem 1: distance in
  the *reduced feature space* between the transformed query and the
  container-invariantly transformed envelope.  This is the quantity an
  index can actually evaluate; the envelope transform decides how
  tight it is (New_PAA vs Keogh_PAA vs DFT vs SVD ...).

:func:`tightness` computes the paper's evaluation metric
``T = lower bound / true DTW distance`` used in Figures 6 and 7.
"""

from __future__ import annotations

import numpy as np

from .envelope import Envelope, envelope_distance, k_envelope
from .envelope_transforms import EnvelopeTransform
from .series import as_series

__all__ = [
    "lb_yi",
    "lb_keogh",
    "lb_envelope_transform",
    "tightness",
]


def lb_yi(query, candidate, *, metric: str = "euclidean") -> float:
    """Global lower bound of Yi et al. (1998).

    Every query sample above the candidate's maximum (or below its
    minimum) must pay at least the excess, whatever the warping.  Uses
    just two values of the candidate, so it is cheap but loose — the
    paper's motivation for local (envelope) bounds.
    """
    q = as_series(query)
    c = as_series(candidate)
    band = Envelope(
        lower=np.full(q.size, c.min()), upper=np.full(q.size, c.max())
    )
    return envelope_distance(q, band, metric=metric)


def lb_keogh(query, candidate, k: int, *, metric: str = "euclidean") -> float:
    """Envelope lower bound in full dimension (Lemma 2).

    ``D(x, Env_k(y)) <= D_DTW(k)(x, y)``.  Both series must have equal
    length (apply the UTW normal form first).  Valid for both the
    Euclidean and the Manhattan ground metric.
    """
    q = as_series(query)
    c = as_series(candidate)
    if q.size != c.size:
        raise ValueError(
            f"series lengths differ ({q.size} != {c.size}); "
            "apply the UTW normal form before lower-bounding"
        )
    return envelope_distance(q, k_envelope(c, k), metric=metric)


def lb_envelope_transform(
    env_transform: EnvelopeTransform,
    query,
    candidate=None,
    *,
    k: int | None = None,
    envelope: Envelope | None = None,
    feature_envelope: Envelope | None = None,
    query_features: np.ndarray | None = None,
) -> float:
    """Feature-space lower bound of Theorem 1.

    ``D(T(x), T(Env_k(y))) <= D_DTW(k)(x, y)`` whenever the envelope
    transform is container-invariant and the underlying series
    transform is lower-bounding.

    The candidate can be given three ways, from rawest to most
    precomputed: as a series (with ``k``), as a full-dimension
    ``envelope``, or directly as a ``feature_envelope``.  Likewise the
    query can be supplied pre-transformed via ``query_features`` — the
    form an index uses when scanning many candidates for one query.
    """
    if feature_envelope is None:
        if envelope is None:
            if candidate is None or k is None:
                raise ValueError(
                    "provide candidate+k, envelope, or feature_envelope"
                )
            envelope = k_envelope(candidate, k)
        feature_envelope = env_transform.reduce(envelope)
    if query_features is None:
        query_features = env_transform.transform_series(query)
    return envelope_distance(query_features, feature_envelope)


def tightness(lower_bound: float, true_distance: float) -> float:
    """The tightness metric ``T`` of the experiments section.

    ``T = lower bound / true DTW distance``, in ``[0, 1]`` for any
    correct bound; defined as 1 when the true distance is zero (a
    correct bound must be zero too).
    """
    if lower_bound < 0 or true_distance < 0:
        raise ValueError("distances must be non-negative")
    if true_distance == 0.0:
        return 1.0
    return lower_bound / true_distance
