"""Time-series envelopes (Definition 6) and envelope distances (Definition 7).

The ``k``-envelope of a series brackets each sample by the minimum and
maximum over a window of half-width ``k``; it is the geometric object
every DTW lower bound in this library is built from.  Envelopes are
computed in O(n) with the monotonic-deque sliding min/max algorithm
(Lemire 2006), not the naive O(nk) scan.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from .series import as_series

__all__ = [
    "Envelope",
    "k_envelope",
    "sliding_min",
    "sliding_max",
    "envelope_distance",
    "warping_width_to_k",
    "k_to_warping_width",
]


@dataclass(frozen=True)
class Envelope:
    """A lower/upper band around a time series.

    Attributes
    ----------
    lower:
        Lower bound at each sample, ``EnvL_k`` in the paper.
    upper:
        Upper bound at each sample, ``EnvU_k`` in the paper.
    """

    lower: np.ndarray
    upper: np.ndarray

    def __post_init__(self) -> None:
        lower = as_series(self.lower)
        upper = as_series(self.upper)
        if lower.size != upper.size:
            raise ValueError(
                f"envelope sides differ in length: {lower.size} != {upper.size}"
            )
        if np.any(lower > upper + 1e-12):
            raise ValueError("lower envelope exceeds upper envelope")
        object.__setattr__(self, "lower", lower)
        object.__setattr__(self, "upper", upper)

    def __len__(self) -> int:
        return int(self.lower.size)

    def contains(self, series, *, atol: float = 1e-9) -> bool:
        """True if *series* lies within the band at every sample."""
        arr = as_series(series)
        if arr.size != len(self):
            return False
        return bool(
            np.all(arr >= self.lower - atol) and np.all(arr <= self.upper + atol)
        )

    def width(self) -> np.ndarray:
        """Pointwise band width ``upper - lower``."""
        return self.upper - self.lower

    def clip(self, series) -> np.ndarray:
        """Project *series* onto the band (the nearest point inside it)."""
        arr = as_series(series)
        if arr.size != len(self):
            raise ValueError(
                f"series length {arr.size} does not match envelope length {len(self)}"
            )
        return np.clip(arr, self.lower, self.upper)


def _sliding_extremum(arr: np.ndarray, k: int, *, take_max: bool) -> np.ndarray:
    """Sliding window extremum with window [i-k, i+k], O(n) via deque."""
    n = arr.size
    out = np.empty(n, dtype=np.float64)
    window: deque[int] = deque()  # indices, extremum at the front

    def dominated(new: float, old: float) -> bool:
        return new >= old if take_max else new <= old

    # Index j enters the deque when it becomes visible (j <= i + k) and
    # leaves when it falls out of range (j < i - k).
    j = 0
    for i in range(n):
        while j < n and j <= i + k:
            while window and dominated(arr[j], arr[window[-1]]):
                window.pop()
            window.append(j)
            j += 1
        while window[0] < i - k:
            window.popleft()
        out[i] = arr[window[0]]
    return out


def sliding_max(series, k: int) -> np.ndarray:
    """Max over the window ``[i-k, i+k]`` at every position, in O(n)."""
    if k < 0:
        raise ValueError(f"window half-width must be >= 0, got {k}")
    arr = as_series(series)
    if k == 0:
        return arr.copy()
    return _sliding_extremum(arr, k, take_max=True)


def sliding_min(series, k: int) -> np.ndarray:
    """Min over the window ``[i-k, i+k]`` at every position, in O(n)."""
    if k < 0:
        raise ValueError(f"window half-width must be >= 0, got {k}")
    arr = as_series(series)
    if k == 0:
        return arr.copy()
    return _sliding_extremum(arr, k, take_max=False)


def k_envelope(series, k: int) -> Envelope:
    """The ``k``-envelope ``Env_k`` of a series (Definition 6)."""
    return Envelope(lower=sliding_min(series, k), upper=sliding_max(series, k))


def envelope_distance(series, envelope: Envelope, *, metric: str = "euclidean") -> float:
    """Distance from a series to an envelope (Definition 7).

    ``D(x, e) = min_{z in e} D(x, z)``: only the parts of *series* that
    stick out of the band contribute.  Supports the Euclidean metric
    (the paper's, default) and Manhattan.
    """
    arr = as_series(series)
    if arr.size != len(envelope):
        raise ValueError(
            f"series length {arr.size} does not match envelope length {len(envelope)}"
        )
    above = np.maximum(arr - envelope.upper, 0.0)
    below = np.maximum(envelope.lower - arr, 0.0)
    if metric == "euclidean":
        return float(np.sqrt(np.sum(above * above + below * below)))
    if metric == "manhattan":
        return float(np.sum(above + below))
    raise ValueError(
        f"metric must be 'euclidean' or 'manhattan', got {metric!r}"
    )


def warping_width_to_k(delta: float, n: int) -> int:
    """Convert a warping width ``delta = (2k+1)/n`` to the band half-width k.

    The result is clamped to ``[0, n-1]``; fractional widths round down,
    matching the Sakoe-Chiba beam of ``2k+1`` cells the paper describes.
    """
    if not 0.0 <= delta <= 1.0:
        raise ValueError(f"warping width must be in [0, 1], got {delta}")
    if n < 1:
        raise ValueError("series length must be positive")
    k = int((delta * n - 1) // 2) if delta * n >= 1 else 0
    return max(0, min(k, n - 1))


def k_to_warping_width(k: int, n: int) -> float:
    """Convert a band half-width back to the warping width ``(2k+1)/n``."""
    if k < 0:
        raise ValueError("band half-width must be >= 0")
    if n < 1:
        raise ValueError("series length must be positive")
    return (2 * k + 1) / n
