"""Adaptive Piecewise Constant Approximation (APCA).

The paper's related work cites APCA (Keogh, Chakrabarti, Mehrotra &
Pazzani 2001) among the dimensionality reductions usable under the
GEMINI framework.  Unlike PAA/DFT/SVD, APCA is **not a linear
transform** — its segment boundaries adapt to each series — so Lemma 3
does not apply and it cannot ride the paper's envelope-transform
machinery directly.  It is included here both as the cited Euclidean
competitor and to mark the framework's boundary; its DTW support comes
from a *per-candidate* bound instead: the query's envelope is averaged
over the candidate's own segmentation, which is container-invariant by
convexity (Jensen's inequality on the squared interval distance).

Segments are found by greedy bottom-up merging, minimising the squared
reconstruction error — O(n log n) and within a small factor of the
optimal dynamic-programming segmentation.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from .envelope import Envelope
from .series import as_series

__all__ = ["APCA", "apca_approximate", "apca_euclidean_lb", "apca_dtw_lb"]


@dataclass(frozen=True)
class APCA:
    """An adaptive piecewise-constant approximation of one series.

    Attributes
    ----------
    values:
        Mean value of each segment.
    ends:
        Exclusive end index of each segment (``ends[-1]`` equals the
        original length); segment ``j`` covers
        ``[ends[j-1], ends[j])`` with ``ends[-1-1]`` read as 0.
    """

    values: np.ndarray
    ends: np.ndarray

    def __post_init__(self) -> None:
        values = np.asarray(self.values, dtype=np.float64)
        ends = np.asarray(self.ends, dtype=np.int64)
        if values.ndim != 1 or ends.shape != values.shape:
            raise ValueError("values and ends must be 1-D and equally long")
        if values.size == 0:
            raise ValueError("APCA must have at least one segment")
        starts = np.concatenate([[0], ends[:-1]])
        if np.any(ends <= starts):
            raise ValueError("segment ends must be strictly increasing")
        object.__setattr__(self, "values", values)
        object.__setattr__(self, "ends", ends)

    @property
    def n_segments(self) -> int:
        return int(self.values.size)

    @property
    def length(self) -> int:
        return int(self.ends[-1])

    def starts(self) -> np.ndarray:
        return np.concatenate([[0], self.ends[:-1]])

    def reconstruct(self) -> np.ndarray:
        """The piecewise-constant series the approximation encodes."""
        widths = self.ends - self.starts()
        return np.repeat(self.values, widths)

    def memory_floats(self) -> int:
        """Storage cost in floats (2 per segment, as in the APCA paper)."""
        return 2 * self.n_segments


def apca_approximate(series, n_segments: int) -> APCA:
    """Greedy bottom-up APCA of *series* with *n_segments* pieces.

    Starts from one segment per sample and repeatedly merges the
    adjacent pair whose merge increases the squared error least.
    """
    arr = as_series(series)
    n = arr.size
    if not 1 <= n_segments <= n:
        raise ValueError(
            f"need 1 <= n_segments <= {n}, got {n_segments}"
        )
    if n_segments == n:
        return APCA(values=arr.copy(), ends=np.arange(1, n + 1))

    # Doubly linked segment list with (sum, sumsq, count) statistics.
    sums = arr.copy()
    sumsqs = arr * arr
    counts = np.ones(n)
    prev = np.arange(-1, n - 1)
    next_ = np.arange(1, n + 1)  # n means "none"
    alive = np.ones(n, dtype=bool)

    def sse(s, ss, c):
        return ss - s * s / c

    def merge_cost(a, b):
        s = sums[a] + sums[b]
        ss = sumsqs[a] + sumsqs[b]
        c = counts[a] + counts[b]
        return (
            sse(s, ss, c)
            - sse(sums[a], sumsqs[a], counts[a])
            - sse(sums[b], sumsqs[b], counts[b])
        )

    heap = [(merge_cost(i, i + 1), i, i + 1) for i in range(n - 1)]
    heapq.heapify(heap)
    remaining = n
    while remaining > n_segments and heap:
        cost, a, b = heapq.heappop(heap)
        if not (alive[a] and alive[b]) or next_[a] != b:
            continue
        # Merge b into a.
        sums[a] += sums[b]
        sumsqs[a] += sumsqs[b]
        counts[a] += counts[b]
        alive[b] = False
        next_[a] = next_[b]
        if next_[a] < n:
            prev[next_[a]] = a
            heapq.heappush(heap, (merge_cost(a, next_[a]), a, next_[a]))
        if prev[a] >= 0:
            heapq.heappush(heap, (merge_cost(prev[a], a), prev[a], a))
        remaining -= 1

    values, ends = [], []
    i = 0
    position = 0
    while i < n:
        position += int(counts[i])
        values.append(sums[i] / counts[i])
        ends.append(position)
        i = next_[i]
    return APCA(values=np.array(values), ends=np.array(ends))


def apca_euclidean_lb(query, apca: APCA) -> float:
    """Lower bound of ``D(query, original)`` from the candidate's APCA.

    Per segment, Cauchy-Schwarz gives
    ``sum (q_i - c_j)^2 >= w_j (mean(q over segment) - c_j)^2`` for the
    *approximation*; because each APCA value is the segment mean of the
    original, the same inequality holds against the original series.
    """
    q = as_series(query)
    if q.size != apca.length:
        raise ValueError(
            f"query length {q.size} does not match APCA length {apca.length}"
        )
    total = 0.0
    start = 0
    for value, end in zip(apca.values, apca.ends):
        width = end - start
        q_mean = q[start:end].mean()
        total += width * (q_mean - value) ** 2
        start = end
    return float(np.sqrt(total))


def apca_dtw_lb(query_envelope: Envelope, apca: APCA) -> float:
    """Lower bound of ``D_DTW(k)(original, query)`` (adaptive New_PAA).

    The query's ``k``-envelope is averaged over the candidate's own
    segmentation; by convexity of the squared interval distance this
    lower-bounds LB_Keogh, hence the constrained DTW distance.
    """
    if len(query_envelope) != apca.length:
        raise ValueError(
            f"envelope length {len(query_envelope)} does not match APCA "
            f"length {apca.length}"
        )
    total = 0.0
    start = 0
    for value, end in zip(apca.values, apca.ends):
        width = end - start
        lower = query_envelope.lower[start:end].mean()
        upper = query_envelope.upper[start:end].mean()
        gap = max(value - upper, lower - value, 0.0)
        total += width * gap * gap
        start = end
    return float(np.sqrt(total))
