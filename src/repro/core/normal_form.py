"""Normal forms that make similarity invariant to shift and tempo.

Section 3.3 of the paper: before any distance is computed, both the hum
query and the candidate melodies are put into a *normal form* that

* subtracts the mean pitch (shift invariance — users do not hum at the
  right absolute pitch), and
* uniformly rescales the time axis to a fixed length (Uniform Time
  Warping normal form — users hum at half to double tempo but roughly
  consistently).

Optionally the amplitude can also be normalised to unit standard
deviation, which additionally forgives compressed or exaggerated
intervals.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .series import as_series, uniform_resample

__all__ = ["NormalForm", "shift_normalize", "utw_normal_form", "normalize"]

#: Default length of the UTW normal form; a "predefined large number"
#: divisible by many melody lengths so that upsampling is usually exact.
DEFAULT_NORMAL_LENGTH = 256


@dataclass(frozen=True)
class NormalForm:
    """Configuration of the normalisation pipeline.

    Attributes
    ----------
    length:
        Target length of the UTW normal form, or ``None`` to keep the
        original sampling.
    shift:
        Subtract the mean pitch (absolute-pitch invariance).
    scale:
        Divide by the standard deviation (interval-size invariance).
        The paper's system uses shift-only; scaling is an extension.
    """

    length: int | None = DEFAULT_NORMAL_LENGTH
    shift: bool = True
    scale: bool = False

    def __post_init__(self) -> None:
        if self.length is not None and self.length < 2:
            raise ValueError(f"normal-form length must be >= 2, got {self.length}")

    def apply(self, series) -> np.ndarray:
        """Apply the configured normalisation to *series*."""
        return normalize(
            series, length=self.length, shift=self.shift, scale=self.scale
        )


def shift_normalize(series) -> np.ndarray:
    """Subtract the mean, making the series invariant to transposition."""
    arr = as_series(series)
    return arr - arr.mean()


def utw_normal_form(series, length: int = DEFAULT_NORMAL_LENGTH) -> np.ndarray:
    """Uniformly stretch/squeeze the series to *length* samples.

    Two series in the same UTW normal form can be compared point by
    point regardless of their original tempos (Definition 2, Lemma 1).
    """
    return uniform_resample(series, length)


def normalize(
    series,
    *,
    length: int | None = DEFAULT_NORMAL_LENGTH,
    shift: bool = True,
    scale: bool = False,
    eps: float = 1e-12,
) -> np.ndarray:
    """Full normalisation pipeline: tempo, then shift, then scale.

    Parameters
    ----------
    series:
        Input pitch time series.
    length:
        UTW normal-form length; ``None`` skips time rescaling.
    shift:
        Subtract the mean.
    scale:
        Divide by the standard deviation (no-op for constant series).
    eps:
        Standard deviations below this are treated as zero.
    """
    arr = as_series(series)
    if length is not None:
        arr = uniform_resample(arr, length)
    if shift:
        arr = arr - arr.mean()
    if scale:
        std = arr.std()
        if std > eps:
            arr = arr / std
    return arr
