"""Envelope transforms — the paper's central contribution.

A dimensionality-reduction transform ``T`` applied to an *envelope*
must be **container-invariant** (Definition 8): every series inside the
envelope must land inside the transformed envelope.  Lemma 3 shows how
to achieve this for any linear ``T`` by routing each coefficient
through the upper or lower side of the envelope according to its sign:

.. math::

    E^U_j = \\sum_i a_{ij} e^U_i \\tau(a_{ij}) + a_{ij} e^L_i (1-\\tau(a_{ij}))

and symmetrically for ``E^L``.  :class:`SignSplitEnvelopeTransform`
implements exactly that, vectorised, for any :class:`LinearTransform`.

Two PAA-specific reductions are provided for the head-to-head
comparison in the experiments:

* :class:`NewPAAEnvelopeTransform` — the paper's New_PAA: each feature
  bound is the frame *average* of the corresponding envelope side.
  Because all PAA coefficients are positive, this coincides with the
  generic sign-split construction, and it is never looser than
  Keogh's reduction.
* :class:`KeoghPAAEnvelopeTransform` — the prior state of the art
  (Keogh, VLDB 2002): each feature bound is the frame *min/max* of the
  envelope side, i.e. a piecewise-constant band that bounds but never
  intersects the envelope.

:class:`NaiveEnvelopeTransform` applies ``T`` to each envelope side
directly with no sign handling; for transforms with negative
coefficients (DFT, SVD, DWT) it is *not* container-invariant and is
included only so the ablation benchmark can demonstrate the resulting
false negatives.
"""

from __future__ import annotations

import numpy as np

from .envelope import Envelope
from .transforms import LinearTransform, PAATransform

__all__ = [
    "EnvelopeTransform",
    "SignSplitEnvelopeTransform",
    "NewPAAEnvelopeTransform",
    "KeoghPAAEnvelopeTransform",
    "NaiveEnvelopeTransform",
]


class EnvelopeTransform:
    """Base class pairing a series transform with an envelope reduction.

    Subclasses implement :meth:`reduce`, mapping a length-``n``
    envelope to an envelope in the ``N``-dimensional feature space.
    The series transform itself is delegated to the wrapped
    :class:`LinearTransform`, so feature vectors and feature envelopes
    live in the same space and plain Euclidean geometry applies.
    """

    def __init__(self, transform: LinearTransform, *, name: str | None = None) -> None:
        self.transform = transform
        self.name = name or f"{type(self).__name__}[{transform.name}]"

    @property
    def metrics(self) -> tuple[str, ...]:
        """Ground metrics under which the induced bound is sound."""
        return self.transform.metrics

    @property
    def input_length(self) -> int:
        return self.transform.input_length

    @property
    def output_dim(self) -> int:
        return self.transform.output_dim

    def reduce(self, envelope: Envelope) -> Envelope:
        """Map an envelope to its feature-space envelope."""
        raise NotImplementedError

    def transform_series(self, series) -> np.ndarray:
        """Map a series to its feature vector (delegates to ``transform``)."""
        return self.transform.transform(series)

    def _check_length(self, envelope: Envelope) -> None:
        if len(envelope) != self.input_length:
            raise ValueError(
                f"{self.name} expects envelopes of length {self.input_length}, "
                f"got {len(envelope)}"
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}({self.transform!r})"


class SignSplitEnvelopeTransform(EnvelopeTransform):
    """Generic container-invariant envelope transform (Lemma 3).

    Positive coefficients read from the same side of the envelope they
    contribute to; negative coefficients read from the opposite side.
    This is the tightest reduction that is container-invariant for an
    arbitrary linear transform: each output bound is attained by some
    series inside the input envelope.
    """

    def __init__(self, transform: LinearTransform, *, name: str | None = None) -> None:
        super().__init__(transform, name=name or transform.name)
        matrix = transform.matrix
        self._positive = np.maximum(matrix, 0.0)
        self._negative = np.minimum(matrix, 0.0)

    def reduce(self, envelope: Envelope) -> Envelope:
        self._check_length(envelope)
        upper = self._positive @ envelope.upper + self._negative @ envelope.lower
        lower = self._positive @ envelope.lower + self._negative @ envelope.upper
        return Envelope(lower=lower, upper=upper)


class NewPAAEnvelopeTransform(SignSplitEnvelopeTransform):
    """The paper's New_PAA envelope reduction.

    ``L_i = mean(frame of lower side)``, ``U_i = mean(frame of upper
    side)`` (times the lower-bounding PAA scaling).  Since every PAA
    coefficient is positive, the sign-split construction degenerates to
    exactly this, so we simply specialise the generic class for clarity
    and to fix the benchmark name.
    """

    def __init__(self, input_length: int, n_frames: int, *,
                 metric: str = "euclidean") -> None:
        norm = "l2" if metric == "euclidean" else "l1"
        super().__init__(
            PAATransform(input_length, n_frames, norm=norm), name="New_PAA"
        )


class KeoghPAAEnvelopeTransform(EnvelopeTransform):
    """Keogh's PAA envelope reduction (the baseline in every figure).

    ``L_i = min(frame of lower side)``, ``U_i = max(frame of upper
    side)``: the piecewise-constant band that bounds but does not
    intersect the envelope.  Container-invariant, but strictly looser
    than :class:`NewPAAEnvelopeTransform` whenever the envelope varies
    within a frame.
    """

    def __init__(self, input_length: int, n_frames: int, *,
                 metric: str = "euclidean") -> None:
        norm = "l2" if metric == "euclidean" else "l1"
        paa = PAATransform(input_length, n_frames, norm=norm)
        super().__init__(paa, name="Keogh_PAA")
        self._bounds = paa.frame_bounds
        # Scaling per frame keeps feature-space distances comparable to
        # the scaled PAA features: sqrt(width) for L2, width for L1.
        widths = np.diff(self._bounds).astype(np.float64)
        self._scale = np.sqrt(widths) if norm == "l2" else widths

    def reduce(self, envelope: Envelope) -> Envelope:
        self._check_length(envelope)
        n_frames = self.output_dim
        lower = np.empty(n_frames)
        upper = np.empty(n_frames)
        for j in range(n_frames):
            lo, hi = self._bounds[j], self._bounds[j + 1]
            lower[j] = envelope.lower[lo:hi].min()
            upper[j] = envelope.upper[lo:hi].max()
        return Envelope(lower=lower * self._scale, upper=upper * self._scale)


class NaiveEnvelopeTransform(EnvelopeTransform):
    """Ablation: transform each envelope side directly, ignoring signs.

    ``E^U = T(e^U)``, ``E^L = T(e^L)`` with the bounds re-sorted
    pointwise so the result is still a valid band.  For transforms with
    any negative coefficient this is **not** container-invariant and
    admits false negatives; it exists to let the ablation benchmark
    quantify that failure.
    """

    def reduce(self, envelope: Envelope) -> Envelope:
        self._check_length(envelope)
        a = self.transform.matrix @ envelope.upper
        b = self.transform.matrix @ envelope.lower
        return Envelope(lower=np.minimum(a, b), upper=np.maximum(a, b))
