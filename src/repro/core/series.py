"""Time-series primitives shared by the whole library.

Throughout the package a *time series* is a one-dimensional
``numpy.ndarray`` of ``float64``.  This module holds the validation and
resampling helpers that everything else builds on, in particular the
``w``-upsampling operator :math:`U_w` from Definition 3 of the paper,
which repeats every sample ``w`` times and underlies Uniform Time
Warping (Lemma 1).
"""

from __future__ import annotations

import math

import numpy as np

__all__ = [
    "as_series",
    "upsample",
    "uniform_resample",
    "common_length",
    "first",
    "rest",
]


def as_series(values, *, min_length: int = 1) -> np.ndarray:
    """Validate *values* and return it as a float64 1-D array.

    Parameters
    ----------
    values:
        Any sequence of numbers (list, tuple, ndarray, ...).
    min_length:
        Minimum number of samples required.

    Raises
    ------
    ValueError
        If the input is not one-dimensional, is shorter than
        *min_length*, or contains NaN/inf values.
    """
    arr = np.asarray(values, dtype=np.float64)
    if arr.ndim != 1:
        raise ValueError(f"time series must be 1-D, got shape {arr.shape}")
    if arr.size < min_length:
        raise ValueError(
            f"time series must have at least {min_length} samples, got {arr.size}"
        )
    if not np.all(np.isfinite(arr)):
        raise ValueError("time series must contain only finite values")
    return arr


def upsample(series, w: int) -> np.ndarray:
    """Return the ``w``-upsampling :math:`U_w(x)` of *series*.

    Each value is repeated ``w`` times, so a series of length ``n``
    becomes one of length ``n * w`` (Definition 3).

    >>> upsample([1.0, 2.0], 3)
    array([1., 1., 1., 2., 2., 2.])
    """
    if w < 1:
        raise ValueError(f"upsampling factor must be >= 1, got {w}")
    arr = as_series(series)
    return np.repeat(arr, w)


def uniform_resample(series, length: int) -> np.ndarray:
    """Uniformly stretch or squeeze *series* to exactly *length* samples.

    This realises the Uniform Time Warping normal form: sample ``i`` of
    the output takes the value ``x[ceil((i+1) * n / length) - 1]``,
    matching the paper's ``x_{ceil(i/m)}`` indexing.  When *length* is a
    multiple of ``len(series)`` this coincides with :func:`upsample`.
    """
    if length < 1:
        raise ValueError(f"target length must be >= 1, got {length}")
    arr = as_series(series)
    n = arr.size
    # Positions 1..length map to ceil(i * n / length) in 1-based indexing.
    idx = np.ceil(np.arange(1, length + 1) * (n / length)).astype(np.int64) - 1
    np.clip(idx, 0, n - 1, out=idx)
    return arr[idx]


def common_length(n: int, m: int, *, cap: int | None = None) -> int:
    """Smallest common length two series can be upsampled to.

    Returns ``lcm(n, m)`` unless *cap* is given and the LCM exceeds it,
    in which case *cap* itself is returned (uniform resampling to a cap
    is the practical approximation the paper suggests with its
    "predefined large number" ``nw``).
    """
    if n < 1 or m < 1:
        raise ValueError("series lengths must be positive")
    lcm = math.lcm(n, m)
    if cap is not None and lcm > cap:
        return cap
    return lcm


def first(series) -> float:
    """``First(x)``: the first element of the series (Table 1)."""
    arr = as_series(series)
    return float(arr[0])


def rest(series) -> np.ndarray:
    """``Rest(x)``: the series without its first element (Table 1)."""
    arr = as_series(series, min_length=2)
    return arr[1:]
