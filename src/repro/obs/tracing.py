"""Nested tracing spans with a JSONL exporter.

A :class:`Span` is one timed operation with free-form attributes; a
:class:`Tracer` maintains a per-thread stack of open spans so nesting
is implicit — the engine opens ``query``, each filter stage opens
``stage:<name>`` inside it, each refinement chunk opens ``refine``,
and each DTW kernel dispatch opens ``kernel``::

    query                      kind, corpus_size, results, ...
    └── stage:first_last       candidates_in, pruned, bound_*
    └── stage:new_paa          ...
    └── refine                 rows, dtw_computations
        └── kernel             backend, rows, cells

When the root span of a trace closes, the whole trace (every finished
span, root last) is handed to the tracer's *sink*.  Sinks are plain
callables; :class:`JsonlSpanExporter` writes one JSON object per span
per line, :class:`InMemorySink` collects traces for tests, and
:func:`slow_trace_filter` gates any sink behind a root-duration
threshold (the per-query trace capture of the slow-query log).

Thread model: each thread builds its own span stack (queries served by
a ``ThreadPoolExecutor`` become independent traces), and sinks are
invoked under a lock, so one exporter may serve many worker threads.

Traces can also cross a *process* boundary (the shard tier).  Three
pieces make one coherent tree out of spans produced by several
processes:

* ``id_prefix`` — a worker-side tracer mints span ids as strings like
  ``"w2e5-7"`` (shard 2, epoch 5, counter 7), so ids stay globally
  unique without any parent-side remapping, including across a worker
  respawn (the epoch in the prefix changes);
* :meth:`Tracer.set_remote_parent` — the worker installs the shipped
  ``(trace_id, parent span_id)`` so its next root-level span becomes a
  *child* of the router's fan-out span instead of a fresh trace;
* :meth:`Tracer.adopt` — the router grafts the worker's finished span
  records into the trace currently open on the calling thread,
  shifting their clocks by a caller-computed offset (see
  :mod:`repro.shard.router` for the re-anchoring arithmetic).

The :class:`NoopTracer` singleton (``NOOP_TRACER``) makes every
``span()`` call return one shared, reusable null context manager —
no allocation, no timestamps — so instrumented code pays near zero
when tracing is off.
"""

from __future__ import annotations

import itertools
import json
import threading
from collections.abc import Callable, Sequence

from .clock import monotonic_s

__all__ = [
    "Span",
    "Tracer",
    "NoopTracer",
    "NOOP_TRACER",
    "InMemorySink",
    "JsonlSpanExporter",
    "slow_trace_filter",
]

#: A sink receives every span of one finished trace, root span last.
TraceSink = Callable[[Sequence["Span"]], None]


class Span:
    """One timed, attributed operation inside a trace.

    Attributes are free-form JSON-serialisable values set at open time
    (``tracer.span(name, **attrs)``) or later via :meth:`set`.  Counts
    recorded here are the *source data* for
    :class:`~repro.engine.CascadeStats` — the engine sets each stage
    span's attributes from the exact fields the stats dataclass
    carries, which is what makes the two reconcile by construction.
    """

    __slots__ = ("name", "trace_id", "span_id", "parent_id", "start_s",
                 "end_s", "attrs")

    def __init__(self, name: str, trace_id, span_id,
                 parent_id, attrs: dict) -> None:
        self.name = name
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.start_s = monotonic_s()
        self.end_s: float | None = None
        self.attrs = attrs

    def set(self, **attrs) -> None:
        """Attach or overwrite attributes on the open span."""
        self.attrs.update(attrs)

    @property
    def duration_s(self) -> float:
        """Elapsed seconds (up to now if the span is still open)."""
        end = self.end_s if self.end_s is not None else monotonic_s()
        return end - self.start_s

    def to_dict(self) -> dict:
        """The span as one JSON-ready record (the JSONL line schema)."""
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_s": self.start_s,
            "duration_s": self.duration_s,
            "attrs": dict(self.attrs),
        }

    @classmethod
    def from_dict(cls, record: dict) -> "Span":
        """Rebuild a span from its :meth:`to_dict` record.

        The inverse of the JSONL line schema — :meth:`Tracer.adopt`
        uses it to graft spans shipped across a process boundary.
        """
        span = cls(record["name"], record["trace_id"], record["span_id"],
                   record["parent_id"], dict(record["attrs"]))
        span.start_s = float(record["start_s"])
        span.end_s = span.start_s + float(record["duration_s"])
        return span

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Span({self.name!r}, trace={self.trace_id}, "
                f"span={self.span_id}, parent={self.parent_id})")


class _SpanHandle:
    """Context manager closing one span and delivering finished traces."""

    __slots__ = ("_tracer", "span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self.span = span

    def __enter__(self) -> Span:
        return self.span

    def __exit__(self, exc_type, exc, tb) -> None:
        self._tracer._finish(self.span)


class Tracer:
    """Produces nested spans and hands finished traces to a sink."""

    enabled = True

    def __init__(self, sink: TraceSink | None = None, *,
                 id_prefix: str | None = None) -> None:
        self._sink = sink
        self._ids = itertools.count(1)
        self._id_prefix = id_prefix
        self._local = threading.local()
        self._sink_lock = threading.Lock()

    def _state(self):
        state = getattr(self._local, "state", None)
        if state is None:
            state = self._local.state = {"stack": [], "finished": [],
                                         "remote": None}
        return state

    def _next_id(self):
        n = next(self._ids)
        if self._id_prefix is None:
            return n
        return f"{self._id_prefix}{n}"

    def span(self, name: str, **attrs) -> _SpanHandle:
        """Open a span nested under this thread's innermost open span.

        With no open span and a remote parent installed (see
        :meth:`set_remote_parent`), the span joins the remote trace as
        a child of the remote span instead of rooting a new trace.
        """
        state = self._state()
        stack = state["stack"]
        if stack:
            parent = stack[-1]
            trace_id, parent_id = parent.trace_id, parent.span_id
        elif state["remote"] is not None:
            trace_id, parent_id = state["remote"]
        else:
            trace_id, parent_id = self._next_id(), None
        span = Span(name, trace_id, self._next_id(), parent_id, attrs)
        stack.append(span)
        return _SpanHandle(self, span)

    def set_remote_parent(self, trace_id, span_id) -> None:
        """Parent this thread's next top-level spans under a span that
        lives in another process (the shard worker's side of trace
        propagation).  Stays in effect until
        :meth:`clear_remote_parent`; trace delivery to the sink still
        triggers whenever the local stack empties."""
        self._state()["remote"] = (trace_id, span_id)

    def clear_remote_parent(self) -> None:
        """Drop the remote parent installed on this thread, if any."""
        self._state()["remote"] = None

    def adopt(self, records, *, clock_offset_s: float = 0.0) -> None:
        """Graft finished span records from another process into the
        trace open on this thread.

        *records* are :meth:`Span.to_dict` dicts (the reply payload of
        a shard worker); *clock_offset_s* is added to each ``start_s``
        to re-anchor the remote process's ``perf_counter`` epoch onto
        this process's.  With no span open, the records are delivered
        straight to the sink as their own flush (they already carry a
        trace id).
        """
        spans = [Span.from_dict(record) for record in records]
        for span in spans:
            span.start_s += clock_offset_s
            span.end_s += clock_offset_s
        state = self._state()
        if state["stack"]:
            state["finished"].extend(spans)
        elif spans and self._sink is not None:
            with self._sink_lock:
                self._sink(spans)

    def _finish(self, span: Span) -> None:
        span.end_s = monotonic_s()
        state = self._state()
        stack = state["stack"]
        # Unwind to the finished span; tolerate exceptions having
        # skipped inner __exit__ calls.
        while stack:
            top = stack.pop()
            if top is span:
                break
            top.end_s = span.end_s  # pragma: no cover - exception unwind
        state["finished"].append(span)
        if not stack:
            finished, state["finished"] = state["finished"], []
            if self._sink is not None:
                with self._sink_lock:
                    self._sink(finished)

    def current_span(self) -> Span | None:
        """This thread's innermost open span, if any."""
        stack = self._state()["stack"]
        return stack[-1] if stack else None


class _NoopSpan:
    """Shared inert span: every mutation is a no-op."""

    __slots__ = ()
    name = "noop"
    attrs: dict = {}
    duration_s = 0.0

    def set(self, **attrs) -> None:
        pass


class _NoopHandle:
    __slots__ = ()
    _SPAN = _NoopSpan()

    def __enter__(self) -> _NoopSpan:
        return self._SPAN

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


class NoopTracer:
    """Tracing disabled: ``span()`` returns one shared null handle."""

    enabled = False
    _HANDLE = _NoopHandle()

    def span(self, name: str, **attrs) -> _NoopHandle:
        """Return the shared inert context manager (zero allocation)."""
        return self._HANDLE

    def current_span(self) -> None:
        """There is never an open span on the no-op tracer."""
        return None

    def set_remote_parent(self, trace_id, span_id) -> None:
        """Do nothing (tracing is disabled)."""

    def clear_remote_parent(self) -> None:
        """Do nothing (tracing is disabled)."""

    def adopt(self, records, *, clock_offset_s: float = 0.0) -> None:
        """Do nothing (tracing is disabled)."""


#: The shared disabled tracer.
NOOP_TRACER = NoopTracer()


class InMemorySink:
    """Collects finished traces as lists of spans (for tests)."""

    def __init__(self) -> None:
        self.traces: list[list[Span]] = []

    def __call__(self, spans: Sequence[Span]) -> None:
        self.traces.append(list(spans))

    @property
    def spans(self) -> list[Span]:
        """All spans across all traces, in finish order."""
        return [span for trace in self.traces for span in trace]


class JsonlSpanExporter:
    """Writes every span of every finished trace to a JSONL file.

    *append* controls the open mode explicitly: ``True`` extends an
    existing log (accumulating a slow-query corpus across runs),
    ``False`` truncates — there is no implicit mode.  Under the
    engine's ``*_many`` thread pools, whole traces stay contiguous
    (sinks run under the tracer's lock) but trace *order* follows
    completion order, so concurrent queries interleave their trace
    roots in the file; readers must group by ``trace_id`` (see
    :mod:`repro.obs.analysis`).
    """

    def __init__(self, path, append: bool = True) -> None:
        self.path = path
        self._handle = open(path, "a" if append else "w", encoding="utf-8")

    def __call__(self, spans: Sequence[Span]) -> None:
        for span in spans:
            self._handle.write(json.dumps(span.to_dict()) + "\n")
        self._handle.flush()

    def close(self) -> None:
        """Flush and close the underlying file."""
        if not self._handle.closed:
            self._handle.close()


def slow_trace_filter(threshold_s: float, sink: TraceSink) -> TraceSink:
    """Wrap *sink* so only traces with a slow root span reach it.

    The root span is the one without a parent; a trace is forwarded
    when its root duration is at least *threshold_s* seconds.
    """

    def filtered(spans: Sequence[Span]) -> None:
        root = next((s for s in spans if s.parent_id is None), None)
        if root is not None and root.duration_s >= threshold_s:
            sink(spans)

    return filtered
