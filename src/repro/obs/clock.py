"""The observability clock — the query path's single timing source.

Every duration the engine, kernels, or exporters measure comes through
this module, for two reasons:

* **Auditability.**  A grep for ``time.perf_counter`` in
  ``src/repro/engine/`` must come back empty (``tools/lint_timers.py``
  enforces it in CI); all timing intent is visible here instead.
* **Substitutability.**  Tests freeze or script the clock by swapping
  one function, without monkeypatching ``time`` globally.

``monotonic_s()`` is the *span* clock: monotonic, unaffected by wall
clock adjustments, suitable only for durations.  ``wall_s()`` is the
*timestamp* clock: Unix epoch seconds, used when exported records need
an absolute time (slow-query log lines, metrics snapshots).
"""

from __future__ import annotations

import time

__all__ = ["monotonic_s", "wall_s"]

#: Monotonic seconds for measuring durations (``time.perf_counter``).
monotonic_s = time.perf_counter

#: Wall-clock Unix seconds for timestamping exported records.
wall_s = time.time
