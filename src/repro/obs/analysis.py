"""Trace analytics: turn exported span JSONL into answers.

The tracing layer (:mod:`repro.obs.tracing`) writes one span per line;
this module is the consumer that aggregates those lines back into the
questions an operator actually asks of a query-by-humming deployment:

* **Latency** — per-span-name duration distributions (``query``,
  ``stage:<name>``, ``refine``, ``kernel``) folded through the same
  cumulative-``le`` :class:`~repro.obs.metrics.Histogram` the metrics
  registry uses, with p50/p95/p99 read off the cumulative buckets.
* **Pruning power** — the cascade's candidate accounting summed over
  every traced query: candidates in/out per stage, prune rates, and
  bound-tightness ratios (each stage's mean bound relative to the
  tightest stage's — how close the cheap bounds get to the expensive
  ones, the quantity Theorem 1 trades index geometry for).
* **Critical path** — per trace, the root-to-leaf chain of child
  spans with the largest duration; aggregated over all traces this
  names the spans where the latency actually lives.
* **Folded stacks** — ``parent;child;... <self-time-us>`` lines, the
  flamegraph interchange format, so any stack-collapse viewer can
  render where traced time went.

Reading is *streaming* and *tolerant*: span lines are consumed one at
a time (a multi-gigabyte trace log never loads at once), lines that
are truncated or not JSON are counted and skipped rather than fatal
— a live exporter may be mid-write when the reader arrives — and
traces whose root never closed are reported as incomplete instead of
poisoning the aggregate.  Concurrent ``*_many`` serving interleaves
*traces* in the file (each trace's spans stay contiguous because the
sink runs under a lock, but trace order follows completion order);
grouping here is by ``trace_id``, so interleaving is harmless.

* **Per-shard breakdown** — the sharded tier's workers ship their
  spans home renamed ``shard:query`` and stamped with ``shard`` /
  ``worker_epoch``; aggregated per shard these give latency
  percentiles, pruning power, work share, and the fleet's
  imbalance/skew ratio (``--per-shard``).

``repro obs report --trace FILE [--format table|json|folded]
[--per-shard]`` is the CLI surface over :func:`read_traces` +
:func:`analyze_traces`.
"""

from __future__ import annotations

import json
from collections.abc import Iterable, Iterator
from dataclasses import dataclass, field

from .metrics import Histogram
from .quality import RECALL_KS

__all__ = [
    "SPAN_LATENCY_BUCKETS_S",
    "SERVE_OCCUPANCY_BUCKETS",
    "TraceReadStats",
    "iter_span_lines",
    "read_traces",
    "percentile_from_histogram",
    "StageAggregate",
    "ServeAggregate",
    "QualityCell",
    "QualityAggregate",
    "ShardAggregate",
    "SpanLatency",
    "TraceReport",
    "analyze_traces",
]

#: Histogram edges for span durations.  Finer-grained at the bottom
#: than the serving-latency buckets: stage spans on in-memory corpora
#: run tens of microseconds, and the percentile resolution is the
#: bucket edge.
SPAN_LATENCY_BUCKETS_S = (
    1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
    1e-3, 2.5e-3, 5e-3, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: Histogram edges for micro-batch occupancy (batch size over
#: ``max_batch``, a fraction in (0, 1]).  Sixteenths: fine enough to
#: resolve every occupancy level of the default ``max_batch`` range.
SERVE_OCCUPANCY_BUCKETS = tuple(i / 16 for i in range(1, 17))

#: Span-dict keys every valid trace line must carry (the JSONL schema
#: of :meth:`repro.obs.tracing.Span.to_dict`).
_SPAN_KEYS = frozenset(
    {"name", "trace_id", "span_id", "parent_id", "start_s",
     "duration_s", "attrs"}
)


@dataclass
class TraceReadStats:
    """What the streaming reader saw, including what it had to skip."""

    lines: int = 0
    spans: int = 0
    bad_lines: int = 0
    traces: int = 0
    incomplete_traces: int = 0

    def to_dict(self) -> dict:
        """The read accounting as a JSON-ready dict."""
        return {
            "lines": self.lines,
            "spans": self.spans,
            "bad_lines": self.bad_lines,
            "traces": self.traces,
            "incomplete_traces": self.incomplete_traces,
        }


def iter_span_lines(
    lines: Iterable[str], stats: TraceReadStats | None = None
) -> Iterator[dict]:
    """Yield span dicts from JSONL *lines*, skipping damaged ones.

    A line is damaged when it is not valid JSON (e.g. truncated by a
    crash mid-write), not an object, or missing span-schema keys; each
    is counted in ``stats.bad_lines`` and skipped.  Blank lines are
    ignored silently.
    """
    if stats is None:
        stats = TraceReadStats()
    for line in lines:
        line = line.strip()
        if not line:
            continue
        stats.lines += 1
        try:
            span = json.loads(line)
        except json.JSONDecodeError:
            stats.bad_lines += 1
            continue
        if not isinstance(span, dict) or not _SPAN_KEYS <= span.keys():
            stats.bad_lines += 1
            continue
        stats.spans += 1
        yield span


def read_traces(
    source, stats: TraceReadStats | None = None
) -> Iterator[list[dict]]:
    """Stream complete traces (span-dict lists, root last) from *source*.

    *source* is a path or an iterable of JSONL lines.  Spans are
    grouped by ``trace_id``; a trace is emitted the moment its root
    span (``parent_id`` null) arrives — the exporter writes the root
    last, so that is the trace-complete signal.  Root-less groups left
    at end of input (an exporter killed mid-trace) are dropped and
    counted in ``stats.incomplete_traces``.
    """
    if stats is None:
        stats = TraceReadStats()

    def _generate(lines) -> Iterator[list[dict]]:
        open_traces: dict[object, list[dict]] = {}
        for span in iter_span_lines(lines, stats):
            group = open_traces.setdefault(span["trace_id"], [])
            group.append(span)
            if span["parent_id"] is None:
                del open_traces[span["trace_id"]]
                stats.traces += 1
                yield group
        stats.incomplete_traces += len(open_traces)

    if hasattr(source, "__fspath__") or isinstance(source, str):
        def _from_file() -> Iterator[list[dict]]:
            with open(source, encoding="utf-8") as handle:
                yield from _generate(handle)
        return _from_file()
    return _generate(source)


def percentile_from_histogram(merged: dict, q: float) -> float | None:
    """Read the *q*-quantile (0..1) off a cumulative-``le`` snapshot.

    *merged* is :meth:`Histogram.merged` output.  Returns the upper
    edge of the first bucket whose cumulative count reaches
    ``q * count`` — the histogram's resolution-limited upper bound on
    the true percentile — using the observed ``max`` for the +Inf
    bucket and ``None`` when the histogram is empty.
    """
    total = merged["count"]
    if not total:
        return None
    target = q * total
    for bucket in merged["buckets"]:
        if bucket["count"] >= target:
            if bucket["le"] == "+Inf":
                return float(merged["max"])
            return min(float(bucket["le"]), float(merged["max"]))
    return float(merged["max"])  # pragma: no cover - +Inf always reaches


@dataclass
class SpanLatency:
    """Duration distribution of one span name across all traces."""

    name: str
    count: int
    total_s: float
    min_s: float
    max_s: float
    p50_s: float
    p95_s: float
    p99_s: float

    @property
    def mean_s(self) -> float:
        """Average duration in seconds."""
        return self.total_s / self.count if self.count else 0.0

    def to_dict(self) -> dict:
        """The latency row as a JSON-ready dict."""
        return {
            "name": self.name,
            "count": self.count,
            "total_s": self.total_s,
            "mean_s": self.mean_s,
            "min_s": self.min_s,
            "max_s": self.max_s,
            "p50_s": self.p50_s,
            "p95_s": self.p95_s,
            "p99_s": self.p99_s,
        }


@dataclass
class StageAggregate:
    """Pruning power of one cascade stage summed over all traces."""

    name: str
    candidates_in: int = 0
    pruned: int = 0
    bound_mean_weighted: float = 0.0  # sum of bound_mean * candidates_in
    tightness: float | None = None    # set once all stages are known

    @property
    def survivors(self) -> int:
        """Candidates handed to the next stage."""
        return self.candidates_in - self.pruned

    @property
    def prune_rate(self) -> float:
        """Fraction of incoming candidates removed."""
        if not self.candidates_in:
            return 0.0
        return self.pruned / self.candidates_in

    @property
    def mean_bound(self) -> float:
        """Candidate-weighted mean of the stage's raw bound."""
        if not self.candidates_in:
            return 0.0
        return self.bound_mean_weighted / self.candidates_in

    def to_dict(self) -> dict:
        """The pruning-table row as a JSON-ready dict."""
        return {
            "name": self.name,
            "candidates_in": self.candidates_in,
            "pruned": self.pruned,
            "survivors": self.survivors,
            "prune_rate": self.prune_rate,
            "mean_bound": self.mean_bound,
            "tightness": self.tightness,
        }


@dataclass
class ServeAggregate:
    """Serving-layer accounting from ``serve:request``/``serve:batch``.

    The serving layer (:mod:`repro.serve`) emits *instant* root spans
    whose attributes carry the real timings — queue wait and service
    time for requests, size/occupancy for dispatched micro-batches —
    so the analysis reads attributes, never span durations, and the
    engine's ``query`` root spans stay untouched underneath.
    """

    requests: int = 0
    by_status: dict[str, int] = field(default_factory=dict)
    cache_hits: int = 0
    batches: int = 0
    batched_requests: int = 0
    coalesced: int = 0
    queue_wait: Histogram = field(default_factory=lambda: Histogram(
        "serve.queue_wait_seconds", {}, SPAN_LATENCY_BUCKETS_S
    ))
    service_time: Histogram = field(default_factory=lambda: Histogram(
        "serve.request_seconds", {}, SPAN_LATENCY_BUCKETS_S
    ))
    occupancy: Histogram = field(default_factory=lambda: Histogram(
        "serve.batch_occupancy", {}, SERVE_OCCUPANCY_BUCKETS
    ))

    def add_request(self, attrs: dict) -> None:
        """Fold one ``serve:request`` span's attributes in."""
        self.requests += 1
        status = attrs.get("status", "ok")
        self.by_status[status] = self.by_status.get(status, 0) + 1
        if attrs.get("from_cache"):
            self.cache_hits += 1
        self.queue_wait.observe(float(attrs.get("queue_wait_s", 0.0)))
        self.service_time.observe(float(attrs.get("service_time_s", 0.0)))

    def add_batch(self, attrs: dict) -> None:
        """Fold one ``serve:batch`` span's attributes in."""
        self.batches += 1
        size = int(attrs.get("size", 0))
        self.batched_requests += size
        self.coalesced += size - int(attrs.get("distinct", size))
        max_batch = int(attrs.get("max_batch", 0))
        if max_batch > 0:
            self.occupancy.observe(min(1.0, size / max_batch))

    def _rate(self, status: str) -> float:
        if not self.requests:
            return 0.0
        return self.by_status.get(status, 0) / self.requests

    @property
    def shed_rate(self) -> float:
        """Fraction of requests refused by admission control."""
        return self._rate("shed")

    @property
    def deadline_miss_rate(self) -> float:
        """Fraction of requests that ran out of deadline."""
        return self._rate("deadline_exceeded")

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of requests answered from the result cache."""
        if not self.requests:
            return 0.0
        return self.cache_hits / self.requests

    def _percentiles(self, hist: Histogram) -> dict:
        merged = hist.merged()
        return {
            "count": merged["count"],
            "p50": percentile_from_histogram(merged, 0.50),
            "p95": percentile_from_histogram(merged, 0.95),
            "p99": percentile_from_histogram(merged, 0.99),
            "max": merged["max"] if merged["count"] else None,
        }

    def to_dict(self) -> dict:
        """The serving section as one JSON-ready document."""
        return {
            "requests": self.requests,
            "by_status": dict(self.by_status),
            "shed_rate": self.shed_rate,
            "deadline_miss_rate": self.deadline_miss_rate,
            "cache_hit_rate": self.cache_hit_rate,
            "batches": self.batches,
            "batched_requests": self.batched_requests,
            "coalesced": self.coalesced,
            "queue_wait_s": self._percentiles(self.queue_wait),
            "service_time_s": self._percentiles(self.service_time),
            "batch_occupancy": self._percentiles(self.occupancy),
        }


@dataclass
class QualityCell:
    """One (scenario, severity) cell of the scenario matrix."""

    scenario: str
    severity: float
    queries: int = 0
    hits: dict[int, int] = field(default_factory=dict)      # k -> hits
    rr_total: float = 0.0
    contour_queries: int = 0
    contour_hits: dict[int, int] = field(default_factory=dict)
    latency: Histogram = field(default_factory=lambda: Histogram(
        "quality.query_seconds", {}, SPAN_LATENCY_BUCKETS_S
    ))

    def add(self, attrs: dict) -> None:
        """Fold one ``quality:query`` span's attributes in."""
        self.queries += 1
        rank = int(attrs.get("rank", 0))
        for k in RECALL_KS:
            if 1 <= rank <= k:
                self.hits[k] = self.hits.get(k, 0) + 1
        if rank >= 1:
            self.rr_total += 1.0 / rank
        if "contour_rank" in attrs:
            self.contour_queries += 1
            contour_rank = int(attrs["contour_rank"])
            for k in RECALL_KS:
                if 1 <= contour_rank <= k:
                    self.contour_hits[k] = self.contour_hits.get(k, 0) + 1
        if "duration_s" in attrs:
            self.latency.observe(float(attrs["duration_s"]))

    def recall(self, k: int) -> float:
        """Fraction of queries whose ground truth ranked within *k*."""
        if not self.queries:
            return 0.0
        return self.hits.get(k, 0) / self.queries

    def contour_recall(self, k: int) -> float | None:
        """The contour baseline's recall@k, ``None`` when unmeasured."""
        if not self.contour_queries:
            return None
        return self.contour_hits.get(k, 0) / self.contour_queries

    @property
    def mrr(self) -> float:
        """Mean reciprocal rank of the ground-truth melody."""
        if not self.queries:
            return 0.0
        return self.rr_total / self.queries

    def to_dict(self) -> dict:
        """The matrix cell as a JSON-ready dict."""
        merged = self.latency.merged()
        return {
            "scenario": self.scenario,
            "severity": self.severity,
            "queries": self.queries,
            **{f"recall_at_{k}": self.recall(k) for k in RECALL_KS},
            "mrr": self.mrr,
            "contour_recall_at_10": self.contour_recall(10),
            "p50_ms": _ms(percentile_from_histogram(merged, 0.50)),
            "p95_ms": _ms(percentile_from_histogram(merged, 0.95)),
        }


def _ms(seconds: float | None) -> float | None:
    return None if seconds is None else seconds * 1e3


@dataclass
class QualityAggregate:
    """Recall-vs-degradation accounting from ``quality:query`` spans.

    Like the serving layer, the quality runner emits *instant* root
    spans whose attributes carry the event (scenario, severity, rank
    of the ground-truth melody, wall time, optional contour-baseline
    rank), so offline analysis of a trace file reconstructs the full
    scenario matrix without touching any index.
    """

    cells: dict[tuple[str, float], QualityCell] = field(
        default_factory=dict)

    def add_query(self, attrs: dict) -> None:
        """Fold one ``quality:query`` span's attributes in."""
        key = (str(attrs.get("scenario", "unknown")),
               float(attrs.get("severity", 0.0)))
        cell = self.cells.get(key)
        if cell is None:
            cell = self.cells[key] = QualityCell(
                scenario=key[0], severity=key[1])
        cell.add(attrs)

    @property
    def queries(self) -> int:
        """Total quality queries folded in."""
        return sum(cell.queries for cell in self.cells.values())

    def rows(self) -> list[QualityCell]:
        """Cells in (scenario, severity) order."""
        return [self.cells[key] for key in sorted(self.cells)]

    def to_dict(self) -> dict:
        """The quality section as one JSON-ready document."""
        return {
            "queries": self.queries,
            "scenarios": [cell.to_dict() for cell in self.rows()],
        }


@dataclass
class ShardAggregate:
    """One shard's share of the work, from its ``shard:query`` spans.

    Worker root spans cross the process boundary renamed
    ``query`` → ``shard:query`` and stamped with ``shard`` /
    ``worker_epoch`` attributes (see :mod:`repro.shard.worker`), so a
    merged trace log carries enough to re-attribute every candidate,
    refine, and second of latency to the worker that produced it —
    the measurement ROADMAP's per-shard tuning needs.
    """

    shard: int
    queries: int = 0
    total_s: float = 0.0
    corpus_candidates: int = 0
    dtw_computations: int = 0
    results: int = 0
    epochs: set = field(default_factory=set)
    work_share: float = 0.0  # set once every shard's total is known
    latency: Histogram = field(default_factory=lambda: Histogram(
        "shard.query_seconds", {}, SPAN_LATENCY_BUCKETS_S
    ))

    def add(self, span: dict) -> None:
        """Fold one ``shard:query`` span in."""
        attrs = span["attrs"]
        self.queries += 1
        self.total_s += span["duration_s"]
        self.corpus_candidates += attrs.get("corpus_size", 0)
        self.dtw_computations += attrs.get("dtw_computations", 0)
        self.results += attrs.get("results", 0)
        if "worker_epoch" in attrs:
            self.epochs.add(attrs["worker_epoch"])
        self.latency.observe(span["duration_s"])

    @property
    def pruning_power(self) -> float:
        """Fraction of this shard's candidates never exactly refined."""
        if not self.corpus_candidates:
            return 0.0
        return 1.0 - self.dtw_computations / self.corpus_candidates

    def _percentile(self, q: float) -> float | None:
        return percentile_from_histogram(self.latency.merged(), q)

    def to_dict(self) -> dict:
        """The per-shard row as a JSON-ready dict."""
        merged = self.latency.merged()
        return {
            "shard": self.shard,
            "queries": self.queries,
            "total_s": self.total_s,
            "mean_s": self.total_s / self.queries if self.queries else 0.0,
            "p50_s": percentile_from_histogram(merged, 0.50),
            "p95_s": percentile_from_histogram(merged, 0.95),
            "p99_s": percentile_from_histogram(merged, 0.99),
            "corpus_candidates": self.corpus_candidates,
            "dtw_computations": self.dtw_computations,
            "results": self.results,
            "pruning_power": self.pruning_power,
            "work_share": self.work_share,
            "epochs": sorted(self.epochs),
        }


@dataclass
class TraceReport:
    """Everything :func:`analyze_traces` extracts from a trace log."""

    read: TraceReadStats
    latencies: list[SpanLatency] = field(default_factory=list)
    stages: list[StageAggregate] = field(default_factory=list)
    critical_paths: list[dict] = field(default_factory=list)
    folded: dict[str, int] = field(default_factory=dict)
    queries: int = 0
    results: int = 0
    dtw_computations: int = 0
    dtw_abandoned: int = 0
    corpus_candidates: int = 0
    serve: ServeAggregate | None = None
    quality: QualityAggregate | None = None
    shards: list[ShardAggregate] = field(default_factory=list)
    shard_imbalance: float | None = None

    def to_dict(self) -> dict:
        """The full report as one JSON-ready document."""
        return {
            "read": self.read.to_dict(),
            "queries": self.queries,
            "results": self.results,
            "dtw_computations": self.dtw_computations,
            "dtw_abandoned": self.dtw_abandoned,
            "corpus_candidates": self.corpus_candidates,
            "latencies": [row.to_dict() for row in self.latencies],
            "pruning": [row.to_dict() for row in self.stages],
            "critical_paths": list(self.critical_paths),
            "serve": self.serve.to_dict() if self.serve else None,
            "quality": self.quality.to_dict() if self.quality else None,
            "shards": [row.to_dict() for row in self.shards],
            "shard_imbalance": self.shard_imbalance,
        }

    def format_folded(self) -> str:
        """Folded-stack lines (``a;b;c <self-us>``), flamegraph-ready."""
        lines = [
            f"{path} {value}"
            for path, value in sorted(self.folded.items())
        ]
        return "\n".join(lines)

    def format_table(self, *, per_shard: bool = False) -> str:
        """A fixed-width terminal report (latency, pruning, paths).

        *per_shard* appends the per-shard breakdown table
        (``repro obs report --per-shard``) when the log carries
        ``shard:query`` spans.
        """
        out = [
            f"traces: {self.queries} queries "
            f"({self.read.spans} spans, {self.read.bad_lines} bad lines, "
            f"{self.read.incomplete_traces} incomplete)",
        ]
        if self.read.bad_lines:
            # Corrupt-line tolerance, surfaced: the reader skipped
            # lines, and a report that silently under-counts is worse
            # than one that says so.
            out.append(
                f"WARNING: skipped {self.read.bad_lines} undecodable "
                f"line(s) of {self.read.lines} read — counts below are "
                f"a lower bound"
            )
        out += [
            f"totals: {self.corpus_candidates} candidates -> "
            f"{self.dtw_computations} refined "
            f"({self.dtw_abandoned} abandoned) -> {self.results} results",
            "",
            f"{'span':<18}{'count':>7}{'mean ms':>9}{'p50 ms':>9}"
            f"{'p95 ms':>9}{'p99 ms':>9}{'max ms':>9}",
        ]
        for row in self.latencies:
            out.append(
                f"{row.name:<18}{row.count:>7}"
                f"{row.mean_s * 1e3:>9.3f}{row.p50_s * 1e3:>9.3f}"
                f"{row.p95_s * 1e3:>9.3f}{row.p99_s * 1e3:>9.3f}"
                f"{row.max_s * 1e3:>9.3f}"
            )
        out += [
            "",
            f"{'stage':<12}{'in':>10}{'pruned':>10}{'left':>10}"
            f"{'rate':>8}{'tightness':>11}",
        ]
        for stage in self.stages:
            tightness = (f"{stage.tightness:>11.3f}"
                         if stage.tightness is not None else f"{'-':>11}")
            out.append(
                f"{stage.name:<12}{stage.candidates_in:>10}"
                f"{stage.pruned:>10}{stage.survivors:>10}"
                f"{stage.prune_rate:>8.1%}{tightness}"
            )
        if self.critical_paths:
            out += ["", "critical paths (per-trace dominant chain):"]
            for entry in self.critical_paths:
                out.append(
                    f"  {entry['path']:<40} x{entry['count']:<5} "
                    f"mean {entry['mean_s'] * 1e3:.3f} ms"
                )
        if self.serve is not None:
            serve = self.serve
            statuses = ", ".join(
                f"{status} {count}"
                for status, count in sorted(serve.by_status.items())
            )
            out += [
                "",
                f"serving: {serve.requests} requests ({statuses})",
                f"  shed {serve.shed_rate:.1%}  "
                f"deadline-miss {serve.deadline_miss_rate:.1%}  "
                f"cache-hit {serve.cache_hit_rate:.1%}",
            ]

            def _row(label: str, pct: dict, unit_ms: bool) -> str:
                if not pct["count"]:
                    return f"  {label:<16}{'-':>9}"
                scale = 1e3 if unit_ms else 100.0
                return (
                    f"  {label:<16}"
                    f"{pct['p50'] * scale:>9.3f}{pct['p95'] * scale:>9.3f}"
                    f"{pct['p99'] * scale:>9.3f}{pct['max'] * scale:>9.3f}"
                )

            out.append(
                f"  {'':<16}{'p50':>9}{'p95':>9}{'p99':>9}{'max':>9}"
            )
            out.append(_row("queue wait ms",
                            serve._percentiles(serve.queue_wait), True))
            out.append(_row("service ms",
                            serve._percentiles(serve.service_time), True))
            if serve.batches:
                out.append(_row("occupancy %",
                                serve._percentiles(serve.occupancy), False))
                out.append(
                    f"  batches: {serve.batches} "
                    f"({serve.batched_requests} requests, "
                    f"{serve.coalesced} coalesced)"
                )
        if self.quality is not None:
            out.append("")
            out.append(
                f"quality: {self.quality.queries} ground-truth queries "
                f"over {len(self.quality.cells)} scenario cells "
                f"(--scenarios for the matrix)"
            )
        if per_shard:
            out += ["", *self._format_shard_table()]
        return "\n".join(out)

    def format_scenario_matrix(self) -> str:
        """The recall@k × latency matrix (``--scenarios``).

        One row per (scenario, severity) cell: our recall@{1,5,10} and
        MRR, the p50/p95 query latency, and the contour-string
        baseline's recall@10 on the identical degraded hums — the
        paper's Table-2 comparison re-run per error mode.
        """
        if self.quality is None or not self.quality.cells:
            return ("scenario matrix: no quality:query spans in this log "
                    "(run `repro quality --trace-out ...` first)")
        rows = self.quality.rows()
        scenarios = sorted({cell.scenario for cell in rows})
        severities = sorted({cell.severity for cell in rows})
        lines = [
            f"scenario matrix: {self.quality.queries} queries, "
            f"{len(scenarios)} scenarios x {len(severities)} severities",
            f"{'scenario':<15}{'sev':>6}{'n':>5}{'r@1':>7}{'r@5':>7}"
            f"{'r@10':>7}{'mrr':>7}{'p50 ms':>9}{'p95 ms':>9}"
            f"{'contour r@10':>14}",
        ]
        for cell in rows:
            d = cell.to_dict()
            p50 = f"{d['p50_ms']:>9.2f}" if d["p50_ms"] is not None \
                else f"{'-':>9}"
            p95 = f"{d['p95_ms']:>9.2f}" if d["p95_ms"] is not None \
                else f"{'-':>9}"
            contour = d["contour_recall_at_10"]
            contour_txt = (f"{contour:>14.2f}" if contour is not None
                           else f"{'-':>14}")
            lines.append(
                f"{cell.scenario:<15}{cell.severity:>6.2f}"
                f"{cell.queries:>5}"
                f"{d['recall_at_1']:>7.2f}{d['recall_at_5']:>7.2f}"
                f"{d['recall_at_10']:>7.2f}{d['mrr']:>7.2f}"
                f"{p50}{p95}{contour_txt}"
            )
        return "\n".join(lines)

    def _format_shard_table(self) -> list[str]:
        if not self.shards:
            return ["per-shard: no shard:query spans in this log "
                    "(run with --shards and tracing enabled)"]
        imbalance = (f"{self.shard_imbalance:.2f}"
                     if self.shard_imbalance is not None else "-")
        lines = [
            f"per-shard ({len(self.shards)} shards, "
            f"imbalance {imbalance}):",
            f"{'shard':<7}{'queries':>8}{'mean ms':>9}{'p50 ms':>9}"
            f"{'p95 ms':>9}{'p99 ms':>9}{'work':>7}{'pruned':>8}"
            f"{'refined':>9}  epochs",
        ]
        for row in self.shards:
            d = row.to_dict()
            epochs = ",".join(str(e) for e in d["epochs"]) or "-"
            lines.append(
                f"{row.shard:<7}{row.queries:>8}"
                f"{d['mean_s'] * 1e3:>9.3f}{d['p50_s'] * 1e3:>9.3f}"
                f"{d['p95_s'] * 1e3:>9.3f}{d['p99_s'] * 1e3:>9.3f}"
                f"{row.work_share:>7.1%}{row.pruning_power:>8.1%}"
                f"{row.dtw_computations:>9}  {epochs}"
            )
        return lines


def _children_index(trace: list[dict]) -> dict:
    children: dict[object, list[dict]] = {}
    for span in trace:
        children.setdefault(span["parent_id"], []).append(span)
    return children


def _critical_path(trace: list[dict], children: dict) -> list[dict]:
    """Root-to-leaf chain following the longest-duration child."""
    (root,) = children.get(None, [None])
    if root is None:  # pragma: no cover - read_traces guarantees a root
        return []
    path = [root]
    node = root
    while True:
        kids = children.get(node["span_id"])
        if not kids:
            return path
        node = max(kids, key=lambda s: s["duration_s"])
        path.append(node)


def _fold_trace(trace: list[dict], children: dict,
                folded: dict[str, int]) -> None:
    """Accumulate per-stack self time (µs) for the folded export."""
    (root,) = children.get(None, [None])
    if root is None:  # pragma: no cover - read_traces guarantees a root
        return
    stack = [(root, root["name"])]
    while stack:
        span, path = stack.pop()
        kids = children.get(span["span_id"], [])
        child_s = sum(kid["duration_s"] for kid in kids)
        self_us = int(round(max(span["duration_s"] - child_s, 0.0) * 1e6))
        folded[path] = folded.get(path, 0) + self_us
        for kid in kids:
            stack.append((kid, f"{path};{kid['name']}"))


def analyze_traces(
    traces: Iterable[list[dict]], read_stats: TraceReadStats | None = None
) -> TraceReport:
    """Aggregate complete traces into one :class:`TraceReport`.

    *traces* is what :func:`read_traces` yields (span-dict lists); pass
    the same *read_stats* object given to the reader so the report can
    carry the skip accounting.  The pruning table's candidate counts
    are exact sums of the stage spans' ``candidates_in``/``pruned``
    attributes — the same numbers ``--stats-json`` reports, because the
    engine sets both from one ``StageStats`` object.
    """
    report = TraceReport(read=read_stats or TraceReadStats())
    hists: dict[str, Histogram] = {}
    stages: dict[str, StageAggregate] = {}
    stage_order: list[str] = []
    paths: dict[str, dict] = {}
    shards: dict[int, ShardAggregate] = {}

    for trace in traces:
        # Serving-layer spans are instant roots whose attributes carry
        # the real timings; fold them into the serve section and keep
        # them out of the duration histograms / critical paths, where
        # their ~0 s durations would only mislead.
        if len(trace) == 1 and trace[0]["name"].startswith("serve:"):
            span = trace[0]
            if report.serve is None:
                report.serve = ServeAggregate()
            if span["name"] == "serve:request":
                report.serve.add_request(span["attrs"])
            elif span["name"] == "serve:batch":
                report.serve.add_batch(span["attrs"])
            continue
        # Quality events are instant roots too: attributes carry the
        # scenario, severity, and ground-truth rank (see
        # Observability.record_quality_query).
        if len(trace) == 1 and trace[0]["name"] == "quality:query":
            if report.quality is None:
                report.quality = QualityAggregate()
            report.quality.add_query(trace[0]["attrs"])
            continue
        children = _children_index(trace)
        for span in trace:
            hist = hists.get(span["name"])
            if hist is None:
                hist = hists[span["name"]] = Histogram(
                    span["name"], {}, SPAN_LATENCY_BUCKETS_S
                )
            hist.observe(span["duration_s"])
            attrs = span["attrs"]
            if span["name"] == "query" and span["parent_id"] is None:
                report.queries += 1
                report.results += attrs.get("results", 0)
                report.dtw_computations += attrs.get("dtw_computations", 0)
                report.dtw_abandoned += attrs.get("dtw_abandoned", 0)
                report.corpus_candidates += attrs.get("corpus_size", 0)
            elif span["name"] == "shard:query":
                sid = int(attrs.get("shard", -1))
                agg = shards.get(sid)
                if agg is None:
                    agg = shards[sid] = ShardAggregate(shard=sid)
                agg.add(span)
            elif span["name"].startswith("stage:"):
                name = attrs.get("name", span["name"][len("stage:"):])
                agg = stages.get(name)
                if agg is None:
                    agg = stages[name] = StageAggregate(name=name)
                    stage_order.append(name)
                agg.candidates_in += attrs.get("candidates_in", 0)
                agg.pruned += attrs.get("pruned", 0)
                agg.bound_mean_weighted += (
                    attrs.get("bound_mean", 0.0)
                    * attrs.get("candidates_in", 0)
                )
        chain = _critical_path(trace, children)
        key = ";".join(span["name"] for span in chain)
        entry = paths.setdefault(key, {"path": key, "count": 0,
                                       "total_s": 0.0})
        entry["count"] += 1
        entry["total_s"] += chain[0]["duration_s"] if chain else 0.0
        _fold_trace(trace, children, report.folded)

    # Tightness: each stage's candidate-weighted mean bound relative to
    # the tightest (last-configured) stage's.  Stage order in a trace
    # follows the cascade, so the last name seen is the tightest bound.
    if stage_order:
        reference = stages[stage_order[-1]].mean_bound
        for name in stage_order:
            agg = stages[name]
            agg.tightness = (
                agg.mean_bound / reference if reference > 0 else None
            )
    report.stages = [stages[name] for name in stage_order]

    # Per-shard work share and the fleet skew ratio (busiest shard's
    # total over the mean — 1.0 means the partition splits evenly).
    if shards:
        fleet_total = sum(agg.total_s for agg in shards.values())
        for agg in shards.values():
            agg.work_share = (
                agg.total_s / fleet_total if fleet_total > 0 else 0.0
            )
        mean_total = fleet_total / len(shards)
        report.shard_imbalance = (
            max(agg.total_s for agg in shards.values()) / mean_total
            if mean_total > 0 else 1.0
        )
        report.shards = [shards[sid] for sid in sorted(shards)]

    for name in sorted(hists):
        merged = hists[name].merged()
        if not merged["count"]:
            continue  # pragma: no cover - observed names always count
        report.latencies.append(SpanLatency(
            name=name,
            count=merged["count"],
            total_s=merged["sum"],
            min_s=merged["min"],
            max_s=merged["max"],
            p50_s=percentile_from_histogram(merged, 0.50),
            p95_s=percentile_from_histogram(merged, 0.95),
            p99_s=percentile_from_histogram(merged, 0.99),
        ))
    report.critical_paths = sorted(
        (
            {"path": entry["path"], "count": entry["count"],
             "mean_s": entry["total_s"] / entry["count"]}
            for entry in paths.values()
        ),
        key=lambda entry: -entry["count"],
    )
    return report
