"""Metrics-snapshot export: Prometheus text, JSONL series, and `top`.

A :meth:`MetricsRegistry.snapshot` is a JSON dict whose metric keys
are rendered full names — ``shard.health.rss_bytes{shard=2}`` — which
is compact and diff-friendly but not what external tooling speaks.
This module converts outward:

* :func:`prometheus_text` — one snapshot as Prometheus text exposition
  (names sanitised, labels re-expanded, histograms as cumulative
  ``_bucket``/``_sum``/``_count`` series with ``le`` labels);
* :func:`append_snapshot` / :func:`read_snapshot_series` — an
  append-only JSONL time series of snapshots (one line per sample),
  tolerant of corrupt lines on read, same stance as the trace reader;
* :class:`PeriodicSnapshotExporter` — a background thread sampling a
  registry on an interval into either or both formats (a live
  ``repro serve`` uses it so dashboards see the process without
  touching it);
* :func:`format_top` — the one-shot terminal view behind
  ``repro obs top``: headline serve/engine/shard counters plus a
  per-shard health table built from the labelled ``shard.health.*``
  gauges.

Everything here consumes *snapshots* (plain dicts), not live metric
objects, so the CLI can run it over a file written by a process that
exited hours ago.
"""

from __future__ import annotations

import json
import re
import threading

__all__ = [
    "prometheus_text",
    "append_snapshot",
    "read_snapshot_series",
    "PeriodicSnapshotExporter",
    "format_top",
    "parse_full_name",
]

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")
#: Prefix for every exported Prometheus series (one namespace per app).
_PROM_PREFIX = "repro_"


def parse_full_name(full_name: str) -> tuple[str, dict]:
    """Split a rendered metric name back into ``(name, labels)``.

    The inverse of the registry's renderer: ``a.b{k=v,k2=v2}`` →
    ``("a.b", {"k": "v", "k2": "v2"})``.  Label values never contain
    ``,`` or ``}`` in practice (shard ids, stage names, statuses); a
    malformed name comes back with empty labels rather than raising.
    """
    if "{" not in full_name or not full_name.endswith("}"):
        return full_name, {}
    name, _, inner = full_name.partition("{")
    labels = {}
    for part in inner[:-1].split(","):
        key, eq, value = part.partition("=")
        if not eq:
            return full_name, {}
        labels[key] = value
    return name, labels


def _prom_name(name: str) -> str:
    return _PROM_PREFIX + _NAME_RE.sub("_", name)


def _prom_labels(labels: dict) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{_NAME_RE.sub("_", k)}="{v}"' for k, v in sorted(labels.items())
    )
    return "{" + inner + "}"


def _merge_label(labels: dict, extra_key: str, extra_value) -> dict:
    merged = dict(labels)
    merged[extra_key] = extra_value
    return merged


def prometheus_text(snapshot: dict) -> str:
    """Render one registry snapshot as Prometheus text exposition.

    Dotted names become underscored under a ``repro_`` namespace
    (``shard.health.rss_bytes{shard=2}`` →
    ``repro_shard_health_rss_bytes{shard="2"}``); histograms export
    their cumulative buckets as ``_bucket{le="..."}`` series plus
    ``_sum`` and ``_count``, which is exactly the shape the registry
    already stores, so no re-bucketing happens here.  ``# TYPE`` lines
    are emitted once per metric family.
    """
    lines: list[str] = []
    typed: set[str] = set()

    def emit_type(family: str, kind: str) -> None:
        if family not in typed:
            lines.append(f"# TYPE {family} {kind}")
            typed.add(family)

    for full_name, value in snapshot.get("counters", {}).items():
        name, labels = parse_full_name(full_name)
        family = _prom_name(name)
        emit_type(family, "counter")
        lines.append(f"{family}{_prom_labels(labels)} {value}")
    for full_name, value in snapshot.get("gauges", {}).items():
        name, labels = parse_full_name(full_name)
        family = _prom_name(name)
        emit_type(family, "gauge")
        lines.append(f"{family}{_prom_labels(labels)} {value}")
    for full_name, hist in snapshot.get("histograms", {}).items():
        name, labels = parse_full_name(full_name)
        family = _prom_name(name)
        emit_type(family, "histogram")
        for bucket in hist.get("buckets", []):
            bucket_labels = _prom_labels(
                _merge_label(labels, "le", bucket["le"])
            )
            lines.append(f"{family}_bucket{bucket_labels} {bucket['count']}")
        lines.append(f"{family}_sum{_prom_labels(labels)} {hist['sum']}")
        lines.append(f"{family}_count{_prom_labels(labels)} {hist['count']}")
    return "\n".join(lines) + "\n"


def append_snapshot(path, snapshot: dict) -> None:
    """Append one snapshot to a JSONL time series (one line per sample)."""
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(json.dumps(snapshot) + "\n")


def read_snapshot_series(path) -> tuple[list[dict], int]:
    """Read a snapshot JSONL series; returns ``(snapshots, bad_lines)``.

    Same corrupt-line stance as the trace reader: a torn final line
    from a killed process must not make history unreadable, so
    undecodable lines are counted and skipped.
    """
    snapshots: list[dict] = []
    bad = 0
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                bad += 1
                continue
            if isinstance(record, dict) and "counters" in record:
                snapshots.append(record)
            else:
                bad += 1
    return snapshots, bad


class PeriodicSnapshotExporter:
    """Background thread sampling a registry into files on an interval.

    *jsonl_path* receives one snapshot line per beat (the append-only
    time series); *prometheus_path* is atomically rewritten each beat
    (the file a node-exporter-style scraper reads).  :meth:`stop`
    (and :meth:`close`, its alias) takes one final sample before
    stopping, so a serve shorter than one interval still leaves a
    non-empty series behind.
    """

    def __init__(self, registry, *, jsonl_path=None, prometheus_path=None,
                 interval_s: float = 10.0) -> None:
        if jsonl_path is None and prometheus_path is None:
            raise ValueError("give jsonl_path and/or prometheus_path")
        if interval_s <= 0:
            raise ValueError(f"interval_s must be > 0, got {interval_s}")
        self._registry = registry
        self.jsonl_path = jsonl_path
        self.prometheus_path = prometheus_path
        self.interval_s = float(interval_s)
        self.samples = 0
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    def export_once(self) -> dict:
        """Take one sample and write it to the configured outputs."""
        snapshot = self._registry.snapshot()
        if self.jsonl_path is not None:
            append_snapshot(self.jsonl_path, snapshot)
        if self.prometheus_path is not None:
            with open(self.prometheus_path, "w", encoding="utf-8") as handle:
                handle.write(prometheus_text(snapshot))
        self.samples += 1
        return snapshot

    def start(self) -> "PeriodicSnapshotExporter":
        """Start the sampling thread (idempotent)."""
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._loop, name="repro-obs-export", daemon=True
            )
            self._thread.start()
        return self

    def _loop(self) -> None:
        while not self._stop.wait(self.interval_s):
            self.export_once()

    def stop(self) -> None:
        """Stop the thread and flush one final sample.

        The flush happens even when :meth:`start` was never called (or
        no beat ever fired), so a process that lives less than one
        ``interval_s`` still writes at least one snapshot line — an
        empty JSONL series from a short serve means the shutdown path
        was skipped, not that nothing happened.
        """
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        self.export_once()

    def close(self) -> None:
        """Alias of :meth:`stop`."""
        self.stop()


# ----------------------------------------------------------------------
# the `repro obs top` one-shot view
# ----------------------------------------------------------------------

#: Headline counters shown (when present) above the per-shard table.
_TOP_COUNTERS = (
    "engine.queries_total",
    "engine.candidates_total",
    "engine.candidates_refined_total",
    "serve.requests_total",
    "serve.batches_total",
    "serve.cache_hits_total",
    "shard.fanouts_total",
    "shard.lifecycle_total",
    "dtw.kernel_calls_total",
    "quality.queries_total",
    "quality.shadow.checked_total",
    "quality.shadow.disagreed_total",
)

#: shard.health.* gauge → (column header, formatter).
_HEALTH_COLUMNS = (
    ("shard.health.alive", "alive", lambda v: "up" if v else "DOWN"),
    ("shard.health.epoch", "epoch", lambda v: f"{int(v)}"),
    ("shard.health.respawns", "respawns", lambda v: f"{int(v)}"),
    ("shard.health.requests", "requests", lambda v: f"{int(v)}"),
    ("shard.health.ping_rtt_seconds", "rtt_ms", lambda v: f"{v * 1e3:.2f}"),
    ("shard.health.rss_bytes", "rss_mb", lambda v: f"{v / 1e6:.1f}"),
    ("shard.health.last_reply_age_seconds", "idle_s", lambda v: f"{v:.1f}"),
    ("shard.health.uptime_seconds", "up_s", lambda v: f"{v:.1f}"),
)


def _sum_counter_family(counters: dict, family: str) -> tuple[float, dict]:
    """Total and per-label breakdown of one counter family."""
    total = 0.0
    by_labels: dict[str, float] = {}
    for full_name, value in counters.items():
        name, labels = parse_full_name(full_name)
        if name != family:
            continue
        total += value
        if labels:
            key = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
            by_labels[key] = by_labels.get(key, 0.0) + value
    return total, by_labels


def format_top(snapshot: dict) -> str:
    """The ``repro obs top`` one-shot terminal view of one snapshot."""
    lines = [f"snapshot @ {snapshot.get('timestamp_s', 0.0):.3f}"]
    counters = snapshot.get("counters", {})
    gauges = snapshot.get("gauges", {})
    shown = False
    for family in _TOP_COUNTERS:
        total, by_labels = _sum_counter_family(counters, family)
        if total == 0 and not by_labels:
            continue
        shown = True
        detail = ""
        if by_labels and len(by_labels) <= 6:
            detail = "  (" + ", ".join(
                f"{key}: {value:g}" for key, value in sorted(by_labels.items())
            ) + ")"
        lines.append(f"  {family:<36} {total:>12g}{detail}")
    if not shown:
        lines.append("  (no headline counters recorded)")

    # Per-shard health table, reassembled from the labelled gauges.
    per_shard: dict[str, dict[str, float]] = {}
    for full_name, value in gauges.items():
        name, labels = parse_full_name(full_name)
        if name.startswith("shard.health.") and "shard" in labels:
            per_shard.setdefault(labels["shard"], {})[name] = value
    if per_shard:
        headers = ["shard"] + [h for _, h, _ in _HEALTH_COLUMNS]
        rows = [headers]
        for sid in sorted(per_shard, key=lambda s: (len(s), s)):
            row = [sid]
            for gauge_name, _, fmt in _HEALTH_COLUMNS:
                value = per_shard[sid].get(gauge_name)
                row.append("-" if value is None else fmt(value))
            rows.append(row)
        widths = [max(len(row[i]) for row in rows)
                  for i in range(len(headers))]
        lines.append("")
        lines.append("shard health:")
        for row in rows:
            lines.append("  " + "  ".join(
                cell.rjust(width) for cell, width in zip(row, widths)
            ))
    else:
        lines.append("")
        lines.append("shard health: (no shard.health.* gauges in snapshot)")
    return "\n".join(lines) + "\n"
