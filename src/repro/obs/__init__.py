"""Observability: tracing spans, metrics, and query-log export.

The unified telemetry layer for the whole query path.  One
:class:`Observability` facade bundles

* a :class:`Tracer` producing nested spans
  (``query → stage:<name> → refine → kernel``) with monotonic-clock
  timing and JSONL export,
* a :class:`MetricsRegistry` of counters / gauges / fixed-bucket
  histograms whose per-thread shards merge exactly under the engine's
  ``ThreadPoolExecutor`` serving paths, and
* a slow-query log (records + gated per-query trace capture) behind a
  latency threshold, and
* trace analytics (:mod:`repro.obs.analysis`): a streaming,
  corrupt-line-tolerant JSONL reader plus aggregation into per-stage
  latency percentiles, pruning-power tables, critical paths, and
  folded-stack (flamegraph) exports — ``repro obs report``.

Everything accepts the shared :data:`OBS_DISABLED` facade — the
default — whose hooks return immediately, so instrumentation costs
effectively nothing until a caller opts in
(``QueryEngine(obs=...)``, ``WarpingIndex(obs=...)``,
``repro query --trace-out/--metrics-out/--slow-query-ms``).

See ``docs/ARCHITECTURE.md`` ("Observability") for the span taxonomy
and the metric-name contract, and ``docs/TUTORIAL.md`` for a
walkthrough reading the exported JSONL.
"""

from .analysis import (
    TraceReadStats,
    TraceReport,
    analyze_traces,
    percentile_from_histogram,
    read_traces,
)
from .clock import monotonic_s, wall_s
from .export import (
    PeriodicSnapshotExporter,
    append_snapshot,
    format_top,
    prometheus_text,
    read_snapshot_series,
)
from .metrics import (
    DEFAULT_LATENCY_BUCKETS_S,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .observability import OBS_DISABLED, Observability
from .quality import (
    RECALL_KS,
    ShadowScorer,
    rank_of_target,
    recall_at,
    reciprocal_rank,
    results_agree,
)
from .tracing import (
    NOOP_TRACER,
    InMemorySink,
    JsonlSpanExporter,
    NoopTracer,
    Span,
    Tracer,
    slow_trace_filter,
)

__all__ = [
    "Observability",
    "OBS_DISABLED",
    "Tracer",
    "NoopTracer",
    "NOOP_TRACER",
    "Span",
    "InMemorySink",
    "JsonlSpanExporter",
    "slow_trace_filter",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "DEFAULT_LATENCY_BUCKETS_S",
    "monotonic_s",
    "wall_s",
    "read_traces",
    "analyze_traces",
    "TraceReport",
    "TraceReadStats",
    "percentile_from_histogram",
    "prometheus_text",
    "append_snapshot",
    "read_snapshot_series",
    "PeriodicSnapshotExporter",
    "format_top",
    "RECALL_KS",
    "ShadowScorer",
    "rank_of_target",
    "recall_at",
    "reciprocal_rank",
    "results_agree",
]
