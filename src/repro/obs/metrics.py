"""Counters, gauges, and fixed-bucket histograms, thread-sharded.

:class:`MetricsRegistry` is the process-wide (or per-engine) metric
store.  The design constraint is the engine's multi-query serving
path: ``range_search_many``/``knn_many`` shard queries across a
``ThreadPoolExecutor``, so metric updates race — and the hot path may
not take a lock per increment.

The solution is per-thread shards: every metric keeps one private
cell per writer thread (created on the thread's first update, the only
moment a lock is taken), and each cell is only ever written by its
owning thread.  CPython's GIL makes each read-modify-write of a cell
attribute atomic with respect to readers, so :meth:`Counter.value` /
:meth:`MetricsRegistry.snapshot` merge the cells on *read* and lose no
updates — exact totals, no hot-path locks.  Snapshots taken while
writers are mid-flight are internally consistent per metric up to
updates still in flight; snapshots taken after a pool joins (the
normal export moment) are exact.

Histograms use fixed, inclusive upper-edge buckets (Prometheus
``le``-style, with a ``+Inf`` catch-all) so merged snapshots from many
threads remain well-defined without per-observation coordination.
"""

from __future__ import annotations

import json
import threading
from bisect import bisect_left
from collections.abc import Sequence

from .clock import wall_s

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS_S",
]

#: Default histogram edges for query latencies, in seconds.
DEFAULT_LATENCY_BUCKETS_S = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


def _label_key(labels: dict) -> tuple:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _render_name(name: str, label_key: tuple) -> str:
    if not label_key:
        return name
    inner = ",".join(f"{k}={v}" for k, v in label_key)
    return f"{name}{{{inner}}}"


class _Sharded:
    """Base for metrics with one write-cell per thread."""

    __slots__ = ("name", "labels", "_local", "_cells", "_lock")

    def __init__(self, name: str, labels: dict) -> None:
        self.name = name
        self.labels = dict(labels)
        self._local = threading.local()
        self._cells: list = []
        self._lock = threading.Lock()

    def _new_cell(self):
        raise NotImplementedError

    def _cell(self):
        cell = getattr(self._local, "cell", None)
        if cell is None:
            cell = self._new_cell()
            with self._lock:
                self._cells.append(cell)
            self._local.cell = cell
        return cell

    @property
    def full_name(self) -> str:
        """Metric name with its labels rendered ``name{k=v,...}``."""
        return _render_name(self.name, _label_key(self.labels))


class _CounterCell:
    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0


class Counter(_Sharded):
    """A monotonically increasing sum, exact across threads."""

    __slots__ = ()

    def _new_cell(self) -> _CounterCell:
        return _CounterCell()

    def inc(self, amount: int | float = 1) -> None:
        """Add *amount* (must be >= 0) to this thread's cell."""
        self._cell().value += amount

    @property
    def value(self) -> int | float:
        """The merged total across every writer thread."""
        with self._lock:
            return sum(cell.value for cell in self._cells)


class Gauge(_Sharded):
    """A last-written value (set is rare, so it simply locks)."""

    __slots__ = ("_value",)

    def __init__(self, name: str, labels: dict) -> None:
        super().__init__(name, labels)
        self._value = 0.0

    def set(self, value: float) -> None:
        """Record the current level of the tracked quantity."""
        with self._lock:
            self._value = float(value)

    @property
    def value(self) -> float:
        """The most recently set value."""
        with self._lock:
            return self._value


class _HistogramCell:
    __slots__ = ("bucket_counts", "count", "total", "min", "max")

    def __init__(self, n_buckets: int) -> None:
        self.bucket_counts = [0] * (n_buckets + 1)  # + the +Inf bucket
        self.count = 0
        self.total = 0.0
        self.min = None
        self.max = None


class Histogram(_Sharded):
    """Fixed-bucket distribution with exact merged count/sum/min/max."""

    __slots__ = ("edges",)

    def __init__(self, name: str, labels: dict,
                 edges: Sequence[float]) -> None:
        super().__init__(name, labels)
        edges = tuple(float(e) for e in edges)
        if not edges or any(b <= a for a, b in zip(edges, edges[1:])):
            raise ValueError(
                f"histogram edges must be strictly increasing, got {edges}"
            )
        self.edges = edges

    def _new_cell(self) -> _HistogramCell:
        return _HistogramCell(len(self.edges))

    def observe(self, value: float) -> None:
        """Record one observation into this thread's cell."""
        cell = self._cell()
        idx = bisect_left(self.edges, value)
        cell.bucket_counts[idx] += 1
        cell.count += 1
        cell.total += value
        if cell.min is None or value < cell.min:
            cell.min = value
        if cell.max is None or value > cell.max:
            cell.max = value

    def merged(self) -> dict:
        """Merge every thread's cell into one snapshot dict."""
        buckets = [0] * (len(self.edges) + 1)
        count = 0
        total = 0.0
        lo = hi = None
        with self._lock:
            cells = list(self._cells)
        for cell in cells:
            for i, c in enumerate(cell.bucket_counts):
                buckets[i] += c
            count += cell.count
            total += cell.total
            if cell.min is not None and (lo is None or cell.min < lo):
                lo = cell.min
            if cell.max is not None and (hi is None or cell.max > hi):
                hi = cell.max
        # Export cumulative (Prometheus ``le``-style) bucket counts:
        # each bucket counts every observation at or below its edge,
        # so the +Inf bucket always equals ``count``.
        cumulative = 0
        out_buckets = []
        for i, edge in enumerate(self.edges):
            cumulative += buckets[i]
            out_buckets.append({"le": edge, "count": cumulative})
        out_buckets.append({"le": "+Inf", "count": cumulative + buckets[-1]})
        return {
            "count": count,
            "sum": total,
            "min": lo,
            "max": hi,
            "buckets": out_buckets,
        }

    @property
    def count(self) -> int:
        """Total number of observations across threads."""
        with self._lock:
            return sum(cell.count for cell in self._cells)


class MetricsRegistry:
    """Named metric store with lazy creation and JSON snapshots.

    ``counter`` / ``gauge`` / ``histogram`` return the existing metric
    for a ``(name, labels)`` pair or create it (under a lock) on first
    use; hot paths should hold on to the returned handle instead of
    looking it up per operation.
    """

    def __init__(self) -> None:
        self._metrics: dict[tuple, object] = {}
        self._lock = threading.Lock()

    def _get(self, kind: str, name: str, labels: dict, factory):
        key = (kind, name, _label_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            with self._lock:
                metric = self._metrics.get(key)
                if metric is None:
                    metric = self._metrics[key] = factory()
        return metric

    def counter(self, name: str, **labels) -> Counter:
        """The counter registered under ``(name, labels)``."""
        return self._get("counter", name, labels,
                         lambda: Counter(name, labels))

    def gauge(self, name: str, **labels) -> Gauge:
        """The gauge registered under ``(name, labels)``."""
        return self._get("gauge", name, labels, lambda: Gauge(name, labels))

    def histogram(self, name: str,
                  edges: Sequence[float] = DEFAULT_LATENCY_BUCKETS_S,
                  **labels) -> Histogram:
        """The histogram registered under ``(name, labels)``."""
        return self._get("histogram", name, labels,
                         lambda: Histogram(name, labels, edges))

    def snapshot(self) -> dict:
        """Merge every metric across threads into one JSON-ready dict."""
        with self._lock:
            metrics = dict(self._metrics)
        counters = {}
        gauges = {}
        histograms = {}
        for (kind, _, _), metric in sorted(metrics.items(),
                                           key=lambda kv: kv[0][:2]):
            if kind == "counter":
                counters[metric.full_name] = metric.value
            elif kind == "gauge":
                gauges[metric.full_name] = metric.value
            else:
                histograms[metric.full_name] = metric.merged()
        return {
            "timestamp_s": wall_s(),
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
        }

    def write_json(self, path) -> dict:
        """Write :meth:`snapshot` to *path* as JSON; return the dict."""
        snap = self.snapshot()
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(snap, handle, indent=2)
            handle.write("\n")
        return snap
