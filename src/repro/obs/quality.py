"""Quality-of-results telemetry: recall math and shadow scoring.

Latency telemetry (spans, histograms) says how fast an answer came
back; nothing in it says whether the answer was *right*.  This module
is the obs-layer half of the quality axis:

* pure recall/rank helpers (:func:`rank_of_target`, :func:`recall_at`,
  :func:`reciprocal_rank`) shared by the scenario-matrix runner, the
  quality benchmark, and the analysis report — one definition of
  "rank" everywhere (1-based competition rank of the ground-truth
  melody; ``None`` when it is absent from the result list);

* :class:`ShadowScorer`, the live-serving probe: a deterministic
  1-in-N sample of served requests is re-answered by an exact
  reference function and compared result-for-result, feeding the
  ``quality.shadow.*`` counters and the online
  ``quality.shadow.agreement`` gauge.

Like the rest of ``repro.obs`` this file is stdlib-only and imports
nothing from the layers above it — the exact reference is injected as
a callable, and the scenario *workload* (which needs melodies,
singers, and indexes) lives up in ``repro.qbh.quality``.
"""

from __future__ import annotations

import math
import threading
from typing import Callable, Iterable, Sequence

__all__ = [
    "RECALL_KS",
    "rank_of_target",
    "recall_at",
    "reciprocal_rank",
    "results_agree",
    "ShadowScorer",
]

#: The k grid every recall surface reports (metrics, matrix, bench).
RECALL_KS = (1, 5, 10)


def rank_of_target(results: Iterable, target) -> int | None:
    """1-based rank of *target* in an ordered ``(id, distance)`` list.

    ``None`` when the target id is not present at all (e.g. it fell
    outside the served top-k) — callers decide whether to fall back
    to an exact full-scan rank or count it as a miss.
    """
    for position, entry in enumerate(results, start=1):
        if entry[0] == target:
            return position
    return None


def recall_at(rank: int | None, k: int) -> float:
    """1.0 when the ground truth ranked within the top *k*, else 0.0."""
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    return 1.0 if rank is not None and rank <= k else 0.0


def reciprocal_rank(rank: int | None) -> float:
    """1/rank, with a miss (``None``) contributing 0.0."""
    if rank is None:
        return 0.0
    if rank < 1:
        raise ValueError(f"rank must be >= 1, got {rank}")
    return 1.0 / rank


def results_agree(served: Sequence, exact: Sequence, *,
                  atol: float = 1e-9) -> bool:
    """True when two ``(id, distance)`` result lists match.

    Ids must agree position-for-position; distances must agree within
    *atol* (shadow checks cross float summation orders, never float
    precisions, so the tolerance is tiny).
    """
    if len(served) != len(exact):
        return False
    for (sid, sdist), (eid, edist) in zip(served, exact):
        if sid != eid:
            return False
        if not math.isclose(float(sdist), float(edist),
                            rel_tol=0.0, abs_tol=atol):
            return False
    return True


class ShadowScorer:
    """Sampled exact re-check of served results (live quality probe).

    Every ``1/fraction``-th offered request (deterministic modular
    sampling — no RNG, so a replayed workload shadows the same
    requests) is re-answered by *exact_fn* and compared with
    :func:`results_agree`.  Each check lands in the observability
    facade via ``record_shadow_check`` and in the local
    :attr:`checked` / :attr:`disagreed` tallies, so both a scraped
    ``quality.shadow.agreement`` gauge and ``saturation()`` report
    the running agreement ratio.

    Parameters
    ----------
    exact_fn:
        ``exact_fn(kind, query, param) -> sequence of (id, distance)``
        — the ground-truth answer for a served request.  Injected so
        this module stays below the serving layer.
    fraction:
        Sampling fraction in ``(0, 1]``; 1.0 shadows everything
        (tests), 0.01 shadows one request in a hundred (production).
    obs:
        Optional :class:`~repro.obs.Observability`; each check calls
        ``obs.record_shadow_check(agree)``.
    atol:
        Distance tolerance forwarded to :func:`results_agree`.
    """

    def __init__(self, exact_fn: Callable, *, fraction: float,
                 obs=None, atol: float = 1e-9) -> None:
        if not 0.0 < fraction <= 1.0:
            raise ValueError(
                f"shadow fraction must be in (0, 1], got {fraction}")
        self._exact_fn = exact_fn
        self._every = max(1, int(round(1.0 / fraction)))
        self._obs = obs
        self._atol = atol
        self._lock = threading.Lock()
        self._offered = 0
        self.checked = 0
        self.disagreed = 0

    @property
    def fraction(self) -> float:
        """The effective sampling fraction (1 / every-N)."""
        return 1.0 / self._every

    @property
    def agreement(self) -> float | None:
        """Running agreement ratio, ``None`` before the first check."""
        with self._lock:
            if self.checked == 0:
                return None
            return (self.checked - self.disagreed) / self.checked

    def maybe_check(self, kind: str, query, param, served) -> bool | None:
        """Offer one served request; shadow-score it if sampled.

        Returns ``True``/``False`` (agreed / disagreed) when the
        request was sampled, ``None`` when it was skipped.  Exact
        re-scoring runs on the caller's thread — keep the fraction
        small on hot paths.
        """
        with self._lock:
            offered = self._offered
            self._offered += 1
        if offered % self._every != 0:
            return None
        exact = self._exact_fn(kind, query, param)
        agree = results_agree(served, exact, atol=self._atol)
        with self._lock:
            self.checked += 1
            if not agree:
                self.disagreed += 1
        if self._obs is not None:
            self._obs.record_shadow_check(agree)
        return agree

    def snapshot(self) -> dict:
        """JSON-ready tallies for ``saturation()``-style reports."""
        with self._lock:
            checked, disagreed = self.checked, self.disagreed
        agreement = ((checked - disagreed) / checked) if checked else None
        return {
            "fraction": self.fraction,
            "offered": self._offered,
            "checked": checked,
            "disagreed": disagreed,
            "agreement": agreement,
        }
